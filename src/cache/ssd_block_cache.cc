#include "cache/ssd_block_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/coding.h"
#include "common/hash.h"

namespace logstore::cache {

namespace fs = std::filesystem;

namespace {

// Per-block on-disk layout: magic, key length, key bytes, then the block
// data. A run file is simply several of these back to back. The embedded
// key is what makes hash-collisions on the file name safe.
constexpr char kFileMagic[4] = {'S', 'B', 'C', '1'};
constexpr size_t kHeaderFixedSize = sizeof(kFileMagic) + sizeof(uint32_t);

void AppendBlockRecord(std::string* out, const std::string& key,
                       const std::string& data) {
  out->append(kFileMagic, sizeof(kFileMagic));
  PutFixed32(out, static_cast<uint32_t>(key.size()));
  out->append(key);
  out->append(data);
}

}  // namespace

Result<std::unique_ptr<SsdBlockCache>> SsdBlockCache::Open(
    const std::string& dir, uint64_t capacity_bytes, CacheStats* stats,
    int hash_bits, metrics::MetricRegistry* registry) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create cache dir " + dir + ": " +
                           ec.message());
  }
  return std::unique_ptr<SsdBlockCache>(
      new SsdBlockCache(dir, capacity_bytes, stats, hash_bits, registry));
}

SsdBlockCache::~SsdBlockCache() {
  // Cache files are scratch data; remove them on shutdown.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

uint64_t SsdBlockCache::FileHash(const std::string& key) const {
  const uint64_t h = Hash64(key);
  if (hash_bits_ >= 64) return h;
  return h & ((uint64_t{1} << hash_bits_) - 1);
}

std::string SsdBlockCache::PathForHash(uint64_t file_hash) const {
  char name[32];
  snprintf(name, sizeof(name), "%016llx.blk",
           static_cast<unsigned long long>(file_hash));
  return dir_ + "/" + name;
}

void SsdBlockCache::Insert(const std::string& key, const std::string& data) {
  if (data.size() > capacity_) return;
  const uint64_t file_hash = FileHash(key);
  const std::string path = PathForHash(file_hash);

  std::string payload;
  payload.reserve(kHeaderFixedSize + key.size() + data.size());
  AppendBlockRecord(&payload, key, data);

  bool written = false;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      written = static_cast<bool>(out);
    }
  }
  if (!written) {
    std::error_code ec;
    fs::remove(path, ec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  // The file was just overwritten (or destroyed on a failed write): every
  // key whose bytes previously lived in it no longer has them on disk.
  DetachFileOwnersLocked(file_hash);
  if (!written) {  // best effort: drop all bookkeeping for this key
    DetachEntryLocked(key, /*unlink_empty=*/false);
    return;
  }
  if (stats_ != nullptr) stats_->inserts++;
  RecordInsertLocked(key, file_hash, /*header_offset=*/0, data.size());
  EvictLocked();
}

void SsdBlockCache::InsertBatch(
    const std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>&
        blocks) {
  if (blocks.empty()) return;
  if (blocks.size() == 1) {
    Insert(blocks[0].first, *blocks[0].second);
    return;
  }
  uint64_t total = 0;
  for (const auto& [key, data] : blocks) {
    total += kHeaderFixedSize + key.size() + data->size();
  }
  if (total > capacity_) {
    // A run this large would immediately evict itself; store the pieces
    // individually so each is subject to its own capacity check.
    for (const auto& [key, data] : blocks) Insert(key, *data);
    return;
  }

  // One run file named by the first key's hash; blocks laid out back to
  // back, each with its own verifiable header.
  const uint64_t file_hash = FileHash(blocks[0].first);
  const std::string path = PathForHash(file_hash);
  std::string payload;
  payload.reserve(total);
  std::vector<uint64_t> offsets;
  offsets.reserve(blocks.size());
  for (const auto& [key, data] : blocks) {
    offsets.push_back(payload.size());
    AppendBlockRecord(&payload, key, *data);
  }

  bool written = false;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
      written = static_cast<bool>(out);
    }
  }
  if (!written) {
    std::error_code ec;
    fs::remove(path, ec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  DetachFileOwnersLocked(file_hash);
  if (!written) return;
  run_spills_++;
  for (size_t i = 0; i < blocks.size(); ++i) {
    // A duplicate key inside one batch would leave a dangling offset; keep
    // the first occurrence (later ones are unreachable bytes in the file).
    if (index_.count(blocks[i].first) != 0 &&
        index_[blocks[i].first].file_hash == file_hash) {
      continue;
    }
    if (stats_ != nullptr) stats_->inserts++;
    RecordInsertLocked(blocks[i].first, file_hash, offsets[i],
                       blocks[i].second->size());
  }
  EvictLocked();
}

std::shared_ptr<std::string> SsdBlockCache::ReadVerified(
    int fd, const Located& loc) const {
  const uint64_t header_size = kHeaderFixedSize + loc.key.size();
  std::string header(header_size, '\0');
  if (::pread(fd, header.data(), header_size,
              static_cast<off_t>(loc.header_offset)) !=
          static_cast<ssize_t>(header_size) ||
      header.compare(0, sizeof(kFileMagic), kFileMagic, sizeof(kFileMagic)) !=
          0 ||
      DecodeFixed32(header.data() + sizeof(kFileMagic)) != loc.key.size() ||
      header.compare(kHeaderFixedSize, loc.key.size(), loc.key) != 0) {
    return nullptr;
  }
  auto data =
      std::make_shared<std::string>(static_cast<size_t>(loc.size), '\0');
  if (::pread(fd, data->data(), loc.size,
              static_cast<off_t>(loc.header_offset + header_size)) !=
      static_cast<ssize_t>(loc.size)) {
    return nullptr;
  }
  return data;
}

std::shared_ptr<const std::string> SsdBlockCache::Get(const std::string& key) {
  Located loc;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      if (stats_ != nullptr) stats_->misses++;
      return nullptr;
    }
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
    loc = {0, key, it->second.file_hash, it->second.header_offset,
           it->second.size};
  }

  // Hit-path IO runs outside mu_ — the mutex above covered only the index
  // and LRU touch — so parallel Gets overlap their disk reads instead of
  // serializing behind one reader. pread carries its own offset (no shared
  // seek state), and the readahead hint lets the kernel start pulling the
  // block body while the header is still being verified.
  std::shared_ptr<std::string> data;
  const int fd = ::open(PathForHash(loc.file_hash).c_str(), O_RDONLY);
  if (fd >= 0) {
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd, static_cast<off_t>(loc.header_offset),
                    static_cast<off_t>(kHeaderFixedSize + key.size() +
                                       loc.size),
                    POSIX_FADV_WILLNEED);
#endif
    ranged_reads_++;
    data = ReadVerified(fd, loc);
    ::close(fd);
  }

  if (data == nullptr) {
    // The file is gone, unreadable, or holds another key's bytes: the index
    // entry is stale — drop it and report a miss rather than wrong data.
    std::lock_guard<std::mutex> lock(mu_);
    DetachEntryLocked(key, /*unlink_empty=*/false);
    if (stats_ != nullptr) stats_->misses++;
    return nullptr;
  }
  if (stats_ != nullptr) stats_->hits++;
  return data;
}

std::vector<std::shared_ptr<const std::string>> SsdBlockCache::GetBatch(
    const std::vector<std::string>& keys) {
  std::vector<std::shared_ptr<const std::string>> out(keys.size());
  std::vector<Located> found;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < keys.size(); ++i) {
      auto it = index_.find(keys[i]);
      if (it == index_.end()) {
        if (stats_ != nullptr) stats_->misses++;
        continue;
      }
      lru_.erase(it->second.lru_pos);
      lru_.push_front(keys[i]);
      it->second.lru_pos = lru_.begin();
      found.push_back({i, keys[i], it->second.file_hash,
                       it->second.header_offset, it->second.size});
    }
  }
  if (found.empty()) return out;

  // Group by file and read each file's blocks with one coalesced pread
  // spanning from the first to the last requested extent.
  std::stable_sort(found.begin(), found.end(),
                   [](const Located& a, const Located& b) {
                     return a.file_hash != b.file_hash
                                ? a.file_hash < b.file_hash
                                : a.header_offset < b.header_offset;
                   });
  std::vector<std::string> stale;
  for (size_t g = 0; g < found.size();) {
    size_t g_end = g + 1;
    while (g_end < found.size() &&
           found[g_end].file_hash == found[g].file_hash) {
      ++g_end;
    }
    const int fd = ::open(PathForHash(found[g].file_hash).c_str(), O_RDONLY);
    if (fd < 0) {
      for (size_t i = g; i < g_end; ++i) stale.push_back(found[i].key);
      g = g_end;
      continue;
    }
    const uint64_t span_begin = found[g].header_offset;
    const Located& last = found[g_end - 1];
    const uint64_t span_end = last.header_offset + kHeaderFixedSize +
                              last.key.size() + last.size;
    std::string span(static_cast<size_t>(span_end - span_begin), '\0');
    ranged_reads_++;
    const bool span_ok =
        ::pread(fd, span.data(), span.size(),
                static_cast<off_t>(span_begin)) ==
        static_cast<ssize_t>(span.size());
    ::close(fd);
    for (size_t i = g; i < g_end; ++i) {
      const Located& loc = found[i];
      const uint64_t header_size = kHeaderFixedSize + loc.key.size();
      const uint64_t rel = loc.header_offset - span_begin;
      bool verified = false;
      if (span_ok && rel + header_size + loc.size <= span.size()) {
        verified =
            span.compare(rel, sizeof(kFileMagic), kFileMagic,
                         sizeof(kFileMagic)) == 0 &&
            DecodeFixed32(span.data() + rel + sizeof(kFileMagic)) ==
                loc.key.size() &&
            span.compare(rel + kHeaderFixedSize, loc.key.size(), loc.key) == 0;
      }
      if (verified) {
        out[loc.slot] = std::make_shared<const std::string>(
            span.substr(static_cast<size_t>(rel + header_size),
                        static_cast<size_t>(loc.size)));
        if (stats_ != nullptr) stats_->hits++;
      } else {
        stale.push_back(loc.key);
      }
    }
    g = g_end;
  }

  if (!stale.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const std::string& key : stale) {
      DetachEntryLocked(key, /*unlink_empty=*/false);
      if (stats_ != nullptr) stats_->misses++;
    }
  }
  return out;
}

void SsdBlockCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  DetachEntryLocked(key, /*unlink_empty=*/true);
}

bool SsdBlockCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) > 0;
}

uint64_t SsdBlockCache::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

size_t SsdBlockCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void SsdBlockCache::RecordInsertLocked(const std::string& key,
                                       uint64_t file_hash,
                                       uint64_t header_offset, uint64_t size) {
  DetachEntryLocked(key, /*unlink_empty=*/true);
  lru_.push_front(key);
  index_[key] = Entry{size, file_hash, header_offset, lru_.begin()};
  file_owner_[file_hash].push_back(key);
  used_ += size;
}

void SsdBlockCache::DetachEntryLocked(const std::string& key,
                                      bool unlink_empty) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  const uint64_t file_hash = it->second.file_hash;
  used_ -= it->second.size;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
  auto owner = file_owner_.find(file_hash);
  if (owner == file_owner_.end()) return;
  auto& keys = owner->second;
  keys.erase(std::remove(keys.begin(), keys.end(), key), keys.end());
  if (keys.empty()) {
    file_owner_.erase(owner);
    if (unlink_empty) {
      std::error_code ec;
      fs::remove(PathForHash(file_hash), ec);
    }
  }
}

void SsdBlockCache::DetachFileOwnersLocked(uint64_t file_hash) {
  auto owner = file_owner_.find(file_hash);
  if (owner == file_owner_.end()) return;
  const std::vector<std::string> keys = owner->second;
  for (const std::string& key : keys) {
    auto it = index_.find(key);
    if (it == index_.end()) continue;
    used_ -= it->second.size;
    lru_.erase(it->second.lru_pos);
    index_.erase(it);
  }
  file_owner_.erase(file_hash);
}

void SsdBlockCache::EvictLocked() {
  while (used_ > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    DetachEntryLocked(victim, /*unlink_empty=*/true);
    if (stats_ != nullptr) stats_->evictions++;
  }
}

}  // namespace logstore::cache
