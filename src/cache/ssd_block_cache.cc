#include "cache/ssd_block_cache.h"

#include <filesystem>
#include <fstream>

#include "common/hash.h"

namespace logstore::cache {

namespace fs = std::filesystem;

Result<std::unique_ptr<SsdBlockCache>> SsdBlockCache::Open(
    const std::string& dir, uint64_t capacity_bytes, CacheStats* stats) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create cache dir " + dir + ": " +
                           ec.message());
  }
  return std::unique_ptr<SsdBlockCache>(
      new SsdBlockCache(dir, capacity_bytes, stats));
}

SsdBlockCache::~SsdBlockCache() {
  // Cache files are scratch data; remove them on shutdown.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

std::string SsdBlockCache::PathFor(const std::string& key) const {
  // Keys contain '/' and '#'; store under a hash-derived name.
  char name[32];
  snprintf(name, sizeof(name), "%016llx.blk",
           static_cast<unsigned long long>(Hash64(key)));
  return dir_ + "/" + name;
}

void SsdBlockCache::Insert(const std::string& key, const std::string& data) {
  if (data.size() > capacity_) return;
  const std::string path = PathFor(key);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return;  // best effort
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    if (!out) {
      std::error_code ec;
      fs::remove(path, ec);
      return;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_ != nullptr) stats_->inserts++;
  auto it = index_.find(key);
  if (it != index_.end()) {
    used_ -= it->second.size;
    lru_.erase(it->second.lru_pos);
    index_.erase(it);
  }
  lru_.push_front(key);
  index_[key] = Entry{data.size(), lru_.begin()};
  used_ += data.size();
  EvictLocked();
}

std::shared_ptr<const std::string> SsdBlockCache::Get(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      if (stats_ != nullptr) stats_->misses++;
      return nullptr;
    }
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
  }
  std::ifstream in(PathFor(key), std::ios::binary | std::ios::ate);
  if (!in) {
    if (stats_ != nullptr) stats_->misses++;
    return nullptr;
  }
  const auto size = in.tellg();
  auto data = std::make_shared<std::string>(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(data->data(), size);
  if (!in) {
    if (stats_ != nullptr) stats_->misses++;
    return nullptr;
  }
  if (stats_ != nullptr) stats_->hits++;
  return data;
}

bool SsdBlockCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) > 0;
}

uint64_t SsdBlockCache::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

size_t SsdBlockCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void SsdBlockCache::EvictLocked() {
  while (used_ > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = index_.find(victim);
    used_ -= it->second.size;
    index_.erase(it);
    std::error_code ec;
    fs::remove(PathFor(victim), ec);
    if (stats_ != nullptr) stats_->evictions++;
  }
}

}  // namespace logstore::cache
