#include "cache/ssd_block_cache.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/coding.h"
#include "common/hash.h"

namespace logstore::cache {

namespace fs = std::filesystem;

namespace {

// Cache-file layout: magic, key length, key bytes, then the block data.
// The embedded key is what makes hash-collisions on the file name safe.
constexpr char kFileMagic[4] = {'S', 'B', 'C', '1'};
constexpr size_t kHeaderFixedSize = sizeof(kFileMagic) + sizeof(uint32_t);

}  // namespace

Result<std::unique_ptr<SsdBlockCache>> SsdBlockCache::Open(
    const std::string& dir, uint64_t capacity_bytes, CacheStats* stats,
    int hash_bits) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create cache dir " + dir + ": " +
                           ec.message());
  }
  return std::unique_ptr<SsdBlockCache>(
      new SsdBlockCache(dir, capacity_bytes, stats, hash_bits));
}

SsdBlockCache::~SsdBlockCache() {
  // Cache files are scratch data; remove them on shutdown.
  std::error_code ec;
  fs::remove_all(dir_, ec);
}

uint64_t SsdBlockCache::FileHash(const std::string& key) const {
  const uint64_t h = Hash64(key);
  if (hash_bits_ >= 64) return h;
  return h & ((uint64_t{1} << hash_bits_) - 1);
}

std::string SsdBlockCache::PathForHash(uint64_t file_hash) const {
  char name[32];
  snprintf(name, sizeof(name), "%016llx.blk",
           static_cast<unsigned long long>(file_hash));
  return dir_ + "/" + name;
}

void SsdBlockCache::Insert(const std::string& key, const std::string& data) {
  if (data.size() > capacity_) return;
  const uint64_t file_hash = FileHash(key);
  const std::string path = PathForHash(file_hash);

  std::string header;
  header.append(kFileMagic, sizeof(kFileMagic));
  PutFixed32(&header, static_cast<uint32_t>(key.size()));
  header.append(key);

  bool written = false;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(header.data(), static_cast<std::streamsize>(header.size()));
      out.write(data.data(), static_cast<std::streamsize>(data.size()));
      written = static_cast<bool>(out);
    }
  }
  if (!written) {
    std::error_code ec;
    fs::remove(path, ec);
  }

  std::lock_guard<std::mutex> lock(mu_);
  // The file was just overwritten (or destroyed on a failed write): the key
  // that previously owned it no longer has its bytes on disk.
  auto owner = file_owner_.find(file_hash);
  if (owner != file_owner_.end() && owner->second != key) {
    DetachEntryLocked(owner->second);
  }
  if (!written) {  // best effort: drop all bookkeeping for this file
    DetachEntryLocked(key);
    file_owner_.erase(file_hash);
    return;
  }
  if (stats_ != nullptr) stats_->inserts++;
  DetachEntryLocked(key);
  lru_.push_front(key);
  index_[key] = Entry{data.size(), lru_.begin()};
  file_owner_[file_hash] = key;
  used_ += data.size();
  EvictLocked();
}

std::shared_ptr<const std::string> SsdBlockCache::Get(const std::string& key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      if (stats_ != nullptr) stats_->misses++;
      return nullptr;
    }
    lru_.erase(it->second.lru_pos);
    lru_.push_front(key);
    it->second.lru_pos = lru_.begin();
  }

  // Hit-path IO runs outside mu_ — the mutex above covered only the index
  // and LRU touch — so parallel Gets overlap their disk reads instead of
  // serializing behind one reader. pread carries its own offset (no shared
  // seek state), and the readahead hint lets the kernel start pulling the
  // block body while the header is still being verified.
  const uint64_t file_hash = FileHash(key);
  bool verified = false;
  std::shared_ptr<std::string> data;
  const int fd = ::open(PathForHash(file_hash).c_str(), O_RDONLY);
  if (fd >= 0) {
#ifdef POSIX_FADV_WILLNEED
    ::posix_fadvise(fd, 0, 0, POSIX_FADV_WILLNEED);
#endif
    struct stat st;
    if (::fstat(fd, &st) == 0) {
      const auto file_size = static_cast<uint64_t>(st.st_size);
      const uint64_t min_size = kHeaderFixedSize + key.size();
      if (file_size >= min_size) {
        std::string header(min_size, '\0');
        if (::pread(fd, header.data(), min_size, 0) ==
                static_cast<ssize_t>(min_size) &&
            header.compare(0, sizeof(kFileMagic), kFileMagic,
                           sizeof(kFileMagic)) == 0 &&
            DecodeFixed32(header.data() + sizeof(kFileMagic)) == key.size() &&
            header.compare(kHeaderFixedSize, key.size(), key) == 0) {
          const uint64_t data_size = file_size - min_size;
          data = std::make_shared<std::string>(static_cast<size_t>(data_size),
                                               '\0');
          verified = ::pread(fd, data->data(), data_size,
                             static_cast<off_t>(min_size)) ==
                     static_cast<ssize_t>(data_size);
        }
      }
    }
    ::close(fd);
  }

  if (!verified) {
    // The file is gone, unreadable, or holds another key's bytes: the index
    // entry is stale — drop it and report a miss rather than wrong data.
    std::lock_guard<std::mutex> lock(mu_);
    DetachEntryLocked(key);
    auto owner = file_owner_.find(file_hash);
    if (owner != file_owner_.end() && owner->second == key) {
      file_owner_.erase(owner);
    }
    if (stats_ != nullptr) stats_->misses++;
    return nullptr;
  }
  if (stats_ != nullptr) stats_->hits++;
  return data;
}

void SsdBlockCache::Erase(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  DetachEntryLocked(key);
  const uint64_t file_hash = FileHash(key);
  auto owner = file_owner_.find(file_hash);
  if (owner != file_owner_.end() && owner->second == key) {
    file_owner_.erase(owner);
    std::error_code ec;
    fs::remove(PathForHash(file_hash), ec);
  }
}

bool SsdBlockCache::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.count(key) > 0;
}

uint64_t SsdBlockCache::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

size_t SsdBlockCache::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

void SsdBlockCache::DetachEntryLocked(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  used_ -= it->second.size;
  lru_.erase(it->second.lru_pos);
  index_.erase(it);
}

void SsdBlockCache::EvictLocked() {
  while (used_ > capacity_ && !lru_.empty()) {
    const std::string victim = lru_.back();
    lru_.pop_back();
    auto it = index_.find(victim);
    used_ -= it->second.size;
    index_.erase(it);
    const uint64_t file_hash = FileHash(victim);
    auto owner = file_owner_.find(file_hash);
    if (owner != file_owner_.end() && owner->second == victim) {
      file_owner_.erase(owner);
      std::error_code ec;
      fs::remove(PathForHash(file_hash), ec);
    }
    if (stats_ != nullptr) stats_->evictions++;
  }
}

}  // namespace logstore::cache
