#ifndef LOGSTORE_CACHE_BLOCK_MANAGER_H_
#define LOGSTORE_CACHE_BLOCK_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/lru_cache.h"
#include "cache/ssd_block_cache.h"
#include "common/result.h"

namespace logstore::cache {

struct BlockManagerOptions {
  // Paper production sizes are 8 GB memory / 200 GB SSD; tests and benches
  // scale these down.
  uint64_t memory_capacity_bytes = 64ull << 20;
  int memory_shards = 16;
  // Empty `ssd_dir` disables the SSD level.
  std::string ssd_dir;
  uint64_t ssd_capacity_bytes = 1ull << 30;
  // Registry receiving the per-tier `cache.*` aggregates; nullptr means the
  // process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

// The block manager of §5.2 (Figure 9): a two-level file-block cache.
// Inserts land in the memory block cache; evicted blocks spill to the SSD
// block cache (adjacent blocks evicted together spill into one run file);
// SSD hits are promoted back into memory. All operations are thread-safe:
// parallel query execution probes one manager from many threads at once.
class BlockManager {
 public:
  static Result<std::unique_ptr<BlockManager>> Open(
      const BlockManagerOptions& options);

  // Looks up a block in memory, then SSD. SSD hits are promoted.
  std::shared_ptr<const std::string> Get(const std::string& key);

  // Batched lookup for a run of (typically adjacent) blocks: one slot per
  // key, nullptr on miss. SSD-resident blocks sharing a run file are read
  // with one coalesced ranged pread and promoted like Get.
  std::vector<std::shared_ptr<const std::string>> GetBatch(
      const std::vector<std::string>& keys);

  // Inserts into the memory level (spilling may push older blocks to SSD).
  void Insert(const std::string& key, std::shared_ptr<const std::string> block);

  bool Contains(const std::string& key) const;

  CacheStats& memory_stats() { return memory_stats_; }
  CacheStats& ssd_stats() { return ssd_stats_; }
  uint64_t memory_used_bytes() const { return memory_->used_bytes(); }
  uint64_t ssd_used_bytes() const {
    return ssd_ == nullptr ? 0 : ssd_->used_bytes();
  }
  void Clear();

 private:
  explicit BlockManager(const BlockManagerOptions& options);

  CacheStats memory_stats_;
  CacheStats ssd_stats_;
  std::unique_ptr<ShardedLruCache<const std::string>> memory_;
  std::unique_ptr<SsdBlockCache> ssd_;
};

}  // namespace logstore::cache

#endif  // LOGSTORE_CACHE_BLOCK_MANAGER_H_
