#include "cache/block_manager.h"

namespace logstore::cache {

BlockManager::BlockManager(const BlockManagerOptions& options)
    : memory_(std::make_unique<ShardedLruCache<const std::string>>(
          options.memory_capacity_bytes, options.memory_shards,
          &memory_stats_)) {
  metrics::MetricRegistry* registry = metrics::OrDefault(options.registry);
  memory_stats_.BindTo(registry, "memory");
  ssd_stats_.BindTo(registry, "ssd");
}

Result<std::unique_ptr<BlockManager>> BlockManager::Open(
    const BlockManagerOptions& options) {
  std::unique_ptr<BlockManager> manager(new BlockManager(options));
  if (!options.ssd_dir.empty()) {
    auto ssd = SsdBlockCache::Open(options.ssd_dir, options.ssd_capacity_bytes,
                                   &manager->ssd_stats_, /*hash_bits=*/64,
                                   options.registry);
    if (!ssd.ok()) return ssd.status();
    manager->ssd_ = std::move(ssd).value();
    // Spill memory evictions to the SSD level; victims of one insert spill
    // as a batch, so adjacent blocks aging out together land in one run
    // file and can be read back with one ranged read.
    SsdBlockCache* ssd_ptr = manager->ssd_.get();
    manager->memory_->set_batch_eviction_callback(
        [ssd_ptr](
            std::vector<LruCache<const std::string>::Evicted>&& victims) {
          std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>
              batch;
          batch.reserve(victims.size());
          for (auto& v : victims) {
            batch.emplace_back(std::move(v.key), std::move(v.value));
          }
          ssd_ptr->InsertBatch(batch);
        });
  }
  return manager;
}

std::shared_ptr<const std::string> BlockManager::Get(const std::string& key) {
  if (auto block = memory_->Get(key)) return block;
  if (ssd_ != nullptr) {
    if (auto block = ssd_->Get(key)) {
      // Promote to the memory level for subsequent hits. The levels are
      // exclusive: the SSD copy is released so the bytes are charged once,
      // and a later memory eviction spills the block back down. Insert into
      // memory BEFORE erasing from SSD: a concurrent Get of the same key
      // that misses SSD mid-promotion then finds the block on its memory
      // re-check instead of reporting a spurious miss.
      memory_->Insert(key, block, block->size(), /*spill_on_evict=*/true);
      ssd_->Erase(key);
      return block;
    }
    // A racing promotion may have moved the block from SSD to memory
    // between the two probes above.
    if (auto block = memory_->Get(key)) return block;
  }
  return nullptr;
}

std::vector<std::shared_ptr<const std::string>> BlockManager::GetBatch(
    const std::vector<std::string>& keys) {
  std::vector<std::shared_ptr<const std::string>> out(keys.size());
  std::vector<std::string> ssd_keys;
  std::vector<size_t> ssd_slots;
  for (size_t i = 0; i < keys.size(); ++i) {
    out[i] = memory_->Get(keys[i]);
    if (out[i] == nullptr && ssd_ != nullptr) {
      ssd_keys.push_back(keys[i]);
      ssd_slots.push_back(i);
    }
  }
  if (ssd_keys.empty()) return out;
  auto ssd_blocks = ssd_->GetBatch(ssd_keys);
  for (size_t j = 0; j < ssd_keys.size(); ++j) {
    if (ssd_blocks[j] != nullptr) {
      // Same exclusive promotion as Get (insert-then-erase).
      memory_->Insert(ssd_keys[j], ssd_blocks[j], ssd_blocks[j]->size(),
                      /*spill_on_evict=*/true);
      ssd_->Erase(ssd_keys[j]);
      out[ssd_slots[j]] = std::move(ssd_blocks[j]);
    } else if (auto block = memory_->Get(ssd_keys[j])) {
      out[ssd_slots[j]] = std::move(block);  // racing promotion landed it
    }
  }
  return out;
}

void BlockManager::Insert(const std::string& key,
                          std::shared_ptr<const std::string> block) {
  const uint64_t charge = block->size();
  memory_->Insert(key, std::move(block), charge);
}

bool BlockManager::Contains(const std::string& key) const {
  return memory_->Contains(key) || (ssd_ != nullptr && ssd_->Contains(key));
}

void BlockManager::Clear() { memory_->Clear(); }

}  // namespace logstore::cache
