#include "cache/block_manager.h"

namespace logstore::cache {

BlockManager::BlockManager(const BlockManagerOptions& options)
    : memory_(std::make_unique<ShardedLruCache<const std::string>>(
          options.memory_capacity_bytes, options.memory_shards,
          &memory_stats_)) {}

Result<std::unique_ptr<BlockManager>> BlockManager::Open(
    const BlockManagerOptions& options) {
  std::unique_ptr<BlockManager> manager(new BlockManager(options));
  if (!options.ssd_dir.empty()) {
    auto ssd = SsdBlockCache::Open(options.ssd_dir, options.ssd_capacity_bytes,
                                   &manager->ssd_stats_);
    if (!ssd.ok()) return ssd.status();
    manager->ssd_ = std::move(ssd).value();
    // Spill memory evictions to the SSD level.
    SsdBlockCache* ssd_ptr = manager->ssd_.get();
    manager->memory_->set_eviction_callback(
        [ssd_ptr](const std::string& key,
                  const std::shared_ptr<const std::string>& value, uint64_t) {
          ssd_ptr->Insert(key, *value);
        });
  }
  return manager;
}

std::shared_ptr<const std::string> BlockManager::Get(const std::string& key) {
  if (auto block = memory_->Get(key)) return block;
  if (ssd_ != nullptr) {
    if (auto block = ssd_->Get(key)) {
      // Promote to the memory level for subsequent hits. The levels are
      // exclusive: the SSD copy is released so the bytes are charged once,
      // and a later memory eviction spills the block back down.
      ssd_->Erase(key);
      memory_->Insert(key, block, block->size(), /*spill_on_evict=*/true);
      return block;
    }
  }
  return nullptr;
}

void BlockManager::Insert(const std::string& key,
                          std::shared_ptr<const std::string> block) {
  const uint64_t charge = block->size();
  memory_->Insert(key, std::move(block), charge);
}

bool BlockManager::Contains(const std::string& key) const {
  return memory_->Contains(key) || (ssd_ != nullptr && ssd_->Contains(key));
}

void BlockManager::Clear() { memory_->Clear(); }

}  // namespace logstore::cache
