#ifndef LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
#define LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/lru_cache.h"
#include "common/result.h"
#include "common/status.h"

namespace logstore::cache {

// The second cache level of §5.2: blocks evicted from the memory cache
// spill to local SSD (a directory of small files with an in-memory LRU
// index). Much larger than the memory cache (paper: 8 GB vs 200 GB) and
// still far cheaper to read than the object store.
//
// Files are named by a hash of a key, so two keys can collide onto the
// same file. Every stored block carries a header with its full key; Get
// verifies it and treats a mismatch as a miss, and Insert detaches the
// index entries of any keys whose file it overwrites — colliding keys can
// never serve each other's bytes.
//
// Adjacent blocks evicted together are spilled through InsertBatch into one
// run file (named by the first key's hash), and GetBatch reads every
// requested block living in the same file with one coalesced ranged pread —
// a sequential SSD-resident scan costs a handful of large reads instead of
// one open/read/close per block. A run file's disk bytes are reclaimed when
// its last live block is evicted.
class SsdBlockCache {
 public:
  // `dir` is created if missing; pre-existing files are ignored (the cache
  // is a best-effort accelerator, not a durability layer). `hash_bits`
  // narrows the file-name hash to its low N bits — production uses the
  // default 64; tests shrink it to force collisions.
  static Result<std::unique_ptr<SsdBlockCache>> Open(
      const std::string& dir, uint64_t capacity_bytes,
      CacheStats* stats = nullptr, int hash_bits = 64,
      metrics::MetricRegistry* registry = nullptr);

  ~SsdBlockCache();

  // Writes the block to disk; evicts LRU files over capacity.
  void Insert(const std::string& key, const std::string& data);

  // Writes a batch of blocks (typically adjacent blocks of one object,
  // evicted from the memory level together) into a single run file, so a
  // later GetBatch of the same blocks is one ranged read. Falls back to
  // per-key files when the batch alone exceeds the cache capacity.
  void InsertBatch(
      const std::vector<std::pair<std::string, std::shared_ptr<const std::string>>>&
          blocks);

  // Reads a block back, refreshing recency; nullptr on miss, IO error, or
  // header/key mismatch. The disk read happens outside the cache mutex
  // (with a kernel readahead hint), so concurrent Gets overlap their IO.
  std::shared_ptr<const std::string> Get(const std::string& key);

  // Batched lookup: returns one slot per key (nullptr on miss). Blocks that
  // live in the same file are fetched with one coalesced ranged pread.
  std::vector<std::shared_ptr<const std::string>> GetBatch(
      const std::vector<std::string>& keys);

  bool Contains(const std::string& key) const;

  // Drops `key` and deletes its file if no other live block remains in it
  // (used when a block is promoted to the memory level: the two levels are
  // exclusive, so the SSD copy is released rather than left double-charged).
  void Erase(const std::string& key);

  uint64_t used_bytes() const;
  size_t entry_count() const;

  // Number of disk read spans issued by Get/GetBatch — with run files,
  // fewer spans than blocks means adjacent reads were coalesced.
  uint64_t ranged_reads() const { return ranged_reads_.load(); }

  // Number of multi-block run files written by InsertBatch (memory-level
  // eviction batches spilled as one file).
  uint64_t run_spills() const { return run_spills_.load(); }

 private:
  SsdBlockCache(std::string dir, uint64_t capacity_bytes, CacheStats* stats,
                int hash_bits, metrics::MetricRegistry* registry)
      : dir_(std::move(dir)),
        capacity_(capacity_bytes),
        stats_(stats),
        hash_bits_(hash_bits) {
    metrics::MetricRegistry* reg = metrics::OrDefault(registry);
    ranged_reads_.Bind(reg->Counter("cache.ranged_reads", {{"tier", "ssd"}}));
    run_spills_.Bind(reg->Counter("cache.run_spills", {{"tier", "ssd"}}));
  }

  struct Entry {
    uint64_t size;           // data bytes (header excluded)
    uint64_t file_hash;      // file the bytes live in (not always Hash(key))
    uint64_t header_offset;  // offset of this block's header in the file
    std::list<std::string>::iterator lru_pos;
  };

  // A located block, resolved under the mutex for IO outside it.
  struct Located {
    size_t slot;  // index into the GetBatch result vector
    std::string key;
    uint64_t file_hash;
    uint64_t header_offset;
    uint64_t size;
  };

  uint64_t FileHash(const std::string& key) const;
  std::string PathForHash(uint64_t file_hash) const;

  // Verifies `key`'s header+data at its recorded extent of `fd`; returns
  // the data or nullptr.
  std::shared_ptr<std::string> ReadVerified(int fd, const Located& loc) const;

  // Removes `key` from index_/lru_/used_ and from its file's owner list;
  // deletes the file when it holds no other live block and `unlink_empty`.
  void DetachEntryLocked(const std::string& key, bool unlink_empty);

  // Drops every live key whose bytes sit in `file_hash` (the file is being
  // overwritten).
  void DetachFileOwnersLocked(uint64_t file_hash);

  void RecordInsertLocked(const std::string& key, uint64_t file_hash,
                          uint64_t header_offset, uint64_t size);
  void EvictLocked();

  const std::string dir_;
  const uint64_t capacity_;
  CacheStats* stats_;
  const int hash_bits_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> index_;
  // file-name hash -> keys whose bytes currently live in that file.
  std::unordered_map<uint64_t, std::vector<std::string>> file_owner_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t used_ = 0;
  metrics::Counter ranged_reads_{0};
  metrics::Counter run_spills_{0};
};

}  // namespace logstore::cache

#endif  // LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
