#ifndef LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
#define LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "common/result.h"
#include "common/status.h"

namespace logstore::cache {

// The second cache level of §5.2: blocks evicted from the memory cache
// spill to local SSD (a directory of small files with an in-memory LRU
// index). Much larger than the memory cache (paper: 8 GB vs 200 GB) and
// still far cheaper to read than the object store.
class SsdBlockCache {
 public:
  // `dir` is created if missing; pre-existing files are ignored (the cache
  // is a best-effort accelerator, not a durability layer).
  static Result<std::unique_ptr<SsdBlockCache>> Open(const std::string& dir,
                                                     uint64_t capacity_bytes,
                                                     CacheStats* stats = nullptr);

  ~SsdBlockCache();

  // Writes the block to disk; evicts LRU files over capacity.
  void Insert(const std::string& key, const std::string& data);

  // Reads a block back, refreshing recency; nullptr on miss or IO error.
  std::shared_ptr<const std::string> Get(const std::string& key);

  bool Contains(const std::string& key) const;

  uint64_t used_bytes() const;
  size_t entry_count() const;

 private:
  SsdBlockCache(std::string dir, uint64_t capacity_bytes, CacheStats* stats)
      : dir_(std::move(dir)), capacity_(capacity_bytes), stats_(stats) {}

  std::string PathFor(const std::string& key) const;
  void EvictLocked();

  const std::string dir_;
  const uint64_t capacity_;
  CacheStats* stats_;

  mutable std::mutex mu_;
  struct Entry {
    uint64_t size;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> index_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t used_ = 0;
};

}  // namespace logstore::cache

#endif  // LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
