#ifndef LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
#define LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "cache/lru_cache.h"
#include "common/result.h"
#include "common/status.h"

namespace logstore::cache {

// The second cache level of §5.2: blocks evicted from the memory cache
// spill to local SSD (a directory of small files with an in-memory LRU
// index). Much larger than the memory cache (paper: 8 GB vs 200 GB) and
// still far cheaper to read than the object store.
//
// Files are named by a hash of the key, so two keys can collide onto the
// same file. Every file carries a header with the full key; Get verifies
// it and treats a mismatch as a miss, and Insert detaches the index entry
// of any key whose file it overwrites — colliding keys can never serve
// each other's bytes.
class SsdBlockCache {
 public:
  // `dir` is created if missing; pre-existing files are ignored (the cache
  // is a best-effort accelerator, not a durability layer). `hash_bits`
  // narrows the file-name hash to its low N bits — production uses the
  // default 64; tests shrink it to force collisions.
  static Result<std::unique_ptr<SsdBlockCache>> Open(const std::string& dir,
                                                     uint64_t capacity_bytes,
                                                     CacheStats* stats = nullptr,
                                                     int hash_bits = 64);

  ~SsdBlockCache();

  // Writes the block to disk; evicts LRU files over capacity.
  void Insert(const std::string& key, const std::string& data);

  // Reads a block back, refreshing recency; nullptr on miss, IO error, or
  // header/key mismatch. The disk read happens outside the cache mutex
  // (with a kernel readahead hint), so concurrent Gets overlap their IO.
  std::shared_ptr<const std::string> Get(const std::string& key);

  bool Contains(const std::string& key) const;

  // Drops `key` and deletes its file if this key owns it (used when a block
  // is promoted to the memory level: the two levels are exclusive, so the
  // SSD copy is released rather than left double-charged).
  void Erase(const std::string& key);

  uint64_t used_bytes() const;
  size_t entry_count() const;

 private:
  SsdBlockCache(std::string dir, uint64_t capacity_bytes, CacheStats* stats,
                int hash_bits)
      : dir_(std::move(dir)),
        capacity_(capacity_bytes),
        stats_(stats),
        hash_bits_(hash_bits) {}

  uint64_t FileHash(const std::string& key) const;
  std::string PathForHash(uint64_t file_hash) const;

  // Removes `key` from index_/lru_/used_ if present. Does not touch the
  // file or file_owner_.
  void DetachEntryLocked(const std::string& key);
  void EvictLocked();

  const std::string dir_;
  const uint64_t capacity_;
  CacheStats* stats_;
  const int hash_bits_;

  mutable std::mutex mu_;
  struct Entry {
    uint64_t size;  // data bytes (header excluded)
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> index_;
  // file-name hash -> key whose bytes currently live in that file.
  std::unordered_map<uint64_t, std::string> file_owner_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t used_ = 0;
};

}  // namespace logstore::cache

#endif  // LOGSTORE_CACHE_SSD_BLOCK_CACHE_H_
