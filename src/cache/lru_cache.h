#ifndef LOGSTORE_CACHE_LRU_CACHE_H_
#define LOGSTORE_CACHE_LRU_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"

namespace logstore::cache {

struct CacheStats {
  metrics::Counter hits{0};
  metrics::Counter misses{0};
  metrics::Counter inserts{0};
  metrics::Counter evictions{0};

  double HitRate() const {
    const uint64_t h = hits.load(), m = misses.load();
    return h + m == 0 ? 0.0 : static_cast<double>(h) / (h + m);
  }
  void Reset() { hits = misses = inserts = evictions = 0; }

  // Mirrors this instance's increments into the registry's `cache.*`
  // aggregates for the given tier ("memory", "ssd", "object").
  void BindTo(metrics::MetricRegistry* registry, const std::string& tier) {
    const metrics::Labels labels = {{"tier", tier}};
    hits.Bind(registry->Counter("cache.hits", labels));
    misses.Bind(registry->Counter("cache.misses", labels));
    inserts.Bind(registry->Counter("cache.inserts", labels));
    evictions.Bind(registry->Counter("cache.evictions", labels));
  }
};

// A byte-budgeted LRU cache of shared values. Thread-safe via a single
// mutex; use ShardedLruCache for contended paths.
template <typename V>
class LruCache {
 public:
  explicit LruCache(uint64_t capacity_bytes, CacheStats* stats = nullptr)
      : capacity_(capacity_bytes), stats_(stats) {}

  // Inserts (or replaces) `key` with `value` of logical size `charge`,
  // evicting LRU entries to fit. Values larger than the whole capacity are
  // rejected up front: the rejection counts no insert and leaves any
  // existing entry for the same key untouched.
  //
  // `spill_on_evict = false` suppresses the eviction callback when this
  // entry is later evicted — used for promotions from a lower cache level
  // that already holds the bytes.
  void Insert(const std::string& key, std::shared_ptr<V> value,
              uint64_t charge, bool spill_on_evict = true) {
    std::vector<Victim> victims;
    EvictionCallback on_evict;
    BatchEvictionCallback on_evict_batch;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (charge > capacity_) return;
      if (stats_ != nullptr) stats_->inserts++;
      auto it = map_.find(key);
      if (it != map_.end()) {
        used_ -= it->second->charge;
        lru_.erase(it->second->lru_pos);
        map_.erase(it);
      }
      auto entry = std::make_shared<Entry>();
      entry->value = std::move(value);
      entry->charge = charge;
      entry->spill_on_evict = spill_on_evict;
      lru_.push_front(key);
      entry->lru_pos = lru_.begin();
      map_[key] = entry;
      used_ += charge;
      CollectEvictionsLocked(&victims);
      on_evict = on_evict_;
      on_evict_batch = on_evict_batch_;
    }
    // Callbacks run after the shard mutex is released: the SSD-spill
    // callback does disk IO, and a callback that re-enters the cache must
    // not deadlock. When a batch callback is set it receives all victims of
    // this insert at once (so adjacent blocks evicted together can spill
    // into one file); otherwise each victim is announced individually.
    if (victims.empty()) return;
    if (on_evict_batch) {
      std::vector<Evicted> batch;
      batch.reserve(victims.size());
      for (Victim& v : victims) {
        batch.push_back({std::move(v.key), std::move(v.value), v.charge});
      }
      on_evict_batch(std::move(batch));
    } else if (on_evict) {
      for (Victim& v : victims) on_evict(v.key, v.value, v.charge);
    }
  }

  // Returns the value and refreshes recency, or nullptr.
  std::shared_ptr<V> Get(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      if (stats_ != nullptr) stats_->misses++;
      return nullptr;
    }
    if (stats_ != nullptr) stats_->hits++;
    lru_.erase(it->second->lru_pos);
    lru_.push_front(key);
    it->second->lru_pos = lru_.begin();
    return it->second->value;
  }

  bool Contains(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) > 0;
  }

  void Erase(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) return;
    used_ -= it->second->charge;
    lru_.erase(it->second->lru_pos);
    map_.erase(it);
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
    used_ = 0;
  }

  uint64_t used_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return used_;
  }
  size_t entry_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  uint64_t capacity() const { return capacity_; }

  // Invoked with (key, value, charge) for each eviction; used by the memory
  // block cache to spill into the SSD cache (§5.2: "When its size exceeds
  // the threshold, the memory cache will spill to the SSD block cache").
  using EvictionCallback =
      std::function<void(const std::string&, const std::shared_ptr<V>&, uint64_t)>;
  void set_eviction_callback(EvictionCallback cb) {
    std::lock_guard<std::mutex> lock(mu_);
    on_evict_ = std::move(cb);
  }

  // Batch variant: one call per insert with every victim it displaced, in
  // LRU order. Takes precedence over the per-victim callback when set.
  struct Evicted {
    std::string key;
    std::shared_ptr<V> value;
    uint64_t charge;
  };
  using BatchEvictionCallback = std::function<void(std::vector<Evicted>&&)>;
  void set_batch_eviction_callback(BatchEvictionCallback cb) {
    std::lock_guard<std::mutex> lock(mu_);
    on_evict_batch_ = std::move(cb);
  }

 private:
  struct Entry {
    std::shared_ptr<V> value;
    uint64_t charge = 0;
    bool spill_on_evict = true;
    typename std::list<std::string>::iterator lru_pos;
  };

  struct Victim {
    std::string key;
    std::shared_ptr<V> value;
    uint64_t charge;
  };

  // Detaches LRU entries until the cache fits, appending the ones whose
  // eviction should be announced to `victims` for the caller to process
  // after releasing the mutex.
  void CollectEvictionsLocked(std::vector<Victim>* victims) {
    while (used_ > capacity_ && !lru_.empty()) {
      const std::string victim = lru_.back();
      auto it = map_.find(victim);
      if (it->second->spill_on_evict) {
        victims->push_back({victim, it->second->value, it->second->charge});
      }
      used_ -= it->second->charge;
      map_.erase(it);
      lru_.pop_back();
      if (stats_ != nullptr) stats_->evictions++;
    }
  }

  const uint64_t capacity_;
  CacheStats* stats_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> map_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t used_ = 0;
  EvictionCallback on_evict_;
  BatchEvictionCallback on_evict_batch_;
};

// Hash-sharded LRU: reduces mutex contention for the hot block-cache path.
template <typename V>
class ShardedLruCache {
 public:
  ShardedLruCache(uint64_t capacity_bytes, int num_shards = 16,
                  CacheStats* stats = nullptr) {
    shards_.reserve(num_shards);
    for (int i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<LruCache<V>>(
          capacity_bytes / num_shards, stats));
    }
  }

  void Insert(const std::string& key, std::shared_ptr<V> value,
              uint64_t charge, bool spill_on_evict = true) {
    Shard(key).Insert(key, std::move(value), charge, spill_on_evict);
  }
  std::shared_ptr<V> Get(const std::string& key) { return Shard(key).Get(key); }
  bool Contains(const std::string& key) const {
    return ShardConst(key).Contains(key);
  }
  void Erase(const std::string& key) { Shard(key).Erase(key); }

  uint64_t used_bytes() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) total += shard->used_bytes();
    return total;
  }
  size_t entry_count() const {
    size_t total = 0;
    for (const auto& shard : shards_) total += shard->entry_count();
    return total;
  }
  void Clear() {
    for (auto& shard : shards_) shard->Clear();
  }

  void set_eviction_callback(typename LruCache<V>::EvictionCallback cb) {
    for (auto& shard : shards_) shard->set_eviction_callback(cb);
  }
  void set_batch_eviction_callback(
      typename LruCache<V>::BatchEvictionCallback cb) {
    for (auto& shard : shards_) shard->set_batch_eviction_callback(cb);
  }

 private:
  LruCache<V>& Shard(const std::string& key) {
    return *shards_[Hash64(key) % shards_.size()];
  }
  const LruCache<V>& ShardConst(const std::string& key) const {
    return *shards_[Hash64(key) % shards_.size()];
  }

  std::vector<std::unique_ptr<LruCache<V>>> shards_;
};

}  // namespace logstore::cache

#endif  // LOGSTORE_CACHE_LRU_CACHE_H_
