#ifndef LOGSTORE_QUERY_VECTORIZED_H_
#define LOGSTORE_QUERY_VECTORIZED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/predicate.h"

namespace logstore::query::vectorized {

// Selection-bitmap filter kernels: each evaluates one predicate over a whole
// decoded column vector and writes a word-packed bitmap — bit j of words[j /
// 64] is set iff row j matches. All kernels share the contract:
//
//   - `words` has (n + 63) / 64 entries; every word is fully overwritten
//     and tail bits past n are cleared, so callers can AND bitmaps together
//     or fold them into a RowIdSet (IntersectBitmap) without masking.
//   - the return value is the number of selected rows (popcount).
//
// The int kernel's inner loop is branch-free — one comparison folded into a
// bit per lane, 64 lanes per word — which is the shape auto-vectorizers
// turn into SIMD compares + movemask.

uint32_t FilterInt64Compare(const int64_t* values, uint32_t n, CompareOp op,
                            int64_t operand, uint64_t* words);

uint32_t FilterStringEq(const std::string* values, uint32_t n,
                        const std::string& operand, uint64_t* words);

// Full-text MATCH fallback scan: a row is selected iff every query token
// (pre-tokenized ONCE by the caller, never per row) appears among the
// row value's tokens. An empty token list selects every row, matching the
// scalar EvalOnDecoded semantics.
uint32_t FilterMatchTokens(const std::string* values, uint32_t n,
                           const std::vector<std::string>& tokens,
                           uint64_t* words);

}  // namespace logstore::query::vectorized

#endif  // LOGSTORE_QUERY_VECTORIZED_H_
