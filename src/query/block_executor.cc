#include "query/block_executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <utility>

#include "index/rowid_set.h"
#include "query/vectorized.h"

namespace logstore::query {

namespace {

using logblock::ColumnType;
using logblock::IndexType;
using logblock::LogBlockReader;
using logblock::Value;

// A predicate bound to a column ordinal. For kMatch the query text is
// tokenized ONCE here, not per row in the scan loop.
struct BoundPredicate {
  Predicate pred;
  size_t col = 0;
  std::vector<std::string> match_tokens;
};

// Decoded-column-block cache for the life of ONE block execution: residual
// predicates on the same column, the aggregation pass, and the gather all
// reuse a block decoded by an earlier step instead of re-reading and
// re-decompressing it. Hits are counted in stats (`query.decode_cache_hits`);
// `column_blocks_scanned` keeps its pre-cache semantics (one count per
// residual scan pass, hit or not), so cached and uncached runs report
// identical scan stats.
class DecodedBlockCache {
 public:
  DecodedBlockCache(LogBlockReader* reader, BlockExecStats* stats)
      : reader_(reader), stats_(stats) {}

  Result<const logblock::DecodedColumnBlock*> Get(size_t col,
                                                  size_t block_idx) {
    const auto key = std::make_pair(col, block_idx);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++stats_->decode_cache_hits;
      return &it->second;
    }
    auto decoded = reader_->ReadColumnBlock(col, block_idx);
    if (!decoded.ok()) return decoded.status();
    auto emplaced = cache_.emplace(key, std::move(decoded).value());
    return &emplaced.first->second;
  }

 private:
  LogBlockReader* reader_;
  BlockExecStats* stats_;
  std::map<std::pair<size_t, size_t>, logblock::DecodedColumnBlock> cache_;
};

// True if the whole LogBlock can be skipped for `bp` using column SMA.
bool ColumnSmaSkips(const LogBlockReader& reader, const BoundPredicate& bp) {
  const auto& col_meta = reader.meta().columns[bp.col];
  switch (bp.pred.kind) {
    case Predicate::Kind::kInt64Compare: {
      if (bp.pred.op == CompareOp::kNe) return false;
      const auto [lo, hi] = bp.pred.Int64Interval();
      return col_meta.int_sma.DisjointWith(lo, hi);
    }
    case Predicate::Kind::kStringEq:
      return col_meta.str_sma.Excludes(bp.pred.str_value);
    case Predicate::Kind::kMatch:
      return false;  // no SMA shortcut for full text
  }
  return false;
}

// True if column block `b` can be skipped for `bp` using block SMA.
bool BlockSmaSkips(const logblock::ColumnBlockMeta& block,
                   const BoundPredicate& bp) {
  switch (bp.pred.kind) {
    case Predicate::Kind::kInt64Compare: {
      if (bp.pred.op == CompareOp::kNe) return false;
      const auto [lo, hi] = bp.pred.Int64Interval();
      return block.int_sma.DisjointWith(lo, hi);
    }
    case Predicate::Kind::kStringEq:
      return block.str_sma.Excludes(bp.pred.str_value);
    case Predicate::Kind::kMatch:
      return false;
  }
  return false;
}

// True if the index of this column can serve the predicate.
bool IndexServes(const LogBlockReader& reader, const BoundPredicate& bp) {
  const IndexType index_type = reader.meta().columns[bp.col].index_type;
  const logblock::Analyzer analyzer =
      reader.schema().column(bp.col).analyzer;
  switch (bp.pred.kind) {
    case Predicate::Kind::kInt64Compare:
      return index_type == IndexType::kBkd && bp.pred.op != CompareOp::kNe;
    case Predicate::Kind::kStringEq:
      return index_type == IndexType::kInverted &&
             analyzer != logblock::Analyzer::kTokensOnly;
    case Predicate::Kind::kMatch: {
      if (index_type != IndexType::kInverted ||
          analyzer == logblock::Analyzer::kExactOnly) {
        return false;
      }
      // Every query token must be indexable, or the probe would wrongly
      // drop rows containing an unindexed high-entropy token.
      for (const std::string& token : bp.match_tokens) {
        if (!index::IsIndexableToken(token)) return false;
      }
      return true;
    }
  }
  return false;
}

Result<index::RowIdSet> ProbeIndex(LogBlockReader* reader,
                                   const BoundPredicate& bp,
                                   uint32_t num_rows) {
  switch (bp.pred.kind) {
    case Predicate::Kind::kInt64Compare: {
      auto bkd = reader->BkdIndex(bp.col);
      if (!bkd.ok()) return bkd.status();
      const auto [lo, hi] = bp.pred.Int64Interval();
      return (*bkd)->QueryRange(lo, hi, num_rows);
    }
    case Predicate::Kind::kStringEq:
      return reader->InvertedLookupExact(bp.col, bp.pred.str_value);
    case Predicate::Kind::kMatch:
      return reader->InvertedMatchAllTokens(bp.col, bp.pred.str_value);
  }
  return Status::Internal("unreachable");
}

// Tests `bp` against one decoded value (the row-at-a-time path).
bool EvalOnDecoded(const logblock::DecodedColumnBlock& block, uint32_t offset,
                   const BoundPredicate& bp) {
  switch (bp.pred.kind) {
    case Predicate::Kind::kInt64Compare:
      return bp.pred.EvalInt64(block.ints[offset]);
    case Predicate::Kind::kStringEq:
      return block.strs[offset] == bp.pred.str_value;
    case Predicate::Kind::kMatch: {
      // Scan fallback for MATCH: all (pre-hoisted) query tokens must appear
      // in the value.
      const auto value_tokens = index::Tokenize(block.strs[offset]);
      for (const std::string& t : bp.match_tokens) {
        if (std::find(value_tokens.begin(), value_tokens.end(), t) ==
            value_tokens.end()) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

// True when the parallel scheduler asked this executor to stop.
bool Cancelled(const ExecOptions& options) {
  return options.cancel != nullptr &&
         options.cancel->load(std::memory_order_relaxed);
}

Status CancelledStatus() { return Status::Aborted("query cancelled"); }

// Evaluates one residual predicate against the candidate set by scanning
// (and SMA-skipping) the column's blocks. Vectorized mode decodes the whole
// block into column vectors, runs a selection-bitmap kernel over every row,
// and ANDs the bitmap into the candidates word-wise; scalar mode probes the
// surviving rows one at a time. Both produce the same candidate set and the
// same scan/skip/cache stats.
Status ApplyResidual(LogBlockReader* reader, const BoundPredicate& bp,
                     const ExecOptions& options, DecodedBlockCache* cache,
                     index::RowIdSet* candidates, BlockExecStats* stats) {
  const auto& col_meta = reader->meta().columns[bp.col];

  // Plan: find blocks that still hold candidate rows and survive block SMA.
  // The candidate probe is a word-level bitmap range test, so the whole
  // plan costs one pass over the RowIdSet per column instead of a
  // Contains() probe per row of every block.
  std::vector<size_t> to_scan;
  for (size_t b = 0; b < col_meta.blocks.size(); ++b) {
    const auto& block = col_meta.blocks[b];
    const uint32_t block_end = block.first_row + block.row_count;
    if (!candidates->AnyInRange(block.first_row, block_end)) {
      ++stats->column_blocks_skipped;
      continue;
    }
    if (options.use_data_skipping && BlockSmaSkips(block, bp)) {
      // Block SMA proves no row in this block matches: drop them all.
      candidates->RemoveRange(block.first_row, block_end);
      ++stats->column_blocks_skipped;
      continue;
    }
    to_scan.push_back(b);
  }

  if (options.use_prefetch && to_scan.size() > 1) {
    std::vector<ByteRange> ranges;
    ranges.reserve(to_scan.size());
    for (size_t b : to_scan) {
      auto range = reader->ColumnBlockRange(bp.col, b);
      if (range.ok()) ranges.push_back(*range);
    }
    (void)reader->Prefetch(ranges, options.prefetch_owner);
  }

  std::vector<uint64_t> words;  // reused across blocks
  for (size_t b : to_scan) {
    if (Cancelled(options)) return CancelledStatus();
    auto decoded = cache->Get(bp.col, b);
    if (!decoded.ok()) return decoded.status();
    ++stats->column_blocks_scanned;
    const auto& block = col_meta.blocks[b];

    if (options.use_vectorized) {
      words.assign((block.row_count + 63) / 64, 0);
      const auto kernel_start = std::chrono::steady_clock::now();
      uint32_t hits = 0;
      switch (bp.pred.kind) {
        case Predicate::Kind::kInt64Compare:
          hits = vectorized::FilterInt64Compare(
              (*decoded)->ints.data(), block.row_count, bp.pred.op,
              bp.pred.int_value, words.data());
          break;
        case Predicate::Kind::kStringEq:
          hits = vectorized::FilterStringEq((*decoded)->strs.data(),
                                            block.row_count, bp.pred.str_value,
                                            words.data());
          break;
        case Predicate::Kind::kMatch:
          hits = vectorized::FilterMatchTokens((*decoded)->strs.data(),
                                               block.row_count,
                                               bp.match_tokens, words.data());
          break;
      }
      stats->vectorized_kernel_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - kernel_start)
              .count());
      stats->vectorized_rows_scanned += block.row_count;
      stats->vectorized_bitmap_hits += hits;
      candidates->IntersectBitmap(block.first_row, words.data(),
                                  block.row_count);
    } else {
      for (uint32_t r = block.first_row;
           r < block.first_row + block.row_count; ++r) {
        if (candidates->Contains(r) &&
            !EvalOnDecoded(**decoded, r - block.first_row, bp)) {
          candidates->Remove(r);
        }
      }
    }
  }
  return Status::OK();
}

// Folds the surviving rows into a partial aggregate directly over the
// decoded column vectors — no row materialization, no projection IO beyond
// the aggregated column (kCount needs no data IO at all).
Status AggregateCandidates(LogBlockReader* reader, const LogQuery& query,
                           const ExecOptions& options,
                           const index::RowIdSet& candidates,
                           DecodedBlockCache* cache, BlockExecResult* result) {
  const logblock::Schema& schema = reader->schema();
  result->agg.kind = query.agg.kind;
  const uint64_t matched = candidates.Count();
  result->stats.rows_matched = matched;
  if (query.agg.kind == Aggregate::Kind::kCount) {
    result->agg.rows = matched;
    return Status::OK();
  }
  if (matched == 0) return Status::OK();

  const int col = schema.FindColumn(query.agg.column);
  if (col < 0) {
    return Status::InvalidArgument("unknown aggregate column: " +
                                   query.agg.column);
  }
  const bool is_int = schema.column(col).type == ColumnType::kInt64;
  if (query.agg.kind != Aggregate::Kind::kGroupCount && !is_int) {
    return Status::InvalidArgument("aggregate requires an int64 column: " +
                                   query.agg.column);
  }

  const auto& blocks = reader->meta().columns[col].blocks;
  std::vector<size_t> to_scan;
  for (size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    if (candidates.AnyInRange(block.first_row,
                              block.first_row + block.row_count)) {
      to_scan.push_back(b);
    }
  }
  if (options.use_prefetch && to_scan.size() > 1) {
    std::vector<ByteRange> ranges;
    ranges.reserve(to_scan.size());
    for (size_t b : to_scan) {
      auto range = reader->ColumnBlockRange(col, b);
      if (range.ok()) ranges.push_back(*range);
    }
    (void)reader->Prefetch(ranges, options.prefetch_owner);
  }

  // Ascending-row iteration in both execution modes, so int64 sums wrap
  // identically and the partial is byte-stable.
  std::map<std::string, uint64_t> group_counts;
  for (size_t b : to_scan) {
    if (Cancelled(options)) return CancelledStatus();
    auto decoded = cache->Get(col, b);
    if (!decoded.ok()) return decoded.status();
    const auto& block = blocks[b];
    const logblock::DecodedColumnBlock& vec = **decoded;
    candidates.ForEachInRange(
        block.first_row, block.first_row + block.row_count,
        [&](uint32_t r) {
          const uint32_t off = r - block.first_row;
          switch (query.agg.kind) {
            case Aggregate::Kind::kSum:
              result->agg.sum += vec.ints[off];
              break;
            case Aggregate::Kind::kMin:
              result->agg.min = std::min(result->agg.min, vec.ints[off]);
              break;
            case Aggregate::Kind::kMax:
              result->agg.max = std::max(result->agg.max, vec.ints[off]);
              break;
            case Aggregate::Kind::kGroupCount:
              group_counts[is_int ? std::to_string(vec.ints[off])
                                  : vec.strs[off]]++;
              break;
            case Aggregate::Kind::kNone:
            case Aggregate::Kind::kCount:
              break;  // handled above
          }
        });
  }
  result->agg.rows = matched;
  if (query.agg.kind == Aggregate::Kind::kGroupCount) {
    result->agg.groups.reserve(group_counts.size());
    for (auto& [key, count] : group_counts) {
      result->agg.groups.push_back({key, count});  // ascending by key: canonical
    }
  }
  return Status::OK();
}

}  // namespace

Result<BlockExecResult> ExecuteOnLogBlock(LogBlockReader* reader,
                                          const LogQuery& query,
                                          const ExecOptions& options) {
  const logblock::Schema& schema = reader->schema();
  const uint32_t num_rows = reader->num_rows();

  // Bind predicates (including the ts range) to column ordinals.
  std::vector<BoundPredicate> preds;
  auto bind = [&](Predicate pred) -> Status {
    const int col = schema.FindColumn(pred.column);
    if (col < 0) {
      return Status::InvalidArgument("unknown column: " + pred.column);
    }
    const ColumnType type = schema.column(col).type;
    const bool wants_int = pred.kind == Predicate::Kind::kInt64Compare;
    if (wants_int != (type == ColumnType::kInt64)) {
      return Status::InvalidArgument("predicate type mismatch on " +
                                     pred.column);
    }
    BoundPredicate bp;
    if (pred.kind == Predicate::Kind::kMatch) {
      bp.match_tokens = index::Tokenize(pred.str_value);
    }
    bp.pred = std::move(pred);
    bp.col = static_cast<size_t>(col);
    preds.push_back(std::move(bp));
    return Status::OK();
  };

  if (schema.FindColumn("ts") >= 0) {
    if (query.ts_min != INT64_MIN) {
      LOGSTORE_RETURN_IF_ERROR(
          bind(Predicate::Int64Compare("ts", CompareOp::kGe, query.ts_min)));
    }
    if (query.ts_max != INT64_MAX) {
      LOGSTORE_RETURN_IF_ERROR(
          bind(Predicate::Int64Compare("ts", CompareOp::kLe, query.ts_max)));
    }
  }
  for (const Predicate& pred : query.predicates) {
    LOGSTORE_RETURN_IF_ERROR(bind(pred));
  }

  BlockExecResult result;
  result.agg.kind = query.agg.kind;

  // Figure 8 step 2: whole-block skip via column SMA.
  if (options.use_data_skipping) {
    for (const BoundPredicate& bp : preds) {
      if (ColumnSmaSkips(*reader, bp)) {
        result.stats.skipped_by_column_sma = true;
        return result;
      }
    }
  }

  index::RowIdSet candidates = index::RowIdSet::All(num_rows);
  DecodedBlockCache cache(reader, &result.stats);

  // Figure 8 step 3: index probes, cheapest filters first.
  std::vector<const BoundPredicate*> residual;
  if (options.use_data_skipping) {
    // Prefetch the index structures we are about to probe in one batch:
    // BKD members whole, inverted term dictionaries (postings ranges are
    // resolved and prefetched inside the probe).
    if (options.use_prefetch) {
      std::vector<ByteRange> index_ranges;
      for (const BoundPredicate& bp : preds) {
        if (!IndexServes(*reader, bp)) continue;
        const auto member_name =
            bp.pred.kind == Predicate::Kind::kInt64Compare
                ? logblock::IndexMemberName(bp.col)
                : logblock::IndexDictMemberName(bp.col);
        auto range = reader->MemberRange(member_name);
        if (range.ok()) index_ranges.push_back(*range);
      }
      if (!index_ranges.empty()) {
        (void)reader->Prefetch(index_ranges, options.prefetch_owner);
      }
    }
    for (const BoundPredicate& bp : preds) {
      if (!IndexServes(*reader, bp)) {
        residual.push_back(&bp);
        continue;
      }
      if (Cancelled(options)) return CancelledStatus();
      auto rows = ProbeIndex(reader, bp, num_rows);
      if (!rows.ok()) return rows.status();
      ++result.stats.index_probes;
      candidates.IntersectWith(*rows);
      if (candidates.Empty()) return result;
    }
  } else {
    for (const BoundPredicate& bp : preds) residual.push_back(&bp);
  }

  // Figure 8 step 4: residual predicates via block SMA + scan.
  for (const BoundPredicate* bp : residual) {
    if (Cancelled(options)) return CancelledStatus();
    LOGSTORE_RETURN_IF_ERROR(ApplyResidual(reader, *bp, options, &cache,
                                           &candidates, &result.stats));
    if (candidates.Empty()) return result;
  }

  // Aggregate queries ship a partial aggregate instead of rows: fold the
  // surviving candidates directly over the decoded vectors and return.
  if (query.is_aggregate()) {
    LOGSTORE_RETURN_IF_ERROR(AggregateCandidates(reader, query, options,
                                                 candidates, &cache, &result));
    return result;
  }

  // Figure 8 step 5: load projected columns for surviving rows.
  std::vector<uint32_t> rows = candidates.ToVector();
  if (query.limit != 0 && rows.size() > query.limit) {
    rows.resize(query.limit);
  }
  result.stats.rows_matched = rows.size();
  if (rows.empty()) return result;

  std::vector<size_t> out_cols;
  if (query.select_columns.empty()) {
    for (size_t c = 0; c < schema.num_columns(); ++c) out_cols.push_back(c);
  } else {
    for (const std::string& name : query.select_columns) {
      const int col = schema.FindColumn(name);
      if (col < 0) {
        return Status::InvalidArgument("unknown select column: " + name);
      }
      out_cols.push_back(static_cast<size_t>(col));
    }
  }

  if (options.use_prefetch) {
    std::vector<ByteRange> ranges;
    for (size_t c : out_cols) {
      const auto& blocks = reader->meta().columns[c].blocks;
      // `rows` is ascending and blocks partition the row space in order, so
      // one forward sweep finds every block holding a surviving row.
      size_t next_row = 0;
      for (size_t b = 0; b < blocks.size() && next_row < rows.size(); ++b) {
        const auto& block = blocks[b];
        const uint32_t block_end = block.first_row + block.row_count;
        while (next_row < rows.size() && rows[next_row] < block.first_row) {
          ++next_row;
        }
        if (next_row < rows.size() && rows[next_row] < block_end) {
          auto range = reader->ColumnBlockRange(c, b);
          if (range.ok()) ranges.push_back(*range);
          while (next_row < rows.size() && rows[next_row] < block_end) {
            ++next_row;
          }
        }
      }
    }
    if (ranges.size() > 1) {
      (void)reader->Prefetch(ranges, options.prefetch_owner);
    }
  }

  // Gather column-wise through the decode cache (a block the residual scan
  // already decoded is not decoded again), then transpose to rows.
  std::vector<std::vector<Value>> columns(out_cols.size());
  for (size_t i = 0; i < out_cols.size(); ++i) {
    if (Cancelled(options)) return CancelledStatus();
    const size_t c = out_cols[i];
    const bool is_int = schema.column(c).type == ColumnType::kInt64;
    const auto& blocks = reader->meta().columns[c].blocks;
    std::vector<Value>& out = columns[i];
    out.reserve(rows.size());
    size_t next = 0;
    for (size_t b = 0; b < blocks.size() && next < rows.size(); ++b) {
      const auto& block = blocks[b];
      const uint32_t block_end = block.first_row + block.row_count;
      if (rows[next] >= block_end) continue;
      auto decoded = cache.Get(c, b);
      if (!decoded.ok()) return decoded.status();
      const logblock::DecodedColumnBlock& vec = **decoded;
      for (; next < rows.size() && rows[next] < block_end; ++next) {
        const uint32_t off = rows[next] - block.first_row;
        out.push_back(is_int ? Value::Int64(vec.ints[off])
                             : Value::String(vec.strs[off]));
      }
    }
  }
  result.rows.resize(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    result.rows[r].reserve(out_cols.size());
    for (size_t i = 0; i < out_cols.size(); ++i) {
      result.rows[r].push_back(std::move(columns[i][r]));
    }
  }
  return result;
}

}  // namespace logstore::query
