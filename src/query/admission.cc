#include "query/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/clock.h"

namespace logstore::query {

namespace {

// Backstop poll for cancellation flips that bypassed SignalCancel (e.g. a
// raw store to the flag from code that does not know about admission).
// Deliberately coarse: the broadcast path is the latency-bearing one, this
// only bounds the damage of a missed wakeup.
constexpr auto kCancelBackstop = std::chrono::milliseconds(200);

}  // namespace

CancelBroadcast* CancelBroadcast::Default() {
  static CancelBroadcast* instance = new CancelBroadcast();
  return instance;
}

void CancelBroadcast::Register(const std::atomic<bool>* flag,
                               AdmissionGovernor* governor) {
  std::lock_guard<std::mutex> lock(mu_);
  ++watchers_[flag][governor];
}

void CancelBroadcast::Unregister(const std::atomic<bool>* flag,
                                 AdmissionGovernor* governor) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watchers_.find(flag);
  if (it == watchers_.end()) return;
  auto git = it->second.find(governor);
  if (git == it->second.end()) return;
  if (--git->second <= 0) it->second.erase(git);
  if (it->second.empty()) watchers_.erase(it);
}

void CancelBroadcast::Notify(const std::atomic<bool>* flag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = watchers_.find(flag);
  if (it == watchers_.end()) return;
  for (auto& [governor, count] : it->second) governor->WakeAllForCancel();
}

AdmissionGovernor::AdmissionGovernor(int total_slots,
                                     metrics::MetricRegistry* registry)
    : total_slots_(std::max(1, total_slots)),
      registry_(metrics::OrDefault(registry)),
      available_(total_slots_) {}

AdmissionGovernor::TenantCells& AdmissionGovernor::CellsLocked(
    uint64_t tenant) {
  auto it = cells_.find(tenant);
  if (it != cells_.end()) return it->second;
  const metrics::Labels labels = {{"tenant", std::to_string(tenant)}};
  TenantCells cells;
  cells.grants = registry_->Counter("admission.grants", labels);
  cells.queued_grants = registry_->Counter("admission.queued_grants", labels);
  cells.wait_us = registry_->Counter("admission.wait_us", labels);
  return cells_.emplace(tenant, cells).first->second;
}

void AdmissionGovernor::WakeAllForCancel() {
  // Taking mu_ before notifying closes the check-then-sleep window: a
  // waiter holds mu_ continuously between reading its cancel flag and
  // parking on the condition variable.
  std::lock_guard<std::mutex> lock(mu_);
  granted_cv_.notify_all();
}

bool AdmissionGovernor::Acquire(uint64_t tenant,
                                const std::atomic<bool>* cancel) {
  const int64_t start_us = SystemClock::Default()->NowMicros();

  // Declared before `lock` so its destructor (which takes the broadcast
  // mutex) runs after mu_ is released — the reverse order would invert the
  // broadcast-then-governor lock order and deadlock against Notify.
  struct CancelWatch {
    const std::atomic<bool>* flag = nullptr;
    AdmissionGovernor* governor = nullptr;
    ~CancelWatch() {
      if (flag != nullptr) {
        CancelBroadcast::Default()->Unregister(flag, governor);
      }
    }
  } watch;

  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: a free slot and nobody queued ahead. Skipping the queue here
  // is fair — waiters exist only while available_ == 0, and every release
  // hands its slot to a waiter before replenishing the pool.
  if (available_ > 0 && waiting_.empty()) {
    --available_;
    ++stats_[tenant].grants;
    CellsLocked(tenant).grants->fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  if (cancel != nullptr) {
    // Register with the broadcast before queueing; a flip that lands before
    // registration is caught by the flag check on loop entry below.
    lock.unlock();
    CancelBroadcast::Default()->Register(cancel, this);
    watch.flag = cancel;
    watch.governor = this;
    lock.lock();
  }

  auto ticket = std::make_shared<Ticket>();
  waiting_.Push(tenant, ticket);
  while (!ticket->granted &&
         !(cancel != nullptr && cancel->load(std::memory_order_acquire))) {
    if (cancel == nullptr) {
      granted_cv_.wait(lock);
    } else {
      granted_cv_.wait_for(lock, kCancelBackstop);
    }
  }
  if (!ticket->granted) {
    waiting_.Remove(tenant, ticket);
    return false;
  }
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    // Granted and cancelled raced: the caller will not run, so the slot
    // moves straight to the next waiter instead of leaking.
    PassSlotLocked();
    return false;
  }
  const int64_t waited = SystemClock::Default()->NowMicros() - start_us;
  AdmissionTenantStats& stats = stats_[tenant];
  ++stats.grants;
  ++stats.queued_grants;
  stats.total_wait_us += waited;
  stats.max_wait_us = std::max(stats.max_wait_us, waited);
  TenantCells& cells = CellsLocked(tenant);
  cells.grants->fetch_add(1, std::memory_order_relaxed);
  cells.queued_grants->fetch_add(1, std::memory_order_relaxed);
  cells.wait_us->fetch_add(static_cast<uint64_t>(std::max<int64_t>(waited, 0)),
                           std::memory_order_relaxed);
  return true;
}

void AdmissionGovernor::PassSlotLocked() {
  std::shared_ptr<Ticket> next;
  if (waiting_.PopNext(&next)) {
    next->granted = true;
    granted_cv_.notify_all();
  } else {
    ++available_;
  }
}

void AdmissionGovernor::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  PassSlotLocked();
}

int AdmissionGovernor::slots_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_slots_ - available_;
}

size_t AdmissionGovernor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

AdmissionTenantStats AdmissionGovernor::TenantStats(uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(tenant);
  return it == stats_.end() ? AdmissionTenantStats{} : it->second;
}

}  // namespace logstore::query
