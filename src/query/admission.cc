#include "query/admission.h"

#include <algorithm>
#include <chrono>

#include "common/clock.h"

namespace logstore::query {

AdmissionGovernor::AdmissionGovernor(int total_slots)
    : total_slots_(std::max(1, total_slots)), available_(total_slots_) {}

bool AdmissionGovernor::Acquire(uint64_t tenant,
                                const std::atomic<bool>* cancel) {
  const int64_t start_us = SystemClock::Default()->NowMicros();
  std::unique_lock<std::mutex> lock(mu_);
  // Fast path: a free slot and nobody queued ahead. Skipping the queue here
  // is fair — waiters exist only while available_ == 0, and every release
  // hands its slot to a waiter before replenishing the pool.
  if (available_ > 0 && waiting_.empty()) {
    --available_;
    ++stats_[tenant].grants;
    return true;
  }

  auto ticket = std::make_shared<Ticket>();
  waiting_.Push(tenant, ticket);
  while (!ticket->granted &&
         !(cancel != nullptr && cancel->load(std::memory_order_acquire))) {
    if (cancel == nullptr) {
      granted_cv_.wait(lock);
    } else {
      // Poll the cancel flag: it is flipped without the governor's lock
      // (limit secured, or a peer block's real error), so a pure wait could
      // sleep past it.
      granted_cv_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }
  if (!ticket->granted) {
    waiting_.Remove(tenant, ticket);
    return false;
  }
  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    // Granted and cancelled raced: the caller will not run, so the slot
    // moves straight to the next waiter instead of leaking.
    PassSlotLocked();
    return false;
  }
  const int64_t waited = SystemClock::Default()->NowMicros() - start_us;
  AdmissionTenantStats& stats = stats_[tenant];
  ++stats.grants;
  ++stats.queued_grants;
  stats.total_wait_us += waited;
  stats.max_wait_us = std::max(stats.max_wait_us, waited);
  return true;
}

void AdmissionGovernor::PassSlotLocked() {
  std::shared_ptr<Ticket> next;
  if (waiting_.PopNext(&next)) {
    next->granted = true;
    granted_cv_.notify_all();
  } else {
    ++available_;
  }
}

void AdmissionGovernor::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  PassSlotLocked();
}

int AdmissionGovernor::slots_in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_slots_ - available_;
}

size_t AdmissionGovernor::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

AdmissionTenantStats AdmissionGovernor::TenantStats(uint64_t tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(tenant);
  return it == stats_.end() ? AdmissionTenantStats{} : it->second;
}

}  // namespace logstore::query
