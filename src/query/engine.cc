#include "query/engine.h"

#include <algorithm>
#include <condition_variable>
#include <map>
#include <mutex>

#include "prefetch/cached_source.h"

namespace logstore::query {

namespace {

// Strict weak order over cell values: by type, then by the typed payload.
// Total and placement-independent, so realtime rows sort the same no matter
// which worker produced them.
bool ValueLess(const logblock::Value& a, const logblock::Value& b) {
  if (a.type != b.type) return a.type < b.type;
  if (a.type == logblock::ColumnType::kInt64) return a.i < b.i;
  return a.s < b.s;
}

bool RowLess(const std::vector<logblock::Value>& a,
             const std::vector<logblock::Value>& b) {
  const size_t n = std::min(a.size(), b.size());
  for (size_t c = 0; c < n; ++c) {
    if (ValueLess(a[c], b[c])) return true;
    if (ValueLess(b[c], a[c])) return false;
  }
  return a.size() < b.size();
}

}  // namespace

namespace {

// Folds realtime batches into the merged aggregate. Predicate/time
// filtering already happened in ScanTenant, so every batch row counts.
// count/sum/min/max/group-merge are commutative, so the fold is placement-
// and batch-order-independent without any sorting.
Status AggregateRealtimeRows(
    const std::vector<std::pair<uint32_t, logblock::RowBatch>>& batches,
    const LogQuery& query, QueryResult* result) {
  AggResult partial;
  partial.kind = query.agg.kind;
  std::map<std::string, uint64_t> group_counts;
  uint64_t rows = 0;
  for (const auto& [worker, batch] : batches) {
    if (batch.num_rows() == 0) continue;
    rows += batch.num_rows();
    if (query.agg.kind == Aggregate::Kind::kCount) continue;
    const logblock::Schema& schema = batch.schema();
    const int col = schema.FindColumn(query.agg.column);
    if (col < 0) {
      return Status::InvalidArgument("unknown aggregate column: " +
                                     query.agg.column);
    }
    const bool is_int =
        schema.column(col).type == logblock::ColumnType::kInt64;
    if (query.agg.kind != Aggregate::Kind::kGroupCount && !is_int) {
      return Status::InvalidArgument("aggregate requires an int64 column: " +
                                     query.agg.column);
    }
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      switch (query.agg.kind) {
        case Aggregate::Kind::kSum:
          partial.sum += batch.Int64At(col, r);
          break;
        case Aggregate::Kind::kMin:
          partial.min = std::min(partial.min, batch.Int64At(col, r));
          break;
        case Aggregate::Kind::kMax:
          partial.max = std::max(partial.max, batch.Int64At(col, r));
          break;
        case Aggregate::Kind::kGroupCount:
          group_counts[GroupKeyOf(batch.ValueAt(col, r))]++;
          break;
        case Aggregate::Kind::kNone:
        case Aggregate::Kind::kCount:
          break;
      }
    }
  }
  partial.rows = rows;
  partial.groups.reserve(group_counts.size());
  for (auto& [key, count] : group_counts) partial.groups.push_back({key, count});
  result->agg.MergeFrom(partial);
  result->stats.realtime_rows += rows;
  result->stats.exec.rows_matched += rows;
  return Status::OK();
}

}  // namespace

Status MergeRealtimeRows(
    std::vector<std::pair<uint32_t, logblock::RowBatch>> batches,
    const LogQuery& query, QueryResult* result) {
  if (query.is_aggregate()) {
    return AggregateRealtimeRows(batches, query, result);
  }
  // One projected row awaiting the deterministic sort. `worker`/`row_idx`
  // are final tie-breakers only: two rows compared by them are already
  // byte-identical in ts and projected content, so their relative order
  // cannot change the result bytes — they merely make the sort a total
  // order.
  struct PendingRow {
    int64_t ts = 0;
    std::vector<logblock::Value> row;
    uint32_t worker = 0;
    uint32_t row_idx = 0;
  };
  std::vector<PendingRow> rows;

  for (auto& [worker, batch] : batches) {
    if (batch.num_rows() == 0) continue;
    const logblock::Schema& schema = batch.schema();
    if (result->columns.empty()) {
      if (query.select_columns.empty()) {
        for (const auto& col : schema.columns()) {
          result->columns.push_back(col.name);
        }
      } else {
        result->columns = query.select_columns;
      }
    }
    std::vector<size_t> out_cols;
    out_cols.reserve(result->columns.size());
    for (const std::string& name : result->columns) {
      const int col = schema.FindColumn(name);
      if (col < 0) return Status::InvalidArgument("unknown column: " + name);
      out_cols.push_back(static_cast<size_t>(col));
    }
    const int ts_col = schema.FindColumn("ts");
    for (uint32_t r = 0; r < batch.num_rows(); ++r) {
      PendingRow pending;
      pending.ts = ts_col < 0 ? 0 : batch.Int64At(ts_col, r);
      pending.row.reserve(out_cols.size());
      for (size_t c : out_cols) pending.row.push_back(batch.ValueAt(c, r));
      pending.worker = worker;
      pending.row_idx = r;
      rows.push_back(std::move(pending));
    }
  }

  std::sort(rows.begin(), rows.end(),
            [](const PendingRow& a, const PendingRow& b) {
              if (a.ts != b.ts) return a.ts < b.ts;
              if (RowLess(a.row, b.row)) return true;
              if (RowLess(b.row, a.row)) return false;
              if (a.worker != b.worker) return a.worker < b.worker;
              return a.row_idx < b.row_idx;
            });

  uint32_t appended = 0;
  for (PendingRow& pending : rows) {
    if (query.limit != 0 && result->rows.size() >= query.limit) break;
    result->rows.push_back(std::move(pending.row));
    ++appended;
  }
  result->stats.realtime_rows += appended;
  result->stats.exec.rows_matched += appended;
  return Status::OK();
}

ScatterLimitTracker::ScatterLimitTracker(size_t num_blocks, uint32_t limit,
                                         std::atomic<bool>* cancel)
    : limit_(limit),
      cancel_(cancel),
      done_(num_blocks, 0),
      rows_(num_blocks, 0) {}

void ScatterLimitTracker::OnBlockDone(size_t index, const FragmentSlot& slot) {
  if (limit_ == 0) return;  // unlimited: nothing to secure
  std::lock_guard<std::mutex> lock(mu_);
  done_[index] = 1;
  if (slot.ran) rows_[index] = slot.exec.rows.size();
  while (prefix_len_ < done_.size() && done_[prefix_len_] != 0) {
    prefix_rows_ += rows_[prefix_len_];
    ++prefix_len_;
  }
  if (prefix_rows_ >= limit_) {
    // Limit secured in completed-prefix order across every fragment: all
    // in-flight work has a strictly higher global block index, provably
    // beyond the limit cut. Never fires speculatively. SignalCancel also
    // wakes any peer block parked in the admission governor on this flag.
    SignalCancel(cancel_);
  }
}

QueryEngine::QueryEngine(objectstore::ObjectStore* store,
                         const EngineOptions& options)
    : store_(store), options_(options) {}

void QueryEngine::QueryCells::BindTo(metrics::MetricRegistry* registry) {
  queries = registry->Counter("query.queries");
  rows_matched = registry->Counter("query.rows_matched");
  realtime_rows = registry->Counter("query.realtime_rows");
  logblocks_total = registry->Counter("query.logblocks_total");
  logblocks_pruned = registry->Counter("query.logblocks_pruned");
  logblocks_sma_skipped = registry->Counter("query.logblocks_sma_skipped");
  column_blocks_scanned = registry->Counter("query.column_blocks_scanned");
  column_blocks_skipped = registry->Counter("query.column_blocks_skipped");
  index_probes = registry->Counter("query.index_probes");
  decode_cache_hits = registry->Counter("query.decode_cache_hits");
  vectorized_rows_scanned = registry->Counter("query.vectorized.rows_scanned");
  vectorized_bitmap_hits = registry->Counter("query.vectorized.bitmap_hits");
  vectorized_kernel_ns = registry->Counter("query.vectorized.kernel_ns");
}

void QueryEngine::QueryCells::Record(const QueryStats& stats) const {
  if (queries == nullptr) return;
  const auto order = std::memory_order_relaxed;
  queries->fetch_add(1, order);
  rows_matched->fetch_add(stats.exec.rows_matched, order);
  realtime_rows->fetch_add(stats.realtime_rows, order);
  logblocks_total->fetch_add(stats.logblocks_total, order);
  logblocks_pruned->fetch_add(stats.logblocks_pruned, order);
  logblocks_sma_skipped->fetch_add(stats.logblocks_sma_skipped, order);
  column_blocks_scanned->fetch_add(stats.exec.column_blocks_scanned, order);
  column_blocks_skipped->fetch_add(stats.exec.column_blocks_skipped, order);
  index_probes->fetch_add(stats.exec.index_probes, order);
  decode_cache_hits->fetch_add(stats.exec.decode_cache_hits, order);
  vectorized_rows_scanned->fetch_add(stats.exec.vectorized_rows_scanned,
                                     order);
  vectorized_bitmap_hits->fetch_add(stats.exec.vectorized_bitmap_hits, order);
  vectorized_kernel_ns->fetch_add(stats.exec.vectorized_kernel_ns, order);
}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    objectstore::ObjectStore* store, const EngineOptions& options) {
  std::unique_ptr<QueryEngine> engine(new QueryEngine(store, options));
  metrics::MetricRegistry* registry = metrics::OrDefault(options.registry);
  engine->query_cells_.BindTo(registry);
  // The nested option structs inherit the engine's registry unless the
  // caller already aimed them elsewhere.
  if (engine->options_.retry_options.registry == nullptr) {
    engine->options_.retry_options.registry = registry;
  }
  if (engine->options_.cache_options.registry == nullptr) {
    engine->options_.cache_options.registry = registry;
  }
  if (options.use_retry) {
    engine->retry_store_ = std::make_unique<objectstore::RetryingObjectStore>(
        store, engine->options_.retry_options);
    engine->store_ = engine->retry_store_.get();
  }
  if (options.use_cache) {
    auto cache = cache::BlockManager::Open(engine->options_.cache_options);
    if (!cache.ok()) return cache.status();
    engine->cache_ = std::move(cache).value();
    engine->object_cache_stats_.BindTo(registry, "object");
    engine->object_cache_ =
        std::make_unique<cache::LruCache<logblock::LogBlockReader>>(
            options.object_cache_bytes, &engine->object_cache_stats_);
  }
  // The prefetch service is also the aligned-read path when caching is on;
  // without a cache it still provides the Read() API but each read goes to
  // the store.
  engine->prefetch_ = std::make_unique<prefetch::PrefetchService>(
      engine->store_, engine->cache_.get(),
      prefetch::PrefetchOptions{
          .threads = options.prefetch_threads,
          .block_size = options.io_block_size,
          .max_coalesced_bytes = options.max_coalesced_bytes,
          .registry = registry});
  if (options.query_threads > 1) {
    engine->query_pool_ = std::make_unique<ThreadPool>(options.query_threads);
  }
  return engine;
}

Result<std::shared_ptr<logblock::LogBlockReader>> QueryEngine::OpenReader(
    const std::string& object_key) {
  if (object_cache_ != nullptr) {
    if (auto cached = object_cache_->Get(object_key)) return cached;
  }

  std::shared_ptr<logblock::LogBlockSource> source;
  if (options_.use_cache) {
    source = std::make_shared<prefetch::CachedObjectSource>(prefetch_.get(),
                                                            object_key);
  } else {
    source =
        std::make_shared<prefetch::DirectObjectSource>(store_, object_key);
  }
  auto reader = logblock::LogBlockReader::Open(std::move(source));
  if (!reader.ok()) return reader.status();
  std::shared_ptr<logblock::LogBlockReader> shared = std::move(reader).value();
  if (object_cache_ != nullptr) {
    // Charge a rough decoded footprint: parsed meta plus a per-row byte for
    // cached index structures, capped so one huge block cannot pin the
    // whole cache.
    const uint64_t charge =
        std::min<uint64_t>(4096 + shared->meta().row_count, 1u << 20);
    object_cache_->Insert(object_key, shared, charge);
  }
  return shared;
}

Result<QueryResult> QueryEngine::Execute(const LogQuery& query,
                                         const logblock::LogBlockMap& map) {
  const int64_t start_us = SystemClock::Default()->NowMicros();
  QueryResult result;

  // Figure 8 step 1: prune via the LogBlock map on <tenant, min_ts, max_ts>.
  const auto all_blocks = map.TenantBlocks(query.tenant_id);
  const auto blocks = map.Prune(query.tenant_id, query.ts_min, query.ts_max);
  result.stats.logblocks_total = all_blocks.size();
  result.stats.logblocks_pruned = all_blocks.size() - blocks.size();

  Status status;
  if (query_pool_ != nullptr && blocks.size() > 1) {
    status = ExecuteParallel(query, blocks, &result);
  } else {
    ExecOptions exec_options;
    exec_options.use_data_skipping = options_.use_data_skipping;
    exec_options.use_prefetch = options_.use_cache && options_.use_prefetch;
    exec_options.use_vectorized = options_.use_vectorized;
    // Distinct owner per query: the prefetch service schedules pending runs
    // round-robin across owners, so one wide scan cannot starve others.
    exec_options.prefetch_owner =
        next_query_owner_.fetch_add(1, std::memory_order_relaxed);
    status = ExecuteSerial(query, blocks, exec_options, &result);
  }
  if (!status.ok()) return status;

  // Aggregate queries keep the merged per-block rows_matched (ALL matching
  // rows; there are no result rows to count). Row queries recount from the
  // final row set because per-block counts may overshoot the limit cut.
  if (!query.is_aggregate()) {
    result.stats.exec.rows_matched = result.rows.size();
  }
  result.stats.elapsed_us = SystemClock::Default()->NowMicros() - start_us;
  query_cells_.Record(result.stats);
  return result;
}

Status QueryEngine::ExecuteSerial(
    const LogQuery& query, const std::vector<logblock::LogBlockEntry>& blocks,
    const ExecOptions& exec_options, QueryResult* result) {
  for (const logblock::LogBlockEntry& entry : blocks) {
    AdmissionSlot slot;
    if (options_.admission != nullptr) {
      options_.admission->Acquire(query.tenant_id);
      slot = AdmissionSlot(options_.admission);
    }
    auto reader = OpenReader(entry.object_key);
    if (!reader.ok()) return reader.status();

    // Resolve output column names from the first opened reader (all blocks
    // of a tenant table share the schema) instead of re-opening blocks[0]
    // after the scan.
    if (result->columns.empty()) {
      if (query.select_columns.empty()) {
        for (const auto& col : (*reader)->schema().columns()) {
          result->columns.push_back(col.name);
        }
      } else {
        result->columns = query.select_columns;
      }
    }

    // Execute with the query's full limit, never a remaining count: per-
    // block evaluation stays limit-chain-independent, so every per-block
    // stat (including the gather's decode_cache_hits) is bit-equal to the
    // same block under the parallel scheduler. The trim below restores the
    // limit cut over the concatenated map-order rows.
    auto exec = ExecuteOnLogBlock(reader->get(), query, exec_options);
    if (!exec.ok()) return exec.status();
    if (exec->stats.skipped_by_column_sma) {
      ++result->stats.logblocks_sma_skipped;
    }
    result->stats.exec.MergeFrom(exec->stats);
    result->agg.MergeFrom(exec->agg);
    for (auto& row : exec->rows) result->rows.push_back(std::move(row));

    // An aggregate covers all matching rows: the limit never stops the
    // scan (result rows stay empty, so this break cannot fire for it).
    if (query.limit != 0 && !query.is_aggregate() &&
        result->rows.size() >= query.limit) {
      break;
    }
  }
  if (query.limit != 0 && result->rows.size() > query.limit) {
    result->rows.resize(query.limit);
  }
  return Status::OK();
}

std::vector<FragmentSlot> QueryEngine::ExecuteFragment(
    const LogQuery& query, const std::vector<logblock::LogBlockEntry>& blocks,
    const FragmentOptions& fragment) {
  const size_t n = blocks.size();
  std::vector<FragmentSlot> slots(n);
  if (n == 0) return slots;

  ExecOptions exec_options;
  exec_options.use_data_skipping = options_.use_data_skipping;
  exec_options.use_prefetch = options_.use_cache && options_.use_prefetch;
  exec_options.use_vectorized = options_.use_vectorized;
  // Distinct owner per fragment: the prefetch service schedules pending
  // runs round-robin across owners, so one wide scan cannot starve others.
  exec_options.prefetch_owner =
      next_query_owner_.fetch_add(1, std::memory_order_relaxed);
  exec_options.cancel = fragment.cancel;

  // Pipelined prefetch: warm the head of upcoming objects (the tar header
  // plus the meta member, which the writer lays out first) so opening those
  // readers hits the cache instead of paying a cold object-store round
  // trip. The cursor only moves forward; concurrent tasks claim disjoint
  // ranges.
  std::atomic<size_t> warm_cursor{0};
  auto warm_ahead = [&](size_t upto) {
    if (cache_ == nullptr || !exec_options.use_prefetch) return;
    upto = std::min(upto, n);
    size_t claimed = warm_cursor.load(std::memory_order_relaxed);
    while (claimed < upto && !warm_cursor.compare_exchange_weak(
                                 claimed, upto, std::memory_order_relaxed)) {
    }
    for (size_t i = claimed; i < upto; ++i) {
      prefetch_->Prefetch(exec_options.prefetch_owner, blocks[i].object_key,
                          {ByteRange{0, options_.io_block_size * 2}});
    }
  };
  const size_t lookahead =
      static_cast<size_t>(options_.query_threads) +
      static_cast<size_t>(std::max(options_.pipeline_depth, 0));
  warm_ahead(lookahead);

  auto run_block = [&](size_t i) {
    FragmentSlot& slot = slots[i];
    if (fragment.cancel != nullptr &&
        fragment.cancel->load(std::memory_order_acquire)) {
      slot.status = Status::Aborted("query cancelled");
    } else {
      // Every block scan holds one cluster-wide execution slot: the shared
      // budget dynamically caps this query's effective parallelism, with
      // slot grants queued fairly per tenant.
      AdmissionSlot admission;
      bool admitted = true;
      if (options_.admission != nullptr) {
        admitted = options_.admission->Acquire(query.tenant_id,
                                               fragment.cancel);
        if (admitted) admission = AdmissionSlot(options_.admission);
      }
      if (!admitted) {
        slot.status =
            Status::Aborted("query cancelled while queued for admission");
      } else {
        warm_ahead(i + 1 + lookahead);
        auto reader = OpenReader(blocks[i].object_key);
        if (!reader.ok()) {
          slot.status = reader.status();
        } else {
          if (query.select_columns.empty()) {
            for (const auto& col : (*reader)->schema().columns()) {
              slot.columns.push_back(col.name);
            }
          }
          // Execute with the query's full limit: per-block evaluation is
          // limit-independent up to the final row trim, so concatenating
          // the per-block results in map order and trimming once at merge
          // time is byte-identical to the serial path (which runs blocks
          // with the same full limit and trims the same way).
          auto exec = ExecuteOnLogBlock(reader->get(), query, exec_options);
          if (exec.ok()) {
            slot.ran = true;
            slot.exec = std::move(exec).value();
          } else {
            slot.status = exec.status();
          }
        }
      }
    }

    if (!slot.status.ok() && !slot.status.IsAborted() &&
        fragment.cancel != nullptr) {
      // Real failure: stop feeding IO to in-flight tasks — of EVERY
      // fragment of this query. The merge still reports the lowest-index
      // real error deterministically. SignalCancel wakes admission waiters
      // parked on this flag so they abandon the queue immediately.
      SignalCancel(fragment.cancel);
    }
    if (fragment.on_block_done) {
      const size_t tag = fragment.tags.empty() ? i : fragment.tags[i];
      fragment.on_block_done(tag, slot);
    }
  };

  if (query_pool_ == nullptr) {
    // No pool: the fragment runs inline, serially, same contract.
    for (size_t i = 0; i < n; ++i) run_block(i);
    return slots;
  }

  std::mutex mu;
  std::condition_variable done_cv;
  size_t pending = n;
  for (size_t i = 0; i < n; ++i) {
    query_pool_->Schedule([&run_block, &mu, &done_cv, &pending, i] {
      run_block(i);
      std::lock_guard<std::mutex> lock(mu);
      if (--pending == 0) done_cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return pending == 0; });
  }
  return slots;
}

Status QueryEngine::MergeFragmentSlots(const LogQuery& query,
                                       std::vector<FragmentSlot>& slots,
                                       QueryResult* result) {
  // Deterministic merge in LogBlock-map order, trimming at the limit.
  const size_t n = slots.size();
  for (size_t i = 0; i < n; ++i) {
    FragmentSlot& slot = slots[i];
    if (!slot.ran) {
      // This block failed, or was cooperatively aborted after a later
      // block's real failure triggered cancellation (a limit-triggered
      // cancel never aborts a block the merge reaches before the limit
      // cut). Either way, report the lowest-index real error.
      for (size_t j = i; j < n; ++j) {
        if (!slots[j].status.ok() && !slots[j].status.IsAborted()) {
          return slots[j].status;
        }
      }
      return slot.status;  // defensive: all-aborted cannot happen
    }
    if (result->columns.empty()) {
      if (query.select_columns.empty()) {
        result->columns = slot.columns;
      } else {
        result->columns = query.select_columns;
      }
    }
    if (slot.exec.stats.skipped_by_column_sma) {
      ++result->stats.logblocks_sma_skipped;
    }
    result->stats.exec.MergeFrom(slot.exec.stats);
    // Partial aggregates combine across every slot; aggregate slots carry
    // no rows, so the limit cut below never ends this loop early for them.
    result->agg.MergeFrom(slot.exec.agg);
    for (auto& row : slot.exec.rows) {
      if (query.limit != 0 && result->rows.size() >= query.limit) break;
      result->rows.push_back(std::move(row));
    }
    if (query.limit != 0 && result->rows.size() >= query.limit) break;
  }
  return Status::OK();
}

Status QueryEngine::ExecuteParallel(
    const LogQuery& query, const std::vector<logblock::LogBlockEntry>& blocks,
    QueryResult* result) {
  // Cooperative cancellation, shared by every block task of this query.
  // Aggregates scan every block, so the limit never arms the tracker.
  std::atomic<bool> cancel{false};
  ScatterLimitTracker tracker(blocks.size(),
                              query.is_aggregate() ? 0 : query.limit, &cancel);
  FragmentOptions fragment;
  fragment.cancel = &cancel;
  fragment.on_block_done = [&tracker](size_t tag, const FragmentSlot& slot) {
    tracker.OnBlockDone(tag, slot);
  };
  std::vector<FragmentSlot> slots = ExecuteFragment(query, blocks, fragment);
  return MergeFragmentSlots(query, slots, result);
}

std::vector<logblock::Value> QueryEngine::Column(const QueryResult& result,
                                                 const std::string& name) {
  std::vector<logblock::Value> values;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (result.columns[c] == name) {
      values.reserve(result.rows.size());
      for (const auto& row : result.rows) values.push_back(row[c]);
      break;
    }
  }
  return values;
}

void QueryEngine::ClearCaches() {
  if (cache_ != nullptr) cache_->Clear();
  if (object_cache_ != nullptr) object_cache_->Clear();
}

}  // namespace logstore::query
