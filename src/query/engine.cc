#include "query/engine.h"

#include <algorithm>

#include "prefetch/cached_source.h"

namespace logstore::query {

Status AppendRealtimeRows(const logblock::RowBatch& realtime,
                          const LogQuery& query, QueryResult* result) {
  if (realtime.num_rows() == 0) return Status::OK();
  const logblock::Schema& schema = realtime.schema();
  if (result->columns.empty()) {
    if (query.select_columns.empty()) {
      for (const auto& col : schema.columns()) {
        result->columns.push_back(col.name);
      }
    } else {
      result->columns = query.select_columns;
    }
  }
  std::vector<size_t> out_cols;
  out_cols.reserve(result->columns.size());
  for (const std::string& name : result->columns) {
    const int col = schema.FindColumn(name);
    if (col < 0) return Status::InvalidArgument("unknown column: " + name);
    out_cols.push_back(static_cast<size_t>(col));
  }
  for (uint32_t r = 0; r < realtime.num_rows(); ++r) {
    if (query.limit != 0 && result->rows.size() >= query.limit) break;
    std::vector<logblock::Value> row;
    row.reserve(out_cols.size());
    for (size_t c : out_cols) row.push_back(realtime.ValueAt(c, r));
    result->rows.push_back(std::move(row));
  }
  return Status::OK();
}

QueryEngine::QueryEngine(objectstore::ObjectStore* store,
                         const EngineOptions& options)
    : store_(store), options_(options) {}

Result<std::unique_ptr<QueryEngine>> QueryEngine::Open(
    objectstore::ObjectStore* store, const EngineOptions& options) {
  std::unique_ptr<QueryEngine> engine(new QueryEngine(store, options));
  if (options.use_retry) {
    engine->retry_store_ = std::make_unique<objectstore::RetryingObjectStore>(
        store, options.retry_options);
    engine->store_ = engine->retry_store_.get();
  }
  if (options.use_cache) {
    auto cache = cache::BlockManager::Open(options.cache_options);
    if (!cache.ok()) return cache.status();
    engine->cache_ = std::move(cache).value();
    engine->object_cache_ =
        std::make_unique<cache::LruCache<logblock::LogBlockReader>>(
            options.object_cache_bytes, &engine->object_cache_stats_);
  }
  // The prefetch service is also the aligned-read path when caching is on;
  // without a cache it still provides the Read() API but each read goes to
  // the store.
  engine->prefetch_ = std::make_unique<prefetch::PrefetchService>(
      engine->store_, engine->cache_.get(),
      prefetch::PrefetchOptions{
          .threads = options.prefetch_threads,
          .block_size = options.io_block_size,
          .max_coalesced_bytes = options.max_coalesced_bytes});
  return engine;
}

Result<std::shared_ptr<logblock::LogBlockReader>> QueryEngine::OpenReader(
    const std::string& object_key) {
  if (object_cache_ != nullptr) {
    if (auto cached = object_cache_->Get(object_key)) return cached;
  }

  std::shared_ptr<logblock::LogBlockSource> source;
  if (options_.use_cache) {
    source = std::make_shared<prefetch::CachedObjectSource>(prefetch_.get(),
                                                            object_key);
  } else {
    source =
        std::make_shared<prefetch::DirectObjectSource>(store_, object_key);
  }
  auto reader = logblock::LogBlockReader::Open(std::move(source));
  if (!reader.ok()) return reader.status();
  std::shared_ptr<logblock::LogBlockReader> shared = std::move(reader).value();
  if (object_cache_ != nullptr) {
    // Charge a rough decoded footprint: parsed meta plus a per-row byte for
    // cached index structures, capped so one huge block cannot pin the
    // whole cache.
    const uint64_t charge =
        std::min<uint64_t>(4096 + shared->meta().row_count, 1u << 20);
    object_cache_->Insert(object_key, shared, charge);
  }
  return shared;
}

Result<QueryResult> QueryEngine::Execute(const LogQuery& query,
                                         const logblock::LogBlockMap& map) {
  const int64_t start_us = SystemClock::Default()->NowMicros();
  QueryResult result;

  // Figure 8 step 1: prune via the LogBlock map on <tenant, min_ts, max_ts>.
  const auto all_blocks = map.TenantBlocks(query.tenant_id);
  const auto blocks = map.Prune(query.tenant_id, query.ts_min, query.ts_max);
  result.stats.logblocks_total = static_cast<uint32_t>(all_blocks.size());
  result.stats.logblocks_pruned =
      static_cast<uint32_t>(all_blocks.size() - blocks.size());

  ExecOptions exec_options;
  exec_options.use_data_skipping = options_.use_data_skipping;
  exec_options.use_prefetch = options_.use_cache && options_.use_prefetch;

  uint32_t remaining = query.limit;
  for (const logblock::LogBlockEntry& entry : blocks) {
    auto reader = OpenReader(entry.object_key);
    if (!reader.ok()) return reader.status();

    LogQuery block_query = query;
    if (query.limit != 0) block_query.limit = remaining;
    auto exec = ExecuteOnLogBlock(reader->get(), block_query, exec_options);
    if (!exec.ok()) return exec.status();
    if (exec->stats.skipped_by_column_sma) {
      ++result.stats.logblocks_sma_skipped;
    }
    result.stats.exec.MergeFrom(exec->stats);
    for (auto& row : exec->rows) result.rows.push_back(std::move(row));

    if (query.limit != 0) {
      if (result.rows.size() >= query.limit) break;
      remaining = query.limit - static_cast<uint32_t>(result.rows.size());
    }
  }

  // Resolve output column names from the first block's schema (all blocks
  // of a tenant table share it).
  if (!blocks.empty()) {
    if (query.select_columns.empty()) {
      auto reader = OpenReader(blocks[0].object_key);
      if (reader.ok()) {
        for (const auto& col : (*reader)->schema().columns()) {
          result.columns.push_back(col.name);
        }
      }
    } else {
      result.columns = query.select_columns;
    }
  }

  result.stats.exec.rows_matched = static_cast<uint32_t>(result.rows.size());
  result.stats.elapsed_us = SystemClock::Default()->NowMicros() - start_us;
  return result;
}

std::vector<logblock::Value> QueryEngine::Column(const QueryResult& result,
                                                 const std::string& name) {
  std::vector<logblock::Value> values;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (result.columns[c] == name) {
      values.reserve(result.rows.size());
      for (const auto& row : result.rows) values.push_back(row[c]);
      break;
    }
  }
  return values;
}

void QueryEngine::ClearCaches() {
  if (cache_ != nullptr) cache_->Clear();
  if (object_cache_ != nullptr) object_cache_->Clear();
}

}  // namespace logstore::query
