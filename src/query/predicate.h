#ifndef LOGSTORE_QUERY_PREDICATE_H_
#define LOGSTORE_QUERY_PREDICATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace logstore::query {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

// One conjunct of a log-retrieval query's WHERE clause. The paper's query
// template (§5.1) uses exactly these three shapes:
//   - integer comparisons      (ts >= .., latency >= 100)
//   - string equality          (ip = '192.168.0.1', fail = 'false')
//   - full-text match          (log MATCH 'connection timeout')
struct Predicate {
  enum class Kind { kInt64Compare, kStringEq, kMatch };

  Kind kind = Kind::kInt64Compare;
  std::string column;
  CompareOp op = CompareOp::kEq;  // kInt64Compare only
  int64_t int_value = 0;          // kInt64Compare only
  std::string str_value;          // kStringEq / kMatch

  static Predicate Int64Compare(std::string column, CompareOp op,
                                int64_t value) {
    Predicate p;
    p.kind = Kind::kInt64Compare;
    p.column = std::move(column);
    p.op = op;
    p.int_value = value;
    return p;
  }

  static Predicate StringEq(std::string column, std::string value) {
    Predicate p;
    p.kind = Kind::kStringEq;
    p.column = std::move(column);
    p.str_value = std::move(value);
    return p;
  }

  static Predicate Match(std::string column, std::string text) {
    Predicate p;
    p.kind = Kind::kMatch;
    p.column = std::move(column);
    p.str_value = std::move(text);
    return p;
  }

  // The [lo, hi] interval implied by an int comparison, for SMA skipping.
  // kNe implies no useful interval (full range).
  std::pair<int64_t, int64_t> Int64Interval() const {
    switch (op) {
      case CompareOp::kEq: return {int_value, int_value};
      case CompareOp::kLt: return {INT64_MIN, int_value - 1};
      case CompareOp::kLe: return {INT64_MIN, int_value};
      case CompareOp::kGt: return {int_value + 1, INT64_MAX};
      case CompareOp::kGe: return {int_value, INT64_MAX};
      case CompareOp::kNe: return {INT64_MIN, INT64_MAX};
    }
    return {INT64_MIN, INT64_MAX};
  }

  bool EvalInt64(int64_t v) const {
    switch (op) {
      case CompareOp::kEq: return v == int_value;
      case CompareOp::kNe: return v != int_value;
      case CompareOp::kLt: return v < int_value;
      case CompareOp::kLe: return v <= int_value;
      case CompareOp::kGt: return v > int_value;
      case CompareOp::kGe: return v >= int_value;
    }
    return false;
  }
};

// An aggregation over the matching rows, evaluated below the merge: each
// block/fragment ships a partial aggregate (AggResult) instead of rows, and
// the broker combines them. kNone is a plain row-retrieval query.
struct Aggregate {
  enum class Kind : uint8_t {
    kNone = 0,
    kCount,       // row count; needs no data IO beyond filtering
    kSum,         // int64 column sum
    kMin,         // int64 column min
    kMax,         // int64 column max
    kGroupCount,  // per-value row counts (small-cardinality group-by)
  };

  Kind kind = Kind::kNone;
  std::string column;  // aggregated column; unused for kCount

  static Aggregate Count() { return {Kind::kCount, {}}; }
  static Aggregate Sum(std::string column) {
    return {Kind::kSum, std::move(column)};
  }
  static Aggregate Min(std::string column) {
    return {Kind::kMin, std::move(column)};
  }
  static Aggregate Max(std::string column) {
    return {Kind::kMax, std::move(column)};
  }
  static Aggregate GroupCount(std::string column) {
    return {Kind::kGroupCount, std::move(column)};
  }
};

// A single-tenant log retrieval: the paper's canonical template
// (tenant + time range + per-field conjuncts + projection).
struct LogQuery {
  uint64_t tenant_id = 0;
  int64_t ts_min = INT64_MIN;
  int64_t ts_max = INT64_MAX;
  std::vector<Predicate> predicates;         // ANDed
  std::vector<std::string> select_columns;   // empty = all columns
  uint32_t limit = 0;                        // 0 = unlimited
  // When set, the query returns QueryResult::agg instead of rows. The
  // aggregate always covers ALL matching rows: `limit` does not cut the
  // scan (for kGroupCount it is the presentation top-k only, applied by
  // AggResult::TopK at the very end).
  Aggregate agg;

  bool is_aggregate() const { return agg.kind != Aggregate::Kind::kNone; }
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_PREDICATE_H_
