#include "query/vectorized.h"

#include <algorithm>

#include "index/inverted_index.h"

namespace logstore::query::vectorized {

namespace {

// Fills the bitmap one 64-lane word at a time. `pred(i)` must be cheap and
// branch-poor: for the int kernels it inlines to a single comparison, so the
// inner loop is a compare + shift + or per lane with no data-dependent
// branches.
template <typename Pred>
uint32_t FillBitmap(uint32_t n, uint64_t* words, Pred pred) {
  uint32_t hits = 0;
  const uint32_t nwords = (n + 63) / 64;
  for (uint32_t w = 0; w < nwords; ++w) {
    const uint32_t base = w << 6;
    const uint32_t lanes = std::min<uint32_t>(64, n - base);
    uint64_t bits = 0;
    for (uint32_t b = 0; b < lanes; ++b) {
      bits |= static_cast<uint64_t>(pred(base + b) ? 1u : 0u) << b;
    }
    words[w] = bits;  // tail bits past n stay 0
    hits += static_cast<uint32_t>(__builtin_popcountll(bits));
  }
  return hits;
}

}  // namespace

uint32_t FilterInt64Compare(const int64_t* values, uint32_t n, CompareOp op,
                            int64_t operand, uint64_t* words) {
  // Dispatch ONCE, outside the loop: each case body is a pure compare loop
  // the compiler can unroll and vectorize.
  switch (op) {
    case CompareOp::kEq:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] == operand; });
    case CompareOp::kNe:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] != operand; });
    case CompareOp::kLt:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] < operand; });
    case CompareOp::kLe:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] <= operand; });
    case CompareOp::kGt:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] > operand; });
    case CompareOp::kGe:
      return FillBitmap(n, words,
                        [&](uint32_t i) { return values[i] >= operand; });
  }
  return FillBitmap(n, words, [](uint32_t) { return false; });
}

uint32_t FilterStringEq(const std::string* values, uint32_t n,
                        const std::string& operand, uint64_t* words) {
  // The size test rejects most rows without touching the character data.
  const size_t len = operand.size();
  return FillBitmap(n, words, [&](uint32_t i) {
    return values[i].size() == len && values[i] == operand;
  });
}

uint32_t FilterMatchTokens(const std::string* values, uint32_t n,
                           const std::vector<std::string>& tokens,
                           uint64_t* words) {
  return FillBitmap(n, words, [&](uint32_t i) {
    const auto value_tokens = index::Tokenize(values[i]);
    for (const std::string& t : tokens) {
      if (std::find(value_tokens.begin(), value_tokens.end(), t) ==
          value_tokens.end()) {
        return false;
      }
    }
    return true;
  });
}

}  // namespace logstore::query::vectorized
