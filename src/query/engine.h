#ifndef LOGSTORE_QUERY_ENGINE_H_
#define LOGSTORE_QUERY_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "cache/block_manager.h"
#include "cache/lru_cache.h"
#include "common/clock.h"
#include "common/result.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_reader.h"
#include "objectstore/object_store.h"
#include "objectstore/retrying_object_store.h"
#include "prefetch/prefetch_service.h"
#include "query/block_executor.h"
#include "query/predicate.h"

namespace logstore::query {

struct EngineOptions {
  // Query-optimization toggles, mirroring the ablation axes of §6.3.
  bool use_data_skipping = true;
  bool use_cache = true;
  bool use_prefetch = true;

  // Wrap the store with bounded retry + backoff so transient object-store
  // failures (throttling, connection resets, truncated responses) are
  // absorbed below the query instead of failing it.
  bool use_retry = true;
  objectstore::RetryOptions retry_options;

  int prefetch_threads = 32;
  uint64_t io_block_size = 64 * 1024;
  // Adjacent-read coalescing cap (Figure 10's request merge); setting it
  // equal to io_block_size disables coalescing (one GET per block).
  uint64_t max_coalesced_bytes = 4 * 1024 * 1024;
  cache::BlockManagerOptions cache_options;
  // Decoded-object cache (§5.2's "object memory cache"): holds opened
  // LogBlockReaders (parsed meta + decoded indexes), avoiding repeated
  // parsing and re-fetch of meta for hot blocks.
  uint64_t object_cache_bytes = 256ull << 20;
};

struct QueryStats {
  uint32_t logblocks_total = 0;    // blocks of the tenant in range
  uint32_t logblocks_pruned = 0;   // eliminated by the LogBlock map
  uint32_t logblocks_sma_skipped = 0;
  BlockExecStats exec;
  int64_t elapsed_us = 0;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<logblock::Value>> rows;
  QueryStats stats;
};

// Broker-side merge of real-time (not yet archived) rows into a query
// result, applying the projection and limit. Predicate/time filtering must
// already have been applied to `realtime` (RowStore::ScanTenant does).
Status AppendRealtimeRows(const logblock::RowBatch& realtime,
                          const LogQuery& query, QueryResult* result);

// Executes single-tenant log queries against LogBlocks on the object store,
// applying the full optimization stack of §5: LogBlock-map pruning, data
// skipping, multi-level caching, parallel prefetch.
class QueryEngine {
 public:
  // `store` must outlive the engine.
  static Result<std::unique_ptr<QueryEngine>> Open(
      objectstore::ObjectStore* store, const EngineOptions& options = {});

  Result<QueryResult> Execute(const LogQuery& query,
                              const logblock::LogBlockMap& map);

  // Extracts one projected column from a result (for aggregations).
  static std::vector<logblock::Value> Column(const QueryResult& result,
                                             const std::string& name);

  cache::BlockManager* block_manager() { return cache_.get(); }
  prefetch::PrefetchService* prefetch_service() { return prefetch_.get(); }
  // Retry/giveup counters of the read path; nullptr when use_retry is off.
  const objectstore::RetryStats* retry_stats() const {
    return retry_store_ == nullptr ? nullptr : &retry_store_->retry_stats();
  }
  const EngineOptions& options() const { return options_; }

  // Drops all cached state (for cold-cache measurements).
  void ClearCaches();

 private:
  QueryEngine(objectstore::ObjectStore* store, const EngineOptions& options);

  Result<std::shared_ptr<logblock::LogBlockReader>> OpenReader(
      const std::string& object_key);

  // Effective store for all engine IO: the retry wrapper when enabled,
  // otherwise the caller's store directly.
  objectstore::ObjectStore* store_;
  std::unique_ptr<objectstore::RetryingObjectStore> retry_store_;
  EngineOptions options_;
  std::unique_ptr<cache::BlockManager> cache_;
  std::unique_ptr<prefetch::PrefetchService> prefetch_;
  cache::CacheStats object_cache_stats_;
  std::unique_ptr<cache::LruCache<logblock::LogBlockReader>> object_cache_;
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_ENGINE_H_
