#ifndef LOGSTORE_QUERY_ENGINE_H_
#define LOGSTORE_QUERY_ENGINE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cache/block_manager.h"
#include "cache/lru_cache.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_reader.h"
#include "objectstore/object_store.h"
#include "objectstore/retrying_object_store.h"
#include "prefetch/prefetch_service.h"
#include "query/admission.h"
#include "query/block_executor.h"
#include "query/predicate.h"

namespace logstore::query {

struct EngineOptions {
  // Query-optimization toggles, mirroring the ablation axes of §6.3.
  bool use_data_skipping = true;
  bool use_cache = true;
  bool use_prefetch = true;
  // Vectorized per-block execution (§15): residual predicates run as
  // selection-bitmap kernels over whole decoded column vectors instead of
  // the row-at-a-time probe loop. Output is byte-identical either way; off
  // is the Figure 15-style scalar baseline for the bench sweep.
  bool use_vectorized = true;

  // Wrap the store with bounded retry + backoff so transient object-store
  // failures (throttling, connection resets, truncated responses) are
  // absorbed below the query instead of failing it.
  bool use_retry = true;
  objectstore::RetryOptions retry_options;

  // Parallel query execution (§5.2/Figure 17): LogBlocks of one query are
  // scanned concurrently by a per-engine pool of this many threads, with
  // results merged back in LogBlock-map order so output is byte-identical
  // to the serial path. 1 (or 0) disables the pool — blocks are visited
  // strictly serially, the pre-parallel behavior.
  int query_threads = 8;
  // While up to query_threads blocks scan, the scheduler keeps this many
  // FURTHER blocks warming: their object heads (tar header + meta member)
  // are prefetched so opening the next reader is a cache hit instead of a
  // cold object-store round trip. Requires use_cache.
  int pipeline_depth = 4;

  int prefetch_threads = 32;
  uint64_t io_block_size = 64 * 1024;
  // Adjacent-read coalescing cap (Figure 10's request merge); setting it
  // equal to io_block_size disables coalescing (one GET per block).
  uint64_t max_coalesced_bytes = 4 * 1024 * 1024;
  cache::BlockManagerOptions cache_options;
  // Decoded-object cache (§5.2's "object memory cache"): holds opened
  // LogBlockReaders (parsed meta + decoded indexes), avoiding repeated
  // parsing and re-fetch of meta for hot blocks.
  uint64_t object_cache_bytes = 256ull << 20;

  // Cluster-wide execution-slot budget (§12): when set, every block scan —
  // serial or parallel — first acquires a slot, so under load the shared
  // budget dynamically caps this engine's effective query_threads, with
  // per-tenant fair queueing. Non-owning; must outlive the engine. Null =
  // unlimited (the standalone single-engine behavior).
  AdmissionGovernor* admission = nullptr;

  // Registry receiving the engine's `query.*` aggregates (and, propagated
  // into the nested cache/retry/prefetch options when those carry none, the
  // whole read stack's); nullptr means the process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

struct QueryStats {
  // 64-bit: large-tenant soaks overflow 32-bit row/block counters.
  uint64_t logblocks_total = 0;    // blocks of the tenant in range
  uint64_t logblocks_pruned = 0;   // eliminated by the LogBlock map
  uint64_t logblocks_sma_skipped = 0;
  uint64_t realtime_rows = 0;  // rows merged from real-time stores
  BlockExecStats exec;
  int64_t elapsed_us = 0;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<logblock::Value>> rows;  // empty for aggregates
  // Merged aggregate when the query carries one (LogQuery::agg): partial
  // aggregates are computed per block BELOW the merge and combined here, so
  // workers ship summaries, not rows. `agg.groups` stays canonical
  // (key-ascending); render top-k via agg.TopK(query.limit).
  AggResult agg;
  QueryStats stats;
};

// Broker-side merge of real-time (not yet archived) rows into a query
// result, applying the projection and limit. Predicate/time filtering must
// already have been applied to each batch (RowStore::ScanTenant does).
//
// Rows are appended after the archived rows in a deterministic, placement-
// independent order — (timestamp, projected row content, worker, row) — so
// a limit query returns the same bytes no matter which worker holds which
// rows, and the scatter path matches the single-engine path. Appended rows
// are accounted in QueryStats::realtime_rows and exec.rows_matched.
//
// For an aggregate query the batches are folded into result->agg instead of
// appended (all combines are commutative, so batch order cannot matter).
Status MergeRealtimeRows(
    std::vector<std::pair<uint32_t, logblock::RowBatch>> batches,
    const LogQuery& query, QueryResult* result);

// One block's outcome within a fragment execution. `status` is Aborted when
// the block was cooperatively cancelled (limit secured, a peer's real
// error, or cancellation while queued for an admission slot) — Aborted
// never escapes a merge.
struct FragmentSlot {
  Status status;
  bool ran = false;  // true iff `exec` holds a real result
  BlockExecResult exec;
  std::vector<std::string> columns;  // schema names (select list empty)
};

// Caller plumbing for ExecuteFragment, letting a cluster broker scatter one
// query across several engines while keeping the §11 cancellation contract
// global: one shared cancel flag, and per-block completion callbacks tagged
// with the caller's GLOBAL block indices so a ScatterLimitTracker can fire
// the limit cancel in whole-query block-map order.
struct FragmentOptions {
  // Shared cooperative-cancel flag; may be null (never cancelled). The
  // fragment also SETS it on a block's real (non-Aborted) error, draining
  // every fragment of the query.
  std::atomic<bool>* cancel = nullptr;
  // Tag reported to on_block_done for block i of this fragment; empty =
  // identity (0..n-1, the single-fragment case).
  std::vector<size_t> tags;
  // Invoked on the executing thread right after each block settles (ran,
  // failed, or aborted). May be called concurrently for different blocks.
  std::function<void(size_t tag, const FragmentSlot& slot)> on_block_done;
};

// Fires the shared cancel flag once the limit is secured in completed-
// prefix order across ALL scattered fragments of one query — the §11 rule
// ("every block the serial path would have visited is done and already
// supplies `limit` rows") applied to global block indices, so a cancel
// never aborts a block the merge will reach before the limit cut.
class ScatterLimitTracker {
 public:
  ScatterLimitTracker(size_t num_blocks, uint32_t limit,
                      std::atomic<bool>* cancel);
  void OnBlockDone(size_t index, const FragmentSlot& slot);

 private:
  const uint32_t limit_;
  std::atomic<bool>* cancel_;
  std::mutex mu_;
  std::vector<char> done_;
  std::vector<uint64_t> rows_;  // per-block matched-row counts
  size_t prefix_len_ = 0;       // blocks [0, prefix_len_) all completed
  uint64_t prefix_rows_ = 0;    // rows matched inside that prefix
};

// Executes single-tenant log queries against LogBlocks on the object store,
// applying the full optimization stack of §5: LogBlock-map pruning, data
// skipping, multi-level caching, parallel prefetch.
class QueryEngine {
 public:
  // `store` must outlive the engine.
  static Result<std::unique_ptr<QueryEngine>> Open(
      objectstore::ObjectStore* store, const EngineOptions& options = {});

  Result<QueryResult> Execute(const LogQuery& query,
                              const logblock::LogBlockMap& map);

  // Executes one fragment of a (possibly scattered) query: the subset of
  // its pruned LogBlocks this engine owns, in block-map order. Uses the §11
  // parallel scheduler (pipelined head prefetch, full-limit per-block
  // execution, admission-slot gating) but never fails wholesale — each
  // block's outcome lands in its slot, and per-block statuses are resolved
  // by MergeFragmentSlots. Runs inline when the engine has no query pool.
  std::vector<FragmentSlot> ExecuteFragment(
      const LogQuery& query, const std::vector<logblock::LogBlockEntry>& blocks,
      const FragmentOptions& fragment);

  // Deterministic merge of fragment slots in block-map order: columns from
  // the first completed block, stats merged up to the limit cut, rows
  // trimmed at the limit, and the lowest-index real (non-Aborted) error
  // reported when a needed block did not run. `slots` is consumed.
  static Status MergeFragmentSlots(const LogQuery& query,
                                   std::vector<FragmentSlot>& slots,
                                   QueryResult* result);

  // Extracts one projected column from a result (for aggregations).
  static std::vector<logblock::Value> Column(const QueryResult& result,
                                             const std::string& name);

  cache::BlockManager* block_manager() { return cache_.get(); }
  prefetch::PrefetchService* prefetch_service() { return prefetch_.get(); }
  // Retry/giveup counters of the read path; nullptr when use_retry is off.
  const objectstore::RetryStats* retry_stats() const {
    return retry_store_ == nullptr ? nullptr : &retry_store_->retry_stats();
  }
  const EngineOptions& options() const { return options_; }

  // Drops all cached state (for cold-cache measurements).
  void ClearCaches();

 private:
  QueryEngine(objectstore::ObjectStore* store, const EngineOptions& options);

  Result<std::shared_ptr<logblock::LogBlockReader>> OpenReader(
      const std::string& object_key);

  // One-block-at-a-time scan loop (query_threads <= 1, or a single pruned
  // block). Ground truth for the parallel scheduler's output.
  Status ExecuteSerial(const LogQuery& query,
                       const std::vector<logblock::LogBlockEntry>& blocks,
                       const ExecOptions& exec_options, QueryResult* result);

  // The single-engine parallel path: ExecuteFragment over the whole block
  // list with a local cancel flag and limit tracker, then the deterministic
  // merge. Byte-identical to ExecuteSerial.
  Status ExecuteParallel(const LogQuery& query,
                         const std::vector<logblock::LogBlockEntry>& blocks,
                         QueryResult* result);

  // Effective store for all engine IO: the retry wrapper when enabled,
  // otherwise the caller's store directly.
  objectstore::ObjectStore* store_;
  std::unique_ptr<objectstore::RetryingObjectStore> retry_store_;
  EngineOptions options_;
  std::unique_ptr<cache::BlockManager> cache_;
  std::unique_ptr<prefetch::PrefetchService> prefetch_;
  cache::CacheStats object_cache_stats_;
  std::unique_ptr<cache::LruCache<logblock::LogBlockReader>> object_cache_;
  // Shared by all concurrent Execute calls; null when query_threads <= 1.
  std::unique_ptr<ThreadPool> query_pool_;
  // Distinct owner tag per Execute, for fair prefetch scheduling.
  std::atomic<uint64_t> next_query_owner_{1};

  // Registry cells for whole-query accounting. QueryStats is a value type
  // copied and merged across fragments, so the registry is dual-written
  // once per Execute (from the final stats) rather than per increment.
  struct QueryCells {
    std::atomic<uint64_t>* queries = nullptr;
    std::atomic<uint64_t>* rows_matched = nullptr;
    std::atomic<uint64_t>* realtime_rows = nullptr;
    std::atomic<uint64_t>* logblocks_total = nullptr;
    std::atomic<uint64_t>* logblocks_pruned = nullptr;
    std::atomic<uint64_t>* logblocks_sma_skipped = nullptr;
    std::atomic<uint64_t>* column_blocks_scanned = nullptr;
    std::atomic<uint64_t>* column_blocks_skipped = nullptr;
    std::atomic<uint64_t>* index_probes = nullptr;
    std::atomic<uint64_t>* decode_cache_hits = nullptr;
    std::atomic<uint64_t>* vectorized_rows_scanned = nullptr;
    std::atomic<uint64_t>* vectorized_bitmap_hits = nullptr;
    std::atomic<uint64_t>* vectorized_kernel_ns = nullptr;

    void BindTo(metrics::MetricRegistry* registry);
    void Record(const QueryStats& stats) const;
  } query_cells_;
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_ENGINE_H_
