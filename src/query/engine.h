#ifndef LOGSTORE_QUERY_ENGINE_H_
#define LOGSTORE_QUERY_ENGINE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "cache/block_manager.h"
#include "cache/lru_cache.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_reader.h"
#include "objectstore/object_store.h"
#include "objectstore/retrying_object_store.h"
#include "prefetch/prefetch_service.h"
#include "query/block_executor.h"
#include "query/predicate.h"

namespace logstore::query {

struct EngineOptions {
  // Query-optimization toggles, mirroring the ablation axes of §6.3.
  bool use_data_skipping = true;
  bool use_cache = true;
  bool use_prefetch = true;

  // Wrap the store with bounded retry + backoff so transient object-store
  // failures (throttling, connection resets, truncated responses) are
  // absorbed below the query instead of failing it.
  bool use_retry = true;
  objectstore::RetryOptions retry_options;

  // Parallel query execution (§5.2/Figure 17): LogBlocks of one query are
  // scanned concurrently by a per-engine pool of this many threads, with
  // results merged back in LogBlock-map order so output is byte-identical
  // to the serial path. 1 (or 0) disables the pool — blocks are visited
  // strictly serially, the pre-parallel behavior.
  int query_threads = 8;
  // While up to query_threads blocks scan, the scheduler keeps this many
  // FURTHER blocks warming: their object heads (tar header + meta member)
  // are prefetched so opening the next reader is a cache hit instead of a
  // cold object-store round trip. Requires use_cache.
  int pipeline_depth = 4;

  int prefetch_threads = 32;
  uint64_t io_block_size = 64 * 1024;
  // Adjacent-read coalescing cap (Figure 10's request merge); setting it
  // equal to io_block_size disables coalescing (one GET per block).
  uint64_t max_coalesced_bytes = 4 * 1024 * 1024;
  cache::BlockManagerOptions cache_options;
  // Decoded-object cache (§5.2's "object memory cache"): holds opened
  // LogBlockReaders (parsed meta + decoded indexes), avoiding repeated
  // parsing and re-fetch of meta for hot blocks.
  uint64_t object_cache_bytes = 256ull << 20;
};

struct QueryStats {
  uint32_t logblocks_total = 0;    // blocks of the tenant in range
  uint32_t logblocks_pruned = 0;   // eliminated by the LogBlock map
  uint32_t logblocks_sma_skipped = 0;
  BlockExecStats exec;
  int64_t elapsed_us = 0;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<logblock::Value>> rows;
  QueryStats stats;
};

// Broker-side merge of real-time (not yet archived) rows into a query
// result, applying the projection and limit. Predicate/time filtering must
// already have been applied to `realtime` (RowStore::ScanTenant does).
Status AppendRealtimeRows(const logblock::RowBatch& realtime,
                          const LogQuery& query, QueryResult* result);

// Executes single-tenant log queries against LogBlocks on the object store,
// applying the full optimization stack of §5: LogBlock-map pruning, data
// skipping, multi-level caching, parallel prefetch.
class QueryEngine {
 public:
  // `store` must outlive the engine.
  static Result<std::unique_ptr<QueryEngine>> Open(
      objectstore::ObjectStore* store, const EngineOptions& options = {});

  Result<QueryResult> Execute(const LogQuery& query,
                              const logblock::LogBlockMap& map);

  // Extracts one projected column from a result (for aggregations).
  static std::vector<logblock::Value> Column(const QueryResult& result,
                                             const std::string& name);

  cache::BlockManager* block_manager() { return cache_.get(); }
  prefetch::PrefetchService* prefetch_service() { return prefetch_.get(); }
  // Retry/giveup counters of the read path; nullptr when use_retry is off.
  const objectstore::RetryStats* retry_stats() const {
    return retry_store_ == nullptr ? nullptr : &retry_store_->retry_stats();
  }
  const EngineOptions& options() const { return options_; }

  // Drops all cached state (for cold-cache measurements).
  void ClearCaches();

 private:
  QueryEngine(objectstore::ObjectStore* store, const EngineOptions& options);

  Result<std::shared_ptr<logblock::LogBlockReader>> OpenReader(
      const std::string& object_key);

  // One-block-at-a-time scan loop (query_threads <= 1, or a single pruned
  // block). Ground truth for the parallel scheduler's output.
  Status ExecuteSerial(const LogQuery& query,
                       const std::vector<logblock::LogBlockEntry>& blocks,
                       const ExecOptions& exec_options, QueryResult* result);

  // Schedules ExecuteOnLogBlock tasks across the pool, pipelines reader
  // opens/prefetches ahead, cancels cooperatively once a limit is secured
  // in completed-prefix order, and merges results in block order.
  Status ExecuteParallel(const LogQuery& query,
                         const std::vector<logblock::LogBlockEntry>& blocks,
                         ExecOptions exec_options, QueryResult* result);

  // Effective store for all engine IO: the retry wrapper when enabled,
  // otherwise the caller's store directly.
  objectstore::ObjectStore* store_;
  std::unique_ptr<objectstore::RetryingObjectStore> retry_store_;
  EngineOptions options_;
  std::unique_ptr<cache::BlockManager> cache_;
  std::unique_ptr<prefetch::PrefetchService> prefetch_;
  cache::CacheStats object_cache_stats_;
  std::unique_ptr<cache::LruCache<logblock::LogBlockReader>> object_cache_;
  // Shared by all concurrent Execute calls; null when query_threads <= 1.
  std::unique_ptr<ThreadPool> query_pool_;
  // Distinct owner tag per Execute, for fair prefetch scheduling.
  std::atomic<uint64_t> next_query_owner_{1};
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_ENGINE_H_
