#ifndef LOGSTORE_QUERY_SQL_PARSER_H_
#define LOGSTORE_QUERY_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "logblock/schema.h"
#include "query/predicate.h"

namespace logstore::query {

// ---------------------------------------------------------------------------
// Parser for LogStore's SQL surface (the "Application (SQL Protocol)" entry
// point of Figure 3), covering the paper's log-retrieval template:
//
//   SELECT log FROM request_log
//    WHERE tenant_id = 12276
//      AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00'
//      AND ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'
//      AND log MATCH 'connection timeout'
//    LIMIT 100
//
// Grammar (case-insensitive keywords):
//   query     := SELECT select FROM ident WHERE conjunct (AND conjunct)*
//                [LIMIT int]
//   select    := '*' | ident (',' ident)*
//   conjunct  := ident op value | ident MATCH string
//   op        := '=' | '!=' | '<' | '<=' | '>' | '>='
//   value     := int | string
//
// Timestamps accept either integer microseconds or 'YYYY-MM-DD HH:MM:SS'
// literals (UTC). `tenant_id =` populates LogQuery::tenant_id; `ts`
// comparisons fold into the [ts_min, ts_max] range.
// ---------------------------------------------------------------------------

Result<LogQuery> ParseSql(const std::string& sql,
                          const logblock::Schema& schema);

// Parses 'YYYY-MM-DD HH:MM:SS' (UTC) into microseconds since the epoch.
Result<int64_t> ParseDateTimeMicros(const std::string& text);

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_SQL_PARSER_H_
