#ifndef LOGSTORE_QUERY_BLOCK_EXECUTOR_H_
#define LOGSTORE_QUERY_BLOCK_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "logblock/logblock_reader.h"
#include "query/aggregation.h"
#include "query/predicate.h"

namespace logstore::query {

struct ExecOptions {
  // The multi-level data-skipping strategy of §5.1/Figure 8: LogBlock-level
  // SMA, index probes, and block-level SMA. When false, every block of
  // every predicate column is decompressed and scanned (the Figure 15
  // baseline).
  bool use_data_skipping = true;
  // Issue Prefetch hints so the source can load upcoming blocks in
  // parallel (§5.2). When false, all reads are serial and on-demand.
  bool use_prefetch = true;
  // Owner tag forwarded with prefetch hints so the shared prefetch pool can
  // schedule fairly across concurrent queries (0 = untagged).
  uint64_t prefetch_owner = 0;
  // Cooperative cancellation: when set and it becomes true, the executor
  // stops between IO/scan steps and returns Status::Aborted. The parallel
  // scheduler uses this for limit-aware early termination and to drain
  // in-flight work after another block failed.
  const std::atomic<bool>* cancel = nullptr;
  // Residual predicates run as selection-bitmap kernels over whole decoded
  // column vectors (§15) instead of the row-at-a-time probe loop. Output is
  // byte-identical either way; this only changes how the scan executes.
  bool use_vectorized = true;
};

struct BlockExecStats {
  // Whole LogBlock skipped via column SMA before any data IO.
  bool skipped_by_column_sma = false;
  // 64-bit: large-tenant soaks overflow 32-bit scan/row counters.
  uint64_t column_blocks_scanned = 0;  // decompressed + scanned
  uint64_t column_blocks_skipped = 0;  // eliminated by block SMA / candidates
  uint64_t index_probes = 0;
  uint64_t rows_matched = 0;
  // Decoded blocks served from the per-execution cache instead of being
  // re-read and re-decoded (a second predicate or the gather touching a
  // column block the residual scan already decoded).
  uint64_t decode_cache_hits = 0;
  // Vectorized-kernel accounting (zero on the row-at-a-time path). The
  // first two are deterministic; kernel_ns is wall clock and MUST stay out
  // of byte-equality comparisons.
  uint64_t vectorized_rows_scanned = 0;  // rows run through filter kernels
  uint64_t vectorized_bitmap_hits = 0;   // selected bits across all kernels
  uint64_t vectorized_kernel_ns = 0;

  void MergeFrom(const BlockExecStats& other) {
    column_blocks_scanned += other.column_blocks_scanned;
    column_blocks_skipped += other.column_blocks_skipped;
    index_probes += other.index_probes;
    rows_matched += other.rows_matched;
    decode_cache_hits += other.decode_cache_hits;
    vectorized_rows_scanned += other.vectorized_rows_scanned;
    vectorized_bitmap_hits += other.vectorized_bitmap_hits;
    vectorized_kernel_ns += other.vectorized_kernel_ns;
  }
};

struct BlockExecResult {
  // Row-major projected values, one entry per matched row, columns in
  // LogQuery::select_columns order (or schema order when empty). Empty for
  // aggregate queries, which fill `agg` instead.
  std::vector<std::vector<logblock::Value>> rows;
  // Partial aggregate over this block's matching rows (LogQuery::agg set).
  AggResult agg;
  BlockExecStats stats;
};

// Evaluates the conjunctive `query` against one LogBlock, implementing the
// Figure 8 pipeline:
//   2. skip the whole block via column SMA
//   3. probe per-column indexes (BKD / inverted) into a row-id set
//   4. for residual predicates, skip column blocks via block SMA, scan the
//      rest, and intersect
//   5. load the projected columns for the surviving row ids — or, for an
//      aggregate query, fold the surviving rows into a partial AggResult
//      (no row materialization; `limit` does not cut the scan, and
//      stats.rows_matched counts ALL matching rows)
// The tenant/ts pruning of step 1 happens above, against the LogBlock map.
Result<BlockExecResult> ExecuteOnLogBlock(logblock::LogBlockReader* reader,
                                          const LogQuery& query,
                                          const ExecOptions& options = {});

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_BLOCK_EXECUTOR_H_
