#include "query/sql_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace logstore::query {

namespace {

// A minimal hand-rolled tokenizer: identifiers/keywords, integers, quoted
// strings, and operator punctuation.
struct Token {
  enum class Kind { kIdent, kInt, kString, kOp, kComma, kStar, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;   // ident (lower-cased), op, or string body
  int64_t int_value = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<Token> Next() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
    Token token;
    if (pos_ >= input_.size()) return token;  // kEnd

    const char c = input_[pos_];
    if (c == ',') {
      ++pos_;
      token.kind = Token::Kind::kComma;
      return token;
    }
    if (c == '*') {
      ++pos_;
      token.kind = Token::Kind::kStar;
      return token;
    }
    if (c == '\'') {
      ++pos_;
      std::string body;
      while (pos_ < input_.size() && input_[pos_] != '\'') {
        body.push_back(input_[pos_++]);
      }
      if (pos_ >= input_.size()) {
        return Status::InvalidArgument("sql: unterminated string literal");
      }
      ++pos_;  // closing quote
      token.kind = Token::Kind::kString;
      token.text = std::move(body);
      return token;
    }
    if (c == '=' || c == '<' || c == '>' || c == '!') {
      std::string op(1, c);
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '=') {
        op.push_back('=');
        ++pos_;
      }
      if (op == "!") {
        return Status::InvalidArgument("sql: lone '!' (did you mean !=?)");
      }
      token.kind = Token::Kind::kOp;
      token.text = std::move(op);
      return token;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < input_.size() &&
         std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
      size_t end = pos_ + 1;
      while (end < input_.size() &&
             std::isdigit(static_cast<unsigned char>(input_[end]))) {
        ++end;
      }
      token.kind = Token::Kind::kInt;
      token.int_value = strtoll(input_.substr(pos_, end - pos_).c_str(),
                                nullptr, 10);
      pos_ = end;
      return token;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t end = pos_;
      while (end < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[end])) ||
              input_[end] == '_')) {
        ++end;
      }
      token.kind = Token::Kind::kIdent;
      token.text = input_.substr(pos_, end - pos_);
      for (char& ch : token.text) {
        ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
      }
      pos_ = end;
      return token;
    }
    return Status::InvalidArgument(std::string("sql: unexpected character '") +
                                   c + "'");
  }

 private:
  const std::string& input_;
  size_t pos_ = 0;
};

// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
int64_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const int64_t yoe = y - era * 400;                           // [0, 399]
  const int64_t doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;   // [0, 146096]
  return era * 146097 + doe - 719468;
}

}  // namespace

Result<int64_t> ParseDateTimeMicros(const std::string& text) {
  int year, month, day, hour = 0, minute = 0, second = 0;
  const int fields = sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &year, &month,
                            &day, &hour, &minute, &second);
  if (fields != 3 && fields != 6) {
    return Status::InvalidArgument("bad datetime literal: " + text);
  }
  if (month < 1 || month > 12 || day < 1 || day > 31 || hour < 0 ||
      hour > 23 || minute < 0 || minute > 59 || second < 0 || second > 60) {
    return Status::InvalidArgument("datetime out of range: " + text);
  }
  const int64_t days = DaysFromCivil(year, month, day);
  return ((days * 24 + hour) * 60 + minute) * 60 * 1'000'000ll +
         second * 1'000'000ll;
}

Result<LogQuery> ParseSql(const std::string& sql,
                          const logblock::Schema& schema) {
  Lexer lexer(sql);
  Token token;
  auto advance = [&]() -> Status {
    auto next = lexer.Next();
    if (!next.ok()) return next.status();
    token = std::move(next).value();
    return Status::OK();
  };
  auto expect_keyword = [&](const char* keyword) -> Status {
    if (token.kind != Token::Kind::kIdent || token.text != keyword) {
      return Status::InvalidArgument(std::string("sql: expected ") + keyword);
    }
    return advance();
  };

  LOGSTORE_RETURN_IF_ERROR(advance());
  LOGSTORE_RETURN_IF_ERROR(expect_keyword("select"));

  LogQuery query;
  // Projection.
  if (token.kind == Token::Kind::kStar) {
    LOGSTORE_RETURN_IF_ERROR(advance());
  } else {
    while (true) {
      if (token.kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("sql: expected column name");
      }
      query.select_columns.push_back(token.text);
      LOGSTORE_RETURN_IF_ERROR(advance());
      if (token.kind != Token::Kind::kComma) break;
      LOGSTORE_RETURN_IF_ERROR(advance());
    }
  }

  LOGSTORE_RETURN_IF_ERROR(expect_keyword("from"));
  if (token.kind != Token::Kind::kIdent) {
    return Status::InvalidArgument("sql: expected table name");
  }
  LOGSTORE_RETURN_IF_ERROR(advance());  // table name is informational

  bool tenant_bound = false;
  if (token.kind == Token::Kind::kIdent && token.text == "where") {
    LOGSTORE_RETURN_IF_ERROR(advance());
    while (true) {
      if (token.kind != Token::Kind::kIdent) {
        return Status::InvalidArgument("sql: expected column in WHERE");
      }
      const std::string column = token.text;
      const int col = schema.FindColumn(column);
      if (col < 0) {
        return Status::InvalidArgument("sql: unknown column " + column);
      }
      LOGSTORE_RETURN_IF_ERROR(advance());

      // MATCH or comparison.
      if (token.kind == Token::Kind::kIdent && token.text == "match") {
        LOGSTORE_RETURN_IF_ERROR(advance());
        if (token.kind != Token::Kind::kString) {
          return Status::InvalidArgument("sql: MATCH needs a string literal");
        }
        query.predicates.push_back(Predicate::Match(column, token.text));
        LOGSTORE_RETURN_IF_ERROR(advance());
      } else {
        if (token.kind != Token::Kind::kOp) {
          return Status::InvalidArgument("sql: expected comparison operator");
        }
        const std::string op_text = token.text;
        CompareOp op;
        if (op_text == "=") op = CompareOp::kEq;
        else if (op_text == "!=") op = CompareOp::kNe;
        else if (op_text == "<") op = CompareOp::kLt;
        else if (op_text == "<=") op = CompareOp::kLe;
        else if (op_text == ">") op = CompareOp::kGt;
        else if (op_text == ">=") op = CompareOp::kGe;
        else return Status::InvalidArgument("sql: bad operator " + op_text);
        LOGSTORE_RETURN_IF_ERROR(advance());

        // Value: int, datetime string (for int columns), or string.
        int64_t int_value = 0;
        bool is_int = false;
        std::string str_value;
        if (token.kind == Token::Kind::kInt) {
          int_value = token.int_value;
          is_int = true;
        } else if (token.kind == Token::Kind::kString) {
          if (schema.column(col).type == logblock::ColumnType::kInt64) {
            auto micros = ParseDateTimeMicros(token.text);
            if (!micros.ok()) return micros.status();
            int_value = *micros;
            is_int = true;
          } else {
            str_value = token.text;
          }
        } else {
          return Status::InvalidArgument("sql: expected literal value");
        }
        LOGSTORE_RETURN_IF_ERROR(advance());

        if (is_int &&
            schema.column(col).type != logblock::ColumnType::kInt64) {
          return Status::InvalidArgument("sql: int literal on string column " +
                                         column);
        }
        if (!is_int &&
            schema.column(col).type != logblock::ColumnType::kString) {
          return Status::InvalidArgument(
              "sql: string literal on int column " + column);
        }

        // Special columns: tenant_id = N, and ts bounds.
        if (column == "tenant_id" && op == CompareOp::kEq) {
          query.tenant_id = static_cast<uint64_t>(int_value);
          tenant_bound = true;
        } else if (column == "ts" &&
                   (op == CompareOp::kGe || op == CompareOp::kGt)) {
          query.ts_min = op == CompareOp::kGt ? int_value + 1 : int_value;
        } else if (column == "ts" &&
                   (op == CompareOp::kLe || op == CompareOp::kLt)) {
          query.ts_max = op == CompareOp::kLt ? int_value - 1 : int_value;
        } else if (is_int) {
          query.predicates.push_back(Predicate::Int64Compare(column, op,
                                                             int_value));
        } else if (op == CompareOp::kEq) {
          query.predicates.push_back(Predicate::StringEq(column, str_value));
        } else {
          return Status::InvalidArgument(
              "sql: only '=' is supported on string column " + column);
        }
      }

      if (token.kind == Token::Kind::kIdent && token.text == "and") {
        LOGSTORE_RETURN_IF_ERROR(advance());
        continue;
      }
      break;
    }
  }

  if (token.kind == Token::Kind::kIdent && token.text == "limit") {
    LOGSTORE_RETURN_IF_ERROR(advance());
    if (token.kind != Token::Kind::kInt || token.int_value <= 0) {
      return Status::InvalidArgument("sql: LIMIT needs a positive integer");
    }
    query.limit = static_cast<uint32_t>(token.int_value);
    LOGSTORE_RETURN_IF_ERROR(advance());
  }

  if (token.kind != Token::Kind::kEnd) {
    return Status::InvalidArgument("sql: trailing input after query");
  }
  if (!tenant_bound) {
    return Status::InvalidArgument(
        "sql: queries must bind tenant_id = <id> (tenant-scoped retrieval)");
  }
  return query;
}

}  // namespace logstore::query
