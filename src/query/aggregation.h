#ifndef LOGSTORE_QUERY_AGGREGATION_H_
#define LOGSTORE_QUERY_AGGREGATION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logblock/row_batch.h"
#include "query/predicate.h"

namespace logstore::query {

// Lightweight BI aggregations over query results (§1: "which IP addresses
// frequently accessed this API in the past day?").

struct GroupCount {
  std::string key;
  uint64_t count = 0;
};

// Groups `values` (rendered as strings; int64 values are decimal-formatted)
// and returns the k most frequent groups, descending by count, ties broken
// by key for determinism.
inline std::vector<GroupCount> GroupCountTopK(
    const std::vector<logblock::Value>& values, size_t k) {
  std::map<std::string, uint64_t> counts;
  for (const logblock::Value& v : values) {
    const std::string key =
        v.type == logblock::ColumnType::kInt64 ? std::to_string(v.i) : v.s;
    counts[key]++;
  }
  std::vector<GroupCount> groups;
  groups.reserve(counts.size());
  for (auto& [key, count] : counts) groups.push_back({key, count});
  std::sort(groups.begin(), groups.end(),
            [](const GroupCount& a, const GroupCount& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  if (groups.size() > k) groups.resize(k);
  return groups;
}

// Simple numeric rollups over an int64 value list.
struct Int64Rollup {
  uint64_t count = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

inline Int64Rollup RollupInt64(const std::vector<logblock::Value>& values) {
  Int64Rollup rollup;
  for (const logblock::Value& v : values) {
    if (v.type != logblock::ColumnType::kInt64) continue;
    rollup.count++;
    rollup.min = std::min(rollup.min, v.i);
    rollup.max = std::max(rollup.max, v.i);
    rollup.sum += v.i;
  }
  return rollup;
}

// A partial aggregate computed below the merge — per column block, per
// LogBlock, per fragment — and combined by the broker. Every combine is
// order-independent (count/sum/min/max are commutative; groups merge by
// key), so the merged result is placement- and scheduling-independent.
//
// `groups` is kept CANONICAL (ascending by key) at every stage; the
// presentation order (count-desc top-k) is applied only at the very end via
// TopK(), because trimming before the last merge could drop a key another
// partial would have pushed into the top k.
struct AggResult {
  Aggregate::Kind kind = Aggregate::Kind::kNone;
  uint64_t rows = 0;  // rows aggregated (the count for kCount)
  int64_t sum = 0;
  int64_t min = INT64_MAX;  // identity when rows == 0
  int64_t max = INT64_MIN;
  std::vector<GroupCount> groups;  // kGroupCount only, ascending by key

  void MergeFrom(const AggResult& other) {
    if (other.kind == Aggregate::Kind::kNone) return;
    kind = other.kind;
    rows += other.rows;
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    if (!other.groups.empty()) {
      // Both sides are ascending by key: a linear merge-join keeps the
      // result canonical without re-sorting.
      std::vector<GroupCount> merged;
      merged.reserve(groups.size() + other.groups.size());
      size_t a = 0, b = 0;
      while (a < groups.size() && b < other.groups.size()) {
        if (groups[a].key < other.groups[b].key) {
          merged.push_back(std::move(groups[a++]));
        } else if (other.groups[b].key < groups[a].key) {
          merged.push_back(other.groups[b++]);
        } else {
          groups[a].count += other.groups[b].count;
          merged.push_back(std::move(groups[a]));
          ++a;
          ++b;
        }
      }
      while (a < groups.size()) merged.push_back(std::move(groups[a++]));
      while (b < other.groups.size()) merged.push_back(other.groups[b++]);
      groups = std::move(merged);
    }
  }

  // Presentation order for kGroupCount: count-desc, key-asc ties, trimmed
  // to k (0 = all groups). Matches GroupCountTopK over the raw values.
  std::vector<GroupCount> TopK(size_t k) const {
    std::vector<GroupCount> out = groups;
    std::sort(out.begin(), out.end(),
              [](const GroupCount& a, const GroupCount& b) {
                return a.count != b.count ? a.count > b.count : a.key < b.key;
              });
    if (k != 0 && out.size() > k) out.resize(k);
    return out;
  }
};

// Renders one cell the way kGroupCount keys it (int64 values are
// decimal-formatted), shared with GroupCountTopK for bit-equal keys.
inline std::string GroupKeyOf(const logblock::Value& v) {
  return v.type == logblock::ColumnType::kInt64 ? std::to_string(v.i) : v.s;
}

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_AGGREGATION_H_
