#ifndef LOGSTORE_QUERY_AGGREGATION_H_
#define LOGSTORE_QUERY_AGGREGATION_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "logblock/row_batch.h"

namespace logstore::query {

// Lightweight BI aggregations over query results (§1: "which IP addresses
// frequently accessed this API in the past day?").

struct GroupCount {
  std::string key;
  uint64_t count = 0;
};

// Groups `values` (rendered as strings; int64 values are decimal-formatted)
// and returns the k most frequent groups, descending by count, ties broken
// by key for determinism.
inline std::vector<GroupCount> GroupCountTopK(
    const std::vector<logblock::Value>& values, size_t k) {
  std::map<std::string, uint64_t> counts;
  for (const logblock::Value& v : values) {
    const std::string key =
        v.type == logblock::ColumnType::kInt64 ? std::to_string(v.i) : v.s;
    counts[key]++;
  }
  std::vector<GroupCount> groups;
  groups.reserve(counts.size());
  for (auto& [key, count] : counts) groups.push_back({key, count});
  std::sort(groups.begin(), groups.end(),
            [](const GroupCount& a, const GroupCount& b) {
              return a.count != b.count ? a.count > b.count : a.key < b.key;
            });
  if (groups.size() > k) groups.resize(k);
  return groups;
}

// Simple numeric rollups over an int64 value list.
struct Int64Rollup {
  uint64_t count = 0;
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  int64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

inline Int64Rollup RollupInt64(const std::vector<logblock::Value>& values) {
  Int64Rollup rollup;
  for (const logblock::Value& v : values) {
    if (v.type != logblock::ColumnType::kInt64) continue;
    rollup.count++;
    rollup.min = std::min(rollup.min, v.i);
    rollup.max = std::max(rollup.max, v.i);
    rollup.sum += v.i;
  }
  return rollup;
}

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_AGGREGATION_H_
