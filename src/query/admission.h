#ifndef LOGSTORE_QUERY_ADMISSION_H_
#define LOGSTORE_QUERY_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/fair_queue.h"
#include "common/metrics.h"

namespace logstore::query {

class AdmissionGovernor;

// Wakes admission waiters when a cancellation flag flips. The flag owners
// (limit trackers, fragment error paths) flip their flags without holding
// any governor lock, so a waiter blocked inside Acquire cannot observe the
// flip through its condition variable alone; routing the flip through
// SignalCancel gives the waiter a direct wakeup instead of a polling loop.
//
// Lock order: broadcast mutex, then governor mutex (Notify holds the former
// while waking; Acquire never registers/unregisters while holding the
// latter). Holding the broadcast mutex across the wake also pins the
// governor: a waiter cannot finish unregistering — and hence the governor
// cannot be destroyed — until an in-flight Notify completes.
class CancelBroadcast {
 public:
  static CancelBroadcast* Default();

  // Wakes every governor with a waiter registered on `flag`.
  void Notify(const std::atomic<bool>* flag);

 private:
  friend class AdmissionGovernor;

  void Register(const std::atomic<bool>* flag, AdmissionGovernor* governor);
  void Unregister(const std::atomic<bool>* flag, AdmissionGovernor* governor);

  std::mutex mu_;
  // flag -> (governor -> registered-waiter count).
  std::map<const std::atomic<bool>*, std::map<AdmissionGovernor*, int>>
      watchers_;
};

// Store-true + waiter wakeup, for every cancellation-flag flip site whose
// flag may have an admission waiter parked on it.
inline void SignalCancel(std::atomic<bool>* flag) {
  flag->store(true, std::memory_order_release);
  CancelBroadcast::Default()->Notify(flag);
}

// Per-tenant admission telemetry (the fairness test's measurement surface).
struct AdmissionTenantStats {
  uint64_t grants = 0;        // slots granted to this tenant
  uint64_t queued_grants = 0; // grants that had to wait for a slot
  int64_t total_wait_us = 0;  // time spent waiting across those grants
  int64_t max_wait_us = 0;    // worst single slot-wait
};

// Cluster-wide execution-slot budget with per-tenant fair queueing — the
// per-owner fair prefetch scheduler generalized from IO slots to execution
// slots. Every block scan across every engine of a deployment first
// acquires a slot; under load the budget dynamically caps a query's
// effective query_threads, and a released slot is handed to the next waiter
// round-robin across tenants, so one tenant's wide scan queues behind
// itself, not in front of everyone else.
//
// Slot holders never block on the governor (acquires are never nested), so
// the budget cannot deadlock: every held slot is released by a block scan
// that completes independently.
class AdmissionGovernor {
 public:
  explicit AdmissionGovernor(int total_slots,
                             metrics::MetricRegistry* registry = nullptr);

  // Blocks until a slot is granted. Returns false — without consuming a
  // slot — if `cancel` became true while waiting; a grant that races with
  // cancellation is handed straight to the next waiter. Cancellation flips
  // routed through SignalCancel wake the waiter immediately; a coarse
  // wait_for backstop covers flips that bypassed it.
  bool Acquire(uint64_t tenant, const std::atomic<bool>* cancel = nullptr);

  // Releases a slot: hands it to the next queued waiter (round-robin across
  // tenants) or returns it to the free pool.
  void Release();

  int total_slots() const { return total_slots_; }
  int slots_in_use() const;
  size_t queue_depth() const;
  AdmissionTenantStats TenantStats(uint64_t tenant) const;

 private:
  friend class CancelBroadcast;

  struct Ticket {
    bool granted = false;  // guarded by mu_
  };

  // Registry cells mirroring one tenant's stats_ entry.
  struct TenantCells {
    std::atomic<uint64_t>* grants = nullptr;
    std::atomic<uint64_t>* queued_grants = nullptr;
    std::atomic<uint64_t>* wait_us = nullptr;
  };

  // Hands a freed slot to the next waiter or back to the pool. mu_ held.
  void PassSlotLocked();

  // Resolves (once per tenant) the registry cells for `tenant`. mu_ held.
  TenantCells& CellsLocked(uint64_t tenant);

  // CancelBroadcast::Notify path: wakes every waiter so it rechecks its
  // cancel flag. Takes mu_ (so a flip cannot slip between a waiter's flag
  // check and its sleep), never the broadcast mutex.
  void WakeAllForCancel();

  const int total_slots_;
  metrics::MetricRegistry* const registry_;
  mutable std::mutex mu_;
  std::condition_variable granted_cv_;
  int available_;  // guarded by mu_
  FairQueue<std::shared_ptr<Ticket>> waiting_;      // guarded by mu_
  std::map<uint64_t, AdmissionTenantStats> stats_;  // guarded by mu_
  std::map<uint64_t, TenantCells> cells_;           // guarded by mu_
};

// Scoped slot release for the block-scan paths.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionGovernor* governor) : governor_(governor) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept : governor_(other.governor_) {
    other.governor_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      if (governor_ != nullptr) governor_->Release();
      governor_ = other.governor_;
      other.governor_ = nullptr;
    }
    return *this;
  }
  ~AdmissionSlot() {
    if (governor_ != nullptr) governor_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionGovernor* governor_ = nullptr;
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_ADMISSION_H_
