#ifndef LOGSTORE_QUERY_ADMISSION_H_
#define LOGSTORE_QUERY_ADMISSION_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/fair_queue.h"

namespace logstore::query {

// Per-tenant admission telemetry (the fairness test's measurement surface).
struct AdmissionTenantStats {
  uint64_t grants = 0;        // slots granted to this tenant
  uint64_t queued_grants = 0; // grants that had to wait for a slot
  int64_t total_wait_us = 0;  // time spent waiting across those grants
  int64_t max_wait_us = 0;    // worst single slot-wait
};

// Cluster-wide execution-slot budget with per-tenant fair queueing — the
// per-owner fair prefetch scheduler generalized from IO slots to execution
// slots. Every block scan across every engine of a deployment first
// acquires a slot; under load the budget dynamically caps a query's
// effective query_threads, and a released slot is handed to the next waiter
// round-robin across tenants, so one tenant's wide scan queues behind
// itself, not in front of everyone else.
//
// Slot holders never block on the governor (acquires are never nested), so
// the budget cannot deadlock: every held slot is released by a block scan
// that completes independently.
class AdmissionGovernor {
 public:
  explicit AdmissionGovernor(int total_slots);

  // Blocks until a slot is granted. Returns false — without consuming a
  // slot — if `cancel` became true while waiting; a grant that races with
  // cancellation is handed straight to the next waiter.
  bool Acquire(uint64_t tenant, const std::atomic<bool>* cancel = nullptr);

  // Releases a slot: hands it to the next queued waiter (round-robin across
  // tenants) or returns it to the free pool.
  void Release();

  int total_slots() const { return total_slots_; }
  int slots_in_use() const;
  size_t queue_depth() const;
  AdmissionTenantStats TenantStats(uint64_t tenant) const;

 private:
  struct Ticket {
    bool granted = false;  // guarded by mu_
  };

  // Hands a freed slot to the next waiter or back to the pool. mu_ held.
  void PassSlotLocked();

  const int total_slots_;
  mutable std::mutex mu_;
  std::condition_variable granted_cv_;
  int available_;  // guarded by mu_
  FairQueue<std::shared_ptr<Ticket>> waiting_;      // guarded by mu_
  std::map<uint64_t, AdmissionTenantStats> stats_;  // guarded by mu_
};

// Scoped slot release for the block-scan paths.
class AdmissionSlot {
 public:
  AdmissionSlot() = default;
  explicit AdmissionSlot(AdmissionGovernor* governor) : governor_(governor) {}
  AdmissionSlot(AdmissionSlot&& other) noexcept : governor_(other.governor_) {
    other.governor_ = nullptr;
  }
  AdmissionSlot& operator=(AdmissionSlot&& other) noexcept {
    if (this != &other) {
      if (governor_ != nullptr) governor_->Release();
      governor_ = other.governor_;
      other.governor_ = nullptr;
    }
    return *this;
  }
  ~AdmissionSlot() {
    if (governor_ != nullptr) governor_->Release();
  }
  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

 private:
  AdmissionGovernor* governor_ = nullptr;
};

}  // namespace logstore::query

#endif  // LOGSTORE_QUERY_ADMISSION_H_
