#ifndef LOGSTORE_WORKLOAD_LOGGEN_H_
#define LOGSTORE_WORKLOAD_LOGGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "logblock/row_batch.h"
#include "logblock/schema.h"

namespace logstore::workload {

// Synthesizes request_log rows resembling the Alibaba Cloud DBaaS audit
// logs of the evaluation: timestamped API accesses with source IP, latency,
// failure flag, and a templated log line.
class LogGenerator {
 public:
  explicit LogGenerator(uint64_t seed = 7)
      : rng_(seed), schema_(logblock::RequestLogSchema()) {}

  const logblock::Schema& schema() const { return schema_; }

  // Generates `rows` entries for `tenant` with timestamps spread uniformly
  // over [ts_begin, ts_end). Failures and latency spikes are bursty: each
  // tenant has deterministic "incident windows" within the span where
  // failures concentrate — as in real services, where errors cluster in
  // time. This gives block-level SMA skipping something to skip.
  logblock::RowBatch Generate(uint64_t tenant, uint32_t rows, int64_t ts_begin,
                              int64_t ts_end) {
    logblock::RowBatch batch(schema_);
    const int64_t span = ts_end > ts_begin ? ts_end - ts_begin : 1;
    const uint64_t incident_a = (tenant * 7 + 3) % kWindows;
    const uint64_t incident_b = (tenant * 13 + 5) % kWindows;
    for (uint32_t i = 0; i < rows; ++i) {
      const int64_t ts =
          ts_begin + static_cast<int64_t>(
                         (static_cast<double>(i) / rows) * span);
      // Windows are anchored to absolute time (3h grid), so incidents are
      // consistent across batches and align with time-ordered blocks.
      const uint64_t window =
          static_cast<uint64_t>(ts / kWindowMicros) % kWindows;
      const bool incident = window == incident_a || window == incident_b;
      const bool fail = incident ? rng_.OneIn(4) : rng_.OneIn(500);
      const uint64_t api = rng_.Uniform(12);
      const uint64_t ip = rng_.Uniform(64);
      // Latency tail: incident failures are timeout storms (>= 1.5 s);
      // background failures are moderate; successes are fast.
      const int64_t latency =
          fail ? (incident ? 1500 + static_cast<int64_t>(rng_.Uniform(1500))
                           : 300 + static_cast<int64_t>(rng_.Uniform(600)))
               : static_cast<int64_t>(rng_.Uniform(250));
      batch.AddRow({
          logblock::Value::Int64(static_cast<int64_t>(tenant)),
          logblock::Value::Int64(ts),
          logblock::Value::String("192.168." + std::to_string(ip / 16) + "." +
                                  std::to_string(ip % 16 * 8)),
          logblock::Value::Int64(latency),
          logblock::Value::String(fail ? "true" : "false"),
          logblock::Value::String(MakeLogLine(api, fail, latency)),
      });
    }
    return batch;
  }

  static constexpr uint64_t kWindows = 16;
  static constexpr int64_t kWindowMicros = 3ll * 3600 * 1'000'000;  // 3h

 private:
  std::string MakeLogLine(uint64_t api, bool fail, int64_t latency) {
    static const char* kVerbs[] = {"GET", "POST", "PUT", "DELETE"};
    std::string line = kVerbs[api % 4];
    line += " /api/v1/";
    static const char* kResources[] = {"instances", "databases", "backups",
                                       "metrics",   "users",     "sessions"};
    line += kResources[api % 6];
    line += fail ? " failed: connection timeout after " : " completed in ";
    line += std::to_string(latency);
    // Unique request/trace ids: real log lines carry high-entropy tokens,
    // which is what bounds their compressibility.
    char ids[64];
    snprintf(ids, sizeof(ids), "ms req=%08llx trace=%08llx",
             static_cast<unsigned long long>(rng_.Next() & 0xffffffff),
             static_cast<unsigned long long>(rng_.Next() & 0xffffffff));
    line += ids;
    return line;
  }

  Random rng_;
  logblock::Schema schema_;
};

}  // namespace logstore::workload

#endif  // LOGSTORE_WORKLOAD_LOGGEN_H_
