#ifndef LOGSTORE_WORKLOAD_QUERYGEN_H_
#define LOGSTORE_WORKLOAD_QUERYGEN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "query/predicate.h"

namespace logstore::workload {

// Generates the §6.3 query set: "six queries with different filtering
// predicates are generated for each tenant", all instances of the paper's
// single-tenant retrieval template with varying time spans and conditions.
class QueryGenerator {
 public:
  explicit QueryGenerator(uint64_t seed = 11) : rng_(seed) {}

  // Six templated queries for `tenant` over history [ts_begin, ts_end).
  std::vector<query::LogQuery> TenantQuerySet(uint64_t tenant,
                                              int64_t ts_begin,
                                              int64_t ts_end) {
    const int64_t span = ts_end - ts_begin;
    std::vector<query::LogQuery> queries;

    // 1. Narrow time slice, no further predicates ("recent logs").
    queries.push_back(Base(tenant, ts_end - span / 48, ts_end));

    // 2. One-hour-equivalent window + source-IP equality.
    {
      auto q = Base(tenant, ts_begin + span / 4, ts_begin + span / 4 + span / 48);
      q.predicates.push_back(query::Predicate::StringEq(
          "ip", "192.168." + std::to_string(rng_.Uniform(4)) + "." +
                    std::to_string(rng_.Uniform(16) * 8)));
      queries.push_back(q);
    }

    // 3. Half the history + a selective latency floor (unindexed column:
    //    served by block-SMA skipping, since latency spikes are bursty).
    {
      auto q = Base(tenant, ts_begin + span / 2, ts_end);
      q.predicates.push_back(query::Predicate::Int64Compare(
          "latency", query::CompareOp::kGe, 1500));
      queries.push_back(q);
    }

    // 4. Failures over the whole history.
    {
      auto q = Base(tenant, ts_begin, ts_end);
      q.predicates.push_back(query::Predicate::StringEq("fail", "true"));
      queries.push_back(q);
    }

    // 5. Full-text search for timeouts.
    {
      auto q = Base(tenant, ts_begin, ts_end);
      q.predicates.push_back(query::Predicate::Match("log", "timeout"));
      queries.push_back(q);
    }

    // 6. The full paper template: time + ip + latency + fail.
    {
      auto q = Base(tenant, ts_begin + span / 3, ts_begin + 2 * span / 3);
      q.predicates.push_back(query::Predicate::StringEq(
          "ip", "192.168." + std::to_string(rng_.Uniform(4)) + "." +
                    std::to_string(rng_.Uniform(16) * 8)));
      q.predicates.push_back(query::Predicate::Int64Compare(
          "latency", query::CompareOp::kGe, 100));
      q.predicates.push_back(query::Predicate::StringEq("fail", "false"));
      queries.push_back(q);
    }
    return queries;
  }

 private:
  query::LogQuery Base(uint64_t tenant, int64_t ts_min, int64_t ts_max) {
    query::LogQuery q;
    q.tenant_id = tenant;
    q.ts_min = ts_min;
    q.ts_max = ts_max;
    q.select_columns = {"log"};
    // Interactive log retrieval pages its results; the paper's latencies
    // are per such query, not per full-history export.
    q.limit = 500;
    return q;
  }

  Random rng_;
};

}  // namespace logstore::workload

#endif  // LOGSTORE_WORKLOAD_QUERYGEN_H_
