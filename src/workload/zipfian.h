#ifndef LOGSTORE_WORKLOAD_ZIPFIAN_H_
#define LOGSTORE_WORKLOAD_ZIPFIAN_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/random.h"

namespace logstore::workload {

// Zipfian distribution over [0, n) with skew parameter theta, as used by
// YCSB (Gray et al.'s rejection-free method). theta = 0 degenerates to
// uniform; theta = 0.99 reproduces the production skew of Figure 2/11
// ("the weight of tenant k is proportional to (1/k)^theta").
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : n_(n), theta_(theta), rng_(seed) {
    zetan_ = Zeta(n, theta);
    zeta2_ = Zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2_ / zetan_);
  }

  // Next sample; rank 0 is the most popular item.
  uint64_t Next() {
    if (theta_ == 0.0) return rng_.Uniform(n_);
    const double u = rng_.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    return static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  }

  // The exact probability mass of rank k under the distribution.
  double Weight(uint64_t k) const {
    if (theta_ == 0.0) return 1.0 / static_cast<double>(n_);
    return 1.0 / (std::pow(static_cast<double>(k + 1), theta_) * zetan_);
  }

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(uint64_t n, double theta) {
    double sum = 0;
    for (uint64_t i = 1; i <= n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    }
    return sum;
  }

  const uint64_t n_;
  const double theta_;
  Random rng_;
  double zetan_, zeta2_, alpha_, eta_;
};

// Deterministic per-tenant traffic shares: share(k) proportional to
// (1/(k+1))^theta, normalized to sum 1. Used to assign steady-state tenant
// write rates in the traffic simulations.
inline std::vector<double> ZipfianShares(uint64_t n, double theta) {
  std::vector<double> shares(n);
  double total = 0;
  for (uint64_t k = 0; k < n; ++k) {
    shares[k] = 1.0 / std::pow(static_cast<double>(k + 1), theta);
    total += shares[k];
  }
  for (double& share : shares) share /= total;
  return shares;
}

}  // namespace logstore::workload

#endif  // LOGSTORE_WORKLOAD_ZIPFIAN_H_
