#ifndef LOGSTORE_LOGBLOCK_FORMAT_H_
#define LOGSTORE_LOGBLOCK_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "compress/codec.h"
#include "index/sma.h"
#include "logblock/schema.h"

namespace logstore::logblock {

// ---------------------------------------------------------------------------
// On-storage layout of a LogBlock (paper Figure 4).
//
// A LogBlock is one immutable object on the object store, packaged as a
// seekable tar (objectstore::TarWriter) with these members:
//
//   "meta"       part 1+2+4: schema info, row count, compress type, and per
//                column: index type, column SMA, and the column block
//                headers (row count, block SMA, data/bitset offsets)
//   "index/<i>"  part 3 for column ordinal i: inverted-index or BKD bytes
//   "data/<i>"   part 5: concatenated column block chunks; each chunk is
//                [varint32 bitset_len][bitset][codec-compressed values]
//
// The tar manifest plays the role of Figure 4's top-level offset table; the
// "meta" member carries everything needed to plan reads, so a query touches
// only: tar header -> meta -> (indexes it needs) -> (blocks it needs).
// ---------------------------------------------------------------------------

inline std::string MetaMemberName() { return "meta"; }
// BKD (numeric) indexes are one member; inverted indexes are split into a
// small term dictionary plus a postings member so probes can range-read
// only the postings of the probed terms (Lucene's tim/doc split).
inline std::string IndexMemberName(size_t col) {
  return "index/" + std::to_string(col);
}
inline std::string IndexDictMemberName(size_t col) {
  return "index/" + std::to_string(col) + ".dict";
}
inline std::string IndexPostingsMemberName(size_t col) {
  return "index/" + std::to_string(col) + ".post";
}
inline std::string DataMemberName(size_t col) {
  return "data/" + std::to_string(col);
}

// Header of one column block within a column's data member (Figure 4 part 4).
struct ColumnBlockMeta {
  uint32_t row_count = 0;
  uint32_t first_row = 0;  // global row id of the block's first row
  uint64_t offset = 0;     // chunk offset within "data/<i>"
  uint64_t size = 0;       // chunk size
  index::Int64Sma int_sma;
  index::StringSma str_sma;
};

// Figure 4 part 2: per-column metadata.
struct ColumnMeta {
  IndexType index_type = IndexType::kNone;
  uint64_t index_size = 0;  // size of "index/<i>" (0 when kNone)
  index::Int64Sma int_sma;
  index::StringSma str_sma;
  std::vector<ColumnBlockMeta> blocks;
};

// Figure 4 part 1 plus the column metas.
struct LogBlockMeta {
  Schema schema;
  uint32_t row_count = 0;
  compress::CodecType codec = compress::CodecType::kLzRatio;
  uint64_t tenant_id = 0;
  // Time span covered, for the tenant-level LogBlock map (§3.1/§5.1).
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  std::vector<ColumnMeta> columns;

  void EncodeTo(std::string* dst) const;
  static Result<LogBlockMeta> DecodeFrom(Slice* input);
};

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_FORMAT_H_
