#ifndef LOGSTORE_LOGBLOCK_SCHEMA_H_
#define LOGSTORE_LOGBLOCK_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace logstore::logblock {

// Column value types. Timestamps are int64 microseconds; booleans are
// stored as strings ("true"/"false") matching the paper's sample schema
// where `fail = 'false'` is a string predicate.
enum class ColumnType : uint8_t {
  kInt64 = 0,
  kString = 1,
};

// Per-column index choices (§3.2): inverted index for strings, BKD tree for
// numerics, or none (the paper's Figure 8 shows `latency` without an index,
// filtered by block SMA + scan).
enum class IndexType : uint8_t {
  kNone = 0,
  kInverted = 1,
  kBkd = 2,
};

// What an inverted index stores for a string column. Exact-only suits
// identifier-like columns (ip, fail); tokens-only suits free text queried
// with MATCH; both doubles the index for columns queried either way.
enum class Analyzer : uint8_t {
  kExactAndTokens = 0,
  kExactOnly = 1,
  kTokensOnly = 2,
};

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kString;
  bool indexed = true;
  Analyzer analyzer = Analyzer::kExactAndTokens;

  IndexType index_type() const {
    if (!indexed) return IndexType::kNone;
    return type == ColumnType::kInt64 ? IndexType::kBkd : IndexType::kInverted;
  }
};

// A LogBlock is self-contained (§3.2): the full schema is embedded in every
// block so a block "can still be resolved after being renamed or moved".
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns)
      : columns_(std::move(columns)) {}

  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }

  // Returns the column position or -1.
  int FindColumn(const Slice& name) const {
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (Slice(columns_[i].name) == name) return static_cast<int>(i);
    }
    return -1;
  }

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, static_cast<uint32_t>(columns_.size()));
    for (const ColumnDef& col : columns_) {
      PutLengthPrefixedSlice(dst, col.name);
      dst->push_back(static_cast<char>(col.type));
      dst->push_back(col.indexed ? 1 : 0);
      dst->push_back(static_cast<char>(col.analyzer));
    }
  }

  static Result<Schema> DecodeFrom(Slice* input) {
    uint32_t count;
    if (!GetVarint32(input, &count)) {
      return Status::Corruption("schema: bad column count");
    }
    std::vector<ColumnDef> columns;
    columns.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      Slice name;
      if (!GetLengthPrefixedSlice(input, &name) || input->size() < 3) {
        return Status::Corruption("schema: truncated column def");
      }
      ColumnDef col;
      col.name = name.ToString();
      col.type = static_cast<ColumnType>((*input)[0]);
      col.indexed = (*input)[1] != 0;
      col.analyzer = static_cast<Analyzer>((*input)[2]);
      if (col.type != ColumnType::kInt64 && col.type != ColumnType::kString) {
        return Status::Corruption("schema: unknown column type");
      }
      if (col.analyzer != Analyzer::kExactAndTokens &&
          col.analyzer != Analyzer::kExactOnly &&
          col.analyzer != Analyzer::kTokensOnly) {
        return Status::Corruption("schema: unknown analyzer");
      }
      input->remove_prefix(3);
      columns.push_back(std::move(col));
    }
    return Schema(std::move(columns));
  }

  bool operator==(const Schema& other) const {
    if (columns_.size() != other.columns_.size()) return false;
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (columns_[i].name != other.columns_[i].name ||
          columns_[i].type != other.columns_[i].type ||
          columns_[i].indexed != other.columns_[i].indexed ||
          columns_[i].analyzer != other.columns_[i].analyzer) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<ColumnDef> columns_;
};

// The audit-log table used throughout the paper's examples and evaluation:
//   SELECT log FROM request_log WHERE tenant_id = .. AND ts >= .. AND
//     ts <= .. AND ip = '..' AND latency >= 100 AND fail = 'false'
// Index choices mirror Figure 8: `latency` is unindexed (block-SMA +
// scan path); `ts` is also unindexed because LogBlocks are time-ordered,
// so block SMA prunes time ranges exactly and a BKD tree would only add
// bytes; `ip`/`fail` are exact-match identifiers; `log` is free text.
inline Schema RequestLogSchema() {
  return Schema({
      {"tenant_id", ColumnType::kInt64, true, Analyzer::kExactAndTokens},
      {"ts", ColumnType::kInt64, false, Analyzer::kExactAndTokens},
      {"ip", ColumnType::kString, true, Analyzer::kExactOnly},
      {"latency", ColumnType::kInt64, false, Analyzer::kExactAndTokens},
      {"fail", ColumnType::kString, true, Analyzer::kExactOnly},
      {"log", ColumnType::kString, true, Analyzer::kTokensOnly},
  });
}

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_SCHEMA_H_
