#include "logblock/logblock_map.h"

#include <algorithm>

#include "common/coding.h"

namespace logstore::logblock {

void LogBlockMap::Add(LogBlockEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& blocks = tenants_[entry.tenant_id];
  // Insert keeping chronological order; builders emit mostly in order so
  // this is usually an append.
  auto pos = std::upper_bound(
      blocks.begin(), blocks.end(), entry,
      [](const LogBlockEntry& a, const LogBlockEntry& b) {
        return a.min_ts != b.min_ts ? a.min_ts < b.min_ts
                                    : a.object_key < b.object_key;
      });
  blocks.insert(pos, std::move(entry));
}

std::vector<LogBlockEntry> LogBlockMap::Prune(uint64_t tenant_id,
                                              int64_t ts_lo,
                                              int64_t ts_hi) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogBlockEntry> result;
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return result;
  for (const LogBlockEntry& block : it->second) {
    if (block.max_ts >= ts_lo && block.min_ts <= ts_hi) result.push_back(block);
  }
  return result;
}

std::vector<LogBlockEntry> LogBlockMap::TenantBlocks(
    uint64_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? std::vector<LogBlockEntry>() : it->second;
}

std::vector<LogBlockEntry> LogBlockMap::ExpireBefore(uint64_t tenant_id,
                                                     int64_t cutoff_ts) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogBlockEntry> expired;
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return expired;
  auto& blocks = it->second;
  auto keep = blocks.begin();
  for (auto& block : blocks) {
    if (block.max_ts < cutoff_ts) {
      expired.push_back(std::move(block));
    } else {
      *keep++ = std::move(block);
    }
  }
  blocks.erase(keep, blocks.end());
  if (blocks.empty()) tenants_.erase(it);
  return expired;
}

uint64_t LogBlockMap::TenantBytes(uint64_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  if (it == tenants_.end()) return 0;
  uint64_t total = 0;
  for (const LogBlockEntry& block : it->second) total += block.size_bytes;
  return total;
}

uint64_t LogBlockMap::TenantBlockCount(uint64_t tenant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant_id);
  return it == tenants_.end() ? 0 : it->second.size();
}

std::vector<uint64_t> LogBlockMap::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> tenants;
  tenants.reserve(tenants_.size());
  for (const auto& [tenant, _] : tenants_) tenants.push_back(tenant);
  return tenants;
}

size_t LogBlockMap::TotalBlocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [_, blocks] : tenants_) total += blocks.size();
  return total;
}

void LogBlockMap::EncodeTo(std::string* dst) const {
  std::lock_guard<std::mutex> lock(mu_);
  PutVarint64(dst, tenants_.size());
  for (const auto& [tenant, blocks] : tenants_) {
    PutVarint64(dst, tenant);
    PutVarint32(dst, static_cast<uint32_t>(blocks.size()));
    for (const LogBlockEntry& block : blocks) {
      PutVarsint64(dst, block.min_ts);
      PutVarsint64(dst, block.max_ts);
      PutLengthPrefixedSlice(dst, block.object_key);
      PutVarint64(dst, block.size_bytes);
      PutVarint32(dst, block.row_count);
    }
  }
}

Status LogBlockMap::DecodeFrom(Slice* input, LogBlockMap* map) {
  {
    std::lock_guard<std::mutex> lock(map->mu_);
    map->tenants_.clear();
  }
  uint64_t tenant_count;
  if (!GetVarint64(input, &tenant_count)) {
    return Status::Corruption("logblock map: bad tenant count");
  }
  for (uint64_t t = 0; t < tenant_count; ++t) {
    uint64_t tenant;
    uint32_t block_count;
    if (!GetVarint64(input, &tenant) || !GetVarint32(input, &block_count)) {
      return Status::Corruption("logblock map: truncated tenant");
    }
    for (uint32_t b = 0; b < block_count; ++b) {
      LogBlockEntry entry;
      entry.tenant_id = tenant;
      Slice key;
      if (!GetVarsint64(input, &entry.min_ts) ||
          !GetVarsint64(input, &entry.max_ts) ||
          !GetLengthPrefixedSlice(input, &key) ||
          !GetVarint64(input, &entry.size_bytes) ||
          !GetVarint32(input, &entry.row_count)) {
        return Status::Corruption("logblock map: truncated entry");
      }
      entry.object_key = key.ToString();
      map->Add(std::move(entry));
    }
  }
  return Status::OK();
}

}  // namespace logstore::logblock
