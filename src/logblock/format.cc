#include "logblock/format.h"

#include "common/coding.h"

namespace logstore::logblock {

namespace {
constexpr uint32_t kMetaMagic = 0x4c424d31;  // "LBM1"
}  // namespace

void LogBlockMeta::EncodeTo(std::string* dst) const {
  PutFixed32(dst, kMetaMagic);
  schema.EncodeTo(dst);
  PutVarint32(dst, row_count);
  dst->push_back(static_cast<char>(codec));
  PutVarint64(dst, tenant_id);
  PutVarsint64(dst, min_ts);
  PutVarsint64(dst, max_ts);
  PutVarint32(dst, static_cast<uint32_t>(columns.size()));
  for (const ColumnMeta& col : columns) {
    dst->push_back(static_cast<char>(col.index_type));
    PutVarint64(dst, col.index_size);
    col.int_sma.EncodeTo(dst);
    col.str_sma.EncodeTo(dst);
    PutVarint32(dst, static_cast<uint32_t>(col.blocks.size()));
    for (const ColumnBlockMeta& block : col.blocks) {
      PutVarint32(dst, block.row_count);
      PutVarint32(dst, block.first_row);
      PutVarint64(dst, block.offset);
      PutVarint64(dst, block.size);
      block.int_sma.EncodeTo(dst);
      block.str_sma.EncodeTo(dst);
    }
  }
}

Result<LogBlockMeta> LogBlockMeta::DecodeFrom(Slice* input) {
  uint32_t magic;
  if (!GetFixed32(input, &magic) || magic != kMetaMagic) {
    return Status::Corruption("logblock meta: bad magic");
  }
  LogBlockMeta meta;
  auto schema = Schema::DecodeFrom(input);
  if (!schema.ok()) return schema.status();
  meta.schema = std::move(schema).value();

  if (!GetVarint32(input, &meta.row_count) || input->empty()) {
    return Status::Corruption("logblock meta: truncated header");
  }
  meta.codec = static_cast<compress::CodecType>((*input)[0]);
  input->remove_prefix(1);
  if (compress::GetCodec(meta.codec) == nullptr) {
    return Status::Corruption("logblock meta: unknown codec");
  }

  uint32_t column_count;
  if (!GetVarint64(input, &meta.tenant_id) ||
      !GetVarsint64(input, &meta.min_ts) ||
      !GetVarsint64(input, &meta.max_ts) ||
      !GetVarint32(input, &column_count)) {
    return Status::Corruption("logblock meta: truncated header");
  }
  if (column_count != meta.schema.num_columns()) {
    return Status::Corruption("logblock meta: column count mismatch");
  }

  meta.columns.resize(column_count);
  for (uint32_t c = 0; c < column_count; ++c) {
    ColumnMeta& col = meta.columns[c];
    if (input->empty()) return Status::Corruption("logblock meta: truncated");
    col.index_type = static_cast<IndexType>((*input)[0]);
    input->remove_prefix(1);
    uint32_t block_count;
    if (!GetVarint64(input, &col.index_size) ||
        !col.int_sma.DecodeFrom(input) || !col.str_sma.DecodeFrom(input) ||
        !GetVarint32(input, &block_count)) {
      return Status::Corruption("logblock meta: truncated column meta");
    }
    col.blocks.resize(block_count);
    for (uint32_t b = 0; b < block_count; ++b) {
      ColumnBlockMeta& block = col.blocks[b];
      if (!GetVarint32(input, &block.row_count) ||
          !GetVarint32(input, &block.first_row) ||
          !GetVarint64(input, &block.offset) ||
          !GetVarint64(input, &block.size) ||
          !block.int_sma.DecodeFrom(input) ||
          !block.str_sma.DecodeFrom(input)) {
        return Status::Corruption("logblock meta: truncated block meta");
      }
    }
  }
  return meta;
}

}  // namespace logstore::logblock
