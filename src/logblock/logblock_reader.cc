#include "logblock/logblock_reader.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"

namespace logstore::logblock {

namespace {

// A source returning fewer bytes than a member's recorded extent means the
// object was truncated in flight (or on the store). Classified as IOError —
// the transient/retryable class — not Corruption, so a retrying source
// above can be given another chance by the caller.
Status CheckFullRead(const std::string& bytes, uint64_t want,
                     const char* what) {
  if (bytes.size() < want) {
    return Status::IOError(std::string("truncated read of ") + what +
                           ": got " + std::to_string(bytes.size()) + " of " +
                           std::to_string(want) + " bytes");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<LogBlockReader>> LogBlockReader::Open(
    std::shared_ptr<LogBlockSource> source) {
  // 1. Fixed-size prologue tells us the tar header extent.
  auto prologue =
      source->ReadRange(0, objectstore::TarReader::kPrologueSize);
  if (!prologue.ok()) return prologue.status();
  auto header_size = objectstore::TarReader::HeaderSize(*prologue);
  if (!header_size.ok()) return header_size.status();

  // 2. Fetch the full tar header and parse the manifest.
  auto head = source->ReadRange(0, *header_size);
  if (!head.ok()) return head.status();
  LOGSTORE_RETURN_IF_ERROR(CheckFullRead(*head, *header_size, "tar header"));
  auto tar = objectstore::TarReader::Parse(*head);
  if (!tar.ok()) return tar.status();

  // 3. Fetch and decode the meta member.
  auto meta_member = tar->Find(MetaMemberName());
  if (!meta_member.ok()) return meta_member.status();
  auto meta_bytes = source->ReadRange(meta_member->offset, meta_member->size);
  if (!meta_bytes.ok()) return meta_bytes.status();
  LOGSTORE_RETURN_IF_ERROR(
      CheckFullRead(*meta_bytes, meta_member->size, "meta member"));
  Slice meta_in(*meta_bytes);
  auto meta = LogBlockMeta::DecodeFrom(&meta_in);
  if (!meta.ok()) return meta.status();

  std::unique_ptr<LogBlockReader> reader(new LogBlockReader());
  reader->source_ = std::move(source);
  reader->tar_ = std::move(tar).value();
  reader->meta_ = std::move(meta).value();
  return reader;
}

Result<ByteRange> LogBlockReader::MemberRange(const std::string& name) const {
  auto member = tar_.Find(name);
  if (!member.ok()) return member.status();
  return ByteRange{member->offset, member->size};
}

Result<ByteRange> LogBlockReader::ColumnBlockRange(size_t col,
                                                   size_t block_idx) const {
  if (col >= meta_.columns.size()) {
    return Status::InvalidArgument("column out of range");
  }
  if (block_idx >= meta_.columns[col].blocks.size()) {
    return Status::InvalidArgument("block out of range");
  }
  auto member = tar_.Find(DataMemberName(col));
  if (!member.ok()) return member.status();
  const ColumnBlockMeta& block = meta_.columns[col].blocks[block_idx];
  return ByteRange{member->offset + block.offset, block.size};
}

Result<std::shared_ptr<index::InvertedIndexDict>> LogBlockReader::InvertedDict(
    size_t col) {
  if (col >= meta_.columns.size() ||
      meta_.columns[col].index_type != IndexType::kInverted) {
    return Status::NotFound("column has no inverted index");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = dict_cache_.find(col);
    if (it != dict_cache_.end()) return it->second;
  }
  auto range = MemberRange(IndexDictMemberName(col));
  if (!range.ok()) return range.status();
  auto bytes = source_->ReadRange(range->offset, range->size);
  if (!bytes.ok()) return bytes.status();
  LOGSTORE_RETURN_IF_ERROR(CheckFullRead(*bytes, range->size, "index dict"));
  auto dict = index::InvertedIndexDict::Open(std::move(bytes).value());
  if (!dict.ok()) return dict.status();
  auto shared =
      std::make_shared<index::InvertedIndexDict>(std::move(dict).value());
  std::lock_guard<std::mutex> lock(cache_mu_);
  dict_cache_[col] = shared;
  return shared;
}

Result<index::RowIdSet> LogBlockReader::FetchPostings(
    size_t col, const index::PostingsRef& ref) {
  auto member = MemberRange(IndexPostingsMemberName(col));
  if (!member.ok()) return member.status();
  if (ref.offset + ref.length > member->size) {
    return Status::Corruption("postings ref out of member range");
  }
  auto bytes = source_->ReadRange(member->offset + ref.offset, ref.length);
  if (!bytes.ok()) return bytes.status();
  LOGSTORE_RETURN_IF_ERROR(CheckFullRead(*bytes, ref.length, "postings"));
  return index::DecodePostings(*bytes, ref.doc_count, meta_.row_count);
}

Result<index::RowIdSet> LogBlockReader::InvertedLookupExact(
    size_t col, const Slice& value) {
  auto dict = InvertedDict(col);
  if (!dict.ok()) return dict.status();
  const auto ref =
      (*dict)->Lookup(index::InvertedIndexWriter::ExactTerm(value));
  if (!ref.has_value()) return index::RowIdSet(meta_.row_count);
  return FetchPostings(col, *ref);
}

Result<index::RowIdSet> LogBlockReader::InvertedMatchAllTokens(
    size_t col, const Slice& text) {
  auto dict = InvertedDict(col);
  if (!dict.ok()) return dict.status();
  const auto tokens = index::Tokenize(text);
  if (tokens.empty()) return index::RowIdSet::All(meta_.row_count);

  // Resolve refs first; a missing token empties the conjunction without
  // any postings IO. Prefetch the postings ranges of the rest.
  std::vector<index::PostingsRef> refs;
  refs.reserve(tokens.size());
  for (const std::string& token : tokens) {
    const auto ref = (*dict)->LookupToken(token);
    if (!ref.has_value()) return index::RowIdSet(meta_.row_count);
    refs.push_back(*ref);
  }
  if (refs.size() > 1) {
    auto member = MemberRange(IndexPostingsMemberName(col));
    if (member.ok()) {
      std::vector<ByteRange> ranges;
      for (const auto& ref : refs) {
        ranges.push_back({member->offset + ref.offset, ref.length});
      }
      (void)source_->Prefetch(ranges);
    }
  }

  auto result = FetchPostings(col, refs[0]);
  if (!result.ok()) return result.status();
  for (size_t i = 1; i < refs.size() && !result->Empty(); ++i) {
    auto rows = FetchPostings(col, refs[i]);
    if (!rows.ok()) return rows.status();
    result->IntersectWith(*rows);
  }
  return result;
}

Result<std::shared_ptr<index::BkdTreeReader>> LogBlockReader::BkdIndex(
    size_t col) {
  if (col >= meta_.columns.size() ||
      meta_.columns[col].index_type != IndexType::kBkd) {
    return Status::NotFound("column has no BKD index");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto it = bkd_cache_.find(col);
    if (it != bkd_cache_.end()) return it->second;
  }
  auto range = MemberRange(IndexMemberName(col));
  if (!range.ok()) return range.status();
  auto bytes = source_->ReadRange(range->offset, range->size);
  if (!bytes.ok()) return bytes.status();
  LOGSTORE_RETURN_IF_ERROR(CheckFullRead(*bytes, range->size, "bkd index"));
  auto reader = index::BkdTreeReader::Open(std::move(bytes).value());
  if (!reader.ok()) return reader.status();
  auto shared =
      std::make_shared<index::BkdTreeReader>(std::move(reader).value());
  std::lock_guard<std::mutex> lock(cache_mu_);
  bkd_cache_[col] = shared;
  return shared;
}

Result<DecodedColumnBlock> LogBlockReader::ReadColumnBlock(size_t col,
                                                           size_t block_idx) {
  auto range = ColumnBlockRange(col, block_idx);
  if (!range.ok()) return range.status();
  auto chunk = source_->ReadRange(range->offset, range->size);
  if (!chunk.ok()) return chunk.status();
  LOGSTORE_RETURN_IF_ERROR(CheckFullRead(*chunk, range->size, "column block"));

  const ColumnBlockMeta& block_meta = meta_.columns[col].blocks[block_idx];
  Slice in(*chunk);
  uint32_t bitset_len;
  if (!GetVarint32(&in, &bitset_len) || in.size() < bitset_len) {
    return Status::Corruption("column block: bad bitset");
  }
  in.remove_prefix(bitset_len);  // validity bitmap; all rows valid today

  uint32_t masked_crc;
  if (!GetFixed32(&in, &masked_crc)) {
    return Status::Corruption("column block: missing checksum");
  }
  if (crc32c::Unmask(masked_crc) != crc32c::Value(in.data(), in.size())) {
    return Status::Corruption("column block: checksum mismatch");
  }

  const compress::Codec* codec = compress::GetCodec(meta_.codec);
  std::string values;
  LOGSTORE_RETURN_IF_ERROR(codec->Decompress(in, &values));

  // Batch decode: one tight loop filling a contiguous typed vector, instead
  // of a Get* + push_back round trip per value.
  DecodedColumnBlock decoded;
  decoded.first_row = block_meta.first_row;
  Slice v(values);
  if (meta_.schema.column(col).type == ColumnType::kInt64) {
    if (!compress::DecodeVarsint64Batch(&v, block_meta.row_count,
                                        &decoded.ints)) {
      return Status::Corruption("column block: truncated int values");
    }
  } else {
    if (!compress::DecodeLengthPrefixedBatch(&v, block_meta.row_count,
                                             &decoded.strs)) {
      return Status::Corruption("column block: truncated string values");
    }
  }
  if (!v.empty()) {
    return Status::Corruption("column block: trailing bytes");
  }
  return decoded;
}

Result<size_t> LogBlockReader::BlockIndexForRow(size_t col,
                                                uint32_t row) const {
  if (col >= meta_.columns.size()) {
    return Status::InvalidArgument("column out of range");
  }
  const auto& blocks = meta_.columns[col].blocks;
  // Binary search on first_row.
  size_t lo = 0, hi = blocks.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (blocks[mid].first_row + blocks[mid].row_count <= row) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == blocks.size() || blocks[lo].first_row > row) {
    return Status::InvalidArgument("row out of range");
  }
  return lo;
}

Result<std::vector<Value>> LogBlockReader::ReadValuesAt(
    size_t col, const std::vector<uint32_t>& sorted_rows) {
  std::vector<Value> out;
  out.reserve(sorted_rows.size());
  const bool is_int = meta_.schema.column(col).type == ColumnType::kInt64;

  size_t i = 0;
  while (i < sorted_rows.size()) {
    auto block_idx = BlockIndexForRow(col, sorted_rows[i]);
    if (!block_idx.ok()) return block_idx.status();
    const ColumnBlockMeta& block_meta = meta_.columns[col].blocks[*block_idx];
    auto decoded = ReadColumnBlock(col, *block_idx);
    if (!decoded.ok()) return decoded.status();

    const uint32_t block_end = block_meta.first_row + block_meta.row_count;
    for (; i < sorted_rows.size() && sorted_rows[i] < block_end; ++i) {
      const uint32_t offset_in_block = sorted_rows[i] - block_meta.first_row;
      if (is_int) {
        out.push_back(Value::Int64(decoded->ints[offset_in_block]));
      } else {
        out.push_back(Value::String(decoded->strs[offset_in_block]));
      }
    }
  }
  return out;
}

}  // namespace logstore::logblock
