#ifndef LOGSTORE_LOGBLOCK_LOGBLOCK_WRITER_H_
#define LOGSTORE_LOGBLOCK_LOGBLOCK_WRITER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "compress/codec.h"
#include "logblock/format.h"
#include "logblock/row_batch.h"

namespace logstore::logblock {

struct LogBlockWriterOptions {
  compress::CodecType codec = compress::CodecType::kLzRatio;
  // Rows per column block; the granularity of block-level SMA skipping.
  uint32_t rows_per_block = 4096;
  uint32_t bkd_leaf_size = 256;
  // Name of the timestamp column used for the block's [min_ts, max_ts]
  // span in the LogBlock map; empty disables the span.
  std::string ts_column = "ts";
};

// Converts row-major tenant data into the immutable LogBlock package
// (Figure 4) — the data builder's "remote archiving" step. The returned
// bytes are uploaded to the object store as a single object.
struct BuiltLogBlock {
  std::string data;       // full tar package
  LogBlockMeta meta;      // the embedded meta, for catalog registration
};

Result<BuiltLogBlock> BuildLogBlock(const RowBatch& rows, uint64_t tenant_id,
                                    const LogBlockWriterOptions& options = {});

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_LOGBLOCK_WRITER_H_
