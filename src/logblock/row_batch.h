#ifndef LOGSTORE_LOGBLOCK_ROW_BATCH_H_
#define LOGSTORE_LOGBLOCK_ROW_BATCH_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "logblock/schema.h"

namespace logstore::logblock {

// A dynamically-typed cell value.
struct Value {
  ColumnType type = ColumnType::kInt64;
  int64_t i = 0;
  std::string s;

  static Value Int64(int64_t v) {
    Value value;
    value.type = ColumnType::kInt64;
    value.i = v;
    return value;
  }
  static Value String(std::string v) {
    Value value;
    value.type = ColumnType::kString;
    value.s = std::move(v);
    return value;
  }

  bool operator==(const Value& other) const {
    if (type != other.type) return false;
    return type == ColumnType::kInt64 ? i == other.i : s == other.s;
  }
};

// Column-major in-memory rows, the unit handed from the row store to the
// LogBlock writer and back from the reader to query execution.
class RowBatch {
 public:
  explicit RowBatch(Schema schema) : schema_(std::move(schema)) {
    ints_.resize(schema_.num_columns());
    strs_.resize(schema_.num_columns());
  }

  const Schema& schema() const { return schema_; }
  uint32_t num_rows() const { return num_rows_; }

  // Appends a row; `values` must match the schema arity and types.
  void AddRow(const std::vector<Value>& values) {
    assert(values.size() == schema_.num_columns());
    for (size_t c = 0; c < values.size(); ++c) {
      assert(values[c].type == schema_.column(c).type);
      if (schema_.column(c).type == ColumnType::kInt64) {
        ints_[c].push_back(values[c].i);
      } else {
        strs_[c].push_back(values[c].s);
      }
    }
    ++num_rows_;
  }

  int64_t Int64At(size_t col, uint32_t row) const { return ints_[col][row]; }
  const std::string& StringAt(size_t col, uint32_t row) const {
    return strs_[col][row];
  }

  const std::vector<int64_t>& Int64Column(size_t col) const {
    return ints_[col];
  }
  const std::vector<std::string>& StringColumn(size_t col) const {
    return strs_[col];
  }

  Value ValueAt(size_t col, uint32_t row) const {
    if (schema_.column(col).type == ColumnType::kInt64) {
      return Value::Int64(ints_[col][row]);
    }
    return Value::String(strs_[col][row]);
  }

  // Approximate memory footprint, used for flush thresholds and queue
  // byte budgets.
  uint64_t ApproximateBytes() const {
    uint64_t bytes = 0;
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      bytes += ints_[c].size() * sizeof(int64_t);
      for (const std::string& s : strs_[c]) bytes += s.size() + 16;
    }
    return bytes;
  }

 private:
  Schema schema_;
  uint32_t num_rows_ = 0;
  std::vector<std::vector<int64_t>> ints_;
  std::vector<std::vector<std::string>> strs_;
};

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_ROW_BATCH_H_
