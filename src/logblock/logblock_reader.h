#ifndef LOGSTORE_LOGBLOCK_LOGBLOCK_READER_H_
#define LOGSTORE_LOGBLOCK_LOGBLOCK_READER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/byte_range.h"
#include "common/result.h"
#include "index/bkd_tree.h"
#include "index/inverted_index.h"
#include "logblock/format.h"
#include "logblock/row_batch.h"
#include "objectstore/tar_file.h"

namespace logstore::logblock {

// Byte ranges within a LogBlock object are expressed with the shared
// logstore::ByteRange (common/byte_range.h).
using logstore::ByteRange;

// Abstraction over where LogBlock bytes come from: a raw string (tests), an
// object store key (possibly via caches), etc. Implementations must be
// thread-safe; queries fetch ranges concurrently.
class LogBlockSource {
 public:
  virtual ~LogBlockSource() = default;

  virtual Result<std::string> ReadRange(uint64_t offset, uint64_t size) = 0;

  // Hint that `ranges` will be read soon. Implementations may fetch them in
  // parallel into a cache (§5.2's parallel prefetch); the default is a
  // no-op. `owner` tags the request so a shared prefetch pool can schedule
  // fairly across concurrent queries (0 = untagged).
  virtual Status Prefetch(const std::vector<ByteRange>& ranges,
                          uint64_t owner = 0) {
    (void)ranges;
    (void)owner;
    return Status::OK();
  }
};

// In-memory source over a fully materialized LogBlock package.
class StringSource : public LogBlockSource {
 public:
  explicit StringSource(std::string data) : data_(std::move(data)) {}

  Result<std::string> ReadRange(uint64_t offset, uint64_t size) override {
    if (offset > data_.size()) {
      return Status::InvalidArgument("range offset beyond object");
    }
    const uint64_t n = std::min<uint64_t>(size, data_.size() - offset);
    return data_.substr(offset, n);
  }

 private:
  std::string data_;
};

// A decoded column block: exactly one of the two vectors is populated,
// matching the column type.
struct DecodedColumnBlock {
  uint32_t first_row = 0;
  std::vector<int64_t> ints;
  std::vector<std::string> strs;

  uint32_t row_count() const {
    return static_cast<uint32_t>(ints.empty() ? strs.size() : ints.size());
  }
};

// Reads one LogBlock lazily: opening fetches only the tar header and the
// meta member; indexes and column blocks are fetched on demand (each is one
// ranged read against the source). Thread-safe; decoded indexes are cached
// internally so repeated predicates on the same column pay once.
class LogBlockReader {
 public:
  static Result<std::unique_ptr<LogBlockReader>> Open(
      std::shared_ptr<LogBlockSource> source);

  const LogBlockMeta& meta() const { return meta_; }
  const Schema& schema() const { return meta_.schema; }
  uint32_t num_rows() const { return meta_.row_count; }

  // Byte range of a tar member, for prefetch planning.
  Result<ByteRange> MemberRange(const std::string& name) const;

  // Byte range of one column block chunk.
  Result<ByteRange> ColumnBlockRange(size_t col, size_t block_idx) const;

  // Decoded per-column BKD index. NotFound if the column has no BKD index.
  Result<std::shared_ptr<index::BkdTreeReader>> BkdIndex(size_t col);

  // Inverted-index probes (Lucene-style lazy access): the term dictionary
  // member is fetched once and cached; each probed term then range-reads
  // only its own postings bytes — a selective term costs O(postings), not
  // O(index). NotFound if the column has no inverted index.
  Result<std::shared_ptr<index::InvertedIndexDict>> InvertedDict(size_t col);
  Result<index::RowIdSet> InvertedLookupExact(size_t col, const Slice& value);
  // Conjunction over all analyzed tokens of `text`.
  Result<index::RowIdSet> InvertedMatchAllTokens(size_t col,
                                                 const Slice& text);

  // Decodes one column block (bitset + decompression).
  Result<DecodedColumnBlock> ReadColumnBlock(size_t col, size_t block_idx);

  // Fetches the values of `sorted_rows` (ascending global row ids) from
  // column `col`, touching only the blocks that contain them.
  Result<std::vector<Value>> ReadValuesAt(size_t col,
                                          const std::vector<uint32_t>& sorted_rows);

  // Maps a global row id to the block index containing it.
  Result<size_t> BlockIndexForRow(size_t col, uint32_t row) const;

  // Forwards a prefetch hint to the underlying source (§5.2).
  Status Prefetch(const std::vector<ByteRange>& ranges, uint64_t owner = 0) {
    return source_->Prefetch(ranges, owner);
  }

 private:
  LogBlockReader() = default;

  std::shared_ptr<LogBlockSource> source_;
  objectstore::TarReader tar_;
  LogBlockMeta meta_;

  // Fetches one term's postings as a row-id set.
  Result<index::RowIdSet> FetchPostings(size_t col,
                                        const index::PostingsRef& ref);

  std::mutex cache_mu_;
  std::map<size_t, std::shared_ptr<index::InvertedIndexDict>> dict_cache_;
  std::map<size_t, std::shared_ptr<index::BkdTreeReader>> bkd_cache_;
};

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_LOGBLOCK_READER_H_
