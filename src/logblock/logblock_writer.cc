#include "logblock/logblock_writer.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32c.h"
#include "index/bkd_tree.h"
#include "index/inverted_index.h"
#include "objectstore/tar_file.h"

namespace logstore::logblock {

namespace {

// Encodes the values of rows [begin,end) of column `c` (uncompressed form).
std::string EncodeBlockValues(const RowBatch& rows, size_t c, uint32_t begin,
                              uint32_t end) {
  std::string out;
  if (rows.schema().column(c).type == ColumnType::kInt64) {
    for (uint32_t r = begin; r < end; ++r) {
      PutVarsint64(&out, rows.Int64At(c, r));
    }
  } else {
    for (uint32_t r = begin; r < end; ++r) {
      PutLengthPrefixedSlice(&out, rows.StringAt(c, r));
    }
  }
  return out;
}

}  // namespace

Result<BuiltLogBlock> BuildLogBlock(const RowBatch& rows, uint64_t tenant_id,
                                    const LogBlockWriterOptions& options) {
  if (rows.num_rows() == 0) {
    return Status::InvalidArgument("cannot build an empty LogBlock");
  }
  const compress::Codec* codec = compress::GetCodec(options.codec);
  if (codec == nullptr) {
    return Status::InvalidArgument("unknown codec");
  }
  if (options.rows_per_block == 0) {
    return Status::InvalidArgument("rows_per_block must be positive");
  }

  const Schema& schema = rows.schema();
  const uint32_t num_rows = rows.num_rows();

  LogBlockMeta meta;
  meta.schema = schema;
  meta.row_count = num_rows;
  meta.codec = options.codec;
  meta.tenant_id = tenant_id;
  meta.columns.resize(schema.num_columns());

  objectstore::TarWriter tar;

  // Per-column: build data member (column block chunks) and index members.
  std::vector<std::string> data_members(schema.num_columns());
  std::vector<std::string> index_members(schema.num_columns());  // BKD
  std::vector<index::SerializedInvertedIndex> inverted_members(
      schema.num_columns());

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const ColumnDef& def = schema.column(c);
    ColumnMeta& col_meta = meta.columns[c];
    col_meta.index_type = def.index_type();

    std::string& data = data_members[c];
    for (uint32_t begin = 0; begin < num_rows;
         begin += options.rows_per_block) {
      const uint32_t end = std::min(begin + options.rows_per_block, num_rows);

      ColumnBlockMeta block;
      block.row_count = end - begin;
      block.first_row = begin;
      block.offset = data.size();

      // Block SMA (Figure 4 part 4).
      if (def.type == ColumnType::kInt64) {
        for (uint32_t r = begin; r < end; ++r) {
          block.int_sma.Update(rows.Int64At(c, r));
        }
        col_meta.int_sma.Merge(block.int_sma);
      } else {
        for (uint32_t r = begin; r < end; ++r) {
          block.str_sma.Update(rows.StringAt(c, r));
        }
        col_meta.str_sma.Merge(block.str_sma);
      }

      // Chunk = [bitset][crc][compressed values]. The bitset is the
      // row-validity bitmap of Figure 4 part 5; rows ingested from the row
      // store are all valid, so it is all-ones, but the format keeps it
      // for nullable sources. The masked CRC32C covers the compressed
      // payload, catching storage/transfer corruption before decode.
      const uint32_t bitset_len = (block.row_count + 7) / 8;
      std::string chunk;
      PutVarint32(&chunk, bitset_len);
      chunk.append(bitset_len, '\xff');
      const std::string values = EncodeBlockValues(rows, c, begin, end);
      std::string compressed;
      LOGSTORE_RETURN_IF_ERROR(codec->Compress(values, &compressed));
      PutFixed32(&chunk, crc32c::Mask(crc32c::Value(compressed.data(),
                                                    compressed.size())));
      chunk.append(compressed);

      block.size = chunk.size();
      data.append(chunk);
      col_meta.blocks.push_back(std::move(block));
    }

    // Column index (Figure 4 part 3).
    switch (col_meta.index_type) {
      case IndexType::kInverted: {
        index::InvertedIndexWriter writer(
            def.analyzer != Analyzer::kTokensOnly,
            def.analyzer != Analyzer::kExactOnly);
        for (uint32_t r = 0; r < num_rows; ++r) {
          writer.Add(r, rows.StringAt(c, r));
        }
        inverted_members[c] = writer.Finish();
        break;
      }
      case IndexType::kBkd: {
        index::BkdTreeWriter writer(options.bkd_leaf_size);
        for (uint32_t r = 0; r < num_rows; ++r) {
          writer.Add(rows.Int64At(c, r), r);
        }
        index_members[c] = writer.Finish();
        break;
      }
      case IndexType::kNone:
        break;
    }
    col_meta.index_size = index_members[c].size() +
                          inverted_members[c].dict.size() +
                          inverted_members[c].postings.size();
  }

  // Time span for the LogBlock map.
  if (!options.ts_column.empty()) {
    const int ts_col = schema.FindColumn(options.ts_column);
    if (ts_col >= 0 && schema.column(ts_col).type == ColumnType::kInt64) {
      meta.min_ts = meta.columns[ts_col].int_sma.min;
      meta.max_ts = meta.columns[ts_col].int_sma.max;
    }
  }

  // Assemble the tar: meta first so readers can fetch it with the header.
  std::string meta_bytes;
  meta.EncodeTo(&meta_bytes);
  LOGSTORE_RETURN_IF_ERROR(tar.AddMember(MetaMemberName(), meta_bytes));
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (!index_members[c].empty()) {
      LOGSTORE_RETURN_IF_ERROR(
          tar.AddMember(IndexMemberName(c), index_members[c]));
    }
    if (meta.columns[c].index_type == IndexType::kInverted) {
      LOGSTORE_RETURN_IF_ERROR(
          tar.AddMember(IndexDictMemberName(c), inverted_members[c].dict));
      LOGSTORE_RETURN_IF_ERROR(tar.AddMember(IndexPostingsMemberName(c),
                                             inverted_members[c].postings));
    }
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    LOGSTORE_RETURN_IF_ERROR(tar.AddMember(DataMemberName(c), data_members[c]));
  }

  BuiltLogBlock built;
  built.data = tar.Finish();
  built.meta = std::move(meta);
  return built;
}

}  // namespace logstore::logblock
