#ifndef LOGSTORE_LOGBLOCK_LOGBLOCK_MAP_H_
#define LOGSTORE_LOGBLOCK_LOGBLOCK_MAP_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace logstore::logblock {

// Catalog entry for one LogBlock object: the <tenant_id, min_ts, max_ts>
// tuple of Figure 8 step 1 plus bookkeeping for billing and expiration.
struct LogBlockEntry {
  uint64_t tenant_id = 0;
  int64_t min_ts = 0;
  int64_t max_ts = 0;
  std::string object_key;
  uint64_t size_bytes = 0;
  uint32_t row_count = 0;
};

// The tenant-level LogBlock map maintained by the controller's metadata
// manager (§3.1): per tenant, the chronological list of LogBlocks on the
// object store. Queries prune against it before touching any object
// (Figure 8 step 1); the expiration task retires whole blocks from it.
// Thread-safe.
class LogBlockMap {
 public:
  void Add(LogBlockEntry entry);

  // Blocks of `tenant` whose time span intersects [ts_lo, ts_hi].
  std::vector<LogBlockEntry> Prune(uint64_t tenant_id, int64_t ts_lo,
                                   int64_t ts_hi) const;

  // All blocks of a tenant, in chronological order.
  std::vector<LogBlockEntry> TenantBlocks(uint64_t tenant_id) const;

  // Removes and returns blocks of `tenant` wholly older than `cutoff_ts`
  // (max_ts < cutoff): the data-expiration path. The caller deletes the
  // returned objects from the store.
  std::vector<LogBlockEntry> ExpireBefore(uint64_t tenant_id,
                                          int64_t cutoff_ts);

  // Per-tenant storage footprint, the basis of differentiated billing.
  uint64_t TenantBytes(uint64_t tenant_id) const;
  uint64_t TenantBlockCount(uint64_t tenant_id) const;

  std::vector<uint64_t> Tenants() const;
  size_t TotalBlocks() const;

  void EncodeTo(std::string* dst) const;
  // Replaces the contents of `*map` (which must outlive concurrent use).
  static Status DecodeFrom(Slice* input, LogBlockMap* map);

 private:
  mutable std::mutex mu_;
  // tenant -> blocks ordered by (min_ts, object_key).
  std::map<uint64_t, std::vector<LogBlockEntry>> tenants_;
};

}  // namespace logstore::logblock

#endif  // LOGSTORE_LOGBLOCK_LOGBLOCK_MAP_H_
