#ifndef LOGSTORE_COMMON_CRC32C_H_
#define LOGSTORE_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace logstore::crc32c {

// Returns the CRC-32C (Castagnoli) of data[0, n-1], extending `init_crc`.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

// Masking makes it safe to store a CRC alongside the data it covers
// (computing the CRC of a string that contains embedded CRCs is otherwise
// prone to coincidental matches). Same scheme as LevelDB.
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace logstore::crc32c

#endif  // LOGSTORE_COMMON_CRC32C_H_
