#include "common/logging.h"

#include <atomic>

namespace logstore {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }
void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

}  // namespace logstore
