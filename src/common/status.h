#ifndef LOGSTORE_COMMON_STATUS_H_
#define LOGSTORE_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace logstore {

// Error codes used across the library. Follows the RocksDB/Abseil convention
// of returning a Status object instead of throwing exceptions.
enum class StatusCode {
  kOk = 0,
  kNotFound = 1,
  kCorruption = 2,
  kInvalidArgument = 3,
  kIOError = 4,
  kResourceExhausted = 5,  // backpressure / queue full
  kUnavailable = 6,        // node down, not leader, ...
  kAborted = 7,
  kTimedOut = 8,
  kAlreadyExists = 9,
  kNotSupported = 10,
  kInternal = 11,
};

// A Status encapsulates the result of an operation: success, or an error code
// plus a human-readable message. Cheap to copy in the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimedOut() const { return code_ == StatusCode::kTimedOut; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Explicitly discard an error (documents intent at the call site).
  void IgnoreError() const {}

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static std::string_view CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kCorruption: return "Corruption";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kIOError: return "IOError";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kUnavailable: return "Unavailable";
      case StatusCode::kAborted: return "Aborted";
      case StatusCode::kTimedOut: return "TimedOut";
      case StatusCode::kAlreadyExists: return "AlreadyExists";
      case StatusCode::kNotSupported: return "NotSupported";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

 private:
  StatusCode code_;
  std::string message_;
};

// Propagates an error Status from an expression to the caller.
#define LOGSTORE_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::logstore::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

}  // namespace logstore

#endif  // LOGSTORE_COMMON_STATUS_H_
