#ifndef LOGSTORE_COMMON_HASH_H_
#define LOGSTORE_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace logstore {

// 64-bit FNV-1a; good enough distribution for hash partitioning, cache
// sharding and term dictionaries, with trivial portability.
inline uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  // Final avalanche (from SplitMix64) to break up FNV's weak low bits.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

inline uint64_t Hash64(std::string_view s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  // Boost-style combine on 64 bits.
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 12) + (a >> 4));
}

}  // namespace logstore

#endif  // LOGSTORE_COMMON_HASH_H_
