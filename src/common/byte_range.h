#ifndef LOGSTORE_COMMON_BYTE_RANGE_H_
#define LOGSTORE_COMMON_BYTE_RANGE_H_

#include <cstdint>

namespace logstore {

// A byte range within an object, used for ranged reads and prefetch plans.
struct ByteRange {
  uint64_t offset = 0;
  uint64_t size = 0;

  uint64_t end() const { return offset + size; }

  bool operator==(const ByteRange& other) const {
    return offset == other.offset && size == other.size;
  }
  bool operator<(const ByteRange& other) const {
    return offset != other.offset ? offset < other.offset : size < other.size;
  }
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_BYTE_RANGE_H_
