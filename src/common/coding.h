#ifndef LOGSTORE_COMMON_CODING_H_
#define LOGSTORE_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace logstore {

// Little-endian fixed-width and varint encodings used by the on-storage
// formats (WAL records, LogBlock sections, postings lists).

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}

inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

inline void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

inline void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

// Zig-zag encoding maps signed values to unsigned ones so that small
// magnitudes stay small under varint encoding.
inline uint64_t ZigZagEncode64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode64(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

inline void PutVarsint64(std::string* dst, int64_t value) {
  PutVarint64(dst, ZigZagEncode64(value));
}

// All Get* functions advance `input` past the decoded bytes and return false
// on truncated or malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetVarsint64(Slice* input, int64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);

inline bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(uint32_t)) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(uint32_t));
  return true;
}

inline bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(uint64_t)) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(uint64_t));
  return true;
}

int VarintLength(uint64_t v);

}  // namespace logstore

#endif  // LOGSTORE_COMMON_CODING_H_
