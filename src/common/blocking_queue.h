#ifndef LOGSTORE_COMMON_BLOCKING_QUEUE_H_
#define LOGSTORE_COMMON_BLOCKING_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace logstore {

// A bounded MPMC queue with both item-count and byte-size limits. This is
// the building block for LogStore's backpressure flow control (BFC, §4.2):
// the paper monitors "both the number and size of pending requests" per
// queue, and rejects producers when either limit is exceeded.
template <typename T>
class BlockingQueue {
 public:
  // `max_items` and `max_bytes` of 0 mean unlimited on that axis.
  BlockingQueue(size_t max_items, uint64_t max_bytes)
      : max_items_(max_items), max_bytes_(max_bytes) {}

  // Non-blocking push; returns false (backpressure signal) when a limit is
  // exceeded or the queue is closed. `bytes` is the logical payload size
  // charged against the byte budget.
  bool TryPush(T item, uint64_t bytes = 0) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || AtLimitLocked(bytes)) return false;
    items_.emplace_back(std::move(item), bytes);
    bytes_ += bytes;
    not_empty_.notify_one();
    return true;
  }

  // Blocking push; waits for room. Returns false only if the queue closes.
  bool Push(T item, uint64_t bytes = 0) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || !AtLimitLocked(bytes); });
    if (closed_) return false;
    items_.emplace_back(std::move(item), bytes);
    bytes_ += bytes;
    not_empty_.notify_one();
    return true;
  }

  // Blocking pop. Returns nullopt when the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    auto [item, bytes] = std::move(items_.front());
    items_.pop_front();
    bytes_ -= bytes;
    not_full_.notify_all();
    return std::optional<T>(std::move(item));
  }

  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    auto [item, bytes] = std::move(items_.front());
    items_.pop_front();
    bytes_ -= bytes;
    not_full_.notify_all();
    return std::optional<T>(std::move(item));
  }

  // After Close, pushes fail and pops drain the remaining items then return
  // nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  uint64_t bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  // True when a push of `bytes` more would be rejected.
  bool AtLimit(uint64_t bytes = 0) const {
    std::lock_guard<std::mutex> lock(mu_);
    return AtLimitLocked(bytes);
  }

 private:
  bool AtLimitLocked(uint64_t incoming_bytes) const {
    if (max_items_ != 0 && items_.size() >= max_items_) return true;
    if (max_bytes_ != 0 && bytes_ + incoming_bytes > max_bytes_ &&
        !items_.empty()) {
      return true;  // always admit at least one item so huge items can pass
    }
    return false;
  }

  const size_t max_items_;
  const uint64_t max_bytes_;

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<std::pair<T, uint64_t>> items_;
  uint64_t bytes_ = 0;
  bool closed_ = false;
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_BLOCKING_QUEUE_H_
