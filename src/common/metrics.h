#ifndef LOGSTORE_COMMON_METRICS_H_
#define LOGSTORE_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <mutex>

namespace logstore::metrics {

// ---------------------------------------------------------------------------
// Unified metrics registry (DESIGN.md §14).
//
// Every load/health counter the balancer, admission governor and operators
// consume lives in one place: a MetricRegistry of named, labeled, lock-free
// cells. Producers resolve their cells once (at construction) and then
// increment plain atomics on the hot path — registration is the only
// operation that takes the registry mutex, so a broker write or a block
// scan never serializes on metrics.
//
// Naming scheme: `<module>.<counter>` (e.g. `cache.hits`, `wal.fsyncs`),
// with labels for the axes a consumer aggregates over — `tier` for cache
// levels, `tenant`/`shard`/`worker` for routing load. The canonical key is
// `name{k=v,...}` with label keys sorted, so the same (name, labels) pair
// always resolves to the same cell, process-wide or per-registry.
//
// Counters are cumulative and monotonic: nothing in the registry is ever
// reset or unregistered, so consumers (the traffic-control loop, perf
// dashboards) difference successive Snapshot()s instead of trusting a
// mutable "current window". Gauges are last-write-wins instantaneous
// values (cycle latency, queue depth).
// ---------------------------------------------------------------------------

// Label set, canonicalized by sorting on key. Small; value semantics.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge };

// One metric's point-in-time value, as returned by Snapshot().
struct MetricSample {
  std::string name;
  Labels labels;  // sorted by key
  MetricType type = MetricType::kCounter;
  uint64_t counter = 0;  // valid when type == kCounter
  int64_t gauge = 0;     // valid when type == kGauge

  // Canonical `name{k=v,...}` key (no braces when label-less).
  std::string Key() const;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // The process-wide registry. Components default to it when their options
  // carry no explicit registry; tests that need isolation construct their
  // own and plumb it through the options structs.
  static MetricRegistry* Default();

  // Resolves the cell for (name, labels), registering it on first use.
  // The returned atomic lives as long as the registry; callers cache the
  // pointer and increment it lock-free ever after. Calling again with the
  // same (name, labels) returns the same cell.
  std::atomic<uint64_t>* Counter(const std::string& name,
                                 const Labels& labels = {});
  std::atomic<int64_t>* Gauge(const std::string& name,
                              const Labels& labels = {});

  // Point-in-time view of every registered metric. Each value is read
  // atomically (no torn counters); the set is consistent in that a metric
  // registered before the call is always present and values are monotonic
  // across successive snapshots of the same counter.
  std::vector<MetricSample> Snapshot() const;

  // Snapshot as a canonical-key → value map (counters and gauges; gauge
  // values cast). The "one call surfaces everything" consumer surface.
  std::map<std::string, int64_t> SnapshotMap() const;

  // Exporters: one `key value` line per metric, and a flat JSON object.
  std::string ToText() const;
  std::string ToJson() const;

  // Number of distinct registered metrics.
  size_t size() const;

  static std::string CanonicalKey(const std::string& name,
                                  const Labels& labels);

 private:
  struct Cell {
    std::string name;
    Labels labels;
    MetricType type = MetricType::kCounter;
    std::atomic<uint64_t> counter{0};
    std::atomic<int64_t> gauge{0};
  };

  Cell* Resolve(const std::string& name, const Labels& labels,
                MetricType type);

  mutable std::mutex mu_;
  std::deque<Cell> cells_;  // deque: stable addresses across growth
  std::unordered_map<std::string, Cell*> index_;  // canonical key → cell
};

// Null-tolerant accessor: options structs default their registry pointer to
// nullptr, which means "the process-wide registry".
inline MetricRegistry* OrDefault(MetricRegistry* registry) {
  return registry != nullptr ? registry : MetricRegistry::Default();
}

// ---------------------------------------------------------------------------
// Counter: drop-in replacement for the std::atomic<uint64_t> fields of the
// legacy per-module stats structs. It keeps a local value — so existing
// per-instance assertions and Reset() semantics are untouched — and, once
// Bind() links it to a registry cell, mirrors every increment into the
// registry (two relaxed atomic adds; still lock-free). Resets and
// assignments touch only the local value: registry counters stay cumulative.
//
// Bind() is expected at construction time, before concurrent increments;
// the sink pointer is atomic only so a late bind is benign rather than UB.
// ---------------------------------------------------------------------------
class Counter {
 public:
  constexpr Counter(uint64_t value = 0) : value_(value) {}  // NOLINT: implicit

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter& other) = delete;

  // Mirrors future increments into `cell` (a MetricRegistry::Counter()).
  void Bind(std::atomic<uint64_t>* cell) {
    sink_.store(cell, std::memory_order_release);
  }

  uint64_t fetch_add(uint64_t delta,
                     std::memory_order order = std::memory_order_relaxed) {
    if (auto* sink = sink_.load(std::memory_order_acquire)) {
      sink->fetch_add(delta, std::memory_order_relaxed);
    }
    return value_.fetch_add(delta, order);
  }

  uint64_t operator++() { return fetch_add(1) + 1; }
  uint64_t operator++(int) { return fetch_add(1); }
  uint64_t operator+=(uint64_t delta) { return fetch_add(delta) + delta; }

  // Local reset/assignment (tests): the registry cell is NOT rewound —
  // registry counters are cumulative by contract.
  uint64_t operator=(uint64_t value) {
    value_.store(value, std::memory_order_relaxed);
    return value;
  }

  uint64_t load(std::memory_order order = std::memory_order_seq_cst) const {
    return value_.load(order);
  }
  operator uint64_t() const { return load(); }  // NOLINT: implicit

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<std::atomic<uint64_t>*> sink_{nullptr};
};

}  // namespace logstore::metrics

#endif  // LOGSTORE_COMMON_METRICS_H_
