#include "common/clock.h"

namespace logstore {

SystemClock* SystemClock::Default() {
  static SystemClock* instance = new SystemClock();
  return instance;
}

}  // namespace logstore
