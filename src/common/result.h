#ifndef LOGSTORE_COMMON_RESULT_H_
#define LOGSTORE_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace logstore {

// Result<T> holds either a value of type T or an error Status, similar to
// absl::StatusOr. An OK Result always contains a value.
template <typename T>
class Result {
 public:
  // Implicit construction from values and Status keeps call sites terse:
  //   Result<int> F() { return 42; }
  //   Result<int> G() { return Status::NotFound("..."); }
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "OK Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

// Evaluates a Result expression; on error returns its Status, otherwise
// moves the value into `lhs`.
#define LOGSTORE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto LOGSTORE_CONCAT_(_res_, __LINE__) = (expr);    \
  if (!LOGSTORE_CONCAT_(_res_, __LINE__).ok())        \
    return LOGSTORE_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(LOGSTORE_CONCAT_(_res_, __LINE__)).value()

#define LOGSTORE_CONCAT_INNER_(a, b) a##b
#define LOGSTORE_CONCAT_(a, b) LOGSTORE_CONCAT_INNER_(a, b)

}  // namespace logstore

#endif  // LOGSTORE_COMMON_RESULT_H_
