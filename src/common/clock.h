#ifndef LOGSTORE_COMMON_CLOCK_H_
#define LOGSTORE_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

namespace logstore {

// Time source abstraction so simulations and tests can control the clock.
// All times are microseconds.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowMicros() const = 0;
  virtual void SleepMicros(int64_t micros) = 0;
};

// Wall-clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  void SleepMicros(int64_t micros) override {
    if (micros > 0) std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }

  // Process-wide default instance.
  static SystemClock* Default();
};

// A manually-advanced clock for deterministic tests. SleepMicros advances
// virtual time instead of blocking.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}

  int64_t NowMicros() const override {
    return now_.load(std::memory_order_relaxed);
  }
  void SleepMicros(int64_t micros) override { Advance(micros); }
  void Advance(int64_t micros) {
    now_.fetch_add(micros, std::memory_order_relaxed);
  }
  void Set(int64_t micros) { now_.store(micros, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_CLOCK_H_
