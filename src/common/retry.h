#ifndef LOGSTORE_COMMON_RETRY_H_
#define LOGSTORE_COMMON_RETRY_H_

#include <algorithm>
#include <cstdint>

#include "common/random.h"

namespace logstore {

// A bounded retry schedule: exponential backoff with multiplicative jitter
// and an overall delay deadline. Delays are unit-agnostic — the raft
// transport counts delivery rounds, the broker client counts milliseconds —
// so the same policy type describes both layers' retry behavior.
//
// This is the policy shape RetryingObjectStore hand-rolled for the read
// path; it is factored out here so the raft RPC transport and the cluster
// write client retry the same way.
struct RetryPolicy {
  // Retries after the initial attempt. 0 disables retrying entirely.
  int max_retries = 3;
  // Delay before retry k (0-based) is base_delay * multiplier^k, capped at
  // max_delay, then jittered.
  int64_t base_delay = 1;
  int64_t max_delay = 64;
  double multiplier = 2.0;
  // Uniform jitter in [1 - jitter, 1 + jitter] applied to each delay, so a
  // burst of simultaneous failures does not retry in lockstep.
  double jitter = 0.5;
  // Total delay budget across all retries; 0 = unlimited. A retry whose
  // delay would push the cumulative total past the deadline is abandoned.
  int64_t deadline = 0;
};

// Per-operation retry cursor over a RetryPolicy.
class RetryState {
 public:
  explicit RetryState(const RetryPolicy& policy) : policy_(policy) {}

  // Whether another retry is allowed, and if so the delay to wait before
  // it. Returns a negative value when the attempt or deadline budget is
  // exhausted; otherwise advances the cursor and returns the jittered
  // delay (>= 0).
  int64_t NextDelay(Random* rng) {
    if (attempt_ >= policy_.max_retries) return -1;
    double delay = static_cast<double>(policy_.base_delay);
    for (int i = 0; i < attempt_; ++i) delay *= policy_.multiplier;
    delay = std::min(delay, static_cast<double>(policy_.max_delay));
    if (policy_.jitter > 0.0 && rng != nullptr) {
      delay *= 1.0 - policy_.jitter + 2.0 * policy_.jitter * rng->NextDouble();
    }
    const int64_t rounded = std::max<int64_t>(0, static_cast<int64_t>(delay));
    if (policy_.deadline > 0 && total_delay_ + rounded > policy_.deadline) {
      return -1;
    }
    total_delay_ += rounded;
    ++attempt_;
    return rounded;
  }

  int attempts() const { return attempt_; }
  int64_t total_delay() const { return total_delay_; }

 private:
  const RetryPolicy policy_;
  int attempt_ = 0;
  int64_t total_delay_ = 0;
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_RETRY_H_
