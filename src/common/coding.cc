#include "common/coding.h"

namespace logstore {

void PutVarint32(std::string* dst, uint32_t value) {
  unsigned char buf[5];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t value) {
  unsigned char buf[10];
  int n = 0;
  while (value >= 0x80) {
    buf[n++] = static_cast<unsigned char>(value) | 0x80;
    value >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(value);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  const char* p = input->data();
  const char* limit = p + input->size();
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      input->remove_prefix(p - input->data());
      return true;
    }
  }
  return false;
}

bool GetVarsint64(Slice* input, int64_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v)) return false;
  *value = ZigZagDecode64(v);
  return true;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint64_t len;
  if (!GetVarint64(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

int VarintLength(uint64_t v) {
  int len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

}  // namespace logstore
