#ifndef LOGSTORE_COMMON_LOGGING_H_
#define LOGSTORE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace logstore {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace logstore

// Minimal printf-style diagnostics to stderr. The library is quiet by
// default (kWarn); tools and benches can lower the level.
#define LOGSTORE_LOG(level, fmt, ...)                                        \
  do {                                                                       \
    if (static_cast<int>(level) >=                                           \
        static_cast<int>(::logstore::GetLogLevel())) {                       \
      fprintf(stderr, "[%s] " fmt "\n",                                      \
              (level) == ::logstore::LogLevel::kDebug   ? "DEBUG"            \
              : (level) == ::logstore::LogLevel::kInfo  ? "INFO"             \
              : (level) == ::logstore::LogLevel::kWarn  ? "WARN"             \
                                                        : "ERROR",           \
              ##__VA_ARGS__);                                                \
    }                                                                        \
  } while (0)

#define LOGSTORE_DEBUG(...) LOGSTORE_LOG(::logstore::LogLevel::kDebug, __VA_ARGS__)
#define LOGSTORE_INFO(...) LOGSTORE_LOG(::logstore::LogLevel::kInfo, __VA_ARGS__)
#define LOGSTORE_WARN(...) LOGSTORE_LOG(::logstore::LogLevel::kWarn, __VA_ARGS__)
#define LOGSTORE_ERROR(...) LOGSTORE_LOG(::logstore::LogLevel::kError, __VA_ARGS__)

#endif  // LOGSTORE_COMMON_LOGGING_H_
