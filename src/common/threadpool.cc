#include "common/threadpool.h"

namespace logstore {

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> fn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with drained queue
      fn = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    fn();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace logstore
