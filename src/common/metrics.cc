#include "common/metrics.h"

#include <algorithm>
#include <sstream>

namespace logstore::metrics {

namespace {

Labels Canonicalize(const Labels& labels) {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

void AppendJsonEscaped(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

}  // namespace

std::string MetricSample::Key() const {
  return MetricRegistry::CanonicalKey(name, labels);
}

MetricRegistry* MetricRegistry::Default() {
  static MetricRegistry* instance = new MetricRegistry();
  return instance;
}

std::string MetricRegistry::CanonicalKey(const std::string& name,
                                         const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = Canonicalize(labels);
  std::string key = name;
  key.push_back('{');
  for (size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key.push_back(',');
    key += sorted[i].first;
    key.push_back('=');
    key += sorted[i].second;
  }
  key.push_back('}');
  return key;
}

MetricRegistry::Cell* MetricRegistry::Resolve(const std::string& name,
                                              const Labels& labels,
                                              MetricType type) {
  const std::string key = CanonicalKey(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  Cell& cell = cells_.emplace_back();
  cell.name = name;
  cell.labels = Canonicalize(labels);
  cell.type = type;
  index_.emplace(key, &cell);
  return &cell;
}

std::atomic<uint64_t>* MetricRegistry::Counter(const std::string& name,
                                               const Labels& labels) {
  return &Resolve(name, labels, MetricType::kCounter)->counter;
}

std::atomic<int64_t>* MetricRegistry::Gauge(const std::string& name,
                                            const Labels& labels) {
  return &Resolve(name, labels, MetricType::kGauge)->gauge;
}

std::vector<MetricSample> MetricRegistry::Snapshot() const {
  std::vector<MetricSample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(cells_.size());
  for (const Cell& cell : cells_) {
    MetricSample sample;
    sample.name = cell.name;
    sample.labels = cell.labels;
    sample.type = cell.type;
    if (cell.type == MetricType::kCounter) {
      sample.counter = cell.counter.load(std::memory_order_relaxed);
    } else {
      sample.gauge = cell.gauge.load(std::memory_order_relaxed);
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::map<std::string, int64_t> MetricRegistry::SnapshotMap() const {
  std::map<std::string, int64_t> out;
  for (const MetricSample& sample : Snapshot()) {
    out[sample.Key()] = sample.type == MetricType::kCounter
                            ? static_cast<int64_t>(sample.counter)
                            : sample.gauge;
  }
  return out;
}

std::string MetricRegistry::ToText() const {
  std::ostringstream out;
  for (const auto& [key, value] : SnapshotMap()) {
    out << key << ' ' << value << '\n';
  }
  return out.str();
}

std::string MetricRegistry::ToJson() const {
  std::ostringstream out;
  out << "{\n";
  bool first = true;
  for (const auto& [key, value] : SnapshotMap()) {
    if (!first) out << ",\n";
    first = false;
    out << "  \"";
    AppendJsonEscaped(out, key);
    out << "\": " << value;
  }
  out << "\n}\n";
  return out.str();
}

size_t MetricRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cells_.size();
}

}  // namespace logstore::metrics
