#ifndef LOGSTORE_COMMON_FAIR_QUEUE_H_
#define LOGSTORE_COMMON_FAIR_QUEUE_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>

namespace logstore {

// Per-owner FIFO queues drained round-robin across owners: the scheduling
// core shared by the prefetch service (fair IO-slot dispatch) and the
// admission governor (fair execution-slot grants). Within an owner, strict
// FIFO; across owners, each PopNext serves the first owner strictly after
// the last-served one, wrapping to the smallest — so one owner enqueueing
// hundreds of items shares the drain rate fairly with an owner enqueueing
// one.
//
// Externally synchronized: the caller holds its own mutex around every call
// (both current users already own a scheduler lock).
template <typename T>
class FairQueue {
 public:
  void Push(uint64_t owner, T item) {
    queues_[owner].push_back(std::move(item));
    ++size_;
  }

  // Pops the next item round-robin across owners. Returns false when empty.
  bool PopNext(T* out) {
    if (queues_.empty()) return false;
    auto it = queues_.upper_bound(rr_last_owner_);
    if (it == queues_.end()) it = queues_.begin();
    rr_last_owner_ = it->first;
    *out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) queues_.erase(it);
    --size_;
    return true;
  }

  // Removes one queued item equal to `item` from `owner`'s queue (a waiter
  // withdrawing, e.g. on cancellation). Returns false if not queued.
  bool Remove(uint64_t owner, const T& item) {
    auto it = queues_.find(owner);
    if (it == queues_.end()) return false;
    auto pos = std::find(it->second.begin(), it->second.end(), item);
    if (pos == it->second.end()) return false;
    it->second.erase(pos);
    if (it->second.empty()) queues_.erase(it);
    --size_;
    return true;
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  std::map<uint64_t, std::deque<T>> queues_;
  uint64_t rr_last_owner_ = 0;
  size_t size_ = 0;
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_FAIR_QUEUE_H_
