#ifndef LOGSTORE_COMMON_THREADPOOL_H_
#define LOGSTORE_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace logstore {

// A fixed-size thread pool. Used by the data builder for background
// archiving and by the parallel prefetch service (§5.2).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Schedules `fn` to run on a pool thread.
  void Schedule(std::function<void()> fn);

  // Schedules `fn` and returns a future for its result.
  template <typename F>
  auto Submit(F&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Schedule([task] { (*task)(); });
    return future;
  }

  // Blocks until all scheduled work has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace logstore

#endif  // LOGSTORE_COMMON_THREADPOOL_H_
