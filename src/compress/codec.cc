#include "compress/codec.h"

#include <cstring>
#include <vector>

#include "common/coding.h"

namespace logstore::compress {

namespace {

// ---------------------------------------------------------------------------
// Shared LZ77 token format
//
//   varint64 uncompressed_size
//   repeated tokens:
//     varint32 literal_len, literal bytes,
//     varint32 match_code        (0 terminates the stream)
//     if match_code != 0:
//       match_offset = match_code, varint32 match_len_minus_min
//
// Matches copy match_len bytes from `match_offset` bytes back in the output;
// overlapping copies (offset < len) are the classic LZ run-length trick.
// ---------------------------------------------------------------------------

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 1u << 16;  // 64 KiB window

inline uint32_t Read32(const char* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t HashPos(const char* p) {
  return (Read32(p) * 2654435761u) >> 17;  // 15-bit hash table index
}

constexpr size_t kHashSize = 1u << 15;

size_t MatchLength(const char* a, const char* b, const char* limit) {
  const char* start = a;
  while (a < limit && *a == *b) {
    ++a;
    ++b;
  }
  return a - start;
}

void EmitLiterals(const char* base, size_t lit_start, size_t lit_end,
                  std::string* out) {
  PutVarint32(out, static_cast<uint32_t>(lit_end - lit_start));
  out->append(base + lit_start, lit_end - lit_start);
}

// One LZ77 pass. `chain_depth` == 0 means a single hash-table probe (fast
// mode); otherwise up to `chain_depth` previous candidates are searched via
// hash chains for the longest match (ratio mode).
void LzCompressImpl(const Slice& input, int chain_depth, std::string* output) {
  const char* base = input.data();
  const size_t n = input.size();
  PutVarint64(output, n);

  if (n < kMinMatch + 1) {
    EmitLiterals(base, 0, n, output);
    PutVarint32(output, 0);
    return;
  }

  // head[h] = most recent position with hash h (+1; 0 = empty).
  std::vector<uint32_t> head(kHashSize, 0);
  // prev[i % window] = previous position in the same hash chain.
  std::vector<uint32_t> prev;
  if (chain_depth > 0) prev.assign(n, 0);

  const char* match_limit = base + n;
  size_t pos = 0;
  size_t lit_start = 0;
  const size_t last_match_pos = n - kMinMatch;

  while (pos <= last_match_pos) {
    const uint32_t h = HashPos(base + pos);
    size_t best_len = 0;
    size_t best_off = 0;

    uint32_t cand = head[h];
    int probes = chain_depth > 0 ? chain_depth : 1;
    while (cand != 0 && probes-- > 0) {
      const size_t cpos = cand - 1;
      if (pos - cpos > kMaxOffset) break;
      if (Read32(base + cpos) == Read32(base + pos)) {
        const size_t len =
            kMinMatch +
            MatchLength(base + pos + kMinMatch, base + cpos + kMinMatch,
                        match_limit);
        if (len > best_len) {
          best_len = len;
          best_off = pos - cpos;
        }
      }
      if (chain_depth == 0) break;
      cand = prev[cpos];
    }

    if (best_len >= kMinMatch) {
      EmitLiterals(base, lit_start, pos, output);
      PutVarint32(output, static_cast<uint32_t>(best_off));
      PutVarint32(output, static_cast<uint32_t>(best_len - kMinMatch));

      // Index the positions covered by the match (sparsely in fast mode).
      const size_t end = pos + best_len;
      const size_t step = chain_depth > 0 ? 1 : 2;
      for (size_t i = pos; i < end && i <= last_match_pos; i += step) {
        const uint32_t hh = HashPos(base + i);
        if (chain_depth > 0) prev[i] = head[hh];
        head[hh] = static_cast<uint32_t>(i + 1);
      }
      pos = end;
      lit_start = pos;
    } else {
      if (chain_depth > 0) prev[pos] = head[h];
      head[h] = static_cast<uint32_t>(pos + 1);
      ++pos;
    }
  }

  EmitLiterals(base, lit_start, n, output);
  PutVarint32(output, 0);
}

Status LzDecompressImpl(const Slice& input, std::string* output) {
  Slice in = input;
  uint64_t expected_size;
  if (!GetVarint64(&in, &expected_size)) {
    return Status::Corruption("lz: missing size header");
  }
  const size_t out_base = output->size();
  output->reserve(out_base + expected_size);

  while (true) {
    uint32_t lit_len;
    if (!GetVarint32(&in, &lit_len)) {
      return Status::Corruption("lz: truncated literal length");
    }
    if (in.size() < lit_len) return Status::Corruption("lz: truncated literals");
    output->append(in.data(), lit_len);
    in.remove_prefix(lit_len);

    uint32_t offset;
    if (!GetVarint32(&in, &offset)) {
      return Status::Corruption("lz: truncated match offset");
    }
    if (offset == 0) break;  // end of stream

    uint32_t extra;
    if (!GetVarint32(&in, &extra)) {
      return Status::Corruption("lz: truncated match length");
    }
    const size_t match_len = extra + kMinMatch;
    const size_t produced = output->size() - out_base;
    if (offset > produced) return Status::Corruption("lz: offset before start");

    // Byte-wise copy: handles the overlapping (offset < len) case.
    size_t src = output->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      output->push_back((*output)[src + i]);
    }
  }

  if (output->size() - out_base != expected_size) {
    return Status::Corruption("lz: size mismatch after decompress");
  }
  return Status::OK();
}

class NoCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kNone; }
  const char* name() const override { return "none"; }
  Status Compress(const Slice& input, std::string* output) const override {
    output->append(input.data(), input.size());
    return Status::OK();
  }
  Status Decompress(const Slice& input, std::string* output) const override {
    output->append(input.data(), input.size());
    return Status::OK();
  }
};

class LzFastCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kLzFast; }
  const char* name() const override { return "lz-fast"; }
  Status Compress(const Slice& input, std::string* output) const override {
    LzCompressImpl(input, /*chain_depth=*/0, output);
    return Status::OK();
  }
  Status Decompress(const Slice& input, std::string* output) const override {
    return LzDecompressImpl(input, output);
  }
};

class LzRatioCodec : public Codec {
 public:
  CodecType type() const override { return CodecType::kLzRatio; }
  const char* name() const override { return "lz-ratio"; }
  Status Compress(const Slice& input, std::string* output) const override {
    LzCompressImpl(input, /*chain_depth=*/32, output);
    return Status::OK();
  }
  Status Decompress(const Slice& input, std::string* output) const override {
    return LzDecompressImpl(input, output);
  }
};

}  // namespace

const Codec* GetCodec(CodecType type) {
  static const NoCodec* none = new NoCodec();
  static const LzFastCodec* fast = new LzFastCodec();
  static const LzRatioCodec* ratio = new LzRatioCodec();
  switch (type) {
    case CodecType::kNone: return none;
    case CodecType::kLzFast: return fast;
    case CodecType::kLzRatio: return ratio;
  }
  return nullptr;
}

bool DecodeVarsint64Batch(Slice* in, uint32_t row_count,
                          std::vector<int64_t>* out) {
  out->resize(row_count);
  int64_t* dst = out->data();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* limit = p + in->size();
  for (uint32_t i = 0; i < row_count; ++i) {
    // One-byte fast path: most deltas and small magnitudes encode in a
    // single byte, so the loop body is usually a load, a test, and a store.
    if (p < limit && (*p & 0x80) == 0) {
      dst[i] = ZigZagDecode64(*p++);
      continue;
    }
    uint64_t raw = 0;
    uint32_t shift = 0;
    while (true) {
      if (p >= limit || shift > 63) return false;
      const uint8_t byte = *p++;
      raw |= static_cast<uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) break;
      shift += 7;
    }
    dst[i] = ZigZagDecode64(raw);
  }
  in->remove_prefix(static_cast<size_t>(
      p - reinterpret_cast<const uint8_t*>(in->data())));
  return true;
}

bool DecodeLengthPrefixedBatch(Slice* in, uint32_t row_count,
                               std::vector<std::string>* out) {
  out->resize(row_count);
  std::string* dst = out->data();
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in->data());
  const uint8_t* limit = p + in->size();
  for (uint32_t i = 0; i < row_count; ++i) {
    uint32_t len;
    if (p < limit && (*p & 0x80) == 0) {
      len = *p++;
    } else {
      uint64_t raw = 0;
      uint32_t shift = 0;
      while (true) {
        if (p >= limit || shift > 31) return false;
        const uint8_t byte = *p++;
        raw |= static_cast<uint64_t>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
      }
      if (raw > UINT32_MAX) return false;
      len = static_cast<uint32_t>(raw);
    }
    if (static_cast<uint64_t>(limit - p) < len) return false;
    dst[i].assign(reinterpret_cast<const char*>(p), len);
    p += len;
  }
  in->remove_prefix(static_cast<size_t>(
      p - reinterpret_cast<const uint8_t*>(in->data())));
  return true;
}

}  // namespace logstore::compress
