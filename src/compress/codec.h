#ifndef LOGSTORE_COMPRESS_CODEC_H_
#define LOGSTORE_COMPRESS_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace logstore::compress {

// Compression codecs available for column blocks (§3.2 "Compressed").
// The paper ships Snappy, LZ4 and ZSTD and defaults to ZSTD because ratio
// is preferred over CPU for data shipped to object storage. We implement
// two from-scratch LZ77 variants on the same axis:
//   kLzFast  - greedy single-probe matcher, speed-oriented (LZ4 stand-in)
//   kLzRatio - hash-chain matcher with lazy evaluation, ratio-oriented
//              (ZSTD stand-in; the default)
enum class CodecType : uint8_t {
  kNone = 0,
  kLzFast = 1,
  kLzRatio = 2,
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecType type() const = 0;
  virtual const char* name() const = 0;

  // Appends the compressed representation of `input` to `*output`.
  virtual Status Compress(const Slice& input, std::string* output) const = 0;

  // Appends the decompressed bytes to `*output`. Fails with Corruption on
  // malformed input.
  virtual Status Decompress(const Slice& input, std::string* output) const = 0;
};

// Returns the process-wide codec instance for `type`, or nullptr for an
// unknown type. Instances are stateless and thread-safe.
const Codec* GetCodec(CodecType type);

// --- Batch column decoders ---
//
// Decode a whole column block's value stream in one tight loop, writing a
// contiguous typed vector through a raw pointer instead of one
// GetVarsint64/GetLengthPrefixedSlice + push_back round trip per value.
// Both consume exactly `row_count` values from the front of `*in` (advancing
// it like the Get* primitives) and return false on truncated input.

// Zig-zag varint int64 values (the int column encoding).
bool DecodeVarsint64Batch(Slice* in, uint32_t row_count,
                          std::vector<int64_t>* out);

// Length-prefixed string values (the string column encoding).
bool DecodeLengthPrefixedBatch(Slice* in, uint32_t row_count,
                               std::vector<std::string>* out);

}  // namespace logstore::compress

#endif  // LOGSTORE_COMPRESS_CODEC_H_
