#ifndef LOGSTORE_FLOW_BALANCER_H_
#define LOGSTORE_FLOW_BALANCER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/route_table.h"

namespace logstore::flow {

// ---------------------------------------------------------------------------
// The multi-tenant traffic model of §4.1.1: a single-source/single-sink
// flow network
//
//     S -> tenants K_i -> shards P_j -> workers D_k -> T
//
// f(K_i) is tenant demand, c(P_j) shard capacity, c(D_k) worker capacity,
// X_ij the route weights. The balancer's job: adjust edges and weights,
// keeping edges few, so the network's max flow covers the demand, subject
// to   f(P_j) <= c(P_j)   and   f(D_k) <= alpha * c(D_k).
// ---------------------------------------------------------------------------

struct TenantStat {
  uint64_t id = 0;
  int64_t traffic = 0;  // f(K_i), log entries/second
};

struct ShardStat {
  uint32_t id = 0;
  uint32_t worker = 0;   // placement: the worker hosting this shard
  int64_t capacity = 0;  // c(P_j)
  int64_t load = 0;      // f(P_j), measured
};

struct WorkerStat {
  uint32_t id = 0;
  int64_t capacity = 0;  // c(D_k)
  int64_t load = 0;      // f(D_k), measured
  // Failed-over workers stay in the stats with alive=false: they carry no
  // shards, contribute zero capacity to scale-out math, and the flow
  // network gives them a zero-capacity sink edge so no plan can route
  // traffic toward them.
  bool alive = true;
};

struct ClusterState {
  std::vector<TenantStat> tenants;
  std::vector<ShardStat> shards;
  std::vector<WorkerStat> workers;
  RouteTable routes;

  // High watermark alpha for workers (§4.1.1; production uses 85%).
  double alpha = 0.85;
  // f_max: the per-route limit of one tenant's traffic on one shard
  // (Algorithm 2's "one shard is limited to process up to 100K logs
  // belonging to the same tenant").
  int64_t edge_max_flow = 100'000;
  // A shard is hot when its load exceeds this fraction of capacity.
  double hot_threshold = 0.9;
};

// Derives shard and worker loads implied by `routes` and tenant demand
// (f(P_j) = sum_i X_ij * f(K_i)); used to evaluate candidate plans.
void ComputeLoads(const ClusterState& state, const RouteTable& routes,
                  std::vector<int64_t>* shard_loads,
                  std::vector<int64_t>* worker_loads);

// CheckHotSpot over all shards: ids of shards with load above threshold.
std::vector<uint32_t> DetectHotShards(const ClusterState& state);

// True when the whole cluster is near saturation and rebalancing cannot
// help (Algorithm 1 line 17): sum f(D_k) > alpha * sum c(D_k).
bool NeedsScaleOut(const ClusterState& state);

struct BalanceResult {
  RouteTable routes;
  // Max achievable flow under the new plan (max-flow balancer only).
  int64_t max_flow = 0;
  // Demand exceeded what any plan could route: add workers.
  bool scale_needed = false;
  // Routes added relative to the input table.
  int routes_added = 0;
};

// TrafficSchedule() strategy interface (Algorithm 1 line 20).
class Balancer {
 public:
  virtual ~Balancer() = default;
  virtual const char* name() const = 0;
  virtual BalanceResult Schedule(const ClusterState& state) = 0;
};

// Algorithm 2: identify the hottest tenant on each hot shard, add routes to
// the least-loaded shards until the tenant's demand fits under f_max per
// route, then spread the tenant's traffic evenly over its routes.
class GreedyBalancer : public Balancer {
 public:
  const char* name() const override { return "greedy"; }
  BalanceResult Schedule(const ClusterState& state) override;
};

// Algorithm 3: solve max-flow (Dinic) on the current topology; while demand
// exceeds the max flow, add one route for each unsatisfied hot tenant to
// the least-loaded shard and re-solve; finally derive weights from the flow
// assignment. Adjusting weights before adding edges is what lets max-flow
// "eliminate system hot spots ... without increasing routing rules".
class MaxFlowBalancer : public Balancer {
 public:
  const char* name() const override { return "max-flow"; }
  BalanceResult Schedule(const ClusterState& state) override;
};

}  // namespace logstore::flow

#endif  // LOGSTORE_FLOW_BALANCER_H_
