#ifndef LOGSTORE_FLOW_ROUTE_TABLE_H_
#define LOGSTORE_FLOW_ROUTE_TABLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/random.h"

namespace logstore::flow {

// The tenant routing table pushed from the controller to the brokers
// (§4.1.2): Rules{T0: {P0: X00, P1: X01, ...}, ...} where X_ij is the
// fraction of tenant i's traffic sent to shard j. A plain value type;
// brokers swap whole tables atomically.
class RouteTable {
 public:
  using ShardWeights = std::map<uint32_t, double>;

  void Set(uint64_t tenant, ShardWeights weights) {
    rules_[tenant] = std::move(weights);
  }

  bool Contains(uint64_t tenant) const { return rules_.count(tenant) > 0; }

  const ShardWeights* Get(uint64_t tenant) const {
    auto it = rules_.find(tenant);
    return it == rules_.end() ? nullptr : &it->second;
  }

  // Weighted random shard choice for one write batch of `tenant`.
  // Returns false if the tenant has no route.
  bool PickShard(uint64_t tenant, Random* rng, uint32_t* shard) const {
    const ShardWeights* weights = Get(tenant);
    if (weights == nullptr || weights->empty()) return false;
    double total = 0;
    for (const auto& [_, w] : *weights) total += w;
    double r = rng->NextDouble() * total;
    for (const auto& [s, w] : *weights) {
      r -= w;
      if (r <= 0) {
        *shard = s;
        return true;
      }
    }
    *shard = weights->rbegin()->first;
    return true;
  }

  // Total number of routing rules (tenant->shard edges), the metric of
  // Figure 12(c): max-flow should add fewer than greedy.
  size_t RouteCount() const {
    size_t count = 0;
    for (const auto& [_, weights] : rules_) count += weights.size();
    return count;
  }

  size_t TenantCount() const { return rules_.size(); }

  // Sum of one tenant's route weights (0 when the tenant has no route).
  // Every producer of this table (initial placement, both balancers)
  // normalizes to 1.0 — "each tenant's weights sum to 100%" — which the
  // placement property tests assert through this accessor.
  double WeightSum(uint64_t tenant) const {
    const ShardWeights* weights = Get(tenant);
    if (weights == nullptr) return 0;
    double total = 0;
    for (const auto& [_, w] : *weights) total += w;
    return total;
  }

  // Structural validity: every routed tenant has at least one shard, no
  // negative weights, and weights sum to 1 within `tolerance`. On failure
  // fills `error` (when non-null) with the offending tenant.
  bool Validate(double tolerance = 1e-6, std::string* error = nullptr) const {
    for (const auto& [tenant, weights] : rules_) {
      double total = 0;
      for (const auto& [shard, w] : weights) {
        (void)shard;
        if (w < 0) {
          if (error != nullptr) {
            *error = "tenant " + std::to_string(tenant) + " negative weight";
          }
          return false;
        }
        total += w;
      }
      if (weights.empty() || total < 1.0 - tolerance ||
          total > 1.0 + tolerance) {
        if (error != nullptr) {
          *error = "tenant " + std::to_string(tenant) +
                   " weights sum to " + std::to_string(total);
        }
        return false;
      }
    }
    return true;
  }

  const std::map<uint64_t, ShardWeights>& rules() const { return rules_; }

  // Read-side merge (§4.1.5): during a transition, reads must be forwarded
  // to the union of old and new plans; weights are irrelevant for reads.
  static RouteTable MergeForReads(const RouteTable& old_table,
                                  const RouteTable& new_table) {
    RouteTable merged = new_table;
    for (const auto& [tenant, weights] : old_table.rules_) {
      auto& target = merged.rules_[tenant];
      for (const auto& [shard, weight] : weights) {
        target.emplace(shard, weight);  // keep new weight if present
      }
    }
    return merged;
  }

 private:
  std::map<uint64_t, ShardWeights> rules_;
};

}  // namespace logstore::flow

#endif  // LOGSTORE_FLOW_ROUTE_TABLE_H_
