#include "flow/balancer.h"

#include <algorithm>
#include <cmath>

#include "flow/dinic.h"

namespace logstore::flow {

namespace {

// Index lookups id -> position.
std::map<uint64_t, size_t> TenantIndex(const ClusterState& state) {
  std::map<uint64_t, size_t> index;
  for (size_t i = 0; i < state.tenants.size(); ++i) {
    index[state.tenants[i].id] = i;
  }
  return index;
}

std::map<uint32_t, size_t> ShardIndex(const ClusterState& state) {
  std::map<uint32_t, size_t> index;
  for (size_t i = 0; i < state.shards.size(); ++i) {
    index[state.shards[i].id] = i;
  }
  return index;
}

std::map<uint32_t, size_t> WorkerIndex(const ClusterState& state) {
  std::map<uint32_t, size_t> index;
  for (size_t i = 0; i < state.workers.size(); ++i) {
    index[state.workers[i].id] = i;
  }
  return index;
}

// GreedyFindLeastLoad(P): shard with the lowest load/capacity ratio.
uint32_t FindLeastLoadedShard(const ClusterState& state,
                              const std::vector<int64_t>& shard_loads,
                              const RouteTable& routes, uint64_t tenant) {
  size_t best = 0;
  double best_ratio = 1e300;
  for (size_t j = 0; j < state.shards.size(); ++j) {
    // Skip shards the tenant already routes to (an edge already exists).
    const auto* weights = routes.Get(tenant);
    if (weights != nullptr && weights->count(state.shards[j].id) > 0) continue;
    const double ratio =
        static_cast<double>(shard_loads[j]) /
        std::max<int64_t>(1, state.shards[j].capacity);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best = j;
    }
  }
  return state.shards[best].id;
}

// PickHotSpotTenant(Gamma_Pj): the tenant contributing the most traffic to
// shard `shard_id` under `routes`.
uint64_t PickHotSpotTenant(const ClusterState& state, const RouteTable& routes,
                           uint32_t shard_id) {
  uint64_t best_tenant = state.tenants.empty() ? 0 : state.tenants[0].id;
  double best_traffic = -1;
  for (const TenantStat& tenant : state.tenants) {
    const auto* weights = routes.Get(tenant.id);
    if (weights == nullptr) continue;
    auto it = weights->find(shard_id);
    if (it == weights->end()) continue;
    const double traffic = it->second * static_cast<double>(tenant.traffic);
    if (traffic > best_traffic) {
      best_traffic = traffic;
      best_tenant = tenant.id;
    }
  }
  return best_tenant;
}

}  // namespace

void ComputeLoads(const ClusterState& state, const RouteTable& routes,
                  std::vector<int64_t>* shard_loads,
                  std::vector<int64_t>* worker_loads) {
  const auto shard_index = ShardIndex(state);
  const auto worker_index = WorkerIndex(state);
  shard_loads->assign(state.shards.size(), 0);
  worker_loads->assign(state.workers.size(), 0);
  for (const TenantStat& tenant : state.tenants) {
    const auto* weights = routes.Get(tenant.id);
    if (weights == nullptr) continue;
    for (const auto& [shard_id, weight] : *weights) {
      auto it = shard_index.find(shard_id);
      if (it == shard_index.end()) continue;
      const int64_t flow =
          static_cast<int64_t>(weight * static_cast<double>(tenant.traffic));
      (*shard_loads)[it->second] += flow;
      auto wit = worker_index.find(state.shards[it->second].worker);
      if (wit != worker_index.end()) (*worker_loads)[wit->second] += flow;
    }
  }
}

std::vector<uint32_t> DetectHotShards(const ClusterState& state) {
  std::vector<uint32_t> hot;
  for (const ShardStat& shard : state.shards) {
    if (static_cast<double>(shard.load) >
        state.hot_threshold * static_cast<double>(shard.capacity)) {
      hot.push_back(shard.id);
    }
  }
  return hot;
}

bool NeedsScaleOut(const ClusterState& state) {
  int64_t total_load = 0;
  double total_capacity = 0;
  for (const WorkerStat& worker : state.workers) {
    total_load += worker.load;
    // A dead worker's nameplate capacity must not mask saturation of the
    // survivors.
    if (worker.alive) {
      total_capacity += state.alpha * static_cast<double>(worker.capacity);
    }
  }
  return static_cast<double>(total_load) > total_capacity;
}

// ---------------------------------------------------------------------------
// Greedy (Algorithm 2)
// ---------------------------------------------------------------------------

BalanceResult GreedyBalancer::Schedule(const ClusterState& state) {
  BalanceResult result;
  result.routes = state.routes;
  const size_t routes_before = result.routes.RouteCount();

  const auto tenant_index = TenantIndex(state);

  // K_hot: hottest tenant of each hot shard.
  std::vector<uint32_t> hot_shards = DetectHotShards(state);
  std::vector<uint64_t> hot_tenants;
  for (uint32_t shard : hot_shards) {
    const uint64_t tenant = PickHotSpotTenant(state, result.routes, shard);
    if (std::find(hot_tenants.begin(), hot_tenants.end(), tenant) ==
        hot_tenants.end()) {
      hot_tenants.push_back(tenant);
    }
  }

  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
  const auto shard_index = ShardIndex(state);

  for (uint64_t tenant_id : hot_tenants) {
    auto tit = tenant_index.find(tenant_id);
    if (tit == tenant_index.end()) continue;
    const TenantStat& tenant = state.tenants[tit->second];

    // CalculateAddRoutesNum (Algorithm 2 line 6): N_add = ceil(f(K_i) /
    // f_max), added every time the tenant is picked off a hot shard. This
    // is deliberately faithful to the paper's greedy, which "always adds
    // more shards to the hot tenants ... tends to distribute the workload
    // to more shards" — the route-count inflation of Figure 12(c).
    const auto* weights = result.routes.Get(tenant_id);
    const int needed = static_cast<int>(
        (tenant.traffic + state.edge_max_flow - 1) / state.edge_max_flow);
    int to_add = std::max(needed, 1);

    RouteTable::ShardWeights new_weights =
        weights == nullptr ? RouteTable::ShardWeights{} : *weights;
    while (to_add > 0 &&
           new_weights.size() < state.shards.size()) {
      const uint32_t shard =
          FindLeastLoadedShard(state, shard_loads, result.routes, tenant_id);
      if (new_weights.count(shard) > 0) break;  // no more distinct shards
      new_weights[shard] = 0;
      // Track hypothetical load for the next FindLeastLoadedShard call.
      result.routes.Set(tenant_id, new_weights);
      --to_add;
      ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
      (void)shard_index;
    }

    // Averaging: weight = 1 / N_total on every route of the tenant.
    const double weight = 1.0 / static_cast<double>(new_weights.size());
    for (auto& [_, w] : new_weights) w = weight;
    result.routes.Set(tenant_id, new_weights);
  }

  ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
  result.routes_added =
      static_cast<int>(result.routes.RouteCount() - routes_before);
  return result;
}

// ---------------------------------------------------------------------------
// Max-flow (Algorithm 3)
// ---------------------------------------------------------------------------

BalanceResult MaxFlowBalancer::Schedule(const ClusterState& state) {
  BalanceResult result;
  result.routes = state.routes;
  const size_t routes_before = result.routes.RouteCount();

  const auto shard_index = ShardIndex(state);
  const auto worker_index = WorkerIndex(state);

  int64_t total_demand = 0;
  for (const TenantStat& tenant : state.tenants) total_demand += tenant.traffic;

  // K_hot from the hot shards of the measured state.
  std::vector<uint64_t> hot_tenants;
  for (uint32_t shard : DetectHotShards(state)) {
    const uint64_t tenant = PickHotSpotTenant(state, result.routes, shard);
    if (std::find(hot_tenants.begin(), hot_tenants.end(), tenant) ==
        hot_tenants.end()) {
      hot_tenants.push_back(tenant);
    }
  }

  // Node layout: 0 = S, tenants, shards, workers, T.
  const int m = static_cast<int>(state.tenants.size());
  const int w = static_cast<int>(state.shards.size());
  const int n = static_cast<int>(state.workers.size());
  const int source = 0;
  const int sink = 1 + m + w + n;
  auto tenant_node = [&](size_t i) { return 1 + static_cast<int>(i); };
  auto shard_node = [&](size_t j) { return 1 + m + static_cast<int>(j); };
  auto worker_node = [&](size_t k) { return 1 + m + w + static_cast<int>(k); };

  const auto tenant_index = TenantIndex(state);

  // Solves max flow for the current route topology; fills per-route flows.
  struct Solved {
    int64_t max_flow = 0;
    // (tenant position, shard position) -> flow
    std::map<std::pair<size_t, size_t>, int64_t> route_flows;
    std::vector<int64_t> shard_flows;
  };
  auto solve = [&]() -> Solved {
    DinicMaxFlow graph(2 + m + w + n);
    std::map<std::pair<size_t, size_t>, int> route_edges;
    for (size_t i = 0; i < state.tenants.size(); ++i) {
      graph.AddEdge(source, tenant_node(i), state.tenants[i].traffic);
    }
    for (const auto& [tenant_id, weights] : result.routes.rules()) {
      auto tit = tenant_index.find(tenant_id);
      if (tit == tenant_index.end()) continue;
      for (const auto& [shard_id, _] : weights) {
        auto sit = shard_index.find(shard_id);
        if (sit == shard_index.end()) continue;
        route_edges[{tit->second, sit->second}] =
            graph.AddEdge(tenant_node(tit->second), shard_node(sit->second),
                          state.edge_max_flow);
      }
    }
    std::vector<int> shard_worker_edges(w, -1);
    for (size_t j = 0; j < state.shards.size(); ++j) {
      auto wit = worker_index.find(state.shards[j].worker);
      if (wit == worker_index.end()) continue;
      shard_worker_edges[j] = graph.AddEdge(
          shard_node(j), worker_node(wit->second), state.shards[j].capacity);
    }
    for (size_t k = 0; k < state.workers.size(); ++k) {
      graph.AddEdge(worker_node(k), sink,
                    state.workers[k].alive
                        ? static_cast<int64_t>(
                              state.alpha *
                              static_cast<double>(state.workers[k].capacity))
                        : 0);
    }

    Solved solved;
    solved.max_flow = graph.Solve(source, sink);
    for (const auto& [key, edge_id] : route_edges) {
      solved.route_flows[key] = graph.flow_on(edge_id);
    }
    solved.shard_flows.assign(w, 0);
    for (size_t j = 0; j < state.shards.size(); ++j) {
      if (shard_worker_edges[j] >= 0) {
        solved.shard_flows[j] = graph.flow_on(shard_worker_edges[j]);
      }
    }
    return solved;
  };

  Solved solved = solve();
  result.max_flow = solved.max_flow;

  // While the topology cannot carry the demand, widen it: one new route per
  // unsatisfied hot tenant, to the least-loaded shard (Algorithm 3 line 9).
  const int max_iterations = w + m + 1;
  for (int iteration = 0;
       solved.max_flow < total_demand && iteration < max_iterations;
       ++iteration) {
    // Keep route additions minimal: first give edges to tenants whose
    // demand is structurally infeasible under the per-route cap f_max
    // (they cannot be satisfied by re-weighting); only if none remain,
    // widen the single most-starved tenant and re-solve. Re-weighting
    // before edge addition is the max-flow scheduler's advantage over
    // greedy (fewer routing rules, Figure 12(c)).
    auto routed_for = [&](size_t tenant_pos) {
      int64_t routed = 0;
      for (size_t j = 0; j < state.shards.size(); ++j) {
        auto fit = solved.route_flows.find({tenant_pos, j});
        if (fit != solved.route_flows.end()) routed += fit->second;
      }
      return routed;
    };
    auto add_edge_for = [&](uint64_t tenant_id) {
      const auto* weights = result.routes.Get(tenant_id);
      size_t best = SIZE_MAX;
      double best_ratio = 1e300;
      for (size_t j = 0; j < state.shards.size(); ++j) {
        if (weights != nullptr && weights->count(state.shards[j].id) > 0) {
          continue;
        }
        const double ratio =
            static_cast<double>(solved.shard_flows[j]) /
            std::max<int64_t>(1, state.shards[j].capacity);
        if (ratio < best_ratio) {
          best_ratio = ratio;
          best = j;
        }
      }
      if (best == SIZE_MAX) return false;
      RouteTable::ShardWeights new_weights =
          weights == nullptr ? RouteTable::ShardWeights{} : *weights;
      new_weights[state.shards[best].id] = 0;
      result.routes.Set(tenant_id, new_weights);
      return true;
    };

    bool added = false;
    for (const TenantStat& tenant : state.tenants) {
      const auto* weights = result.routes.Get(tenant.id);
      const int64_t edges =
          weights == nullptr ? 0 : static_cast<int64_t>(weights->size());
      if (tenant.traffic > edges * state.edge_max_flow) {
        added |= add_edge_for(tenant.id);
      }
    }
    if (!added) {
      // No structural shortfall: widen the most congestion-starved tenant.
      uint64_t worst_tenant = 0;
      int64_t worst_gap = 0;
      for (size_t i = 0; i < state.tenants.size(); ++i) {
        const int64_t gap = state.tenants[i].traffic - routed_for(i);
        if (gap > worst_gap) {
          worst_gap = gap;
          worst_tenant = state.tenants[i].id;
        }
      }
      if (worst_gap > 0) added = add_edge_for(worst_tenant);
    }
    if (!added) break;
    solved = solve();
    result.max_flow = solved.max_flow;
  }

  result.scale_needed = solved.max_flow < total_demand;

  // Derive weights from the flow assignment: X_ij = f(X_ij) / f(K_i).
  std::vector<uint64_t> routed_tenants;
  for (const auto& [tenant_id, _] : result.routes.rules()) {
    routed_tenants.push_back(tenant_id);
  }
  for (uint64_t tenant_id : routed_tenants) {
    auto tit = tenant_index.find(tenant_id);
    if (tit == tenant_index.end()) continue;
    const TenantStat& tenant = state.tenants[tit->second];
    const auto* current = result.routes.Get(tenant_id);
    if (current == nullptr) continue;

    RouteTable::ShardWeights new_weights;
    int64_t routed_total = 0;
    for (const auto& [shard_id, _] : *current) {
      auto sit = shard_index.find(shard_id);
      if (sit == shard_index.end()) continue;
      auto fit = solved.route_flows.find({tit->second, sit->second});
      const int64_t flow = fit == solved.route_flows.end() ? 0 : fit->second;
      if (flow > 0) {
        new_weights[shard_id] = static_cast<double>(flow);
        routed_total += flow;
      }
    }
    if (new_weights.empty() || routed_total == 0 || tenant.traffic == 0) {
      // Zero-demand tenant (or starved in the solution): keep one route.
      new_weights.clear();
      new_weights[current->begin()->first] = 1.0;
    } else {
      for (auto& [_, weight] : new_weights) {
        weight /= static_cast<double>(routed_total);
      }
    }
    result.routes.Set(tenant_id, new_weights);
  }

  result.routes_added = static_cast<int>(
      static_cast<int64_t>(result.routes.RouteCount()) -
      static_cast<int64_t>(routes_before));
  return result;
}

}  // namespace logstore::flow
