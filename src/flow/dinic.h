#ifndef LOGSTORE_FLOW_DINIC_H_
#define LOGSTORE_FLOW_DINIC_H_

#include <cstdint>
#include <vector>

namespace logstore::flow {

// Dinic's maximum-flow algorithm (Dinic '70), the solver behind the
// max-flow traffic scheduler of §4.1.4 (Algorithm 3). Integer capacities;
// traffic is expressed in whole log-entries/second.
class DinicMaxFlow {
 public:
  explicit DinicMaxFlow(int num_nodes);

  // Adds a directed edge u->v with `capacity` and returns its edge id,
  // usable with flow_on() after Solve.
  int AddEdge(int u, int v, int64_t capacity);

  // Computes the maximum flow from `source` to `sink`.
  int64_t Solve(int source, int sink);

  // Flow routed through edge `edge_id` by the last Solve.
  int64_t flow_on(int edge_id) const;

  int num_nodes() const { return static_cast<int>(adjacency_.size()); }

 private:
  struct Edge {
    int to;
    int64_t capacity;  // residual
    int64_t original;
    int rev;  // index of the reverse edge in adjacency_[to]
  };

  bool Bfs(int source, int sink);
  int64_t Dfs(int u, int sink, int64_t pushed);

  std::vector<std::vector<Edge>> adjacency_;
  std::vector<std::pair<int, int>> edge_refs_;  // edge id -> (node, index)
  std::vector<int> level_;
  std::vector<int> iter_;
};

}  // namespace logstore::flow

#endif  // LOGSTORE_FLOW_DINIC_H_
