#include "flow/dinic.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace logstore::flow {

DinicMaxFlow::DinicMaxFlow(int num_nodes)
    : adjacency_(num_nodes), level_(num_nodes), iter_(num_nodes) {}

int DinicMaxFlow::AddEdge(int u, int v, int64_t capacity) {
  const int edge_id = static_cast<int>(edge_refs_.size());
  edge_refs_.emplace_back(u, static_cast<int>(adjacency_[u].size()));
  adjacency_[u].push_back(
      Edge{v, capacity, capacity, static_cast<int>(adjacency_[v].size())});
  adjacency_[v].push_back(
      Edge{u, 0, 0, static_cast<int>(adjacency_[u].size()) - 1});
  return edge_id;
}

bool DinicMaxFlow::Bfs(int source, int sink) {
  std::fill(level_.begin(), level_.end(), -1);
  std::deque<int> queue;
  level_[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (const Edge& e : adjacency_[u]) {
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[sink] >= 0;
}

int64_t DinicMaxFlow::Dfs(int u, int sink, int64_t pushed) {
  if (u == sink) return pushed;
  for (int& i = iter_[u]; i < static_cast<int>(adjacency_[u].size()); ++i) {
    Edge& e = adjacency_[u][i];
    if (e.capacity > 0 && level_[e.to] == level_[u] + 1) {
      const int64_t d = Dfs(e.to, sink, std::min(pushed, e.capacity));
      if (d > 0) {
        e.capacity -= d;
        adjacency_[e.to][e.rev].capacity += d;
        return d;
      }
    }
  }
  return 0;
}

int64_t DinicMaxFlow::Solve(int source, int sink) {
  // Reset residuals so Solve is repeatable on the same graph.
  for (auto& edges : adjacency_) {
    for (Edge& e : edges) e.capacity = e.original;
  }
  int64_t flow = 0;
  while (Bfs(source, sink)) {
    std::fill(iter_.begin(), iter_.end(), 0);
    int64_t pushed;
    while ((pushed = Dfs(source, sink,
                         std::numeric_limits<int64_t>::max())) > 0) {
      flow += pushed;
    }
  }
  return flow;
}

int64_t DinicMaxFlow::flow_on(int edge_id) const {
  const auto& [node, index] = edge_refs_[edge_id];
  const Edge& e = adjacency_[node][index];
  return e.original - e.capacity;
}

}  // namespace logstore::flow
