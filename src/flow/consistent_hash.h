#ifndef LOGSTORE_FLOW_CONSISTENT_HASH_H_
#define LOGSTORE_FLOW_CONSISTENT_HASH_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/hash.h"

namespace logstore::flow {

// Consistent-hash ring used for the initial tenant->shard placement
// (Algorithm 1 line 5: P_j <- ConsistentHash(K_i)). Virtual nodes smooth
// the distribution; adding or removing a shard only remaps a 1/w slice of
// tenants.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes) {}

  void AddNode(uint32_t node_id) {
    for (int v = 0; v < virtual_nodes_; ++v) {
      ring_[Hash64("node-" + std::to_string(node_id) + "#" +
                   std::to_string(v))] = node_id;
    }
  }

  void RemoveNode(uint32_t node_id) {
    for (int v = 0; v < virtual_nodes_; ++v) {
      ring_.erase(Hash64("node-" + std::to_string(node_id) + "#" +
                         std::to_string(v)));
    }
  }

  bool empty() const { return ring_.empty(); }
  size_t ring_size() const { return ring_.size(); }

  // Maps a key (tenant id) to a node (shard id). Ring must be non-empty.
  uint32_t GetNode(uint64_t key) const {
    const uint64_t h = Hash64("tenant-" + std::to_string(key));
    auto it = ring_.lower_bound(h);
    if (it == ring_.end()) it = ring_.begin();
    return it->second;
  }

 private:
  const int virtual_nodes_;
  std::map<uint64_t, uint32_t> ring_;
};

}  // namespace logstore::flow

#endif  // LOGSTORE_FLOW_CONSISTENT_HASH_H_
