#include "objectstore/file_object_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace logstore::objectstore {

namespace fs = std::filesystem;

Result<std::unique_ptr<FileObjectStore>> FileObjectStore::Open(
    const std::string& root, metrics::MetricRegistry* registry) {
  std::error_code ec;
  fs::create_directories(root, ec);
  if (ec) {
    return Status::IOError("cannot create root " + root + ": " + ec.message());
  }
  return std::unique_ptr<FileObjectStore>(new FileObjectStore(root, registry));
}

bool FileObjectStore::ValidKey(const std::string& key) {
  if (key.empty() || key.front() == '/' || key.find("..") != std::string::npos) {
    return false;
  }
  return true;
}

std::string FileObjectStore::PathFor(const std::string& key) const {
  return root_ + "/" + key;
}

Status FileObjectStore::Put(const std::string& key, const Slice& data) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad key: " + key);
  const std::string path = PathFor(key);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  if (ec) return Status::IOError("mkdir failed: " + ec.message());

  // Write-then-rename makes the put atomic, matching object store semantics
  // where partially-written objects are never visible.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open " + tmp);
    out.write(data.data(), data.size());
    if (!out) return Status::IOError("short write to " + tmp);
  }
  fs::rename(tmp, path, ec);
  if (ec) return Status::IOError("rename failed: " + ec.message());
  stats_.puts++;
  stats_.bytes_written += data.size();
  return Status::OK();
}

Result<std::string> FileObjectStore::Get(const std::string& key) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad key: " + key);
  std::ifstream in(PathFor(key), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("no such object: " + key);
  const auto size = in.tellg();
  std::string data(static_cast<size_t>(size), '\0');
  in.seekg(0);
  in.read(data.data(), size);
  if (!in) return Status::IOError("short read on " + key);
  stats_.gets++;
  stats_.bytes_read += data.size();
  return data;
}

Result<std::string> FileObjectStore::GetRange(const std::string& key,
                                              uint64_t offset,
                                              uint64_t length) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad key: " + key);
  std::ifstream in(PathFor(key), std::ios::binary | std::ios::ate);
  if (!in) return Status::NotFound("no such object: " + key);
  const uint64_t size = static_cast<uint64_t>(in.tellg());
  if (offset > size) {
    return Status::InvalidArgument("range offset beyond object size");
  }
  const uint64_t n = std::min<uint64_t>(length, size - offset);
  std::string data(static_cast<size_t>(n), '\0');
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(data.data(), static_cast<std::streamsize>(n));
  if (!in) return Status::IOError("short range read on " + key);
  stats_.range_gets++;
  stats_.bytes_read += n;
  return data;
}

Result<uint64_t> FileObjectStore::Head(const std::string& key) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad key: " + key);
  std::error_code ec;
  const auto size = fs::file_size(PathFor(key), ec);
  if (ec) return Status::NotFound("no such object: " + key);
  return static_cast<uint64_t>(size);
}

Result<std::vector<std::string>> FileObjectStore::List(
    const std::string& prefix) {
  stats_.lists++;
  std::vector<std::string> keys;
  std::error_code ec;
  for (auto it = fs::recursive_directory_iterator(root_, ec);
       !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    std::string rel = fs::relative(it->path(), root_, ec).generic_string();
    if (ec) continue;
    if (rel.size() >= 4 && rel.compare(rel.size() - 4, 4, ".tmp") == 0) continue;
    if (rel.compare(0, prefix.size(), prefix) == 0) keys.push_back(rel);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

Status FileObjectStore::Delete(const std::string& key) {
  if (!ValidKey(key)) return Status::InvalidArgument("bad key: " + key);
  std::error_code ec;
  fs::remove(PathFor(key), ec);
  stats_.deletes++;
  return Status::OK();
}

}  // namespace logstore::objectstore
