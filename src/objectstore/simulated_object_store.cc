#include "objectstore/simulated_object_store.h"

#include <algorithm>

namespace logstore::objectstore {

SimulatedObjectStore::SimulatedObjectStore(std::unique_ptr<ObjectStore> base,
                                           SimulatedStoreOptions options,
                                           Clock* clock)
    : base_(std::move(base)), options_(options), clock_(clock) {}

void SimulatedObjectStore::ChargeRequest(uint64_t bytes) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    slot_free_.wait(lock,
                    [&] { return in_flight_ < options_.max_concurrent_requests; });
    ++in_flight_;
  }

  // Round-trip latency is per-request (parallel requests overlap it), but
  // transfer time reserves a slice of the shared link: a request's
  // transfer starts when the link frees up and occupies it for
  // bytes/bandwidth.
  const int64_t transfer_us =
      static_cast<int64_t>(bytes / options_.bandwidth_bytes_per_us);
  const int64_t now = clock_->NowMicros();
  int64_t transfer_done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t start = std::max(now, link_busy_until_us_);
    link_busy_until_us_ = start + static_cast<int64_t>(
                                      transfer_us * options_.time_scale);
    transfer_done = link_busy_until_us_;
  }
  const int64_t finish =
      std::max(transfer_done,
               now + static_cast<int64_t>(options_.first_byte_latency_us *
                                          options_.time_scale));
  charged_micros_ +=
      static_cast<uint64_t>(options_.first_byte_latency_us + transfer_us);
  const int64_t wait = finish - now;
  if (wait > 0 && options_.time_scale > 0) clock_->SleepMicros(wait);

  {
    std::lock_guard<std::mutex> lock(mu_);
    --in_flight_;
  }
  slot_free_.notify_one();
}

Status SimulatedObjectStore::Put(const std::string& key, const Slice& data) {
  ChargeRequest(data.size());
  return base_->Put(key, data);
}

Result<std::string> SimulatedObjectStore::Get(const std::string& key) {
  auto size = base_->Head(key);
  ChargeRequest(size.ok() ? *size : 0);
  return base_->Get(key);
}

Result<std::string> SimulatedObjectStore::GetRange(const std::string& key,
                                                   uint64_t offset,
                                                   uint64_t length) {
  auto result = base_->GetRange(key, offset, length);
  ChargeRequest(result.ok() ? result->size() : 0);
  return result;
}

Result<uint64_t> SimulatedObjectStore::Head(const std::string& key) {
  ChargeRequest(0);
  return base_->Head(key);
}

Result<std::vector<std::string>> SimulatedObjectStore::List(
    const std::string& prefix) {
  ChargeRequest(0);
  return base_->List(prefix);
}

Status SimulatedObjectStore::Delete(const std::string& key) {
  ChargeRequest(0);
  return base_->Delete(key);
}

}  // namespace logstore::objectstore
