#include "objectstore/tar_file.h"

#include <cstring>

#include "common/coding.h"

namespace logstore::objectstore {

namespace {
constexpr char kMagic[8] = {'L', 'S', 'T', 'A', 'R', '\x01', '\0', '\0'};
}  // namespace

Status TarWriter::AddMember(const std::string& name, const Slice& data) {
  for (const auto& [existing, _] : members_) {
    if (existing == name) {
      return Status::AlreadyExists("duplicate tar member: " + name);
    }
  }
  members_.emplace_back(name, data.ToString());
  payload_bytes_ += data.size();
  return Status::OK();
}

std::string TarWriter::Finish() {
  // First pass: build the manifest with placeholder offsets to learn its
  // size, since offsets are absolute and depend on the manifest length.
  // Varint offsets change size with their value, so we iterate to a fixed
  // point (converges in <= 2 extra rounds in practice).
  std::string manifest;
  uint64_t header_size = 0;
  for (int round = 0; round < 4; ++round) {
    std::string attempt;
    PutVarint32(&attempt, static_cast<uint32_t>(members_.size()));
    uint64_t offset = header_size;
    for (const auto& [name, data] : members_) {
      PutLengthPrefixedSlice(&attempt, name);
      PutVarint64(&attempt, offset);
      PutVarint64(&attempt, data.size());
      offset += data.size();
    }
    const uint64_t new_header = TarReader::kPrologueSize + attempt.size();
    manifest = std::move(attempt);
    if (new_header == header_size) break;
    header_size = new_header;
  }

  std::string out;
  out.reserve(header_size + payload_bytes_);
  out.append(kMagic, sizeof(kMagic));
  PutFixed32(&out, static_cast<uint32_t>(manifest.size()));
  out.append(manifest);
  for (const auto& [name, data] : members_) out.append(data);
  return out;
}

Result<uint64_t> TarReader::HeaderSize(const Slice& prologue) {
  if (prologue.size() < kPrologueSize) {
    return Status::Corruption("tar prologue too short");
  }
  if (memcmp(prologue.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad tar magic");
  }
  const uint32_t manifest_size = DecodeFixed32(prologue.data() + 8);
  return kPrologueSize + static_cast<uint64_t>(manifest_size);
}

Result<TarReader> TarReader::Parse(const Slice& head) {
  auto header_size = HeaderSize(head);
  if (!header_size.ok()) return header_size.status();
  if (head.size() < *header_size) {
    return Status::Corruption("tar head does not cover manifest");
  }

  Slice manifest(head.data() + kPrologueSize, *header_size - kPrologueSize);
  uint32_t count;
  if (!GetVarint32(&manifest, &count)) {
    return Status::Corruption("tar manifest: bad count");
  }

  TarReader reader;
  reader.members_.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    Slice name;
    uint64_t offset, size;
    if (!GetLengthPrefixedSlice(&manifest, &name) ||
        !GetVarint64(&manifest, &offset) || !GetVarint64(&manifest, &size)) {
      return Status::Corruption("tar manifest: truncated entry");
    }
    TarMember member{name.ToString(), offset, size};
    reader.index_[member.name] = reader.members_.size();
    reader.members_.push_back(std::move(member));
  }
  return reader;
}

Result<TarMember> TarReader::Find(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return Status::NotFound("no tar member: " + name);
  return members_[it->second];
}

}  // namespace logstore::objectstore
