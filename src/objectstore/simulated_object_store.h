#ifndef LOGSTORE_OBJECTSTORE_SIMULATED_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_SIMULATED_OBJECT_STORE_H_

#include <condition_variable>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "objectstore/object_store.h"

namespace logstore::objectstore {

// Latency/bandwidth model of a remote object store. Defaults approximate the
// OSS behaviour the paper designs against: milliseconds of per-request
// latency plus a bandwidth-bound transfer time, with a cap on concurrent
// requests per node.
struct SimulatedStoreOptions {
  // Fixed cost per request (HTTP round trip + first byte). Paid
  // concurrently by parallel requests (independent round trips).
  int64_t first_byte_latency_us = 4000;
  // AGGREGATE transfer throughput of the node's network path: concurrent
  // transfers share it (they serialize on a virtual bandwidth clock), so
  // fetching fewer bytes genuinely costs less even with many parallel
  // connections — the economics that make data skipping matter.
  double bandwidth_bytes_per_us = 100.0;  // 100 MB/s
  // Maximum in-flight requests; extra requests queue (models connection
  // pool / OSS QPS limits).
  int max_concurrent_requests = 32;
  // Scales all injected delays. 0 disables sleeping entirely (counters
  // still accumulate), <1 compresses wall time for large benches.
  double time_scale = 1.0;
};

// Wraps a backend ObjectStore and injects the cost model above. Also keeps
// a virtual "charged" time counter so callers can report simulated latency
// even when time_scale < 1.
class SimulatedObjectStore : public ObjectStore {
 public:
  SimulatedObjectStore(std::unique_ptr<ObjectStore> base,
                       SimulatedStoreOptions options,
                       Clock* clock = SystemClock::Default());

  Status Put(const std::string& key, const Slice& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  Result<uint64_t> Head(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreStats& stats() override { return base_->stats(); }

  // Total unscaled request-time charged so far, across all requests
  // (not wall time; parallel requests each charge their full cost).
  uint64_t charged_micros() const { return charged_micros_.load(); }

  const SimulatedStoreOptions& options() const { return options_; }

 private:
  // Blocks until a concurrency slot is free, sleeps the modeled cost for
  // `bytes`, then releases the slot.
  void ChargeRequest(uint64_t bytes);

  std::unique_ptr<ObjectStore> base_;
  const SimulatedStoreOptions options_;
  Clock* clock_;

  std::mutex mu_;
  std::condition_variable slot_free_;
  int in_flight_ = 0;
  // Virtual time (clock_ epoch) until which the shared link is busy.
  int64_t link_busy_until_us_ = 0;
  std::atomic<uint64_t> charged_micros_{0};
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_SIMULATED_OBJECT_STORE_H_
