#include "objectstore/retrying_object_store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/random.h"

namespace logstore::objectstore {

namespace {

inline const Status& StatusOf(const Status& status) { return status; }
template <typename T>
inline const Status& StatusOf(const Result<T>& result) {
  return result.status();
}

}  // namespace

RetryingObjectStore::RetryingObjectStore(ObjectStore* base,
                                         RetryOptions options, Clock* clock)
    : base_(base), options_(options), clock_(clock) {
  retry_stats_.BindTo(metrics::OrDefault(options_.registry));
}

RetryingObjectStore::RetryingObjectStore(std::unique_ptr<ObjectStore> base,
                                         RetryOptions options, Clock* clock)
    : owned_(std::move(base)),
      base_(owned_.get()),
      options_(options),
      clock_(clock) {
  retry_stats_.BindTo(metrics::OrDefault(options_.registry));
}

bool RetryingObjectStore::IsRetryable(const Status& status) {
  switch (status.code()) {
    case StatusCode::kIOError:
    case StatusCode::kUnavailable:
    case StatusCode::kTimedOut:
    case StatusCode::kResourceExhausted:
    case StatusCode::kAborted:
      return true;
    default:
      return false;
  }
}

bool RetryingObjectStore::BackoffOrGiveUp(int retry_index,
                                          int64_t deadline_us) {
  double backoff = static_cast<double>(options_.initial_backoff_us);
  for (int i = 1; i < retry_index; ++i) backoff *= options_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_us));
  Random rng(HashCombine(options_.seed,
                         call_counter_.fetch_add(1, std::memory_order_relaxed)));
  const int64_t sleep_us =
      static_cast<int64_t>(backoff * (1.0 - options_.jitter * rng.NextDouble()));
  if (deadline_us > 0 && clock_->NowMicros() + sleep_us > deadline_us) {
    return false;
  }
  if (sleep_us > 0) clock_->SleepMicros(sleep_us);
  return true;
}

template <typename Fn>
auto RetryingObjectStore::RetryLoop(Fn attempt) -> decltype(attempt()) {
  const int64_t deadline_us =
      options_.call_deadline_us > 0
          ? clock_->NowMicros() + options_.call_deadline_us
          : 0;
  const int max_attempts = std::max(1, options_.max_attempts);
  int tries = 0;
  while (true) {
    ++tries;
    retry_stats_.attempts.fetch_add(1, std::memory_order_relaxed);
    auto result = attempt();
    if (result.ok()) return result;
    if (!IsRetryable(StatusOf(result))) return result;
    if (tries >= max_attempts || !BackoffOrGiveUp(tries, deadline_us)) {
      retry_stats_.giveups.fetch_add(1, std::memory_order_relaxed);
      return result;
    }
    retry_stats_.retries.fetch_add(1, std::memory_order_relaxed);
  }
}

Status RetryingObjectStore::Put(const std::string& key, const Slice& data) {
  return RetryLoop([&] { return base_->Put(key, data); });
}

Result<std::string> RetryingObjectStore::Get(const std::string& key) {
  return RetryLoop([&] { return base_->Get(key); });
}

Result<std::string> RetryingObjectStore::GetRange(const std::string& key,
                                                  uint64_t offset,
                                                  uint64_t length) {
  return RetryLoop([&]() -> Result<std::string> {
    auto result = base_->GetRange(key, offset, length);
    if (!result.ok() || !options_.verify_short_reads ||
        result->size() >= length) {
      return result;
    }
    // Fewer bytes than requested: legitimate only when the range ran past
    // the end of the object. Ask the store how big the object really is.
    auto object_size = base_->Head(key);
    if (!object_size.ok()) {
      if (IsRetryable(object_size.status())) {
        return Status::IOError("short-read verification Head failed: " +
                               object_size.status().ToString());
      }
      return object_size.status();
    }
    const uint64_t available = *object_size > offset ? *object_size - offset : 0;
    const uint64_t expected = std::min<uint64_t>(length, available);
    if (result->size() < expected) {
      retry_stats_.short_reads.fetch_add(1, std::memory_order_relaxed);
      return Status::IOError(
          "short read: got " + std::to_string(result->size()) + " of " +
          std::to_string(expected) + " bytes of " + key);
    }
    return result;
  });
}

Result<uint64_t> RetryingObjectStore::Head(const std::string& key) {
  return RetryLoop([&] { return base_->Head(key); });
}

Result<std::vector<std::string>> RetryingObjectStore::List(
    const std::string& prefix) {
  return RetryLoop([&] { return base_->List(prefix); });
}

Status RetryingObjectStore::Delete(const std::string& key) {
  return RetryLoop([&] { return base_->Delete(key); });
}

}  // namespace logstore::objectstore
