#ifndef LOGSTORE_OBJECTSTORE_MEMORY_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_MEMORY_OBJECT_STORE_H_

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "objectstore/object_store.h"

namespace logstore::objectstore {

// In-memory object store backend for tests and simulations.
class MemoryObjectStore : public ObjectStore {
 public:
  explicit MemoryObjectStore(metrics::MetricRegistry* registry = nullptr) {
    stats_.BindTo(metrics::OrDefault(registry));
  }

  Status Put(const std::string& key, const Slice& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  Result<uint64_t> Head(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreStats& stats() override { return stats_; }

  size_t object_count() const;
  uint64_t total_bytes() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> objects_;
  ObjectStoreStats stats_;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_MEMORY_OBJECT_STORE_H_
