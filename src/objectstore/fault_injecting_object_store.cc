#include "objectstore/fault_injecting_object_store.h"

#include <algorithm>

#include "common/hash.h"
#include "common/random.h"

namespace logstore::objectstore {

FaultInjectingObjectStore::FaultInjectingObjectStore(
    ObjectStore* base, FaultInjectionOptions options, Clock* clock)
    : base_(base), options_(options), clock_(clock) {
  fault_stats_.BindTo(metrics::OrDefault(options_.registry));
}

FaultInjectingObjectStore::FaultInjectingObjectStore(
    std::unique_ptr<ObjectStore> base, FaultInjectionOptions options,
    Clock* clock)
    : owned_(std::move(base)),
      base_(owned_.get()),
      options_(options),
      clock_(clock) {
  fault_stats_.BindTo(metrics::OrDefault(options_.registry));
}

void FaultInjectingObjectStore::SetBrownout(int64_t start_us, int64_t end_us) {
  brownout_start_us_.store(start_us, std::memory_order_relaxed);
  brownout_end_us_.store(end_us, std::memory_order_relaxed);
}

void FaultInjectingObjectStore::BlacklistKey(const std::string& key) {
  std::lock_guard<std::mutex> lock(blacklist_mu_);
  if (std::find(blacklist_.begin(), blacklist_.end(), key) ==
      blacklist_.end()) {
    blacklist_.push_back(key);
  }
}

void FaultInjectingObjectStore::ClearBlacklist() {
  std::lock_guard<std::mutex> lock(blacklist_mu_);
  blacklist_.clear();
}

Status FaultInjectingObjectStore::Availability(const std::string& key) {
  const int64_t now = clock_->NowMicros();
  const int64_t start = brownout_start_us_.load(std::memory_order_relaxed);
  const int64_t end = brownout_end_us_.load(std::memory_order_relaxed);
  if (start < end && now >= start && now < end) {
    fault_stats_.brownout_rejections.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("injected brownout: store unavailable");
  }
  {
    std::lock_guard<std::mutex> lock(blacklist_mu_);
    if (std::find(blacklist_.begin(), blacklist_.end(), key) !=
        blacklist_.end()) {
      fault_stats_.blacklist_rejections.fetch_add(1,
                                                  std::memory_order_relaxed);
      return Status::Unavailable("injected blacklist: " + key);
    }
  }
  return Status::OK();
}

FaultInjectingObjectStore::Fate FaultInjectingObjectStore::NextFate(
    bool mutation) {
  const uint64_t op = op_counter_.fetch_add(1, std::memory_order_relaxed);
  fault_stats_.ops.fetch_add(1, std::memory_order_relaxed);
  Random rng(HashCombine(options_.seed, op));
  Fate fate;
  fate.latency_spike = rng.NextDouble() < options_.latency_spike_rate;
  const bool exempt = mutation && !options_.fail_mutations;
  fate.fail = !exempt && rng.NextDouble() < options_.error_rate;
  fate.short_read = !fate.fail && rng.NextDouble() < options_.short_read_rate;
  fate.truncate_fraction = rng.NextDouble();

  if (fate.latency_spike) {
    fault_stats_.injected_latency_spikes.fetch_add(1,
                                                   std::memory_order_relaxed);
    if (options_.latency_spike_us > 0) {
      clock_->SleepMicros(options_.latency_spike_us);
    }
  }
  if (fate.fail) {
    fault_stats_.injected_errors.fetch_add(1, std::memory_order_relaxed);
  }
  return fate;
}

Status FaultInjectingObjectStore::Put(const std::string& key,
                                      const Slice& data) {
  LOGSTORE_RETURN_IF_ERROR(Availability(key));
  if (NextFate(/*mutation=*/true).fail) {
    return Status::IOError("injected fault: Put " + key);
  }
  return base_->Put(key, data);
}

Result<std::string> FaultInjectingObjectStore::Get(const std::string& key) {
  LOGSTORE_RETURN_IF_ERROR(Availability(key));
  if (NextFate(/*mutation=*/false).fail) {
    return Status::IOError("injected fault: Get " + key);
  }
  return base_->Get(key);
}

Result<std::string> FaultInjectingObjectStore::GetRange(const std::string& key,
                                                        uint64_t offset,
                                                        uint64_t length) {
  LOGSTORE_RETURN_IF_ERROR(Availability(key));
  const Fate fate = NextFate(/*mutation=*/false);
  if (fate.fail) {
    return Status::IOError("injected fault: GetRange " + key);
  }
  auto result = base_->GetRange(key, offset, length);
  if (result.ok() && fate.short_read && result->size() > 1) {
    // A strict prefix: at least one byte short, at least one byte returned
    // (an empty response would be indistinguishable from a zero-length
    // object tail).
    const size_t keep = 1 + static_cast<size_t>(fate.truncate_fraction *
                                                (result->size() - 1));
    if (keep < result->size()) {
      fault_stats_.injected_short_reads.fetch_add(1,
                                                  std::memory_order_relaxed);
      result->resize(keep);
    }
  }
  return result;
}

Result<uint64_t> FaultInjectingObjectStore::Head(const std::string& key) {
  LOGSTORE_RETURN_IF_ERROR(Availability(key));
  if (NextFate(/*mutation=*/false).fail) {
    return Status::IOError("injected fault: Head " + key);
  }
  return base_->Head(key);
}

Result<std::vector<std::string>> FaultInjectingObjectStore::List(
    const std::string& prefix) {
  LOGSTORE_RETURN_IF_ERROR(Availability(prefix));
  if (NextFate(/*mutation=*/false).fail) {
    return Status::IOError("injected fault: List " + prefix);
  }
  return base_->List(prefix);
}

Status FaultInjectingObjectStore::Delete(const std::string& key) {
  LOGSTORE_RETURN_IF_ERROR(Availability(key));
  if (NextFate(/*mutation=*/true).fail) {
    return Status::IOError("injected fault: Delete " + key);
  }
  return base_->Delete(key);
}

}  // namespace logstore::objectstore
