#ifndef LOGSTORE_OBJECTSTORE_RETRYING_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_RETRYING_OBJECT_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "objectstore/object_store.h"

namespace logstore::objectstore {

// Retry policy for transient object-store failures. Cloud stores treat
// request failure as the common case (throttling, connection resets, tail
// timeouts); callers above this layer should only ever see an error when
// the object genuinely cannot be read.
struct RetryOptions {
  // Total tries per call, including the first. <= 1 disables retries.
  int max_attempts = 4;
  // Exponential backoff between attempts: initial * multiplier^(n-1),
  // capped at max_backoff_us, then shrunk by up to `jitter` fraction so
  // synchronized retry storms decorrelate.
  int64_t initial_backoff_us = 1000;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_us = 200'000;
  double jitter = 0.5;
  // Budget for one logical call, attempts plus backoff sleeps. A retry is
  // not started if it cannot begin within the deadline. 0 = unlimited.
  int64_t call_deadline_us = 5'000'000;
  // Treat a GetRange that returns fewer bytes than a Head of the object
  // says it should as a retryable truncated response. Costs one Head per
  // suspected short read (ranges ending at the object tail).
  bool verify_short_reads = true;
  // Deterministic jitter stream (tests).
  uint64_t seed = 0;
  // Registry receiving the `objectstore.retry.*` aggregates; nullptr means
  // the process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

struct RetryStats {
  metrics::Counter attempts{0};      // every try, incl. first
  metrics::Counter retries{0};       // re-tries after a transient error
  metrics::Counter giveups{0};       // transient error surfaced anyway
  metrics::Counter short_reads{0};   // truncated GetRange detected

  void Reset() { attempts = retries = giveups = short_reads = 0; }

  void BindTo(metrics::MetricRegistry* registry) {
    attempts.Bind(registry->Counter("objectstore.retry.attempts"));
    retries.Bind(registry->Counter("objectstore.retry.retries"));
    giveups.Bind(registry->Counter("objectstore.retry.giveups"));
    short_reads.Bind(registry->Counter("objectstore.retry.short_reads"));
  }
};

// Decorator adding bounded retries with exponential backoff + jitter around
// any ObjectStore. Retryable: IOError, Unavailable, TimedOut,
// ResourceExhausted, Aborted — the transient class. Everything else
// (NotFound, InvalidArgument, Corruption, ...) surfaces immediately.
class RetryingObjectStore : public ObjectStore {
 public:
  RetryingObjectStore(ObjectStore* base, RetryOptions options = {},
                      Clock* clock = SystemClock::Default());
  RetryingObjectStore(std::unique_ptr<ObjectStore> base,
                      RetryOptions options = {},
                      Clock* clock = SystemClock::Default());

  Status Put(const std::string& key, const Slice& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  Result<uint64_t> Head(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreStats& stats() override { return base_->stats(); }

  const RetryStats& retry_stats() const { return retry_stats_; }
  const RetryOptions& options() const { return options_; }

  static bool IsRetryable(const Status& status);

 private:
  // Runs `attempt` (returning a Status-like or Result-like object) under
  // the retry policy; `classify` maps a successful attempt to OK or to a
  // synthetic retryable error (short-read detection).
  template <typename Fn>
  auto RetryLoop(Fn attempt) -> decltype(attempt());

  // Backoff before retry number `retry_index` (1-based); returns false if
  // the call deadline would be exceeded.
  bool BackoffOrGiveUp(int retry_index, int64_t deadline_us);

  std::unique_ptr<ObjectStore> owned_;
  ObjectStore* base_;
  const RetryOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> call_counter_{0};
  RetryStats retry_stats_;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_RETRYING_OBJECT_STORE_H_
