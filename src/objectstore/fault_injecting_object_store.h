#ifndef LOGSTORE_OBJECTSTORE_FAULT_INJECTING_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_FAULT_INJECTING_OBJECT_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "objectstore/object_store.h"

namespace logstore::objectstore {

// Fault model for a flaky remote object store. All probabilities are per
// operation and drawn from a deterministic per-op stream: operation N of a
// store seeded with S always sees the same fate, independent of thread
// interleaving, so failure tests are reproducible.
struct FaultInjectionOptions {
  // Probability that an operation fails with IOError before reaching the
  // backend (connection reset / 5xx).
  double error_rate = 0.0;
  // Probability that a successful GetRange returns a strict prefix of the
  // requested bytes (truncated response body).
  double short_read_rate = 0.0;
  // Probability of sleeping `latency_spike_us` before serving (tail
  // latency / throttling).
  double latency_spike_rate = 0.0;
  int64_t latency_spike_us = 0;
  // Root of the deterministic per-op fault stream.
  uint64_t seed = 42;
  // When false, Put/Delete are exempt from error injection (read-path-only
  // fault campaigns).
  bool fail_mutations = true;
  // Registry receiving the `objectstore.fault.*` aggregates; nullptr means
  // the process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

struct FaultStats {
  metrics::Counter ops{0};
  metrics::Counter injected_errors{0};
  metrics::Counter injected_short_reads{0};
  metrics::Counter injected_latency_spikes{0};
  metrics::Counter brownout_rejections{0};
  metrics::Counter blacklist_rejections{0};

  void Reset() {
    ops = injected_errors = injected_short_reads = injected_latency_spikes = 0;
    brownout_rejections = blacklist_rejections = 0;
  }

  void BindTo(metrics::MetricRegistry* registry) {
    ops.Bind(registry->Counter("objectstore.fault.ops"));
    injected_errors.Bind(registry->Counter("objectstore.fault.injected_errors"));
    injected_short_reads.Bind(
        registry->Counter("objectstore.fault.injected_short_reads"));
    injected_latency_spikes.Bind(
        registry->Counter("objectstore.fault.injected_latency_spikes"));
    brownout_rejections.Bind(
        registry->Counter("objectstore.fault.brownout_rejections"));
    blacklist_rejections.Bind(
        registry->Counter("objectstore.fault.blacklist_rejections"));
  }
};

// Decorator usable around any ObjectStore (companion to
// SimulatedObjectStore, which models cost; this one models failure). Either
// borrows the backend or owns it.
class FaultInjectingObjectStore : public ObjectStore {
 public:
  FaultInjectingObjectStore(ObjectStore* base, FaultInjectionOptions options,
                            Clock* clock = SystemClock::Default());
  FaultInjectingObjectStore(std::unique_ptr<ObjectStore> base,
                            FaultInjectionOptions options,
                            Clock* clock = SystemClock::Default());

  Status Put(const std::string& key, const Slice& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  Result<uint64_t> Head(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreStats& stats() override { return base_->stats(); }

  const FaultStats& fault_stats() const { return fault_stats_; }
  const FaultInjectionOptions& options() const { return options_; }

  // --- Correlated fault windows (unlike the i.i.d. per-op rates above,
  // these model sustained outages, which is what actually exercises the
  // retry layer's deadline path). ---

  // Every operation whose clock time falls in [start_us, end_us) fails
  // with kUnavailable (a whole-store brownout / throttling event).
  // end_us <= start_us clears the window. Brownout checks consume no draws
  // from the per-op fate stream, so the i.i.d. fault sequence outside the
  // window is unchanged.
  void SetBrownout(int64_t start_us, int64_t end_us);

  // Key-addressed operations on `key` always fail with kUnavailable (a
  // lost/unreachable object) until ClearBlacklist.
  void BlacklistKey(const std::string& key);
  void ClearBlacklist();

 private:
  // Brownout/blacklist gate; non-OK short-circuits the operation.
  Status Availability(const std::string& key);

  // Per-op fate, decided from one deterministic draw sequence.
  struct Fate {
    bool fail = false;
    bool short_read = false;
    bool latency_spike = false;
    // Scales the truncated length for short reads, in [0, 1).
    double truncate_fraction = 0.0;
  };
  Fate NextFate(bool mutation);

  std::unique_ptr<ObjectStore> owned_;
  ObjectStore* base_;
  const FaultInjectionOptions options_;
  Clock* clock_;
  std::atomic<uint64_t> op_counter_{0};
  FaultStats fault_stats_;

  // Correlated fault state.
  std::atomic<int64_t> brownout_start_us_{0};
  std::atomic<int64_t> brownout_end_us_{0};
  mutable std::mutex blacklist_mu_;
  std::vector<std::string> blacklist_;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_FAULT_INJECTING_OBJECT_STORE_H_
