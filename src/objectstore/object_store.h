#ifndef LOGSTORE_OBJECTSTORE_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_OBJECT_STORE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace logstore::objectstore {

// Aggregate request counters, useful for asserting that data skipping and
// caching actually avoid remote reads. Per-instance values; once BindTo()
// links the struct to a MetricRegistry, every increment is also mirrored
// into the process-wide `objectstore.*` aggregates.
struct ObjectStoreStats {
  metrics::Counter puts{0};
  metrics::Counter gets{0};
  metrics::Counter range_gets{0};
  metrics::Counter deletes{0};
  metrics::Counter lists{0};
  metrics::Counter bytes_written{0};
  metrics::Counter bytes_read{0};

  void Reset() {
    puts = gets = range_gets = deletes = lists = 0;
    bytes_written = bytes_read = 0;
  }

  void BindTo(metrics::MetricRegistry* registry) {
    puts.Bind(registry->Counter("objectstore.puts"));
    gets.Bind(registry->Counter("objectstore.gets"));
    range_gets.Bind(registry->Counter("objectstore.range_gets"));
    deletes.Bind(registry->Counter("objectstore.deletes"));
    lists.Bind(registry->Counter("objectstore.lists"));
    bytes_written.Bind(registry->Counter("objectstore.bytes_written"));
    bytes_read.Bind(registry->Counter("objectstore.bytes_read"));
  }
};

// Cloud object storage abstraction (OSS/S3 semantics): immutable whole-object
// puts, whole or ranged gets, prefix listing. No appends, no renames —
// exactly the constraints §3 designs LogBlock around.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  // Stores `data` under `key`, replacing any existing object.
  virtual Status Put(const std::string& key, const Slice& data) = 0;

  // Reads a whole object.
  virtual Result<std::string> Get(const std::string& key) = 0;

  // Reads `length` bytes at `offset`. Short reads at end-of-object return
  // the available suffix.
  virtual Result<std::string> GetRange(const std::string& key, uint64_t offset,
                                       uint64_t length) = 0;

  // Returns the object size, or NotFound.
  virtual Result<uint64_t> Head(const std::string& key) = 0;

  // Lists keys with the given prefix, in lexicographic order.
  virtual Result<std::vector<std::string>> List(const std::string& prefix) = 0;

  virtual Status Delete(const std::string& key) = 0;

  virtual ObjectStoreStats& stats() = 0;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_OBJECT_STORE_H_
