#include "objectstore/memory_object_store.h"

#include <algorithm>

namespace logstore::objectstore {

Status MemoryObjectStore::Put(const std::string& key, const Slice& data) {
  std::lock_guard<std::mutex> lock(mu_);
  objects_[key] = data.ToString();
  stats_.puts++;
  stats_.bytes_written += data.size();
  return Status::OK();
}

Result<std::string> MemoryObjectStore::Get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  stats_.gets++;
  stats_.bytes_read += it->second.size();
  return it->second;
}

Result<std::string> MemoryObjectStore::GetRange(const std::string& key,
                                                uint64_t offset,
                                                uint64_t length) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  const std::string& data = it->second;
  if (offset > data.size()) {
    return Status::InvalidArgument("range offset beyond object size");
  }
  const uint64_t n = std::min<uint64_t>(length, data.size() - offset);
  stats_.range_gets++;
  stats_.bytes_read += n;
  return data.substr(offset, n);
}

Result<uint64_t> MemoryObjectStore::Head(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return Status::NotFound("no such object: " + key);
  return static_cast<uint64_t>(it->second.size());
}

Result<std::vector<std::string>> MemoryObjectStore::List(
    const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.lists++;
  std::vector<std::string> keys;
  for (auto it = objects_.lower_bound(prefix); it != objects_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

Status MemoryObjectStore::Delete(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.deletes++;
  objects_.erase(key);
  return Status::OK();
}

size_t MemoryObjectStore::object_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return objects_.size();
}

uint64_t MemoryObjectStore::total_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [k, v] : objects_) total += v.size();
  return total;
}

}  // namespace logstore::objectstore
