#ifndef LOGSTORE_OBJECTSTORE_TAR_FILE_H_
#define LOGSTORE_OBJECTSTORE_TAR_FILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace logstore::objectstore {

// §3: "all these files are packaged into a large tar file ... The header of
// the tar file contains a manifest, allowing subsequent read operations to
// seek and read any part of the tar file."
//
// We implement that package: a single immutable object whose header is a
// manifest of (member name, offset, size), followed by the member payloads.
// Readers fetch the manifest once, then issue ranged reads for individual
// members — avoiding both many-small-objects overhead and whole-file loads.
//
// Layout:
//   [0,8)   magic "LSTAR\x01\0\0"
//   [8,12)  fixed32 manifest_size
//   [12,..) manifest: varint32 count, then per member
//             length-prefixed name, varint64 offset, varint64 size
//   [...]   member payloads, in manifest order
//   Offsets are absolute within the package.

struct TarMember {
  std::string name;
  uint64_t offset = 0;
  uint64_t size = 0;
};

// Accumulates members in memory and serializes the package.
class TarWriter {
 public:
  // Adds a member; names must be unique within a package.
  Status AddMember(const std::string& name, const Slice& data);

  // Serializes the package. The writer can be reused afterwards only via
  // a fresh instance.
  std::string Finish();

  uint64_t payload_bytes() const { return payload_bytes_; }
  size_t member_count() const { return members_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> members_;  // name -> data
  uint64_t payload_bytes_ = 0;
};

// Parses a package manifest (from the package head bytes) and resolves
// member byte ranges for seekable access.
class TarReader {
 public:
  // `head` must contain at least the manifest (ManifestSizeHint() bytes are
  // always enough to learn the true size; see below).
  static Result<TarReader> Parse(const Slice& head);

  // Bytes a caller should fetch to be certain of covering the manifest:
  // fixed 12-byte prologue. After reading it, ManifestEnd() tells the full
  // manifest extent.
  static constexpr uint64_t kPrologueSize = 12;

  // Parses only the prologue and returns the total header size
  // (prologue + manifest) so a caller can issue a second exact-range read.
  static Result<uint64_t> HeaderSize(const Slice& prologue);

  const std::vector<TarMember>& members() const { return members_; }

  // Returns the byte range of `name`, or NotFound.
  Result<TarMember> Find(const std::string& name) const;

  bool Contains(const std::string& name) const {
    return index_.count(name) > 0;
  }

 private:
  std::vector<TarMember> members_;
  std::map<std::string, size_t> index_;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_TAR_FILE_H_
