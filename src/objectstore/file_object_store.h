#ifndef LOGSTORE_OBJECTSTORE_FILE_OBJECT_STORE_H_
#define LOGSTORE_OBJECTSTORE_FILE_OBJECT_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "objectstore/object_store.h"

namespace logstore::objectstore {

// Object store persisted in a local directory. Keys map to file paths under
// the root; '/'-separated key segments become subdirectories. Useful for
// durability across process restarts and for exercising real file IO.
class FileObjectStore : public ObjectStore {
 public:
  // `root` is created if missing. `registry` receives the `objectstore.*`
  // aggregates; nullptr means the process-wide default.
  static Result<std::unique_ptr<FileObjectStore>> Open(
      const std::string& root, metrics::MetricRegistry* registry = nullptr);

  Status Put(const std::string& key, const Slice& data) override;
  Result<std::string> Get(const std::string& key) override;
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override;
  Result<uint64_t> Head(const std::string& key) override;
  Result<std::vector<std::string>> List(const std::string& prefix) override;
  Status Delete(const std::string& key) override;
  ObjectStoreStats& stats() override { return stats_; }

 private:
  FileObjectStore(std::string root, metrics::MetricRegistry* registry)
      : root_(std::move(root)) {
    stats_.BindTo(metrics::OrDefault(registry));
  }

  std::string PathFor(const std::string& key) const;
  static bool ValidKey(const std::string& key);

  const std::string root_;
  ObjectStoreStats stats_;
};

}  // namespace logstore::objectstore

#endif  // LOGSTORE_OBJECTSTORE_FILE_OBJECT_STORE_H_
