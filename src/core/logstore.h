#ifndef LOGSTORE_CORE_LOGSTORE_H_
#define LOGSTORE_CORE_LOGSTORE_H_

#include <memory>
#include <string>

#include "cluster/data_builder.h"
#include "common/metrics.h"
#include "common/result.h"
#include "consensus/durable_log.h"
#include "logblock/logblock_map.h"
#include "logblock/row_batch.h"
#include "logblock/schema.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/object_store.h"
#include "objectstore/retrying_object_store.h"
#include "objectstore/simulated_object_store.h"
#include "query/engine.h"
#include "query/predicate.h"
#include "rowstore/row_store.h"

namespace logstore {

// ---------------------------------------------------------------------------
// LogStore — embedded single-process engine.
//
// The complete LogStore write/read pipeline in one object:
//
//   Append  ->  write-optimized row store (real-time visibility)
//   Flush   ->  data builder converts rows to per-tenant LogBlocks on the
//               object store and advances the checkpoint
//   Query   ->  LogBlock-map pruning + data skipping + caches + prefetch
//               over archived data, merged with the real-time store
//   Expire  ->  retires whole LogBlocks per tenant retention policy
//
// For the multi-node deployment with Raft replication and traffic
// scheduling, see cluster::Cluster; this facade is the single-worker
// equivalent that examples and embedding applications use.
// ---------------------------------------------------------------------------

struct LogStoreOptions {
  logblock::Schema schema = logblock::RequestLogSchema();

  // Object storage: a local directory, or in-memory when empty.
  std::string storage_dir;
  // Injects OSS-like latency/bandwidth on every object-store request.
  bool simulate_object_latency = false;
  objectstore::SimulatedStoreOptions simulated;
  // Injects transient object-store faults (errors, short reads, latency
  // spikes) for resilience testing; the retry layers in the engine and the
  // data builder must absorb them.
  bool inject_object_faults = false;
  objectstore::FaultInjectionOptions fault_options;
  // Bounded retries for the facade's own catalog and expiration IO (the
  // engine and data builder carry their own retry wrappers).
  bool use_retry = true;
  objectstore::RetryOptions retry_options;

  query::EngineOptions engine;
  cluster::DataBuilderOptions builder;

  // Automatically Flush() when the row store exceeds this many rows
  // (0 = manual flushing only).
  uint64_t autoflush_rows = 0;

  // Non-empty: journal every Append into a durable segmented WAL at this
  // directory before acknowledging it, and on Open replay un-archived
  // entries (those above the archived-through watermark) back into the row
  // store — so rows that were appended but not yet flushed survive a
  // process crash. Flush advances the watermark and garbage-collects WAL
  // segments whose entries are all on the object store.
  std::string wal_dir;
  consensus::DurableLogOptions wal;

  // Registry receiving the facade's `core.*` counters and — propagated
  // into the nested engine/retry/fault/WAL options when those are unset —
  // every wrapped layer's metrics. nullptr means the process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

class LogStore {
 public:
  static Result<std::unique_ptr<LogStore>> Open(LogStoreOptions options = {});

  ~LogStore();
  LogStore(const LogStore&) = delete;
  LogStore& operator=(const LogStore&) = delete;

  const logblock::Schema& schema() const { return options_.schema; }

  // Appends rows for `tenant`. Data is immediately visible to Query.
  Status Append(uint64_t tenant, const logblock::RowBatch& rows);

  // Runs one archive pass (row store -> LogBlocks on object storage) and
  // checkpoints the catalog. Returns the number of LogBlocks built.
  Result<int> Flush();

  // Key of the persisted catalog (tenant LogBlock map) checkpoint. In the
  // distributed deployment the controller owns this; the embedded engine
  // writes it on Flush/Expire and recovers it on Open.
  static constexpr char kCatalogKey[] = "catalog/MANIFEST";

  // Single-tenant retrieval and analytics.
  Result<query::QueryResult> Query(const query::LogQuery& query);

  // Deletes `tenant`'s LogBlocks wholly older than `cutoff_ts`; returns
  // how many were removed.
  Result<int> Expire(uint64_t tenant, int64_t cutoff_ts);

  // Differentiated per-tenant retention (§3.1: "differentiated data
  // recycling and billing policies for different tenants"). A tenant with
  // retention R keeps logs whose ts is within R of `now`; 0 (default)
  // keeps everything (the compliance/archival tenants).
  void SetRetention(uint64_t tenant, int64_t retention_micros);

  // The periodic expiration task (controller's "cleaning up expired
  // data"): applies every tenant's retention policy against `now_micros`.
  // Returns the number of LogBlocks deleted.
  Result<int> ApplyRetentionPolicies(int64_t now_micros);

  struct Stats {
    uint64_t rows_appended = 0;
    uint64_t rows_in_rowstore = 0;
    uint64_t rows_archived = 0;
    uint64_t logblocks = 0;
    uint64_t object_bytes = 0;  // uploaded so far
    uint64_t tenant_count = 0;
  };
  Stats GetStats() const;

  // Storage footprint of one tenant (the billing input).
  uint64_t TenantBytes(uint64_t tenant) const {
    return metadata_.TenantBytes(tenant);
  }

  objectstore::ObjectStore* object_store() { return store_.get(); }
  query::QueryEngine* engine() { return engine_.get(); }
  logblock::LogBlockMap* metadata() { return &metadata_; }
  // Null when wal_dir is unset.
  consensus::DurableLog* wal() { return wal_.get(); }

 private:
  LogStore() = default;

  // Persists the catalog checkpoint to the object store.
  Status CheckpointCatalog();

  LogStoreOptions options_;
  std::unique_ptr<objectstore::ObjectStore> store_;
  // Retry wrapper around store_ for catalog/expire IO issued by the facade
  // itself; catalog_store() returns store_.get() when retries are off.
  std::unique_ptr<objectstore::RetryingObjectStore> retry_store_;
  objectstore::ObjectStore* catalog_store() {
    return retry_store_ != nullptr
               ? static_cast<objectstore::ObjectStore*>(retry_store_.get())
               : store_.get();
  }
  std::unique_ptr<rowstore::RowStore> row_store_;
  logblock::LogBlockMap metadata_;
  std::unique_ptr<cluster::DataBuilder> builder_;
  std::unique_ptr<query::QueryEngine> engine_;

  // Durable append journal (wal_dir mode). Guarded by flush_mu_ together
  // with wal_index_to_seq_, which maps WAL entry index to the row store's
  // last seq after applying it (translates the builder's checkpoint into
  // the WAL GC watermark).
  std::unique_ptr<consensus::DurableLog> wal_;
  uint64_t next_wal_index_ = 1;
  std::map<uint64_t, uint64_t> wal_index_to_seq_;

  std::mutex flush_mu_;

  // `core.*` registry mirrors. The counters dual-write through
  // metrics::Counter; the gauges mirror the computed Stats fields and are
  // refreshed by GetStats().
  metrics::Counter rows_appended_{0};
  metrics::Counter appends_{0};
  metrics::Counter flushes_{0};
  metrics::Counter logblocks_built_{0};
  metrics::Counter queries_{0};
  metrics::Counter blocks_expired_{0};
  std::atomic<int64_t>* rows_in_rowstore_gauge_ = nullptr;
  std::atomic<int64_t>* logblocks_gauge_ = nullptr;
  std::atomic<int64_t>* object_bytes_gauge_ = nullptr;
  std::atomic<int64_t>* tenant_count_gauge_ = nullptr;

  std::mutex retention_mu_;
  std::map<uint64_t, int64_t> retention_micros_;
};

}  // namespace logstore

#endif  // LOGSTORE_CORE_LOGSTORE_H_
