#include "core/logstore.h"

#include "consensus/raft.h"
#include "objectstore/file_object_store.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/simulated_object_store.h"
#include "rowstore/wal.h"

namespace logstore {

LogStore::~LogStore() = default;

Result<std::unique_ptr<LogStore>> LogStore::Open(LogStoreOptions options) {
  std::unique_ptr<LogStore> db(new LogStore());
  db->options_ = std::move(options);

  // One registry serves every layer the facade stacks up; propagate it into
  // the nested options (when unset) before any wrapped store, engine, or
  // WAL is constructed.
  metrics::MetricRegistry* registry = metrics::OrDefault(db->options_.registry);
  if (db->options_.engine.registry == nullptr) {
    db->options_.engine.registry = registry;
  }
  if (db->options_.retry_options.registry == nullptr) {
    db->options_.retry_options.registry = registry;
  }
  if (db->options_.fault_options.registry == nullptr) {
    db->options_.fault_options.registry = registry;
  }
  if (db->options_.wal.registry == nullptr) {
    db->options_.wal.registry = registry;
  }
  db->rows_appended_.Bind(registry->Counter("core.rows_appended"));
  db->appends_.Bind(registry->Counter("core.appends"));
  db->flushes_.Bind(registry->Counter("core.flushes"));
  db->logblocks_built_.Bind(registry->Counter("core.logblocks_built"));
  db->queries_.Bind(registry->Counter("core.queries"));
  db->blocks_expired_.Bind(registry->Counter("core.logblocks_expired"));
  db->rows_in_rowstore_gauge_ = registry->Gauge("core.rows_in_rowstore");
  db->logblocks_gauge_ = registry->Gauge("core.logblocks");
  db->object_bytes_gauge_ = registry->Gauge("core.object_bytes");
  db->tenant_count_gauge_ = registry->Gauge("core.tenant_count");

  std::unique_ptr<objectstore::ObjectStore> base;
  if (db->options_.storage_dir.empty()) {
    base = std::make_unique<objectstore::MemoryObjectStore>(registry);
  } else {
    auto opened =
        objectstore::FileObjectStore::Open(db->options_.storage_dir, registry);
    if (!opened.ok()) return opened.status();
    base = std::move(opened).value();
  }
  if (db->options_.simulate_object_latency) {
    base = std::make_unique<objectstore::SimulatedObjectStore>(
        std::move(base), db->options_.simulated);
  }
  if (db->options_.inject_object_faults) {
    base = std::make_unique<objectstore::FaultInjectingObjectStore>(
        std::move(base), db->options_.fault_options);
  }
  db->store_ = std::move(base);
  if (db->options_.use_retry) {
    db->retry_store_ = std::make_unique<objectstore::RetryingObjectStore>(
        db->store_.get(), db->options_.retry_options);
  }

  db->row_store_ = std::make_unique<rowstore::RowStore>(db->options_.schema);
  db->builder_ = std::make_unique<cluster::DataBuilder>(
      db->store_.get(), &db->metadata_, db->options_.builder);

  auto engine = query::QueryEngine::Open(db->store_.get(), db->options_.engine);
  if (!engine.ok()) return engine.status();
  db->engine_ = std::move(engine).value();

  // Recover the catalog checkpoint, if one exists: reopening a store picks
  // up every LogBlock archived by previous runs.
  auto manifest = db->catalog_store()->Get(kCatalogKey);
  if (manifest.ok()) {
    Slice in(*manifest);
    LOGSTORE_RETURN_IF_ERROR(
        logblock::LogBlockMap::DecodeFrom(&in, &db->metadata_));
    // Resume key numbering past every recovered object
    // (keys are <prefix><tenant>/<sequence>.tar).
    uint64_t max_sequence = 0;
    for (uint64_t tenant : db->metadata_.Tenants()) {
      for (const auto& block : db->metadata_.TenantBlocks(tenant)) {
        const size_t slash = block.object_key.rfind('/');
        if (slash == std::string::npos) continue;
        const uint64_t seq =
            strtoull(block.object_key.c_str() + slash + 1, nullptr, 10);
        max_sequence = std::max(max_sequence, seq + 1);
      }
    }
    db->builder_->set_next_sequence(max_sequence);
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }

  if (!db->options_.wal_dir.empty()) {
    auto wal =
        consensus::DurableLog::Open(db->options_.wal_dir, db->options_.wal);
    if (!wal.ok()) return wal.status();
    db->wal_ = std::move(wal).value();
    const consensus::RecoveredState& recovered = db->wal_->recovered();
    // Key numbering must clear both the recovered catalog and the WAL
    // watermark cookie (a crash between upload and checkpoint can leave
    // the cookie ahead of the catalog).
    db->builder_->set_next_sequence(
        std::max(db->builder_->next_sequence(), recovered.watermark_aux));
    // Replay un-archived entries: rows appended but not flushed before the
    // crash become visible again. Entries at or below the watermark are
    // already on the object store and stay out of the row store.
    uint64_t index = recovered.base_index;
    for (const consensus::LogEntry& entry : recovered.entries) {
      ++index;
      auto record =
          rowstore::DecodeWalRecord(entry.payload, db->options_.schema);
      if (record.ok()) {
        db->row_store_->Append(record->tenant_id, record->rows);
        db->rows_appended_ += record->rows.num_rows();
      }
      db->wal_index_to_seq_[index] = db->row_store_->last_seq();
    }
    db->next_wal_index_ = index + 1;
  }
  return db;
}

Status LogStore::CheckpointCatalog() {
  std::string manifest;
  metadata_.EncodeTo(&manifest);
  return catalog_store()->Put(kCatalogKey, manifest);
}

Status LogStore::Append(uint64_t tenant, const logblock::RowBatch& rows) {
  if (!(rows.schema() == options_.schema)) {
    return Status::InvalidArgument("batch schema does not match table schema");
  }
  if (wal_ != nullptr) {
    std::lock_guard<std::mutex> lock(flush_mu_);
    // Write-ahead: the entry is journaled and (per the sync policy) on disk
    // before the row store applies it — an OK return means the batch
    // survives a crash.
    consensus::LogEntry entry;
    entry.term = 1;
    entry.payload = rowstore::EncodeWalRecord(tenant, rows);
    // A failed append rolls the WAL back to the previous record boundary,
    // so the index is NOT consumed and the next append retries it.
    LOGSTORE_RETURN_IF_ERROR(wal_->AppendEntry(next_wal_index_, entry));
    // Past this point the WAL HAS consumed the index (the record is
    // journaled, even if not yet on disk), so the counter must advance
    // even when the sync fails — otherwise every later append would be
    // rejected as non-contiguous. The batch is simply not acked and not
    // applied: journaled-but-unacknowledged is a legal WAL state (recovery
    // may or may not replay it; the client saw an error either way).
    const uint64_t index = next_wal_index_++;
    const Status synced = wal_->Sync();
    if (!synced.ok()) return synced;
    row_store_->Append(tenant, rows);
    wal_index_to_seq_[index] = row_store_->last_seq();
  } else {
    row_store_->Append(tenant, rows);
  }
  rows_appended_ += rows.num_rows();
  ++appends_;

  if (options_.autoflush_rows != 0 &&
      row_store_->row_count() >= options_.autoflush_rows) {
    auto flushed = Flush();
    if (!flushed.ok()) return flushed.status();
  }
  return Status::OK();
}

Result<int> LogStore::Flush() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  ++flushes_;
  auto built = builder_->BuildOnce(row_store_.get());
  if (!built.ok()) return built.status();
  logblocks_built_ += static_cast<uint64_t>(*built);
  if (*built > 0) {
    LOGSTORE_RETURN_IF_ERROR(CheckpointCatalog());
    if (wal_ != nullptr) {
      // Advance the archived-through watermark to the largest entry whose
      // rows are ALL on the object store (a build pass can cut mid-entry),
      // then GC segments wholly below it. A crash before this point merely
      // replays the entries: at-least-once archiving, nothing lost.
      const uint64_t archived = row_store_->archived_seq();
      uint64_t watermark = 0;
      for (const auto& [index, seq] : wal_index_to_seq_) {
        if (seq > archived) break;
        watermark = index;
      }
      if (watermark > 0) {
        LOGSTORE_RETURN_IF_ERROR(wal_->PersistWatermark(
            watermark, /*term=*/1, builder_->next_sequence()));
        wal_index_to_seq_.erase(wal_index_to_seq_.begin(),
                                wal_index_to_seq_.upper_bound(watermark));
      }
    }
  }
  return built;
}

Result<query::QueryResult> LogStore::Query(const query::LogQuery& query) {
  ++queries_;
  auto result = engine_->Execute(query, metadata_);
  if (!result.ok()) return result.status();
  logblock::RowBatch realtime = row_store_->ScanTenant(
      query.tenant_id, query.ts_min, query.ts_max, query.predicates);
  std::vector<std::pair<uint32_t, logblock::RowBatch>> batches;
  batches.emplace_back(0, std::move(realtime));
  LOGSTORE_RETURN_IF_ERROR(
      query::MergeRealtimeRows(std::move(batches), query, &result.value()));
  return result;
}

Result<int> LogStore::Expire(uint64_t tenant, int64_t cutoff_ts) {
  const auto expired = metadata_.ExpireBefore(tenant, cutoff_ts);
  for (const auto& entry : expired) {
    LOGSTORE_RETURN_IF_ERROR(catalog_store()->Delete(entry.object_key));
  }
  if (!expired.empty()) {
    LOGSTORE_RETURN_IF_ERROR(CheckpointCatalog());
  }
  blocks_expired_ += expired.size();
  return static_cast<int>(expired.size());
}

void LogStore::SetRetention(uint64_t tenant, int64_t retention_micros) {
  std::lock_guard<std::mutex> lock(retention_mu_);
  if (retention_micros <= 0) {
    retention_micros_.erase(tenant);
  } else {
    retention_micros_[tenant] = retention_micros;
  }
}

Result<int> LogStore::ApplyRetentionPolicies(int64_t now_micros) {
  std::map<uint64_t, int64_t> policies;
  {
    std::lock_guard<std::mutex> lock(retention_mu_);
    policies = retention_micros_;
  }
  int total = 0;
  for (const auto& [tenant, retention] : policies) {
    auto expired = Expire(tenant, now_micros - retention);
    if (!expired.ok()) return expired.status();
    total += *expired;
  }
  return total;
}

LogStore::Stats LogStore::GetStats() const {
  Stats stats;
  stats.rows_appended = rows_appended_.load();
  stats.rows_in_rowstore = row_store_->row_count();
  stats.rows_archived = builder_->rows_archived();
  stats.logblocks = metadata_.TotalBlocks();
  stats.object_bytes = builder_->bytes_uploaded();
  stats.tenant_count = metadata_.Tenants().size();
  // Refresh the registry mirrors of the computed fields, so a registry
  // dump after GetStats reflects the same snapshot.
  rows_in_rowstore_gauge_->store(static_cast<int64_t>(stats.rows_in_rowstore),
                                 std::memory_order_relaxed);
  logblocks_gauge_->store(static_cast<int64_t>(stats.logblocks),
                          std::memory_order_relaxed);
  object_bytes_gauge_->store(static_cast<int64_t>(stats.object_bytes),
                             std::memory_order_relaxed);
  tenant_count_gauge_->store(static_cast<int64_t>(stats.tenant_count),
                             std::memory_order_relaxed);
  return stats;
}

}  // namespace logstore
