#include "core/logstore.h"

#include "objectstore/file_object_store.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/simulated_object_store.h"

namespace logstore {

LogStore::~LogStore() = default;

Result<std::unique_ptr<LogStore>> LogStore::Open(LogStoreOptions options) {
  std::unique_ptr<LogStore> db(new LogStore());
  db->options_ = std::move(options);

  std::unique_ptr<objectstore::ObjectStore> base;
  if (db->options_.storage_dir.empty()) {
    base = std::make_unique<objectstore::MemoryObjectStore>();
  } else {
    auto opened = objectstore::FileObjectStore::Open(db->options_.storage_dir);
    if (!opened.ok()) return opened.status();
    base = std::move(opened).value();
  }
  if (db->options_.simulate_object_latency) {
    base = std::make_unique<objectstore::SimulatedObjectStore>(
        std::move(base), db->options_.simulated);
  }
  if (db->options_.inject_object_faults) {
    base = std::make_unique<objectstore::FaultInjectingObjectStore>(
        std::move(base), db->options_.fault_options);
  }
  db->store_ = std::move(base);
  if (db->options_.use_retry) {
    db->retry_store_ = std::make_unique<objectstore::RetryingObjectStore>(
        db->store_.get(), db->options_.retry_options);
  }

  db->row_store_ = std::make_unique<rowstore::RowStore>(db->options_.schema);
  db->builder_ = std::make_unique<cluster::DataBuilder>(
      db->store_.get(), &db->metadata_, db->options_.builder);

  auto engine = query::QueryEngine::Open(db->store_.get(), db->options_.engine);
  if (!engine.ok()) return engine.status();
  db->engine_ = std::move(engine).value();

  // Recover the catalog checkpoint, if one exists: reopening a store picks
  // up every LogBlock archived by previous runs.
  auto manifest = db->catalog_store()->Get(kCatalogKey);
  if (manifest.ok()) {
    Slice in(*manifest);
    LOGSTORE_RETURN_IF_ERROR(
        logblock::LogBlockMap::DecodeFrom(&in, &db->metadata_));
    // Resume key numbering past every recovered object
    // (keys are <prefix><tenant>/<sequence>.tar).
    uint64_t max_sequence = 0;
    for (uint64_t tenant : db->metadata_.Tenants()) {
      for (const auto& block : db->metadata_.TenantBlocks(tenant)) {
        const size_t slash = block.object_key.rfind('/');
        if (slash == std::string::npos) continue;
        const uint64_t seq =
            strtoull(block.object_key.c_str() + slash + 1, nullptr, 10);
        max_sequence = std::max(max_sequence, seq + 1);
      }
    }
    db->builder_->set_next_sequence(max_sequence);
  } else if (!manifest.status().IsNotFound()) {
    return manifest.status();
  }
  return db;
}

Status LogStore::CheckpointCatalog() {
  std::string manifest;
  metadata_.EncodeTo(&manifest);
  return catalog_store()->Put(kCatalogKey, manifest);
}

Status LogStore::Append(uint64_t tenant, const logblock::RowBatch& rows) {
  if (!(rows.schema() == options_.schema)) {
    return Status::InvalidArgument("batch schema does not match table schema");
  }
  row_store_->Append(tenant, rows);
  rows_appended_ += rows.num_rows();

  if (options_.autoflush_rows != 0 &&
      row_store_->row_count() >= options_.autoflush_rows) {
    auto flushed = Flush();
    if (!flushed.ok()) return flushed.status();
  }
  return Status::OK();
}

Result<int> LogStore::Flush() {
  std::lock_guard<std::mutex> lock(flush_mu_);
  auto built = builder_->BuildOnce(row_store_.get());
  if (!built.ok()) return built.status();
  if (*built > 0) {
    LOGSTORE_RETURN_IF_ERROR(CheckpointCatalog());
  }
  return built;
}

Result<query::QueryResult> LogStore::Query(const query::LogQuery& query) {
  auto result = engine_->Execute(query, metadata_);
  if (!result.ok()) return result.status();
  const logblock::RowBatch realtime = row_store_->ScanTenant(
      query.tenant_id, query.ts_min, query.ts_max, query.predicates);
  LOGSTORE_RETURN_IF_ERROR(
      query::AppendRealtimeRows(realtime, query, &result.value()));
  return result;
}

Result<int> LogStore::Expire(uint64_t tenant, int64_t cutoff_ts) {
  const auto expired = metadata_.ExpireBefore(tenant, cutoff_ts);
  for (const auto& entry : expired) {
    LOGSTORE_RETURN_IF_ERROR(catalog_store()->Delete(entry.object_key));
  }
  if (!expired.empty()) {
    LOGSTORE_RETURN_IF_ERROR(CheckpointCatalog());
  }
  return static_cast<int>(expired.size());
}

void LogStore::SetRetention(uint64_t tenant, int64_t retention_micros) {
  std::lock_guard<std::mutex> lock(retention_mu_);
  if (retention_micros <= 0) {
    retention_micros_.erase(tenant);
  } else {
    retention_micros_[tenant] = retention_micros;
  }
}

Result<int> LogStore::ApplyRetentionPolicies(int64_t now_micros) {
  std::map<uint64_t, int64_t> policies;
  {
    std::lock_guard<std::mutex> lock(retention_mu_);
    policies = retention_micros_;
  }
  int total = 0;
  for (const auto& [tenant, retention] : policies) {
    auto expired = Expire(tenant, now_micros - retention);
    if (!expired.ok()) return expired.status();
    total += *expired;
  }
  return total;
}

LogStore::Stats LogStore::GetStats() const {
  Stats stats;
  stats.rows_appended = rows_appended_.load();
  stats.rows_in_rowstore = row_store_->row_count();
  stats.rows_archived = builder_->rows_archived();
  stats.logblocks = metadata_.TotalBlocks();
  stats.object_bytes = builder_->bytes_uploaded();
  stats.tenant_count = metadata_.Tenants().size();
  return stats;
}

}  // namespace logstore
