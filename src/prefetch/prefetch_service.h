#ifndef LOGSTORE_PREFETCH_PREFETCH_SERVICE_H_
#define LOGSTORE_PREFETCH_PREFETCH_SERVICE_H_

#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "cache/block_manager.h"
#include "common/byte_range.h"
#include "common/fair_queue.h"
#include "common/result.h"
#include "common/threadpool.h"
#include "objectstore/object_store.h"

namespace logstore::prefetch {

struct PrefetchOptions {
  // Fetch parallelism (paper's Figure 16 uses 32 threads).
  int threads = 32;
  // Block alignment: ranges are split/merged into fixed-size aligned file
  // blocks (Figure 10's "block alignment adapter" + "split / merge"), so
  // overlapping requests dedup into identical cache keys.
  uint64_t block_size = 64 * 1024;
  // Runs of adjacent missing blocks coalesce into one ranged GET of at
  // most this many bytes (Figure 10's request merge): a sequential scan
  // costs a handful of large requests instead of one per block.
  uint64_t max_coalesced_bytes = 4 * 1024 * 1024;
  // Registry receiving the `prefetch.*` aggregates; nullptr means the
  // process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

// The parallel prefetch service of §5.2 (Figure 10). All reads go through
// AlignedRead; Prefetch warms the cache asynchronously with the same
// aligned-block pipeline, deduplicating in-flight IO so a prefetch and a
// blocking read of the same block issue one object-store request.
class PrefetchService {
 public:
  // `store` and `cache` must outlive the service. `cache` may be null
  // (every read goes to the store; prefetch becomes a no-op).
  PrefetchService(objectstore::ObjectStore* store, cache::BlockManager* cache,
                  PrefetchOptions options = {});
  ~PrefetchService();

  // Schedules asynchronous fetches of the aligned blocks covering `ranges`
  // into the cache. Returns immediately.
  //
  // `owner` identifies the issuing query: pending fetch runs are queued per
  // owner and dispatched round-robin across owners, so one wide query that
  // floods the pool cannot starve the prefetches of queries arriving behind
  // it. Owner 0 is the shared/untagged bucket.
  void Prefetch(uint64_t owner, const std::string& object_key,
                const std::vector<ByteRange>& ranges);
  void Prefetch(const std::string& object_key,
                const std::vector<ByteRange>& ranges) {
    Prefetch(0, object_key, ranges);
  }

  // Reads [offset, offset+size) of `object_key` via the aligned block
  // cache. Blocks on in-flight fetches of the same blocks instead of
  // re-requesting them.
  Result<std::string> Read(const std::string& object_key, uint64_t offset,
                           uint64_t size);

  // Blocks until all scheduled prefetches complete.
  void WaitIdle();

  // Number of object-store block fetches actually issued (after cache and
  // in-flight dedup).
  uint64_t fetches_issued() const { return fetches_issued_.load(); }

  // Number of issued fetches whose ranged GET failed (after whatever retry
  // layer the store carries gave up). Blocking reads surface the error;
  // failed prefetches degrade to a later blocking read.
  uint64_t fetch_errors() const { return fetch_errors_.load(); }

  const PrefetchOptions& options() const { return options_; }

 private:
  std::string BlockKey(const std::string& object_key, uint64_t block_idx) const;

  // Returns block `block_idx`, fetching it (and up to `fetch_limit`
  // subsequent missing blocks, coalesced into one ranged GET) if needed.
  // Thread-safe with per-block in-flight dedup.
  Result<std::shared_ptr<const std::string>> GetOrFetchBlock(
      const std::string& object_key, uint64_t block_idx,
      uint64_t fetch_limit);

  // One coalesced run of adjacent missing blocks awaiting fetch.
  struct PendingRun {
    std::string object_key;
    uint64_t first_block = 0;
    uint64_t run_len = 0;
  };

  // Pool-thread body: drains pending_ runs round-robin across owners until
  // the queue is empty, then retires itself.
  void DispatchLoop();

  objectstore::ObjectStore* store_;
  cache::BlockManager* cache_;
  const PrefetchOptions options_;
  std::unique_ptr<ThreadPool> pool_;

  std::mutex mu_;
  std::condition_variable fetch_done_;
  std::set<std::string> in_flight_;
  metrics::Counter fetches_issued_{0};
  metrics::Counter fetch_errors_{0};

  // Fair prefetch queue (guarded by fair_mu_): per-owner FIFO runs served
  // round-robin across owners by up to `threads` dispatcher tasks. The same
  // FairQueue discipline backs the execution-slot admission governor.
  std::mutex fair_mu_;
  FairQueue<PendingRun> pending_;
  int dispatchers_ = 0;
};

}  // namespace logstore::prefetch

#endif  // LOGSTORE_PREFETCH_PREFETCH_SERVICE_H_
