#include "prefetch/prefetch_service.h"

#include <algorithm>

namespace logstore::prefetch {

PrefetchService::PrefetchService(objectstore::ObjectStore* store,
                                 cache::BlockManager* cache,
                                 PrefetchOptions options)
    : store_(store),
      cache_(cache),
      options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  metrics::MetricRegistry* registry = metrics::OrDefault(options_.registry);
  fetches_issued_.Bind(registry->Counter("prefetch.fetches_issued"));
  fetch_errors_.Bind(registry->Counter("prefetch.fetch_errors"));
}

PrefetchService::~PrefetchService() { WaitIdle(); }

std::string PrefetchService::BlockKey(const std::string& object_key,
                                      uint64_t block_idx) const {
  return object_key + "#" + std::to_string(block_idx);
}

Result<std::shared_ptr<const std::string>> PrefetchService::GetOrFetchBlock(
    const std::string& object_key, uint64_t block_idx, uint64_t fetch_limit) {
  while (true) {
    if (cache_ != nullptr) {
      if (auto block = cache_->Get(BlockKey(object_key, block_idx))) {
        return block;
      }
    }

    // Claim a run of consecutive missing blocks starting at block_idx
    // (Figure 10's merge: they become one ranged GET). The run ends at a
    // cached block, an in-flight block, the coalescing cap, or
    // `fetch_limit` blocks.
    uint64_t run_len = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (in_flight_.count(BlockKey(object_key, block_idx)) != 0) {
        // Another thread is fetching this block; wait and re-check the
        // cache ("repeated data block read IO requests will be merged").
        fetch_done_.wait(lock, [&] {
          return in_flight_.count(BlockKey(object_key, block_idx)) == 0;
        });
        if (cache_ != nullptr) continue;
        // No cache to re-read from: fall through and fetch alone.
      }
      const uint64_t max_run = std::max<uint64_t>(
          1, std::min(fetch_limit,
                      options_.max_coalesced_bytes / options_.block_size));
      while (run_len < max_run) {
        const std::string key = BlockKey(object_key, block_idx + run_len);
        if (in_flight_.count(key) != 0) break;
        if (run_len > 0 && cache_ != nullptr && cache_->Contains(key)) break;
        in_flight_.insert(key);
        ++run_len;
      }
    }
    if (run_len == 0) continue;  // lost the race entirely; retry

    fetches_issued_++;
    auto data = store_->GetRange(object_key, block_idx * options_.block_size,
                                 run_len * options_.block_size);

    std::shared_ptr<const std::string> first_block;
    if (data.ok()) {
      // Slice the run into aligned cache blocks.
      const std::string& bytes = *data;
      for (uint64_t b = 0; b < run_len; ++b) {
        const uint64_t begin = b * options_.block_size;
        if (begin >= bytes.size()) break;
        const uint64_t len =
            std::min<uint64_t>(options_.block_size, bytes.size() - begin);
        auto block =
            std::make_shared<const std::string>(bytes.substr(begin, len));
        if (b == 0) first_block = block;
        if (cache_ != nullptr) {
          cache_->Insert(BlockKey(object_key, block_idx + b), block);
        }
      }
      if (first_block == nullptr) {
        first_block = std::make_shared<const std::string>();
      }
    }

    {
      std::lock_guard<std::mutex> lock(mu_);
      for (uint64_t b = 0; b < run_len; ++b) {
        in_flight_.erase(BlockKey(object_key, block_idx + b));
      }
    }
    fetch_done_.notify_all();

    if (!data.ok()) {
      fetch_errors_++;
      return data.status();
    }
    return first_block;
  }
}

void PrefetchService::Prefetch(uint64_t owner, const std::string& object_key,
                               const std::vector<ByteRange>& ranges) {
  if (cache_ == nullptr) return;

  // Split: expand ranges to aligned block indices, dedup.
  std::set<uint64_t> blocks;
  for (const ByteRange& range : ranges) {
    if (range.size == 0) continue;
    const uint64_t first = range.offset / options_.block_size;
    const uint64_t last = (range.end() - 1) / options_.block_size;
    for (uint64_t b = first; b <= last; ++b) blocks.insert(b);
  }

  // Merge: group consecutive missing blocks into runs, then queue the runs
  // under this owner. Dispatcher tasks service owners round-robin, so a
  // query that enqueues hundreds of runs shares the pool fairly with a
  // query that enqueues one.
  std::vector<PendingRun> runs;
  auto it = blocks.begin();
  while (it != blocks.end()) {
    const uint64_t run_start = *it;
    uint64_t run_len = 1;
    auto next = std::next(it);
    while (next != blocks.end() && *next == run_start + run_len &&
           run_len * options_.block_size < options_.max_coalesced_bytes) {
      ++run_len;
      ++next;
    }
    it = next;
    if (cache_->Contains(BlockKey(object_key, run_start)) && run_len == 1) {
      continue;
    }
    runs.push_back({object_key, run_start, run_len});
  }
  if (runs.empty()) return;

  int spawn = 0;
  {
    std::lock_guard<std::mutex> lock(fair_mu_);
    for (auto& run : runs) pending_.Push(owner, std::move(run));
    // One dispatcher per runnable unit of work, capped at the pool width.
    const int total_pending = static_cast<int>(pending_.size());
    while (dispatchers_ + spawn < pool_->num_threads() &&
           dispatchers_ + spawn < total_pending) {
      ++spawn;
    }
    dispatchers_ += spawn;
  }
  for (int i = 0; i < spawn; ++i) {
    pool_->Schedule([this] { DispatchLoop(); });
  }
}

void PrefetchService::DispatchLoop() {
  while (true) {
    PendingRun run;
    {
      std::lock_guard<std::mutex> lock(fair_mu_);
      if (!pending_.PopNext(&run)) {
        --dispatchers_;
        return;
      }
    }
    // Errors are ignored: a failed prefetch degrades to a blocking read.
    (void)GetOrFetchBlock(run.object_key, run.first_block, run.run_len);
  }
}

Result<std::string> PrefetchService::Read(const std::string& object_key,
                                          uint64_t offset, uint64_t size) {
  if (size == 0) return std::string();

  // Without a cache there is nothing to coalesce into: issue one exact
  // ranged request (the serial unoptimized path).
  if (cache_ == nullptr) {
    fetches_issued_++;
    auto data = store_->GetRange(object_key, offset, size);
    if (!data.ok()) {
      fetch_errors_++;
      return data.status();
    }
    if (data->size() != size) {
      return Status::IOError("short read: object smaller than range");
    }
    return data;
  }

  const uint64_t first = offset / options_.block_size;
  const uint64_t last = (offset + size - 1) / options_.block_size;

  // Multi-block span: probe the cache for the whole run at once, so blocks
  // that spilled to SSD together come back with one ranged file read
  // instead of one open/read/close per block.
  std::vector<std::shared_ptr<const std::string>> cached;
  if (last > first) {
    std::vector<std::string> keys;
    keys.reserve(last - first + 1);
    for (uint64_t b = first; b <= last; ++b) {
      keys.push_back(BlockKey(object_key, b));
    }
    cached = cache_->GetBatch(keys);
  }

  std::string out;
  out.reserve(size);
  for (uint64_t b = first; b <= last; ++b) {
    Result<std::shared_ptr<const std::string>> block =
        (b - first) < cached.size() && cached[b - first] != nullptr
            ? Result<std::shared_ptr<const std::string>>(
                  std::move(cached[b - first]))
            : GetOrFetchBlock(object_key, b, last - b + 1);
    if (!block.ok()) return block.status();
    const uint64_t block_start = b * options_.block_size;
    const uint64_t want_start = std::max(offset, block_start);
    const uint64_t want_end =
        std::min(offset + size, block_start + (*block)->size());
    if (want_start < want_end) {
      out.append(**block, want_start - block_start, want_end - want_start);
    }
    if ((*block)->size() < options_.block_size) break;  // object ended
  }
  if (out.size() != size) {
    return Status::IOError("short read: object smaller than requested range");
  }
  return out;
}

void PrefetchService::WaitIdle() { pool_->Wait(); }

}  // namespace logstore::prefetch
