#ifndef LOGSTORE_PREFETCH_CACHED_SOURCE_H_
#define LOGSTORE_PREFETCH_CACHED_SOURCE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "logblock/logblock_reader.h"
#include "objectstore/object_store.h"
#include "prefetch/prefetch_service.h"

namespace logstore::prefetch {

// LogBlockSource that reads an object directly from the object store with
// one ranged request per read — the unoptimized baseline of Figure 16
// ("OSS & W/o Parallel Prefetch").
class DirectObjectSource : public logblock::LogBlockSource {
 public:
  DirectObjectSource(objectstore::ObjectStore* store, std::string key)
      : store_(store), key_(std::move(key)) {}

  Result<std::string> ReadRange(uint64_t offset, uint64_t size) override {
    return store_->GetRange(key_, offset, size);
  }

 private:
  objectstore::ObjectStore* store_;
  std::string key_;
};

// LogBlockSource that routes reads through the multi-level block cache and
// the parallel prefetch service — the optimized path of Figure 16.
class CachedObjectSource : public logblock::LogBlockSource {
 public:
  CachedObjectSource(PrefetchService* service, std::string key)
      : service_(service), key_(std::move(key)) {}

  Result<std::string> ReadRange(uint64_t offset, uint64_t size) override {
    return service_->Read(key_, offset, size);
  }

  Status Prefetch(const std::vector<ByteRange>& ranges,
                  uint64_t owner = 0) override {
    service_->Prefetch(owner, key_, ranges);
    return Status::OK();
  }

 private:
  PrefetchService* service_;
  std::string key_;
};

}  // namespace logstore::prefetch

#endif  // LOGSTORE_PREFETCH_CACHED_SOURCE_H_
