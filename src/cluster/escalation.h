#ifndef LOGSTORE_CLUSTER_ESCALATION_H_
#define LOGSTORE_CLUSTER_ESCALATION_H_

#include <cstdint>
#include <map>
#include <string>

#include "cluster/worker.h"

namespace logstore::cluster {

// What the control cycle should do about one unhealthy worker. The rungs of
// the ladder, cheapest first: wait out an election, repair one replica in
// place, fence the whole worker and fail it over. kSkip is the floor — the
// last live worker has nowhere to fail over TO, so its problem is reported
// and the rest of the cycle (tail recovery, traffic control) still runs.
enum class EscalationAction {
  kHealthy,         // nothing to do
  kWaitElection,    // quorum intact, leader election in flight: pump, wait
  kRecoverReplica,  // one bad replica, healthy majority: repair in place
  kFailover,        // last rung: fence, reassign shards, recover the tail
  kSkip,            // unhealthy but last live worker: report and continue
};

struct EscalationPolicy {
  // In-place recoveries attempted per replica before the worker is treated
  // as a repeated offender and escalated to failover. Attempt memory is
  // cleared once the replica is observed healthy again.
  int max_recover_attempts = 3;
  // Consecutive leaderless-but-quorate cycles tolerated before escalating
  // (an election that never converges is a real failure, not a wait).
  int max_election_waits = 8;
};

struct EscalationDecision {
  EscalationAction action = EscalationAction::kHealthy;
  int replica = -1;    // which replica to recover, for kRecoverReplica
  std::string reason;  // human-readable, for reports and logs
};

// The decision logic of the escalation ladder as a pure function: one
// worker's health report in, one action out. No side effects, no clocks, no
// cluster state — the caller owns the per-replica attempt counters and the
// election-wait counter and threads them through, which is what makes the
// ladder unit-testable without a deployment.
//
// `recover_attempts` maps replica -> in-place recoveries already attempted
// since that replica was last seen healthy. `live_workers` is the
// controller's current live count (a failover needs a survivor to inherit
// the shards). `election_waits` counts consecutive cycles this worker was
// quorate but leaderless.
EscalationDecision DecideEscalation(const WorkerHealth& health,
                                    const std::map<int, int>& recover_attempts,
                                    uint32_t live_workers, int election_waits,
                                    const EscalationPolicy& policy = {});

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_ESCALATION_H_
