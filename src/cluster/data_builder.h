#ifndef LOGSTORE_CLUSTER_DATA_BUILDER_H_
#define LOGSTORE_CLUSTER_DATA_BUILDER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_writer.h"
#include "objectstore/object_store.h"
#include "objectstore/retrying_object_store.h"
#include "rowstore/row_store.h"

namespace logstore::cluster {

struct DataBuilderOptions {
  // Rows consumed from the row store per build pass.
  uint64_t max_rows_per_build = 500'000;
  // §3.1: "If a tenant is too large due to data skew, it will be divided
  // into multiple LogBlocks."
  uint32_t max_rows_per_logblock = 100'000;
  logblock::LogBlockWriterOptions block_options;
  // Object keys: <prefix><tenant>/<salt><sequence>.tar — one OSS
  // "directory" per tenant holding its chronological LogBlocks. The salt
  // identifies the producing worker incarnation: sequence counters are
  // per-builder, so without it two builders archiving the same tenant
  // (failover moved the tenant, or a rejoined worker whose wiped WAL reset
  // the recovered counter) could reuse a key and overwrite a LogBlock that
  // is the only archived copy of acked rows.
  std::string key_prefix = "tenants/";
  std::string key_salt;
  // Uploads go through a bounded-retry wrapper: a transiently failed Put
  // must not abort the build pass (the row store is only truncated after
  // every upload succeeded, so a giveup keeps the rows safe regardless).
  bool use_retry = true;
  objectstore::RetryOptions retry_options;
};

// The remote-archiving stage (§3, phase two): converts row-store snapshots
// into per-tenant LogBlocks, uploads them, registers them in the tenant
// LogBlock map, and advances the row store's checkpoint.
class DataBuilder {
 public:
  // `store` and `map` must outlive the builder.
  DataBuilder(objectstore::ObjectStore* store, logblock::LogBlockMap* map,
              DataBuilderOptions options = {});

  // Runs one build pass over `row_store`; returns the number of LogBlocks
  // produced. The row store is truncated past the archived rows only after
  // every upload of the pass succeeded.
  Result<int> BuildOnce(rowstore::RowStore* row_store);

  // Restarts object-key numbering after catalog recovery, so new LogBlocks
  // never collide with keys already on the store.
  void set_next_sequence(uint64_t sequence) { sequence_.store(sequence); }
  uint64_t next_sequence() const { return sequence_.load(); }

  uint64_t blocks_built() const { return blocks_built_.load(); }
  uint64_t rows_archived() const { return rows_archived_.load(); }
  uint64_t bytes_uploaded() const { return bytes_uploaded_.load(); }

  // Object keys this builder instance has uploaded, in upload order: the
  // archived prefix a snapshot of this worker asks a catching-up replica to
  // trust. Shipped as the snapshot-manifest blob (see
  // Worker::InstallSnapshotHooks); a production deployment would cap or
  // checkpoint this list, the simulation keeps every key of the incarnation.
  std::vector<std::string> ArchivedKeys() const;

  // Upload retry/giveup counters; nullptr when use_retry is off.
  const objectstore::RetryStats* retry_stats() const {
    return retry_store_ == nullptr ? nullptr : &retry_store_->retry_stats();
  }

 private:
  // Effective store for uploads (retry wrapper when enabled).
  objectstore::ObjectStore* store_;
  std::unique_ptr<objectstore::RetryingObjectStore> retry_store_;
  logblock::LogBlockMap* map_;
  const DataBuilderOptions options_;

  mutable std::mutex keys_mu_;
  std::vector<std::string> archived_keys_;  // guarded by keys_mu_

  std::atomic<uint64_t> sequence_{0};
  std::atomic<uint64_t> blocks_built_{0};
  std::atomic<uint64_t> rows_archived_{0};
  std::atomic<uint64_t> bytes_uploaded_{0};
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_DATA_BUILDER_H_
