#ifndef LOGSTORE_CLUSTER_CLUSTER_H_
#define LOGSTORE_CLUSTER_CLUSTER_H_

#include <memory>
#include <vector>

#include "cluster/controller.h"
#include "cluster/worker.h"
#include "common/random.h"
#include "common/result.h"
#include "objectstore/object_store.h"
#include "query/engine.h"

namespace logstore::cluster {

struct ClusterDeploymentOptions {
  uint32_t num_workers = 4;
  uint32_t shards_per_worker = 4;
  // `worker.wal_dir`, when set, is the base of the deployment's durable
  // state: each worker's replica WALs live under <wal_dir>/worker-<id>, so
  // re-Opening a cluster over the same directory is a full restart — every
  // worker recovers its term/vote/log/watermark from disk.
  WorkerOptions worker;
  ControllerOptions controller;
  query::EngineOptions engine;
};

// An in-process LogStore deployment (Figure 3): brokers route tenant writes
// by the controller's routing table to workers' shards; data builders
// archive to the object store; queries merge archived LogBlocks with the
// workers' real-time stores. This is the functional simulation of the
// multi-node production system — one address space, same code paths.
class Cluster {
 public:
  // `store` must outlive the cluster.
  static Result<std::unique_ptr<Cluster>> Open(
      objectstore::ObjectStore* store, ClusterDeploymentOptions options);

  // Broker write path: pick a shard by routing weight, write to its worker.
  // Returns kUnavailable (retryable) when the routed worker is dead and the
  // control cycle has not yet reassigned its shards — the client retries
  // after RunControlCycle instead of crashing into a null worker.
  Status Write(uint64_t tenant, const logblock::RowBatch& rows);

  // Broker read path: archived LogBlocks (via the query engine) merged with
  // the real-time row stores, so freshly written data is visible
  // immediately ("real-time data visibility").
  Result<query::QueryResult> Query(const query::LogQuery& query);

  // Background tasks, invoked by tests/benches instead of timers.
  Result<int> RunBuildPass();           // all workers archive
  Controller::ControlDecision RunTrafficControl();
  Result<int> ExpireTenantData(uint64_t tenant, int64_t cutoff_ts);

  // Tears one worker down and reconstructs it over its own wal_dir — a
  // single worker-process restart inside a live deployment (durable mode
  // only). Acked writes survive: they are either in LogBlocks on the
  // object store or recovered from the worker's replica WALs.
  //
  // For a FAILED-OVER worker this is the rejoin path instead: its tail was
  // already recovered (or declared lost) by FailoverWorker and re-routed to
  // survivors, so the old journal is wiped and the worker rejoins as a
  // fresh empty instance, eligible for future placement.
  Status RestartWorker(uint32_t id);

  // --- Failover subsystem ---

  // Simulates a worker-process death: the Worker object is fenced and
  // destroyed (WAL file handles released), its on-disk WAL directory left
  // behind. Writes routed to it return kUnavailable until RunControlCycle
  // (or an explicit FailoverWorker) reassigns its shards.
  Status KillWorker(uint32_t id);

  // One failover: fence + destroy the worker if its process is still up
  // (the wedged-replica case), reassign its shards to survivors through the
  // controller, then recover the un-archived tail of its per-worker WAL
  // directory by re-ingesting it through the broker write path (the routes
  // now point at survivors). A missing/unreadable WAL directory declares
  // the tail lost up to the archived-through watermark instead of failing.
  struct FailoverReport {
    uint32_t worker = 0;
    std::map<uint32_t, uint32_t> moved;  // shard -> surviving worker
    uint64_t tail_entries_recovered = 0;  // WAL entries re-ingested
    uint64_t tail_rows_recovered = 0;     // rows inside those entries
    bool tail_lost = false;  // no WAL dir: tail gone, archived prefix safe
  };
  Result<FailoverReport> FailoverWorker(uint32_t id);

  // Health harvest (monitor input): one report per worker. A worker whose
  // process died gets a synthesized report with process_alive=false.
  std::vector<WorkerHealth> HarvestHealth();

  // The full monitor->failover->balancer->router cycle: harvest health,
  // fail over every worker that cannot durably ack (dead process, wedged
  // replica, lost quorum, broken WAL), then run traffic control.
  struct ControlCycleReport {
    std::vector<FailoverReport> failovers;
    Controller::ControlDecision traffic;
  };
  Result<ControlCycleReport> RunControlCycle();

  Controller* controller() { return controller_.get(); }
  Worker* worker(uint32_t id) { return workers_[id].get(); }
  uint32_t num_workers() const { return static_cast<uint32_t>(workers_.size()); }
  query::QueryEngine* engine() { return engine_.get(); }

 private:
  Cluster() : rng_(12345) {}

  // Per-worker construction options (worker.wal_dir already rewritten to
  // the worker's own subdirectory), kept for RestartWorker.
  WorkerOptions WorkerOptionsFor(uint32_t id) const;

  // The tail-recovery half of a failover: re-ingests the un-archived
  // suffix of the dead worker's replica WALs through the broker write
  // path, filling the recovery fields of `report`. Must run only after
  // EVERY dead worker of the cycle is marked dead in the controller, or a
  // recovered write could be routed at a worker about to be failed over.
  Status RecoverTail(uint32_t id, FailoverReport* report);

  ClusterDeploymentOptions options_;
  objectstore::ObjectStore* store_ = nullptr;
  std::unique_ptr<Controller> controller_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<query::QueryEngine> engine_;
  Random rng_;

  // Accumulated monitor metrics between traffic-control cycles.
  std::mutex metrics_mu_;
  std::map<uint64_t, int64_t> tenant_traffic_;
  std::map<uint32_t, int64_t> shard_loads_;
  std::map<uint32_t, int64_t> worker_loads_;
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_CLUSTER_H_
