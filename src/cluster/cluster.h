#ifndef LOGSTORE_CLUSTER_CLUSTER_H_
#define LOGSTORE_CLUSTER_CLUSTER_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/controller.h"
#include "cluster/escalation.h"
#include "cluster/worker.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/result.h"
#include "objectstore/object_store.h"
#include "query/admission.h"
#include "query/engine.h"

namespace logstore::cluster {

struct ClusterDeploymentOptions {
  uint32_t num_workers = 4;
  uint32_t shards_per_worker = 4;
  // `worker.wal_dir`, when set, is the base of the deployment's durable
  // state: each worker's replica WALs live under <wal_dir>/worker-<id>, so
  // re-Opening a cluster over the same directory is a full restart — every
  // worker recovers its term/vote/log/watermark from disk.
  WorkerOptions worker;
  ControllerOptions controller;
  query::EngineOptions engine;
  // Distributed reads (§12): fan each query out across the workers whose
  // shards own its LogBlocks and merge broker-side. false falls back to the
  // single-broker-engine path (QuerySingleEngine), kept as ground truth —
  // the two are byte-identical by contract.
  bool scatter_reads = true;
  // Cluster-wide execution-slot budget shared by the broker engine and
  // every worker engine. 0 = 2 * engine.query_threads (the fleet can run
  // two engines' worth of block scans at once before queueing starts).
  int admission_slots = 0;
  // Escalation-ladder knobs for the control cycle (replica-recovery attempt
  // budget, election patience).
  EscalationPolicy escalation;
  // Registry receiving every layer's counters (`cluster.*`, `monitor.*`,
  // and — propagated into the worker/engine options when those are unset —
  // `wal.*`, `raft.*`, `query.*`, `cache.*`, `admission.*`). nullptr means
  // the process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

// Knobs for the background monitor thread (StartMonitor).
struct MonitorOptions {
  // Sleep between control cycles. The monitor also wakes immediately on
  // StopMonitor/PauseMonitor.
  int64_t poll_interval_ms = 20;
};

// Counters exported by the monitor thread: what the autonomous control
// plane decided and how long its cycles took. Snapshot via monitor_stats().
struct MonitorStats {
  uint64_t cycles = 0;
  uint64_t cycle_errors = 0;        // RunControlCycle returned non-OK
  uint64_t failovers = 0;           // whole-worker fence-and-failover rung
  uint64_t replica_recoveries = 0;  // in-place RecoverReplica rung
  uint64_t election_waits = 0;      // quorate-but-leaderless wait rung
  uint64_t skipped_workers = 0;     // last-live-worker reported skips
  uint64_t rebalanced_shards = 0;   // shards drained onto rejoined workers
  uint64_t tails_lost = 0;          // failovers that declared the tail lost
  int64_t last_cycle_us = 0;
  int64_t max_cycle_us = 0;
  int64_t total_cycle_us = 0;
};

// An in-process LogStore deployment (Figure 3): brokers route tenant writes
// by the controller's routing table to workers' shards; data builders
// archive to the object store; queries scatter across the workers owning
// the LogBlocks and merge with the real-time row stores. This is the
// functional simulation of the multi-node production system — one address
// space, same code paths.
class Cluster {
 public:
  // `store` must outlive the cluster.
  static Result<std::unique_ptr<Cluster>> Open(
      objectstore::ObjectStore* store, ClusterDeploymentOptions options);

  // Broker write path: pick a shard by routing weight, write to its worker.
  // Returns kUnavailable (retryable) when the routed worker is dead and the
  // control cycle has not yet reassigned its shards — the client retries
  // after RunControlCycle instead of crashing into a null worker.
  Status Write(uint64_t tenant, const logblock::RowBatch& rows);

  // Broker read path (§12): the query's pruned LogBlocks are partitioned by
  // owning worker (shard = hash(object_key), worker = placement snapshot),
  // executed on the owners' engines in parallel, and merged broker-side in
  // global LogBlock-map order; real-time rows from the live workers merge
  // after in a deterministic placement-independent order. Byte-identical to
  // QuerySingleEngine. Returns kUnavailable (retryable) when an owning
  // worker is dead or the placement moved mid-query — never a partial
  // result.
  Result<query::QueryResult> Query(const query::LogQuery& query);

  // Ground-truth read path: one broker-side engine over the full LogBlock
  // list, same realtime merge, same fencing. The scatter path must return
  // identical bytes; tests diff the two.
  Result<query::QueryResult> QuerySingleEngine(const query::LogQuery& query);

  // Background tasks, invoked by tests/benches instead of timers.
  Result<int> RunBuildPass();           // all workers archive
  Controller::ControlDecision RunTrafficControl();
  Result<int> ExpireTenantData(uint64_t tenant, int64_t cutoff_ts);

  // Tears one worker down and reconstructs it over its own wal_dir — a
  // single worker-process restart inside a live deployment (durable mode
  // only). Acked writes survive: they are either in LogBlocks on the
  // object store or recovered from the worker's replica WALs.
  //
  // For a FAILED-OVER worker this is the rejoin path instead: its tail was
  // already recovered (or declared lost) by FailoverWorker and re-routed to
  // survivors, so the old journal is wiped and the worker rejoins as a
  // fresh empty instance, eligible for future placement.
  Status RestartWorker(uint32_t id);

  // --- Failover subsystem ---

  // Simulates a worker-process death: the Worker object is fenced and
  // released (WAL file handles close once in-flight readers drain), its
  // on-disk WAL directory left behind. Writes routed to it return
  // kUnavailable until RunControlCycle (or an explicit FailoverWorker)
  // reassigns its shards.
  Status KillWorker(uint32_t id);

  // One failover: fence + release the worker if its process is still up
  // (the wedged-replica case), reassign its shards to survivors through the
  // controller, then recover the un-archived tail of its per-worker WAL
  // directory by re-ingesting it through the broker write path (the routes
  // now point at survivors). A missing/unreadable WAL directory declares
  // the tail lost up to the archived-through watermark instead of failing.
  struct FailoverReport {
    uint32_t worker = 0;
    std::map<uint32_t, uint32_t> moved;  // shard -> surviving worker
    uint64_t tail_entries_recovered = 0;  // WAL entries re-ingested
    uint64_t tail_rows_recovered = 0;     // rows inside those entries
    uint64_t tail_batches = 0;  // broker writes the replay coalesced into
    bool tail_lost = false;  // no WAL dir: tail gone, archived prefix safe
  };
  Result<FailoverReport> FailoverWorker(uint32_t id);

  // Health harvest (monitor input): one report per worker. A worker whose
  // process died gets a synthesized report with process_alive=false.
  std::vector<WorkerHealth> HarvestHealth();

  // The full monitor->escalation->failover->balancer->router cycle: harvest
  // health, walk each unhealthy worker up the escalation ladder (wait out
  // an election, repair one replica in place, or — last rung — fence and
  // fail over), recover failed-over tails, run traffic control, and drain
  // shards back onto rejoined empty workers. An unhealthy LAST live worker
  // is reported in `skipped` and the rest of the cycle still runs.
  struct ReplicaRecovery {
    uint32_t worker = 0;
    int replica = -1;
    bool ok = false;
  };
  struct ControlCycleReport {
    std::vector<FailoverReport> failovers;
    std::vector<ReplicaRecovery> replica_recoveries;
    std::vector<uint32_t> awaiting_election;  // quorate, election in flight
    std::vector<uint32_t> skipped;  // unhealthy but last live worker
    std::map<uint32_t, uint32_t> rebalanced;  // shard -> rejoined worker
    uint64_t tail_replay_batches = 0;
    Controller::ControlDecision traffic;
  };
  Result<ControlCycleReport> RunControlCycle();

  // --- Background monitor thread ---

  // Starts the monitor: a background thread driving RunControlCycle every
  // poll interval until StopMonitor. Errors from individual cycles are
  // counted, not fatal — the monitor's job is to keep trying.
  Status StartMonitor(MonitorOptions options = {});
  // Stops and joins the monitor thread (idempotent; also runs at
  // destruction).
  void StopMonitor();
  // Pauses the monitor between cycles; blocks until any in-flight cycle
  // completes, so after return the caller observes a quiescent control
  // plane (tests use this to make assertions race-free). Resume re-arms it.
  //
  // Wake contract (the soak harness leans on every clause):
  //  - Pauses NEST: each PauseMonitor must be matched by one ResumeMonitor,
  //    and the monitor stays quiescent until the LAST resume. Two fault
  //    injectors may pause concurrently; neither's quiescent window can be
  //    broken by the other's resume (monitor_pause_depth_ is a counter, not
  //    a flag — a bool here once let a pause/resume storm re-arm the
  //    monitor inside another thread's window, invalidating its raw
  //    Worker* accesses).
  //  - PauseMonitor returns only when no cycle is in flight; after return
  //    no new cycle can start until the matching resume.
  //  - ResumeMonitor (at depth zero) and StopMonitor wake the loop
  //    IMMEDIATELY via monitor_kick_ — the loop's wait predicate must not
  //    sleep out the remainder of poll_interval_ms, or a chaos schedule
  //    that resumes right before asserting convergence goes flaky.
  //  - StopMonitor may be called while paused; stop outranks pause.
  void PauseMonitor();
  void ResumeMonitor();
  bool monitor_running() const;
  MonitorStats monitor_stats() const;

  Controller* controller() { return controller_.get(); }
  Worker* worker(uint32_t id) { return WorkerRef(id).get(); }
  uint32_t num_workers() const {
    return static_cast<uint32_t>(options_.num_workers);
  }
  query::QueryEngine* engine() { return engine_.get(); }
  // Worker `id`'s query endpoint (the engine its fragments execute on);
  // null while the worker is dead.
  query::QueryEngine* worker_engine(uint32_t id);
  query::AdmissionGovernor* admission() { return admission_.get(); }

  // Drops every engine's cached state, broker and workers (for cold-cache
  // measurements).
  void ClearQueryCaches();

  ~Cluster() { StopMonitor(); }

 private:
  Cluster() : rng_(12345) {}

  // Per-worker construction options (worker.wal_dir already rewritten to
  // the worker's own subdirectory), kept for RestartWorker. Each call
  // allocates a fresh builder-key incarnation (see WorkerOptions).
  WorkerOptions WorkerOptionsFor(uint32_t id) const;
  mutable std::atomic<uint64_t> next_worker_incarnation_{0};

  // RunControlCycle body; caller holds control_mu_.
  Result<ControlCycleReport> RunControlCycleLocked();

  // Monitor thread body.
  void MonitorLoop(MonitorOptions options);
  void RecordCycle(const Result<ControlCycleReport>& report,
                   int64_t elapsed_us);

  // The tail-recovery half of a failover: re-ingests the un-archived
  // suffix of the dead worker's replica WALs through the broker write
  // path, filling the recovery fields of `report`. Must run only after
  // EVERY dead worker of the cycle is marked dead in the controller, or a
  // recovered write could be routed at a worker about to be failed over.
  Status RecoverTail(uint32_t id, FailoverReport* report);

  // Opens a fresh engine wired to the shared admission governor.
  Result<std::shared_ptr<query::QueryEngine>> OpenEngine();

  // Slot accessors: worker/engine slots are shared_ptrs guarded by
  // workers_mu_, so a reader holds the OBJECT alive while a failover nulls
  // the SLOT — the in-process analogue of a connection outliving the
  // cluster membership change. Never hold workers_mu_ across worker calls.
  std::shared_ptr<Worker> WorkerRef(uint32_t id) const;
  void SnapshotEndpoints(
      std::vector<std::shared_ptr<Worker>>* workers,
      std::vector<std::shared_ptr<query::QueryEngine>>* engines) const;
  // Fences worker `id` (if present) and nulls its worker + engine slots,
  // returning the old worker object. Part of every kill/failover.
  std::shared_ptr<Worker> FenceAndRemoveWorker(uint32_t id);

  // Gathers the realtime batches a query must merge, under the read-fence
  // rules: a dead-but-not-failed-over worker makes the result kUnavailable
  // (its un-archived rows are temporarily unreachable, not absent), a
  // failed-over worker contributes nothing (its tail was re-ingested into
  // the survivors).
  Status CollectRealtime(
      const query::LogQuery& query,
      const std::vector<std::shared_ptr<Worker>>& workers,
      const Controller::PlacementView& placement,
      std::vector<std::pair<uint32_t, logblock::RowBatch>>* batches);

  // The scatter/gather read path behind Query().
  Result<query::QueryResult> ScatterQuery(const query::LogQuery& query);

  // Write() body; the public wrapper classifies the outcome into the
  // cluster.availability.* cells on every exit path.
  Status WriteImpl(uint64_t tenant, const logblock::RowBatch& rows);

  ClusterDeploymentOptions options_;
  objectstore::ObjectStore* store_ = nullptr;
  std::unique_ptr<Controller> controller_;
  // Declared before the engines that reference it (destroyed after them).
  std::unique_ptr<query::AdmissionGovernor> admission_;

  mutable std::mutex workers_mu_;
  std::vector<std::shared_ptr<Worker>> workers_;  // guarded by workers_mu_
  // Per-worker query endpoints, same indexing. Guarded by workers_mu_.
  std::vector<std::shared_ptr<query::QueryEngine>> worker_engines_;

  std::unique_ptr<query::QueryEngine> engine_;  // broker-side engine
  Random rng_;

  // Read-side fence for in-process control mutations, a seqlock: odd while
  // a control mutation (kill / failover / restart / build pass) is in
  // progress. A query snapshots it first and re-checks it last; any change
  // or an odd value makes the result kUnavailable (retryable), so a reader
  // overlapping a mutation can never return a partial result — the window
  // the placement epoch alone cannot cover (tail recovery and archive
  // moves do not bump the epoch).
  std::atomic<uint64_t> control_seq_{0};

  class ControlMutation {
   public:
    explicit ControlMutation(std::atomic<uint64_t>* seq) : seq_(seq) {
      seq_->fetch_add(1, std::memory_order_acq_rel);
    }
    ~ControlMutation() { seq_->fetch_add(1, std::memory_order_acq_rel); }
    ControlMutation(const ControlMutation&) = delete;
    ControlMutation& operator=(const ControlMutation&) = delete;

   private:
    std::atomic<uint64_t>* seq_;
  };

  // Broker write-path accounting (§4.1.3 monitor input), kept as registry
  // counters so the hot path touches only lock-free atomics — the old
  // metrics_mu_ serialized every Write twice (once for the RNG shard pick,
  // once for three counter-map updates). Shard/worker cells are
  // pre-resolved at Open (the universe is fixed); tenant cells resolve on
  // first write through a read-mostly cache.
  std::atomic<uint64_t>* TenantCell(uint64_t tenant);
  metrics::MetricRegistry* registry_ = nullptr;
  std::vector<std::atomic<uint64_t>*> shard_cells_;
  std::vector<std::atomic<uint64_t>*> worker_cells_;
  mutable std::shared_mutex tenant_cells_mu_;
  std::unordered_map<uint64_t, std::atomic<uint64_t>*> tenant_cells_;

  // The RNG is the one piece of Write that still needs mutual exclusion;
  // it gets its own narrow lock instead of riding the metrics lock.
  std::mutex rng_mu_;  // guards rng_

  // Traffic control consumes per-cycle deltas, but the registry counters
  // are cumulative; these baselines remember each counter's value at the
  // previous cycle. Guarded by traffic_baseline_mu_ (cycles are already
  // serialized by control_mu_, but tests call RunTrafficControl directly).
  std::mutex traffic_baseline_mu_;
  std::unordered_map<uint64_t, int64_t> last_tenant_rows_;
  std::vector<int64_t> last_shard_rows_;
  std::vector<int64_t> last_worker_rows_;

  // Registry mirrors of MonitorStats (monitor.*) and the scatter-read
  // aggregates (cluster.scatter.*), dual-written at the accounting points.
  struct MonitorCells {
    std::atomic<uint64_t>* cycles = nullptr;
    std::atomic<uint64_t>* cycle_errors = nullptr;
    std::atomic<uint64_t>* failovers = nullptr;
    std::atomic<uint64_t>* replica_recoveries = nullptr;
    std::atomic<uint64_t>* election_waits = nullptr;
    std::atomic<uint64_t>* skipped_workers = nullptr;
    std::atomic<uint64_t>* rebalanced_shards = nullptr;
    std::atomic<uint64_t>* tails_lost = nullptr;
    std::atomic<int64_t>* last_cycle_us = nullptr;
    std::atomic<int64_t>* max_cycle_us = nullptr;
    std::atomic<int64_t>* total_cycle_us = nullptr;
    void BindTo(metrics::MetricRegistry* registry);
  };
  MonitorCells monitor_cells_;
  struct ScatterCells {
    std::atomic<uint64_t>* queries = nullptr;
    std::atomic<uint64_t>* rows_matched = nullptr;
    std::atomic<uint64_t>* realtime_rows = nullptr;
    std::atomic<uint64_t>* logblocks_total = nullptr;
    std::atomic<uint64_t>* logblocks_pruned = nullptr;
    void BindTo(metrics::MetricRegistry* registry);
  };
  ScatterCells scatter_cells_;

  // Availability accounting (cluster.availability.*): every broker write
  // and read classified at the moment it returns to the client. The soak
  // harness samples these cells into time buckets to compute write-success
  // rate over wall clock the way Taurus's evaluation does; `*_unavailable`
  // counts the retryable kUnavailable refusals (dead route, control-seqlock
  // overlap, epoch move, brownout surfacing through a worker engine) that
  // the availability floor is measured against. Other errors (bad query,
  // admission aborts) land in `*_errors` so refusal and failure stay
  // distinguishable.
  struct AvailabilityCells {
    std::atomic<uint64_t>* write_attempts = nullptr;
    std::atomic<uint64_t>* write_successes = nullptr;
    std::atomic<uint64_t>* write_unavailable = nullptr;
    std::atomic<uint64_t>* write_errors = nullptr;
    std::atomic<uint64_t>* query_attempts = nullptr;
    std::atomic<uint64_t>* query_successes = nullptr;
    std::atomic<uint64_t>* query_unavailable = nullptr;
    std::atomic<uint64_t>* query_errors = nullptr;
    void BindTo(metrics::MetricRegistry* registry);
    void RecordWrite(const Status& status);
    void RecordQuery(const Status& status);
  };
  AvailabilityCells availability_cells_;

  // Serializes control-plane entry points (control cycles, kill / restart /
  // failover, build passes) against each other — the monitor thread and
  // test threads share them. Ordered BEFORE workers_mu_ and any worker's
  // raft lock; never acquired while holding either.
  std::mutex control_mu_;

  // The escalation ladder's failure memory, per worker: in-place recovery
  // attempts per replica (cleared when the replica is observed healthy)
  // and consecutive leaderless-but-quorate cycles. Guarded by control_mu_.
  struct EscalationState {
    std::map<int, int> recover_attempts;
    int election_waits = 0;
  };
  std::map<uint32_t, EscalationState> escalation_;

  // Monitor thread machinery. monitor_mu_ guards the flags and stats;
  // cycles themselves run outside it (under control_mu_). See the wake
  // contract on PauseMonitor above.
  mutable std::mutex monitor_mu_;
  std::condition_variable monitor_cv_;
  std::thread monitor_;
  bool monitor_stop_ = false;       // guarded by monitor_mu_
  int monitor_pause_depth_ = 0;     // guarded by monitor_mu_; nested pauses
  bool monitor_kick_ = false;       // guarded by monitor_mu_; skip the nap
  bool monitor_in_cycle_ = false;   // guarded by monitor_mu_
  MonitorStats monitor_stats_;      // guarded by monitor_mu_
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_CLUSTER_H_
