#include "cluster/worker.h"

#include "rowstore/wal.h"

namespace logstore::cluster {

Worker::Worker(uint32_t id, objectstore::ObjectStore* store,
               logblock::LogBlockMap* map, WorkerOptions options)
    : id_(id), options_(std::move(options)) {
  primary_store_ = std::make_unique<rowstore::RowStore>(options_.schema);
  DataBuilderOptions builder_options = options_.builder;
  builder_options.key_prefix += "";  // per-tenant directories, shared bucket
  builder_ = std::make_unique<DataBuilder>(store, map, builder_options);

  if (options_.replicated) {
    replica_store_ = std::make_unique<rowstore::RowStore>(options_.schema);
    raft_ = std::make_unique<consensus::RaftCluster>(3, options_.raft,
                                                     /*seed=*/1000 + id);
    // Replica 0: primary full row store. Replica 1: second full row store.
    // Replica 2: WAL-only (stores the log, applies nothing) — the §3
    // storage-cost trade-off.
    auto apply_to = [this](rowstore::RowStore* target) {
      return [this, target](uint64_t, const std::string& payload) {
        auto record = rowstore::DecodeWalRecord(payload, options_.schema);
        if (record.ok()) target->Append(record->tenant_id, record->rows);
      };
    };
    raft_->SetApplyFn(0, apply_to(primary_store_.get()));
    raft_->SetApplyFn(1, apply_to(replica_store_.get()));
    raft_->SetApplyFn(2, consensus::ApplyFn());  // WAL-only
    raft_->WaitForLeader();
  }
}

Status Worker::Write(uint32_t shard, uint64_t tenant,
                     const logblock::RowBatch& rows) {
  if (options_.replicated) {
    // Synchronous commit: propose on the leader and pump the group until
    // the entry is applied (models "the synchronization can only be
    // completed after most of the followers have persisted the WAL").
    const int leader = raft_->WaitForLeader();
    if (leader < 0) return Status::Unavailable("no raft leader");
    const uint64_t target = raft_->node(leader).log_size() + 1;
    Status proposed =
        raft_->node(leader).Propose(rowstore::EncodeWalRecord(tenant, rows));
    if (!proposed.ok()) return proposed;  // kResourceExhausted = BFC
    // Wait for the commit to reach the primary replica (node 0, whose row
    // store serves real-time reads), not just the current leader.
    for (int i = 0; i < 1000 && raft_->node(0).last_applied() < target; ++i) {
      raft_->Tick(10);
    }
    if (raft_->node(0).last_applied() < target) {
      return Status::TimedOut("replication did not complete");
    }
  } else {
    primary_store_->Append(tenant, rows);
  }

  std::lock_guard<std::mutex> lock(traffic_mu_);
  traffic_.per_shard[shard] += rows.num_rows();
  traffic_.per_tenant[tenant] += rows.num_rows();
  traffic_.total += rows.num_rows();
  return Status::OK();
}

Result<int> Worker::RunBuildPass() {
  return builder_->BuildOnce(primary_store_.get());
}

logblock::RowBatch Worker::ScanRealtime(
    uint64_t tenant, int64_t ts_min, int64_t ts_max,
    const std::vector<query::Predicate>& predicates) const {
  return primary_store_->ScanTenant(tenant, ts_min, ts_max, predicates);
}

Worker::TrafficSnapshot Worker::HarvestTraffic() {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  TrafficSnapshot snapshot = std::move(traffic_);
  traffic_ = TrafficSnapshot();
  return snapshot;
}

}  // namespace logstore::cluster
