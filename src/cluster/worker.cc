#include "cluster/worker.h"

#include "rowstore/wal.h"

namespace logstore::cluster {

Worker::Worker(uint32_t id, objectstore::ObjectStore* store,
               logblock::LogBlockMap* map, WorkerOptions options)
    : id_(id), options_(std::move(options)), store_(store) {
  primary_store_ = std::make_unique<rowstore::RowStore>(options_.schema);
  DataBuilderOptions builder_options = options_.builder;
  // Per-tenant directories in a shared bucket; the salt scopes sequence
  // numbers to this worker incarnation so no two lives of a worker (or two
  // workers archiving the same tenant after a failover move) can collide on
  // an object key and overwrite each other's LogBlocks.
  builder_options.key_salt = "w" + std::to_string(id) + "-" +
                             std::to_string(options_.incarnation) + "-";
  builder_ = std::make_unique<DataBuilder>(store, map, builder_options);

  if (options_.replicated) {
    replica_store_ = std::make_unique<rowstore::RowStore>(options_.schema);
    raft_ = std::make_unique<consensus::RaftCluster>(3, options_.raft,
                                                     /*seed=*/1000 + id);
    // Replica 0: primary full row store. Replica 1: second full row store.
    // Replica 2: WAL-only (stores the log, applies nothing) — the §3
    // storage-cost trade-off.
    for (int i = 0; i < 3; ++i) {
      raft_->SetApplyFn(i, MakeApplyFn(i));
      InstallSnapshotHooks(i);
    }

    if (!options_.wal_dir.empty()) {
      // Durable mode: recover each replica's WAL (after SetApplyFn — that
      // recreates the node) and attach it as the raft persistence layer.
      for (int i = 0; i < 3; ++i) {
        auto wal = consensus::DurableLog::Open(WalNodeDir(i), options_.wal);
        if (!wal.ok()) {
          wal_status_ = wal.status();
          wals_.clear();
          return;
        }
        wals_.push_back(std::move(wal).value());
        raft_->AttachPersistence(i, wals_[i].get(), &wals_[i]->recovered());
      }
      // The builder's object-key numbering rides in the watermark cookie of
      // the primary's WAL, so recovered uploads never collide with
      // LogBlocks already on the object store.
      builder_->set_next_sequence(wals_[0]->recovered().watermark_aux);

      const int leader = raft_->WaitForLeader();
      if (leader >= 0 &&
          raft_->node(leader).log_size() >
              raft_->node(leader).log_base_index()) {
        // Recovered entries carry earlier terms, and Raft §5.4.2 forbids
        // committing those by counting. A no-op barrier in the new term
        // re-commits everything beneath it, replaying committed entries
        // into the row stores through the normal apply path.
        const uint64_t barrier = raft_->node(leader).log_size() + 1;
        raft_->node(leader).Propose("").IgnoreError();
        for (int i = 0;
             i < 1000 && raft_->node(0).last_applied() < barrier; ++i) {
          raft_->Tick(10);
        }
      }
    } else {
      raft_->WaitForLeader();
    }
  }
}

consensus::ApplyFn Worker::MakeApplyFn(int node) {
  rowstore::RowStore* target = store_for(node);
  if (target == nullptr) return consensus::ApplyFn();  // WAL-only replica
  return [this, target](uint64_t index, const std::string& payload) {
    // Empty payloads are recovery no-op barriers, not data.
    if (!payload.empty()) {
      auto record = rowstore::DecodeWalRecord(payload, options_.schema);
      if (record.ok()) target->Append(record->tenant_id, record->rows);
    }
    if (target == primary_store_.get()) {
      applied_index_to_seq_[index] = primary_store_->last_seq();
    }
  };
}

consensus::InstallSnapshotFn Worker::MakeInstallFn(int node) {
  return [this, node](uint64_t /*index*/, uint64_t aux,
                      const std::string& state) {
    // Everything the snapshot covers lives in LogBlocks on the object
    // store (the aux cookie is the builder's object-key sequence at the
    // time of the snapshot): drop the local rows and serve that prefix
    // from shared storage — Taurus-style catch-up, no log replay.
    rowstore::RowStore* target = store_for(node);
    if (target != nullptr) target->ResetToArchived();
    if (node == 0) {
      // Mappings recorded before the snapshot refer to discarded rows.
      applied_index_to_seq_.clear();
      builder_->set_next_sequence(std::max(builder_->next_sequence(), aux));
    }
    VerifySnapshotManifest(state);
  };
}

void Worker::InstallSnapshotHooks(int node) {
  // A LogStore snapshot's STATE is the watermark itself — the state
  // machine up to it is already in shared storage — so the blob carries a
  // MANIFEST, not data: the object keys this worker's builder has archived
  // (one per line after a version header). Shipping the manifest does two
  // things: the installer can probe that shared storage actually holds the
  // prefix it is about to trust (ResetToArchived discards local rows on
  // that promise — a lost or overwritten LogBlock would otherwise surface
  // only at query time), and the transfer has real bytes to stream, so the
  // chunk/resume/rewind machinery runs the same multi-chunk path at worker
  // scale that the raft-level harness exercises, not an empty-blob special
  // case.
  raft_->SetSnapshotHooks(
      node, [this](uint64_t, uint64_t) { return BuildSnapshotManifest(); },
      MakeInstallFn(node));
}

std::string Worker::BuildSnapshotManifest() const {
  std::string manifest = "logstore-manifest-v1\n";
  for (const std::string& key : builder_->ArchivedKeys()) {
    manifest += key;
    manifest += '\n';
  }
  return manifest;
}

void Worker::VerifySnapshotManifest(const std::string& manifest) {
  const std::string header = "logstore-manifest-v1\n";
  if (manifest.rfind(header, 0) != 0) return;  // pre-manifest (empty) blob
  size_t pos = header.size();
  while (pos < manifest.size()) {
    const size_t eol = manifest.find('\n', pos);
    if (eol == std::string::npos) break;
    const std::string key = manifest.substr(pos, eol - pos);
    pos = eol + 1;
    if (key.empty()) continue;
    ++manifest_keys_checked_;
    if (!store_->Head(key).ok()) ++manifest_keys_unverified_;
  }
}

Status Worker::CrashReplica(int node, consensus::CrashMode mode,
                            uint64_t seed) {
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (wals_.empty()) {
    return Status::InvalidArgument("crash injection needs a durable WAL");
  }
  raft_->Disconnect(node);
  return wals_[node]->SimulateCrash(mode, seed);
}

Status Worker::RecoverReplica(int node) {
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (raft_ == nullptr) {
    return Status::InvalidArgument("recovery needs a replicated worker");
  }
  if (!wals_.empty()) {
    // Release the dead log before reopening the directory.
    wals_[node].reset();
    auto wal = consensus::DurableLog::Open(WalNodeDir(node), options_.wal);
    if (!wal.ok()) return wal.status();
    wals_[node] = std::move(wal).value();
  }
  // A fresh raft node models the restarted process: volatile state is
  // gone; with a durable WAL, term/vote/log reload from it (in-memory mode
  // rejoins empty and the leader repairs it over the wire).
  raft_->RestartNode(node, MakeApplyFn(node));
  if (!wals_.empty()) {
    raft_->AttachPersistence(node, wals_[node].get(),
                             &wals_[node]->recovered());
  }
  InstallSnapshotHooks(node);
  // The restarted process starts with an empty row store. Rows at or below
  // the recovered base are in LogBlocks already; the rest re-apply through
  // the protocol once the node rejoins (or arrive via InstallSnapshot if
  // the group's base has moved past this replica's log).
  rowstore::RowStore* target = store_for(node);
  if (target != nullptr) target->ResetToArchived();
  if (node == 0) {
    applied_index_to_seq_.clear();
    if (!wals_.empty()) {
      builder_->set_next_sequence(std::max(
          builder_->next_sequence(), wals_[node]->recovered().watermark_aux));
    }
  }
  raft_->Reconnect(node);
  return Status::OK();
}

Status Worker::InjectReplicaSyncError(int node) {
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (node < 0 || node >= static_cast<int>(wals_.size())) {
    return Status::InvalidArgument("sync-error injection needs a durable WAL");
  }
  wals_[node]->InjectSyncErrors(1);
  return Status::OK();
}

Status Worker::PartitionReplica(int node) {
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (raft_ == nullptr || node < 0 || node >= raft_->num_nodes()) {
    return Status::InvalidArgument("no such replica");
  }
  raft_->Disconnect(node);
  return Status::OK();
}

void Worker::PumpRaft(int ms) {
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (raft_ != nullptr) raft_->Tick(ms);
}

WorkerHealth Worker::Health() const {
  WorkerHealth health;
  health.worker_id = id_;
  health.fenced = fenced_.load();
  health.wal_ok = wal_status_.ok();
  health.replicated = options_.replicated;
  std::lock_guard<std::mutex> lock(raft_mu_);
  if (raft_ != nullptr) {
    const consensus::GroupHealth group = raft_->Health();
    health.num_replicas = raft_->num_nodes();
    health.connected_replicas = group.connected;
    health.wedged_replicas = group.wedged_connected;
    health.has_leader = group.leader >= 0;
    for (const consensus::ReplicaHealth& replica : group.replicas) {
      WorkerHealth::Replica r;
      r.node = replica.node;
      r.connected = replica.connected;
      r.wedged = replica.connected && !replica.persist_ok;
      r.leader = replica.role == consensus::Role::kLeader && replica.connected;
      health.replicas.push_back(r);
    }
  }
  return health;
}

Status Worker::Write(uint32_t shard, uint64_t tenant,
                     const logblock::RowBatch& rows) {
  if (fenced_.load()) {
    return Status::Unavailable("worker " + std::to_string(id_) +
                               " is fenced (failed over)");
  }
  if (options_.replicated) {
    if (!wal_status_.ok()) return wal_status_;
    // Synchronous commit: propose on the leader and pump the group until
    // the entry is applied (models "the synchronization can only be
    // completed after most of the followers have persisted the WAL").
    std::lock_guard<std::mutex> lock(raft_mu_);
    const int leader = raft_->WaitForLeader();
    if (leader < 0) return Status::Unavailable("no raft leader");
    const uint64_t target = raft_->node(leader).log_size() + 1;
    Status proposed =
        raft_->node(leader).Propose(rowstore::EncodeWalRecord(tenant, rows));
    if (!proposed.ok()) return proposed;  // kResourceExhausted = BFC
    // Wait for the commit to reach the primary replica (node 0, whose row
    // store serves real-time reads), not just the current leader.
    for (int i = 0; i < 1000 && raft_->node(0).last_applied() < target; ++i) {
      raft_->Tick(10);
    }
    if (raft_->node(0).last_applied() < target) {
      return Status::TimedOut("replication did not complete");
    }
    // Group commit: the ack below promises durability on every replica
    // under kOnSync as well as kPerRecord.
    if (!wals_.empty()) {
      LOGSTORE_RETURN_IF_ERROR(raft_->SyncAll());
    }
  } else {
    primary_store_->Append(tenant, rows);
  }

  std::lock_guard<std::mutex> lock(traffic_mu_);
  traffic_.per_shard[shard] += rows.num_rows();
  traffic_.per_tenant[tenant] += rows.num_rows();
  traffic_.total += rows.num_rows();
  return Status::OK();
}

Result<int> Worker::RunBuildPass(bool advance_watermark) {
  // Under the raft lock end to end: the builder's sequence counter and the
  // applied-index map are shared with the monitor thread's RecoverReplica.
  std::lock_guard<std::mutex> lock(raft_mu_);
  auto built = builder_->BuildOnce(primary_store_.get());
  if (built.ok() && advance_watermark && !wals_.empty()) {
    AdvanceWalWatermark();
  }
  return built;
}

void Worker::AdvanceWalWatermark() {
  // Translate the row store's checkpoint (rows through archived_seq are on
  // the object store) into the largest entry index whose rows are ALL
  // archived. SnapshotForBuild can cut mid-entry, so an entry straddling
  // the checkpoint keeps the watermark below it until the next pass.
  const uint64_t archived = primary_store_->archived_seq();
  uint64_t watermark = 0;
  for (const auto& [index, seq] : applied_index_to_seq_) {
    if (seq > archived) break;
    watermark = index;
  }
  if (watermark == 0) return;
  const uint64_t aux = builder_->next_sequence();
  for (int i = 0; i < raft_->num_nodes(); ++i) {
    // Per-node: clamped to that node's own applied point, so a lagging
    // replica retains its segments until it catches up. Crashed replicas
    // are skipped — the LIVE replicas' GC keeps advancing regardless (disk
    // stays bounded with a member down), and the dead one is repaired with
    // an InstallSnapshot when it returns rather than by retained segments.
    if (raft_->disconnected(i)) continue;
    raft_->node(i).AdvanceWatermark(watermark, aux).IgnoreError();
  }
  applied_index_to_seq_.erase(applied_index_to_seq_.begin(),
                              applied_index_to_seq_.upper_bound(watermark));
}

logblock::RowBatch Worker::ScanRealtime(
    uint64_t tenant, int64_t ts_min, int64_t ts_max,
    const std::vector<query::Predicate>& predicates) const {
  return primary_store_->ScanTenant(tenant, ts_min, ts_max, predicates);
}

Worker::TrafficSnapshot Worker::HarvestTraffic() {
  std::lock_guard<std::mutex> lock(traffic_mu_);
  TrafficSnapshot snapshot = std::move(traffic_);
  traffic_ = TrafficSnapshot();
  return snapshot;
}

}  // namespace logstore::cluster
