#include "cluster/controller.h"

namespace logstore::cluster {

Controller::Controller(uint32_t num_workers, uint32_t shards_per_worker,
                       ControllerOptions options)
    : shards_per_worker_(shards_per_worker),
      options_(options),
      num_workers_(num_workers),
      num_shards_(num_workers * shards_per_worker) {
  placement_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    placement_.push_back(s / shards_per_worker_);
  }
  worker_alive_.assign(num_workers_, true);
  for (uint32_t s = 0; s < num_shards_; ++s) ring_.AddNode(s);
  switch (options_.policy) {
    case BalancePolicy::kGreedy:
      balancer_ = std::make_unique<flow::GreedyBalancer>();
      break;
    case BalancePolicy::kMaxFlow:
      balancer_ = std::make_unique<flow::MaxFlowBalancer>();
      break;
    case BalancePolicy::kNone:
      break;
  }
}

uint32_t Controller::AddWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t worker = num_workers_++;
  worker_alive_.push_back(true);
  for (uint32_t s = 0; s < shards_per_worker_; ++s) {
    ring_.AddNode(num_shards_ + s);
    placement_.push_back(worker);
  }
  num_shards_ += shards_per_worker_;
  return worker;
}

std::vector<uint32_t> Controller::ShardsOfWorker(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> shards;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (placement_[s] == worker) shards.push_back(s);
  }
  return shards;
}

uint32_t Controller::live_worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t live = 0;
  for (bool alive : worker_alive_) live += alive ? 1 : 0;
  return live;
}

Result<Controller::FailoverDecision> Controller::FailoverWorker(
    uint32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= num_workers_) {
    return Status::InvalidArgument("no such worker");
  }
  if (!worker_alive_[worker]) {
    return Status::AlreadyExists("worker already failed over");
  }
  // Survivors, by current shard count then last harvested load: the
  // capacity-aware target order for reassignment.
  std::vector<uint32_t> survivors;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    if (w != worker && worker_alive_[w]) survivors.push_back(w);
  }
  if (survivors.empty()) {
    return Status::Unavailable(
        "cannot fail over the last live worker; no survivors");
  }

  worker_alive_[worker] = false;
  ++placement_epoch_;  // fences the dead worker's in-flight acks

  std::map<uint32_t, uint32_t> shard_counts;
  for (uint32_t s = 0; s < num_shards_; ++s) ++shard_counts[placement_[s]];

  FailoverDecision decision;
  decision.worker = worker;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (placement_[s] != worker) continue;
    uint32_t best = survivors[0];
    for (uint32_t candidate : survivors) {
      const auto count = [&](uint32_t w) { return shard_counts[w]; };
      const auto load = [&](uint32_t w) {
        auto it = last_worker_loads_.find(w);
        return it == last_worker_loads_.end() ? int64_t{0} : it->second;
      };
      if (std::pair(count(candidate), load(candidate)) <
          std::pair(count(best), load(best))) {
        best = candidate;
      }
    }
    placement_[s] = best;
    ++shard_counts[best];
    decision.moved[s] = best;
  }
  // Tenant routes key on shards, so every route follows its shard to the
  // new worker without being rewritten; the next balancer cycle re-weights
  // against the survivors' measured loads as usual.
  decision.epoch = placement_epoch_;
  return decision;
}

Status Controller::ReviveWorker(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= num_workers_) {
    return Status::InvalidArgument("no such worker");
  }
  if (worker_alive_[worker]) {
    return Status::AlreadyExists("worker is already live");
  }
  worker_alive_[worker] = true;  // empty: owns no shards until assigned
  return Status::OK();
}

void Controller::EnsureTenantRoute(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (routes_.Contains(tenant)) return;
  routes_.Set(tenant, {{ring_.GetNode(tenant), 1.0}});
}

flow::RouteTable Controller::routes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routes_;
}

flow::ClusterState Controller::BuildState(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) const {
  flow::ClusterState state;
  state.alpha = options_.alpha;
  state.hot_threshold = options_.hot_threshold;
  state.edge_max_flow = options_.edge_max_flow;
  state.routes = routes_;
  for (const auto& [tenant, traffic] : tenant_traffic) {
    state.tenants.push_back({tenant, traffic});
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto it = shard_loads.find(s);
    // placement_ read directly: callers hold mu_ (WorkerForShard would
    // re-lock it).
    state.shards.push_back({s, placement_[s], options_.shard_capacity,
                            it == shard_loads.end() ? 0 : it->second});
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    auto it = worker_loads.find(w);
    state.workers.push_back({w, options_.worker_capacity,
                             it == worker_loads.end() ? 0 : it->second,
                             worker_alive_[w]});
  }
  return state;
}

Controller::ControlDecision Controller::RunTrafficControl(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) {
  std::lock_guard<std::mutex> lock(mu_);
  last_worker_loads_ = worker_loads;  // capacity signal for failover targets
  ControlDecision decision;
  if (balancer_ == nullptr) return decision;  // kNone policy

  const flow::ClusterState state =
      BuildState(tenant_traffic, shard_loads, worker_loads);

  // Algorithm 1: act only when hot shards exist.
  if (flow::DetectHotShards(state).empty()) {
    decision.route_count = routes_.RouteCount();
    return decision;
  }
  if (flow::NeedsScaleOut(state)) {
    // Only adding worker nodes can satisfy the demand.
    decision.scale_needed = true;
    decision.route_count = routes_.RouteCount();
    return decision;
  }

  flow::BalanceResult result = balancer_->Schedule(state);
  routes_ = std::move(result.routes);
  decision.rebalanced = true;
  decision.scale_needed = result.scale_needed;
  decision.routes_added = result.routes_added;
  decision.route_count = routes_.RouteCount();
  return decision;
}

Result<int> Controller::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts,
                                         objectstore::ObjectStore* store) {
  const auto expired = metadata_.ExpireBefore(tenant, cutoff_ts);
  for (const auto& entry : expired) {
    LOGSTORE_RETURN_IF_ERROR(store->Delete(entry.object_key));
  }
  return static_cast<int>(expired.size());
}

}  // namespace logstore::cluster
