#include "cluster/controller.h"

namespace logstore::cluster {

Controller::Controller(uint32_t num_workers, uint32_t shards_per_worker,
                       ControllerOptions options)
    : shards_per_worker_(shards_per_worker),
      options_(options),
      num_workers_(num_workers),
      num_shards_(num_workers * shards_per_worker) {
  placement_.reserve(num_shards_);
  for (uint32_t s = 0; s < num_shards_; ++s) {
    placement_.push_back(s / shards_per_worker_);
  }
  worker_alive_.assign(num_workers_, true);
  for (uint32_t s = 0; s < num_shards_; ++s) ring_.AddNode(s);
  switch (options_.policy) {
    case BalancePolicy::kGreedy:
      balancer_ = std::make_unique<flow::GreedyBalancer>();
      break;
    case BalancePolicy::kMaxFlow:
      balancer_ = std::make_unique<flow::MaxFlowBalancer>();
      break;
    case BalancePolicy::kNone:
      break;
  }
}

uint32_t Controller::AddWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t worker = num_workers_++;
  worker_alive_.push_back(true);
  for (uint32_t s = 0; s < shards_per_worker_; ++s) {
    ring_.AddNode(num_shards_ + s);
    placement_.push_back(worker);
  }
  num_shards_ += shards_per_worker_;
  return worker;
}

std::vector<uint32_t> Controller::ShardsOfWorker(uint32_t worker) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint32_t> shards;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (placement_[s] == worker) shards.push_back(s);
  }
  return shards;
}

uint32_t Controller::live_worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t live = 0;
  for (bool alive : worker_alive_) live += alive ? 1 : 0;
  return live;
}

Result<Controller::FailoverDecision> Controller::FailoverWorker(
    uint32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= num_workers_) {
    return Status::InvalidArgument("no such worker");
  }
  if (!worker_alive_[worker]) {
    return Status::AlreadyExists("worker already failed over");
  }
  // Survivors, by current shard count then last harvested load: the
  // capacity-aware target order for reassignment.
  std::vector<uint32_t> survivors;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    if (w != worker && worker_alive_[w]) survivors.push_back(w);
  }
  if (survivors.empty()) {
    return Status::Unavailable(
        "cannot fail over the last live worker; no survivors");
  }

  worker_alive_[worker] = false;
  ++placement_epoch_;  // fences the dead worker's in-flight acks

  std::map<uint32_t, uint32_t> shard_counts;
  for (uint32_t s = 0; s < num_shards_; ++s) ++shard_counts[placement_[s]];

  FailoverDecision decision;
  decision.worker = worker;
  for (uint32_t s = 0; s < num_shards_; ++s) {
    if (placement_[s] != worker) continue;
    uint32_t best = survivors[0];
    for (uint32_t candidate : survivors) {
      const auto count = [&](uint32_t w) { return shard_counts[w]; };
      const auto load = [&](uint32_t w) {
        auto it = last_worker_loads_.find(w);
        return it == last_worker_loads_.end() ? int64_t{0} : it->second;
      };
      if (std::pair(count(candidate), load(candidate)) <
          std::pair(count(best), load(best))) {
        best = candidate;
      }
    }
    placement_[s] = best;
    ++shard_counts[best];
    decision.moved[s] = best;
  }
  // Tenant routes key on shards, so every route follows its shard to the
  // new worker without being rewritten; the next balancer cycle re-weights
  // against the survivors' measured loads as usual.
  decision.epoch = placement_epoch_;
  return decision;
}

Controller::RebalanceDecision Controller::RebalanceBack() {
  std::lock_guard<std::mutex> lock(mu_);
  RebalanceDecision decision;
  decision.epoch = placement_epoch_;

  std::map<uint32_t, uint32_t> shard_counts;
  std::map<uint32_t, int64_t> projected_loads;  // target's load after moves
  uint32_t live = 0;
  for (uint32_t w = 0; w < num_workers_; ++w) {
    if (worker_alive_[w]) {
      ++live;
      shard_counts[w];  // materialize zero-shard live workers
    }
  }
  for (uint32_t s = 0; s < num_shards_; ++s) ++shard_counts[placement_[s]];

  std::vector<uint32_t> targets;  // live and empty: rejoined workers
  for (const auto& [w, count] : shard_counts) {
    if (worker_alive_[w] && count == 0) targets.push_back(w);
  }
  if (targets.empty() || live < 2) return decision;

  const auto shard_load = [&](uint32_t s) {
    auto it = last_shard_loads_.find(s);
    return it == last_shard_loads_.end() ? int64_t{0} : it->second;
  };
  // Even split across the live fleet; a target never takes more than its
  // fair share, a donor never gives below its own.
  const uint32_t fair = std::max<uint32_t>(1, num_shards_ / live);

  for (uint32_t target : targets) {
    while (shard_counts[target] < fair) {
      // Donor: the live worker with the most shards (ties: higher load),
      // as long as it stays at or above the fair share after donating.
      uint32_t donor = target;
      for (const auto& [w, count] : shard_counts) {
        if (!worker_alive_[w] || w == target || count <= fair) continue;
        if (donor == target || count > shard_counts[donor]) donor = w;
      }
      if (donor == target) break;  // fleet already balanced
      // Move the donor's coldest shard: it restores membership with the
      // least route-table disruption, and cannot hot-spot the target.
      uint32_t moved_shard = num_shards_;
      for (uint32_t s = 0; s < num_shards_; ++s) {
        if (placement_[s] != donor || decision.moved.count(s)) continue;
        if (moved_shard == num_shards_ ||
            shard_load(s) < shard_load(moved_shard)) {
          moved_shard = s;
        }
      }
      if (moved_shard == num_shards_) break;
      if (projected_loads[target] + shard_load(moved_shard) >
          options_.worker_capacity) {
        break;  // capacity math says the target is full; stop draining
      }
      placement_[moved_shard] = target;
      projected_loads[target] += shard_load(moved_shard);
      --shard_counts[donor];
      ++shard_counts[target];
      decision.moved[moved_shard] = target;
    }
  }
  if (!decision.moved.empty()) {
    // One epoch bump for the whole pass: a scatter read routed by the old
    // placement fails its epoch re-check and retries against the settled
    // map. (Writes acked to a donor are safe — it stays a live, archiving
    // worker — so only readers need the fence.)
    ++placement_epoch_;
  }
  decision.epoch = placement_epoch_;
  return decision;
}

Status Controller::ReviveWorker(uint32_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker >= num_workers_) {
    return Status::InvalidArgument("no such worker");
  }
  if (worker_alive_[worker]) {
    return Status::AlreadyExists("worker is already live");
  }
  worker_alive_[worker] = true;  // empty: owns no shards until assigned
  return Status::OK();
}

void Controller::EnsureTenantRoute(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (routes_.Contains(tenant)) return;
  routes_.Set(tenant, {{ring_.GetNode(tenant), 1.0}});
}

flow::RouteTable Controller::routes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routes_;
}

flow::ClusterState Controller::BuildState(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) const {
  flow::ClusterState state;
  state.alpha = options_.alpha;
  state.hot_threshold = options_.hot_threshold;
  state.edge_max_flow = options_.edge_max_flow;
  state.routes = routes_;
  for (const auto& [tenant, traffic] : tenant_traffic) {
    state.tenants.push_back({tenant, traffic});
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto it = shard_loads.find(s);
    // placement_ read directly: callers hold mu_ (WorkerForShard would
    // re-lock it).
    state.shards.push_back({s, placement_[s], options_.shard_capacity,
                            it == shard_loads.end() ? 0 : it->second});
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    auto it = worker_loads.find(w);
    state.workers.push_back({w, options_.worker_capacity,
                             it == worker_loads.end() ? 0 : it->second,
                             worker_alive_[w]});
  }
  return state;
}

Controller::ControlDecision Controller::RunTrafficControl(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) {
  std::lock_guard<std::mutex> lock(mu_);
  last_worker_loads_ = worker_loads;  // capacity signal for failover targets
  last_shard_loads_ = shard_loads;    // and for rebalance-back shard choice
  ControlDecision decision;
  if (balancer_ == nullptr) return decision;  // kNone policy

  const flow::ClusterState state =
      BuildState(tenant_traffic, shard_loads, worker_loads);

  // Algorithm 1: act only when hot shards exist.
  if (flow::DetectHotShards(state).empty()) {
    decision.route_count = routes_.RouteCount();
    return decision;
  }
  if (flow::NeedsScaleOut(state)) {
    // Only adding worker nodes can satisfy the demand.
    decision.scale_needed = true;
    decision.route_count = routes_.RouteCount();
    return decision;
  }

  flow::BalanceResult result = balancer_->Schedule(state);
  routes_ = std::move(result.routes);
  decision.rebalanced = true;
  decision.scale_needed = result.scale_needed;
  decision.routes_added = result.routes_added;
  decision.route_count = routes_.RouteCount();
  return decision;
}

Result<int> Controller::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts,
                                         objectstore::ObjectStore* store) {
  const auto expired = metadata_.ExpireBefore(tenant, cutoff_ts);
  for (const auto& entry : expired) {
    LOGSTORE_RETURN_IF_ERROR(store->Delete(entry.object_key));
  }
  return static_cast<int>(expired.size());
}

}  // namespace logstore::cluster
