#include "cluster/controller.h"

namespace logstore::cluster {

Controller::Controller(uint32_t num_workers, uint32_t shards_per_worker,
                       ControllerOptions options)
    : shards_per_worker_(shards_per_worker),
      options_(options),
      num_workers_(num_workers),
      num_shards_(num_workers * shards_per_worker) {
  for (uint32_t s = 0; s < num_shards_; ++s) ring_.AddNode(s);
  switch (options_.policy) {
    case BalancePolicy::kGreedy:
      balancer_ = std::make_unique<flow::GreedyBalancer>();
      break;
    case BalancePolicy::kMaxFlow:
      balancer_ = std::make_unique<flow::MaxFlowBalancer>();
      break;
    case BalancePolicy::kNone:
      break;
  }
}

uint32_t Controller::AddWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t worker = num_workers_++;
  for (uint32_t s = 0; s < shards_per_worker_; ++s) {
    ring_.AddNode(num_shards_ + s);
  }
  num_shards_ += shards_per_worker_;
  return worker;
}

void Controller::EnsureTenantRoute(uint64_t tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (routes_.Contains(tenant)) return;
  routes_.Set(tenant, {{ring_.GetNode(tenant), 1.0}});
}

flow::RouteTable Controller::routes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routes_;
}

flow::ClusterState Controller::BuildState(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) const {
  flow::ClusterState state;
  state.alpha = options_.alpha;
  state.hot_threshold = options_.hot_threshold;
  state.edge_max_flow = options_.edge_max_flow;
  state.routes = routes_;
  for (const auto& [tenant, traffic] : tenant_traffic) {
    state.tenants.push_back({tenant, traffic});
  }
  for (uint32_t s = 0; s < num_shards_; ++s) {
    auto it = shard_loads.find(s);
    state.shards.push_back({s, WorkerForShard(s), options_.shard_capacity,
                            it == shard_loads.end() ? 0 : it->second});
  }
  for (uint32_t w = 0; w < num_workers_; ++w) {
    auto it = worker_loads.find(w);
    state.workers.push_back({w, options_.worker_capacity,
                             it == worker_loads.end() ? 0 : it->second});
  }
  return state;
}

Controller::ControlDecision Controller::RunTrafficControl(
    const std::map<uint64_t, int64_t>& tenant_traffic,
    const std::map<uint32_t, int64_t>& shard_loads,
    const std::map<uint32_t, int64_t>& worker_loads) {
  std::lock_guard<std::mutex> lock(mu_);
  ControlDecision decision;
  if (balancer_ == nullptr) return decision;  // kNone policy

  const flow::ClusterState state =
      BuildState(tenant_traffic, shard_loads, worker_loads);

  // Algorithm 1: act only when hot shards exist.
  if (flow::DetectHotShards(state).empty()) {
    decision.route_count = routes_.RouteCount();
    return decision;
  }
  if (flow::NeedsScaleOut(state)) {
    // Only adding worker nodes can satisfy the demand.
    decision.scale_needed = true;
    decision.route_count = routes_.RouteCount();
    return decision;
  }

  flow::BalanceResult result = balancer_->Schedule(state);
  routes_ = std::move(result.routes);
  decision.rebalanced = true;
  decision.scale_needed = result.scale_needed;
  decision.routes_added = result.routes_added;
  decision.route_count = routes_.RouteCount();
  return decision;
}

Result<int> Controller::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts,
                                         objectstore::ObjectStore* store) {
  const auto expired = metadata_.ExpireBefore(tenant, cutoff_ts);
  for (const auto& entry : expired) {
    LOGSTORE_RETURN_IF_ERROR(store->Delete(entry.object_key));
  }
  return static_cast<int>(expired.size());
}

}  // namespace logstore::cluster
