#include "cluster/escalation.h"

namespace logstore::cluster {

namespace {

// Failover is only possible with a survivor to inherit the shards; the last
// live worker degrades to a reported skip instead of aborting the cycle.
EscalationDecision FailoverOrSkip(uint32_t live_workers, std::string reason) {
  EscalationDecision decision;
  if (live_workers <= 1) {
    decision.action = EscalationAction::kSkip;
    decision.reason = std::move(reason) + " (last live worker: skipping)";
  } else {
    decision.action = EscalationAction::kFailover;
    decision.reason = std::move(reason);
  }
  return decision;
}

}  // namespace

EscalationDecision DecideEscalation(const WorkerHealth& health,
                                    const std::map<int, int>& recover_attempts,
                                    uint32_t live_workers, int election_waits,
                                    const EscalationPolicy& policy) {
  EscalationDecision decision;
  // Worker-level failures first: no replica-level rung can help a dead
  // process, a fenced worker, or a WAL that failed to open.
  if (!health.process_alive) {
    return FailoverOrSkip(live_workers, "process dead");
  }
  if (health.fenced) {
    return FailoverOrSkip(live_workers, "worker fenced");
  }
  if (!health.wal_ok) {
    return FailoverOrSkip(live_workers, "WAL open/recovery failed");
  }
  if (!health.replicated) {
    // Unreplicated workers have no rungs below failover.
    if (health.CanAck()) {
      decision.reason = "healthy";
      return decision;
    }
    return FailoverOrSkip(live_workers, "unreplicated worker unhealthy");
  }

  // Replica-level triage — run even when the worker can still ack, because
  // a group serving on a bare majority is one failure from an outage and
  // the monitor's job is to restore redundancy BEFORE the next casualty. A
  // replica is pulling its weight iff it is connected and not wedged;
  // everything else is a candidate for in-place repair — but only while a
  // healthy majority keeps the group quorate, because RecoverReplica needs
  // a live leader to re-replicate from.
  const int majority = health.num_replicas / 2 + 1;
  int healthy = 0;
  int candidate = -1;
  bool candidate_wedged = false;
  for (const WorkerHealth::Replica& replica : health.replicas) {
    const bool ok = replica.connected && !replica.wedged;
    if (ok) {
      ++healthy;
      continue;
    }
    // Prefer repairing a wedged-but-connected member over a disconnected
    // one: a single wedged replica fails EVERY group commit (SyncAll
    // flushes all connected WALs), while a disconnected member only costs
    // redundancy. This also covers the wedged-leader case — recovering the
    // leader drops its leadership and the healthy majority re-elects.
    if (candidate < 0 || (replica.wedged && !candidate_wedged)) {
      candidate = replica.node;
      candidate_wedged = replica.wedged;
    }
  }

  if (healthy < majority) {
    return FailoverOrSkip(live_workers,
                          "healthy replicas below majority (" +
                              std::to_string(healthy) + "/" +
                              std::to_string(health.num_replicas) + ")");
  }

  if (candidate >= 0) {
    const auto it = recover_attempts.find(candidate);
    const int attempts = it == recover_attempts.end() ? 0 : it->second;
    if (attempts >= policy.max_recover_attempts) {
      if (health.CanAck()) {
        // Degraded but still acking (a disconnected member that resists
        // repair): give the rung up and keep serving — failing over a
        // worker that CAN ack would trade redundancy loss for an outage.
        decision.reason = "degraded but acking; replica " +
                          std::to_string(candidate) + " out of repair budget";
        return decision;
      }
      return FailoverOrSkip(live_workers,
                            "replica " + std::to_string(candidate) +
                                " failed " + std::to_string(attempts) +
                                " in-place recoveries");
    }
    decision.action = EscalationAction::kRecoverReplica;
    decision.replica = candidate;
    decision.reason =
        std::string(candidate_wedged ? "wedged" : "disconnected") +
        " replica " + std::to_string(candidate) + " with healthy majority";
    return decision;
  }

  if (health.CanAck()) {
    decision.reason = "healthy";
    return decision;
  }

  // Every member is healthy yet the group cannot ack: the only remaining
  // cause is a missing leader — an election in flight. Escalating here
  // would fail over a worker that is seconds from recovering by itself.
  if (!health.has_leader) {
    if (election_waits >= policy.max_election_waits) {
      return FailoverOrSkip(live_workers,
                            "no leader after " +
                                std::to_string(election_waits) + " cycles");
    }
    decision.action = EscalationAction::kWaitElection;
    decision.reason = "quorate but leaderless; election in flight";
    return decision;
  }

  // Unreachable with a consistent report (leader + majority + no wedge is
  // exactly CanAck); treat a contradictory report as worker-level failure.
  return FailoverOrSkip(live_workers, "inconsistent health report");
}

}  // namespace logstore::cluster
