#include "cluster/cluster.h"

#include <algorithm>
#include <filesystem>

#include "rowstore/wal.h"

namespace logstore::cluster {

Result<std::unique_ptr<Cluster>> Cluster::Open(
    objectstore::ObjectStore* store, ClusterDeploymentOptions options) {
  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->options_ = options;
  cluster->store_ = store;
  cluster->controller_ = std::make_unique<Controller>(
      options.num_workers, options.shards_per_worker, options.controller);
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    cluster->workers_.push_back(std::make_unique<Worker>(
        w, store, cluster->controller_->metadata(),
        cluster->WorkerOptionsFor(w)));
    // Fail fast: a worker that could not open/recover its WALs would
    // reject every write anyway, and surfacing the recovery error here
    // (rather than on the first Write) makes restart bugs visible.
    LOGSTORE_RETURN_IF_ERROR(cluster->workers_.back()->wal_status());
  }
  auto engine = query::QueryEngine::Open(store, options.engine);
  if (!engine.ok()) return engine.status();
  cluster->engine_ = std::move(engine).value();
  return cluster;
}

WorkerOptions Cluster::WorkerOptionsFor(uint32_t id) const {
  WorkerOptions worker_options = options_.worker;
  if (!worker_options.wal_dir.empty()) {
    worker_options.wal_dir += "/worker-" + std::to_string(id);
  }
  return worker_options;
}

Status Cluster::RestartWorker(uint32_t id) {
  if (id >= workers_.size()) return Status::InvalidArgument("no such worker");
  if (!controller_->WorkerAlive(id)) {
    // Rejoin after failover. The old journal's tail was already recovered
    // (or declared lost) by FailoverWorker and re-routed to survivors;
    // replaying it here would resurrect those rows as duplicates, so the
    // directory is wiped — this is the point at which a failed-over
    // worker's WAL segments may finally be deleted — and the worker comes
    // back as a fresh empty instance with no shards.
    workers_[id].reset();
    if (!options_.worker.wal_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(WorkerOptionsFor(id).wal_dir, ec);
      if (ec) {
        return Status::IOError("wipe of failed-over WAL dir failed: " +
                               ec.message());
      }
    }
    workers_[id] = std::make_unique<Worker>(
        id, store_, controller_->metadata(), WorkerOptionsFor(id));
    LOGSTORE_RETURN_IF_ERROR(workers_[id]->wal_status());
    return controller_->ReviveWorker(id);
  }
  if (options_.worker.wal_dir.empty()) {
    return Status::InvalidArgument(
        "RestartWorker without wal_dir would lose acked writes");
  }
  // Destroy first (releases the WAL directories), then reconstruct over
  // them: the Worker constructor IS the recovery path.
  workers_[id].reset();
  workers_[id] = std::make_unique<Worker>(id, store_, controller_->metadata(),
                                          WorkerOptionsFor(id));
  return workers_[id]->wal_status();
}

Status Cluster::KillWorker(uint32_t id) {
  if (id >= workers_.size()) return Status::InvalidArgument("no such worker");
  if (workers_[id] == nullptr) {
    return Status::AlreadyExists("worker already dead");
  }
  // Fence first so any concurrent broker write fails instead of acking
  // into a store that is about to disappear, then destroy the object —
  // releasing its WAL file handles but leaving the directory on disk for
  // the failover tail recovery.
  workers_[id]->Fence();
  workers_[id].reset();
  return Status::OK();
}

Result<Cluster::FailoverReport> Cluster::FailoverWorker(uint32_t id) {
  if (id >= workers_.size()) return Status::InvalidArgument("no such worker");
  // Wedged-but-running worker: terminate the process before reassigning,
  // so its replica WALs are closed and it can never ack again.
  if (workers_[id] != nullptr) {
    workers_[id]->Fence();
    workers_[id].reset();
  }

  auto decision = controller_->FailoverWorker(id);
  if (!decision.ok()) return decision.status();

  FailoverReport report;
  report.worker = id;
  report.moved = decision->moved;
  LOGSTORE_RETURN_IF_ERROR(RecoverTail(id, &report));
  return report;
}

Status Cluster::RecoverTail(uint32_t id, FailoverReport* report) {
  // Tail recovery: everything acked but not archived lives in the dead
  // worker's replica WALs. Re-ingest it through the broker write path —
  // the placement map now routes those tenants' shards to survivors.
  if (options_.worker.wal_dir.empty()) {
    report->tail_lost = true;  // no journal was ever kept
    return Status::OK();
  }
  const std::string wal_dir = WorkerOptionsFor(id).wal_dir;

  // Merge the recovered suffixes of all replicas, keyed by raft index with
  // higher terms winning conflicts: an acked entry was fsynced on every
  // replica, so it survives as long as at least one directory is readable.
  std::map<uint64_t, consensus::LogEntry> tail;
  uint64_t archived_through = 0;
  int readable = 0;
  for (int node = 0; node < 3; ++node) {
    const std::string node_dir = wal_dir + "/node-" + std::to_string(node);
    if (!std::filesystem::exists(node_dir)) continue;
    auto wal = consensus::DurableLog::Open(node_dir, options_.worker.wal);
    if (!wal.ok()) continue;  // unreadable replica: others may still serve
    ++readable;
    const consensus::RecoveredState& recovered = (*wal)->recovered();
    archived_through = std::max(archived_through, recovered.base_index);
    for (size_t i = 0; i < recovered.entries.size(); ++i) {
      const uint64_t index = recovered.base_index + 1 + i;
      auto it = tail.find(index);
      if (it == tail.end() || recovered.entries[i].term > it->second.term) {
        tail[index] = recovered.entries[i];
      }
    }
  }
  if (readable == 0) {
    // Machine (and its disks) gone: the un-archived tail is lost. Data at
    // or below the archived-through watermark is safe in LogBlocks; this
    // is the data-loss boundary the deployment accepted by running one
    // worker per WAL directory.
    report->tail_lost = true;
    return Status::OK();
  }

  for (const auto& [index, entry] : tail) {
    if (index <= archived_through) continue;  // already in LogBlocks
    if (entry.payload.empty()) continue;      // recovery no-op barrier
    auto record =
        rowstore::DecodeWalRecord(entry.payload, options_.worker.schema);
    if (!record.ok()) continue;  // un-acked torn tail entry
    LOGSTORE_RETURN_IF_ERROR(Write(record->tenant_id, record->rows));
    ++report->tail_entries_recovered;
    report->tail_rows_recovered += record->rows.num_rows();
  }
  return Status::OK();
}

std::vector<WorkerHealth> Cluster::HarvestHealth() {
  std::vector<WorkerHealth> reports;
  for (uint32_t id = 0; id < workers_.size(); ++id) {
    if (workers_[id] == nullptr) {
      WorkerHealth dead;
      dead.worker_id = id;
      dead.process_alive = false;
      dead.fenced = !controller_->WorkerAlive(id);
      reports.push_back(dead);
    } else {
      reports.push_back(workers_[id]->Health());
    }
  }
  return reports;
}

Result<Cluster::ControlCycleReport> Cluster::RunControlCycle() {
  ControlCycleReport report;
  // Phase 1: fence every worker that cannot durably ack and mark it dead
  // in the controller. All placement moves land before any tail recovery,
  // so with multiple simultaneous failures a recovered write can never be
  // routed at a worker this same cycle is about to declare dead.
  for (const WorkerHealth& health : HarvestHealth()) {
    if (!controller_->WorkerAlive(health.worker_id)) continue;  // done
    if (health.CanAck()) continue;
    if (controller_->live_worker_count() <= 1) {
      return Status::Unavailable(
          "worker " + std::to_string(health.worker_id) +
          " is unhealthy but is the last live worker");
    }
    if (workers_[health.worker_id] != nullptr) {
      workers_[health.worker_id]->Fence();
      workers_[health.worker_id].reset();
    }
    auto decision = controller_->FailoverWorker(health.worker_id);
    if (!decision.ok()) return decision.status();
    FailoverReport failover;
    failover.worker = health.worker_id;
    failover.moved = decision->moved;
    report.failovers.push_back(std::move(failover));
  }
  // Phase 2: recover each dead worker's un-archived WAL tail into the
  // (now final) placement.
  for (FailoverReport& failover : report.failovers) {
    LOGSTORE_RETURN_IF_ERROR(RecoverTail(failover.worker, &failover));
  }
  report.traffic = RunTrafficControl();
  return report;
}

Status Cluster::Write(uint64_t tenant, const logblock::RowBatch& rows) {
  controller_->EnsureTenantRoute(tenant);
  const flow::RouteTable routes = controller_->routes();
  uint32_t shard = 0;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (!routes.PickShard(tenant, &rng_, &shard)) {
      return Status::Internal("no route for tenant");
    }
  }
  const uint32_t worker_id = controller_->WorkerForShard(shard);
  // Liveness check before dereferencing: between a worker's death and the
  // next control cycle the routes still point at its shards. That window
  // is a retryable condition for the client, not a crash for the broker.
  if (workers_[worker_id] == nullptr || !controller_->WorkerAlive(worker_id)) {
    return Status::Unavailable("worker " + std::to_string(worker_id) +
                               " for shard " + std::to_string(shard) +
                               " is dead; retry after the control cycle");
  }
  const uint64_t epoch = controller_->placement_epoch();
  LOGSTORE_RETURN_IF_ERROR(workers_[worker_id]->Write(shard, tenant, rows));
  // Fencing: if a failover reassigned this worker's shards while the write
  // was in flight, the rows may sit in a store nobody will archive. Refuse
  // the ack; the client retries against the new placement.
  if (controller_->placement_epoch() != epoch &&
      !controller_->WorkerAlive(worker_id)) {
    return Status::Unavailable("worker " + std::to_string(worker_id) +
                               " was fenced during the write; not acked");
  }

  std::lock_guard<std::mutex> lock(metrics_mu_);
  tenant_traffic_[tenant] += rows.num_rows();
  shard_loads_[shard] += rows.num_rows();
  worker_loads_[worker_id] += rows.num_rows();
  return Status::OK();
}

Result<query::QueryResult> Cluster::Query(const query::LogQuery& query) {
  // Archived data from the object store.
  auto result = engine_->Execute(query, *controller_->metadata());
  if (!result.ok()) return result.status();

  // Merge the real-time stores: rows not yet archived. Dead workers hold
  // nothing queryable — their un-archived tail was re-ingested into the
  // survivors at failover.
  for (auto& worker : workers_) {
    if (worker == nullptr) continue;
    const logblock::RowBatch realtime = worker->ScanRealtime(
        query.tenant_id, query.ts_min, query.ts_max, query.predicates);
    LOGSTORE_RETURN_IF_ERROR(
        query::AppendRealtimeRows(realtime, query, &result.value()));
  }
  return result;
}

Result<int> Cluster::RunBuildPass() {
  int total = 0;
  for (auto& worker : workers_) {
    if (worker == nullptr) continue;  // dead worker: nothing to archive
    auto built = worker->RunBuildPass();
    if (!built.ok()) return built.status();
    total += *built;
  }
  return total;
}

Controller::ControlDecision Cluster::RunTrafficControl() {
  std::map<uint64_t, int64_t> tenants;
  std::map<uint32_t, int64_t> shards;
  std::map<uint32_t, int64_t> workers;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    tenants = std::move(tenant_traffic_);
    shards = std::move(shard_loads_);
    workers = std::move(worker_loads_);
    tenant_traffic_.clear();
    shard_loads_.clear();
    worker_loads_.clear();
  }
  return controller_->RunTrafficControl(tenants, shards, workers);
}

Result<int> Cluster::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts) {
  return controller_->ExpireTenantData(tenant, cutoff_ts, store_);
}

}  // namespace logstore::cluster
