#include "cluster/cluster.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "rowstore/wal.h"

namespace logstore::cluster {

Result<std::unique_ptr<Cluster>> Cluster::Open(
    objectstore::ObjectStore* store, ClusterDeploymentOptions options) {
  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->options_ = options;
  cluster->store_ = store;
  // One registry serves the whole deployment: propagate it into the nested
  // worker/engine options (when those are unset) BEFORE any worker or
  // engine is constructed, so `wal.*`, `raft.*`, `query.*` land in it.
  cluster->registry_ = metrics::OrDefault(options.registry);
  if (cluster->options_.engine.registry == nullptr) {
    cluster->options_.engine.registry = cluster->registry_;
  }
  if (cluster->options_.worker.wal.registry == nullptr) {
    cluster->options_.worker.wal.registry = cluster->registry_;
  }
  if (cluster->options_.worker.raft.registry == nullptr) {
    cluster->options_.worker.raft.registry = cluster->registry_;
  }
  cluster->monitor_cells_.BindTo(cluster->registry_);
  cluster->scatter_cells_.BindTo(cluster->registry_);
  cluster->availability_cells_.BindTo(cluster->registry_);
  // Shard/worker routing counters: the universe is fixed at deployment
  // time, so the cells are pre-resolved and the write path indexes a
  // vector instead of taking a lock.
  const uint32_t num_shards = options.num_workers * options.shards_per_worker;
  for (uint32_t s = 0; s < num_shards; ++s) {
    cluster->shard_cells_.push_back(cluster->registry_->Counter(
        "cluster.rows_routed", {{"shard", std::to_string(s)}}));
  }
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    cluster->worker_cells_.push_back(cluster->registry_->Counter(
        "cluster.rows_routed", {{"worker", std::to_string(w)}}));
  }
  cluster->last_shard_rows_.assign(num_shards, 0);
  cluster->last_worker_rows_.assign(options.num_workers, 0);
  cluster->controller_ = std::make_unique<Controller>(
      options.num_workers, options.shards_per_worker, options.controller);
  const int slots = options.admission_slots > 0
                        ? options.admission_slots
                        : std::max(2 * options.engine.query_threads, 2);
  cluster->admission_ =
      std::make_unique<query::AdmissionGovernor>(slots, cluster->registry_);
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    cluster->workers_.push_back(std::make_shared<Worker>(
        w, store, cluster->controller_->metadata(),
        cluster->WorkerOptionsFor(w)));
    // Fail fast: a worker that could not open/recover its WALs would
    // reject every write anyway, and surfacing the recovery error here
    // (rather than on the first Write) makes restart bugs visible.
    LOGSTORE_RETURN_IF_ERROR(cluster->workers_.back()->wal_status());
    auto worker_engine = cluster->OpenEngine();
    if (!worker_engine.ok()) return worker_engine.status();
    cluster->worker_engines_.push_back(std::move(worker_engine).value());
  }
  query::EngineOptions broker_options = cluster->options_.engine;
  broker_options.admission = cluster->admission_.get();
  auto engine = query::QueryEngine::Open(store, broker_options);
  if (!engine.ok()) return engine.status();
  cluster->engine_ = std::move(engine).value();
  return cluster;
}

Result<std::shared_ptr<query::QueryEngine>> Cluster::OpenEngine() {
  query::EngineOptions engine_options = options_.engine;
  engine_options.admission = admission_.get();
  auto engine = query::QueryEngine::Open(store_, engine_options);
  if (!engine.ok()) return engine.status();
  return std::shared_ptr<query::QueryEngine>(std::move(engine).value());
}

WorkerOptions Cluster::WorkerOptionsFor(uint32_t id) const {
  WorkerOptions worker_options = options_.worker;
  if (!worker_options.wal_dir.empty()) {
    worker_options.wal_dir += "/worker-" + std::to_string(id);
  }
  // Fresh incarnation per options snapshot: every Worker construction —
  // initial open, in-place restart, rejoin after failover — gets object
  // keys no previous life of any worker can have issued. Callers that only
  // need the wal_dir burn a number; uniqueness needs monotonicity, not
  // density.
  worker_options.incarnation = next_worker_incarnation_.fetch_add(1);
  return worker_options;
}

std::shared_ptr<Worker> Cluster::WorkerRef(uint32_t id) const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return id < workers_.size() ? workers_[id] : nullptr;
}

void Cluster::SnapshotEndpoints(
    std::vector<std::shared_ptr<Worker>>* workers,
    std::vector<std::shared_ptr<query::QueryEngine>>* engines) const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  if (workers != nullptr) *workers = workers_;
  if (engines != nullptr) *engines = worker_engines_;
}

std::shared_ptr<Worker> Cluster::FenceAndRemoveWorker(uint32_t id) {
  std::lock_guard<std::mutex> lock(workers_mu_);
  std::shared_ptr<Worker> worker = std::move(workers_[id]);
  workers_[id] = nullptr;
  worker_engines_[id] = nullptr;
  // Fence before the slot swap is visible: a broker write already holding
  // the old reference fails instead of acking into a store about to
  // disappear. Readers holding it may finish their realtime scan — their
  // epoch/seqlock re-check refuses the result afterwards.
  if (worker != nullptr) worker->Fence();
  return worker;
}

query::QueryEngine* Cluster::worker_engine(uint32_t id) {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return id < worker_engines_.size() ? worker_engines_[id].get() : nullptr;
}

void Cluster::ClearQueryCaches() {
  engine_->ClearCaches();
  std::vector<std::shared_ptr<query::QueryEngine>> engines;
  SnapshotEndpoints(nullptr, &engines);
  for (auto& engine : engines) {
    if (engine != nullptr) engine->ClearCaches();
  }
}

Status Cluster::RestartWorker(uint32_t id) {
  if (id >= num_workers()) return Status::InvalidArgument("no such worker");
  std::lock_guard<std::mutex> control_lock(control_mu_);
  ControlMutation mutation(&control_seq_);
  if (!controller_->WorkerAlive(id)) {
    // Rejoin after failover. The old journal's tail was already recovered
    // (or declared lost) by FailoverWorker and re-routed to survivors;
    // replaying it here would resurrect those rows as duplicates, so the
    // directory is wiped — this is the point at which a failed-over
    // worker's WAL segments may finally be deleted — and the worker comes
    // back as a fresh empty instance with no shards.
    FenceAndRemoveWorker(id);
    if (!options_.worker.wal_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(WorkerOptionsFor(id).wal_dir, ec);
      if (ec) {
        return Status::IOError("wipe of failed-over WAL dir failed: " +
                               ec.message());
      }
    }
    auto worker = std::make_shared<Worker>(id, store_, controller_->metadata(),
                                           WorkerOptionsFor(id));
    LOGSTORE_RETURN_IF_ERROR(worker->wal_status());
    auto engine = OpenEngine();
    if (!engine.ok()) return engine.status();
    {
      std::lock_guard<std::mutex> lock(workers_mu_);
      workers_[id] = std::move(worker);
      worker_engines_[id] = std::move(engine).value();
    }
    return controller_->ReviveWorker(id);
  }
  if (options_.worker.wal_dir.empty()) {
    return Status::InvalidArgument(
        "RestartWorker without wal_dir would lose acked writes");
  }
  // Fence + release first, then reconstruct over the WAL directories: the
  // Worker constructor IS the recovery path. An in-flight reader may keep
  // the old (fenced, write-refusing) object alive a little longer; its
  // open WAL handles are read-only by then.
  FenceAndRemoveWorker(id);
  auto worker = std::make_shared<Worker>(id, store_, controller_->metadata(),
                                         WorkerOptionsFor(id));
  LOGSTORE_RETURN_IF_ERROR(worker->wal_status());
  auto engine = OpenEngine();
  if (!engine.ok()) return engine.status();
  std::lock_guard<std::mutex> lock(workers_mu_);
  workers_[id] = std::move(worker);
  worker_engines_[id] = std::move(engine).value();
  return Status::OK();
}

Status Cluster::KillWorker(uint32_t id) {
  if (id >= num_workers()) return Status::InvalidArgument("no such worker");
  std::lock_guard<std::mutex> control_lock(control_mu_);
  ControlMutation mutation(&control_seq_);
  // Fence first so any concurrent broker write fails instead of acking
  // into a store that is about to disappear, then release the object —
  // its WAL file handles close once in-flight references drain, leaving
  // the directory on disk for the failover tail recovery.
  if (FenceAndRemoveWorker(id) == nullptr) {
    return Status::AlreadyExists("worker already dead");
  }
  return Status::OK();
}

Result<Cluster::FailoverReport> Cluster::FailoverWorker(uint32_t id) {
  if (id >= num_workers()) return Status::InvalidArgument("no such worker");
  std::lock_guard<std::mutex> control_lock(control_mu_);
  ControlMutation mutation(&control_seq_);
  // Wedged-but-running worker: terminate the process before reassigning,
  // so its replica WALs are closed and it can never ack again.
  FenceAndRemoveWorker(id);

  auto decision = controller_->FailoverWorker(id);
  if (!decision.ok()) return decision.status();

  FailoverReport report;
  report.worker = id;
  report.moved = decision->moved;
  LOGSTORE_RETURN_IF_ERROR(RecoverTail(id, &report));
  return report;
}

Status Cluster::RecoverTail(uint32_t id, FailoverReport* report) {
  // Tail recovery: everything acked but not archived lives in the dead
  // worker's replica WALs. Re-ingest it through the broker write path —
  // the placement map now routes those tenants' shards to survivors.
  if (options_.worker.wal_dir.empty()) {
    report->tail_lost = true;  // no journal was ever kept
    return Status::OK();
  }
  const std::string wal_dir = WorkerOptionsFor(id).wal_dir;

  // Merge the recovered suffixes of all replicas, keyed by raft index with
  // higher terms winning conflicts: an acked entry was fsynced on every
  // replica, so it survives as long as at least one directory is readable.
  std::map<uint64_t, consensus::LogEntry> tail;
  uint64_t archived_through = 0;
  int readable = 0;
  for (int node = 0; node < 3; ++node) {
    const std::string node_dir = wal_dir + "/node-" + std::to_string(node);
    if (!std::filesystem::exists(node_dir)) continue;
    auto wal = consensus::DurableLog::Open(node_dir, options_.worker.wal);
    if (!wal.ok()) continue;  // unreadable replica: others may still serve
    ++readable;
    const consensus::RecoveredState& recovered = (*wal)->recovered();
    archived_through = std::max(archived_through, recovered.base_index);
    for (size_t i = 0; i < recovered.entries.size(); ++i) {
      const uint64_t index = recovered.base_index + 1 + i;
      auto it = tail.find(index);
      if (it == tail.end() || recovered.entries[i].term > it->second.term) {
        tail[index] = recovered.entries[i];
      }
    }
  }
  if (readable == 0) {
    // Machine (and its disks) gone: the un-archived tail is lost. Data at
    // or below the archived-through watermark is safe in LogBlocks; this
    // is the data-loss boundary the deployment accepted by running one
    // worker per WAL directory.
    report->tail_lost = true;
    return Status::OK();
  }

  // Batched replay (the LogBase-style recovery path): entries are decoded
  // one at a time — each still subject to the per-entry skip rules above
  // and below — but their rows coalesce into per-tenant batches that flush
  // through the broker in bulk, so a long tail costs a handful of
  // replicated group commits instead of one per entry.
  constexpr uint32_t kTailReplayBatchRows = 512;
  std::map<uint64_t, logblock::RowBatch> pending;  // tenant -> rows
  uint32_t pending_rows = 0;
  auto flush = [&]() -> Status {
    for (auto& [tenant, rows] : pending) {
      if (rows.num_rows() == 0) continue;
      Status status = Status::OK();
      for (int attempt = 0; attempt < 4; ++attempt) {
        // WriteImpl, not Write: replay is the control plane moving rows it
        // already owns, so its outcomes must not count against the
        // client-facing cluster.availability.* cells.
        status = WriteImpl(tenant, rows);
        if (status.ok()) break;
        // A replay target just failed mid-commit — e.g. a survivor's
        // journal hit ENOSPC and wedged on exactly this write. The victim
        // is already failed over, so giving up here would lose its acked
        // tail: repair the casualty in place and retry the batch. The
        // retry is safe — the failed attempt was never acknowledged, and
        // duplicates fall under the replay's at-least-once contract.
        for (const WorkerHealth& health : HarvestHealth()) {
          if (!health.process_alive || health.fenced) continue;
          for (const auto& replica : health.replicas) {
            if (!replica.wedged && replica.connected) continue;
            if (auto worker = WorkerRef(health.worker_id)) {
              worker->RecoverReplica(replica.node).IgnoreError();
              worker->PumpRaft(500);
            }
          }
        }
      }
      LOGSTORE_RETURN_IF_ERROR(status);
      ++report->tail_batches;
    }
    pending.clear();
    pending_rows = 0;
    return Status::OK();
  };
  for (const auto& [index, entry] : tail) {
    if (index <= archived_through) continue;  // already in LogBlocks
    if (entry.payload.empty()) continue;      // recovery no-op barrier
    auto record =
        rowstore::DecodeWalRecord(entry.payload, options_.worker.schema);
    if (!record.ok()) continue;  // un-acked torn tail entry
    const uint32_t entry_rows = record->rows.num_rows();
    auto it = pending.find(record->tenant_id);
    if (it == pending.end()) {
      pending.emplace(record->tenant_id, std::move(record->rows));
    } else {
      const logblock::RowBatch& rows = record->rows;
      for (uint32_t r = 0; r < rows.num_rows(); ++r) {
        std::vector<logblock::Value> row;
        row.reserve(rows.schema().num_columns());
        for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
          row.push_back(rows.ValueAt(c, r));
        }
        it->second.AddRow(row);
      }
    }
    ++report->tail_entries_recovered;
    report->tail_rows_recovered += entry_rows;
    pending_rows += entry_rows;
    if (pending_rows >= kTailReplayBatchRows) {
      LOGSTORE_RETURN_IF_ERROR(flush());
    }
  }
  return flush();
}

std::vector<WorkerHealth> Cluster::HarvestHealth() {
  std::vector<std::shared_ptr<Worker>> workers;
  SnapshotEndpoints(&workers, nullptr);
  std::vector<WorkerHealth> reports;
  for (uint32_t id = 0; id < workers.size(); ++id) {
    if (workers[id] == nullptr) {
      WorkerHealth dead;
      dead.worker_id = id;
      dead.process_alive = false;
      dead.fenced = !controller_->WorkerAlive(id);
      reports.push_back(dead);
    } else {
      reports.push_back(workers[id]->Health());
    }
  }
  return reports;
}

Result<Cluster::ControlCycleReport> Cluster::RunControlCycle() {
  std::lock_guard<std::mutex> control_lock(control_mu_);
  return RunControlCycleLocked();
}

Result<Cluster::ControlCycleReport> Cluster::RunControlCycleLocked() {
  ControlCycleReport report;
  ControlMutation mutation(&control_seq_);
  // Phase 1: walk every unhealthy worker up the escalation ladder. The
  // cheap rungs (wait out an election, repair one replica in place) act
  // without touching the placement; only the last rung fences the worker
  // and reassigns its shards. All placement moves land before any tail
  // recovery, so with multiple simultaneous failures a recovered write can
  // never be routed at a worker this same cycle is about to declare dead.
  for (const WorkerHealth& health : HarvestHealth()) {
    const uint32_t id = health.worker_id;
    if (!controller_->WorkerAlive(id)) continue;  // already failed over
    EscalationState& state = escalation_[id];
    // Failure memory decays on observed health: a replica seen pulling its
    // weight gets its attempt budget back, and a visible leader resets the
    // election patience.
    if (health.has_leader) state.election_waits = 0;
    for (const WorkerHealth::Replica& replica : health.replicas) {
      if (replica.connected && !replica.wedged) {
        state.recover_attempts.erase(replica.node);
      }
    }
    const EscalationDecision decision = DecideEscalation(
        health, state.recover_attempts, controller_->live_worker_count(),
        state.election_waits, options_.escalation);
    switch (decision.action) {
      case EscalationAction::kHealthy:
        // Drop the bookkeeping only once it is empty: a degraded-but-
        // acking worker that exhausted a replica's repair budget keeps its
        // memory, or the budget would reset and the repair churn restart.
        if (state.recover_attempts.empty() && state.election_waits == 0) {
          escalation_.erase(id);
        }
        break;
      case EscalationAction::kWaitElection: {
        ++state.election_waits;
        report.awaiting_election.push_back(id);
        if (auto worker = WorkerRef(id)) worker->PumpRaft(200);
        break;
      }
      case EscalationAction::kRecoverReplica: {
        // Bounded in-place repair: the attempt is charged BEFORE it runs,
        // so a recovery that wedges again (or fails outright) consumes
        // budget and the ladder eventually escalates.
        ++state.recover_attempts[decision.replica];
        ReplicaRecovery recovery;
        recovery.worker = id;
        recovery.replica = decision.replica;
        if (auto worker = WorkerRef(id)) {
          recovery.ok = worker->RecoverReplica(decision.replica).ok();
          // Drive the group so the repaired member rejoins and catches up
          // (possibly via InstallSnapshot) before the next harvest.
          if (recovery.ok) worker->PumpRaft(500);
        }
        report.replica_recoveries.push_back(recovery);
        break;
      }
      case EscalationAction::kSkip:
        // Last live worker: nowhere to fail over to. Report it and let the
        // rest of the cycle (tail recovery, traffic control) still run.
        report.skipped.push_back(id);
        break;
      case EscalationAction::kFailover: {
        escalation_.erase(id);
        FenceAndRemoveWorker(id);
        auto failed = controller_->FailoverWorker(id);
        if (!failed.ok()) return failed.status();
        FailoverReport failover;
        failover.worker = id;
        failover.moved = failed->moved;
        report.failovers.push_back(std::move(failover));
        break;
      }
    }
  }
  // Phase 2: recover each dead worker's un-archived WAL tail into the
  // (now final) placement. Readers stay fenced out (seqlock odd) until the
  // recovery lands: between the placement flip and the last re-ingested
  // row, the tail is neither on the dead worker nor fully on the
  // survivors, and a query overlapping that window must retry, not read
  // half a tail.
  for (FailoverReport& failover : report.failovers) {
    LOGSTORE_RETURN_IF_ERROR(RecoverTail(failover.worker, &failover));
    report.tail_replay_batches += failover.tail_batches;
  }
  report.traffic = RunTrafficControl();
  // Phase 3: drain shards back onto any worker that rejoined empty, so a
  // revived worker becomes load-bearing instead of idling forever.
  report.rebalanced = controller_->RebalanceBack().moved;
  return report;
}

// --- Background monitor thread ---

Status Cluster::StartMonitor(MonitorOptions options) {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  if (monitor_.joinable()) {
    return Status::AlreadyExists("monitor already running");
  }
  monitor_stop_ = false;
  monitor_pause_depth_ = 0;
  monitor_kick_ = false;
  monitor_ = std::thread([this, options] { MonitorLoop(options); });
  return Status::OK();
}

void Cluster::StopMonitor() {
  std::thread stopped;
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    if (!monitor_.joinable()) return;
    monitor_stop_ = true;
    stopped = std::move(monitor_);
  }
  monitor_cv_.notify_all();
  stopped.join();
}

void Cluster::PauseMonitor() {
  std::unique_lock<std::mutex> lock(monitor_mu_);
  // Depth, not a flag: concurrent pausers each hold their own claim on the
  // quiescent window, and the monitor re-arms only when the last one
  // resumes (see the wake contract in cluster.h).
  ++monitor_pause_depth_;
  // Block until any in-flight cycle drains, so the caller observes a
  // quiescent control plane.
  monitor_cv_.wait(lock, [this] { return !monitor_in_cycle_; });
}

void Cluster::ResumeMonitor() {
  {
    std::lock_guard<std::mutex> lock(monitor_mu_);
    if (monitor_pause_depth_ > 0) --monitor_pause_depth_;
    if (monitor_pause_depth_ > 0) return;  // other pausers still hold it
    // Last resume: kick the loop so the next cycle starts now instead of
    // after the remainder of poll_interval_ms.
    monitor_kick_ = true;
  }
  monitor_cv_.notify_all();
}

bool Cluster::monitor_running() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return monitor_.joinable() && !monitor_stop_;
}

MonitorStats Cluster::monitor_stats() const {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return monitor_stats_;
}

void Cluster::MonitorLoop(MonitorOptions options) {
  std::unique_lock<std::mutex> lock(monitor_mu_);
  while (!monitor_stop_) {
    // The predicate must include monitor_kick_, or ResumeMonitor's notify
    // lands on a wait whose predicate is still false and the loop sleeps
    // out the rest of the poll interval anyway — the flaky-prone timing
    // assumption the soak harness flushed out.
    monitor_cv_.wait_for(lock,
                         std::chrono::milliseconds(options.poll_interval_ms),
                         [this] { return monitor_stop_ || monitor_kick_; });
    monitor_kick_ = false;
    if (monitor_stop_) break;
    if (monitor_pause_depth_ > 0) continue;
    monitor_in_cycle_ = true;
    lock.unlock();
    const int64_t start_us = SystemClock::Default()->NowMicros();
    const auto report = RunControlCycle();
    const int64_t elapsed_us = SystemClock::Default()->NowMicros() - start_us;
    lock.lock();
    monitor_in_cycle_ = false;
    RecordCycle(report, elapsed_us);
    monitor_cv_.notify_all();  // wake PauseMonitor waiters
  }
}

void Cluster::MonitorCells::BindTo(metrics::MetricRegistry* registry) {
  cycles = registry->Counter("monitor.cycles");
  cycle_errors = registry->Counter("monitor.cycle_errors");
  failovers = registry->Counter("monitor.failovers");
  replica_recoveries = registry->Counter("monitor.replica_recoveries");
  election_waits = registry->Counter("monitor.election_waits");
  skipped_workers = registry->Counter("monitor.skipped_workers");
  rebalanced_shards = registry->Counter("monitor.rebalanced_shards");
  tails_lost = registry->Counter("monitor.tails_lost");
  last_cycle_us = registry->Gauge("monitor.last_cycle_us");
  max_cycle_us = registry->Gauge("monitor.max_cycle_us");
  total_cycle_us = registry->Gauge("monitor.total_cycle_us");
}

void Cluster::ScatterCells::BindTo(metrics::MetricRegistry* registry) {
  queries = registry->Counter("cluster.scatter.queries");
  rows_matched = registry->Counter("cluster.scatter.rows_matched");
  realtime_rows = registry->Counter("cluster.scatter.realtime_rows");
  logblocks_total = registry->Counter("cluster.scatter.logblocks_total");
  logblocks_pruned = registry->Counter("cluster.scatter.logblocks_pruned");
}

void Cluster::AvailabilityCells::BindTo(metrics::MetricRegistry* registry) {
  write_attempts = registry->Counter("cluster.availability.write_attempts");
  write_successes = registry->Counter("cluster.availability.write_successes");
  write_unavailable =
      registry->Counter("cluster.availability.write_unavailable");
  write_errors = registry->Counter("cluster.availability.write_errors");
  query_attempts = registry->Counter("cluster.availability.query_attempts");
  query_successes = registry->Counter("cluster.availability.query_successes");
  query_unavailable =
      registry->Counter("cluster.availability.query_unavailable");
  query_errors = registry->Counter("cluster.availability.query_errors");
}

void Cluster::AvailabilityCells::RecordWrite(const Status& status) {
  write_attempts->fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    write_successes->fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsUnavailable()) {
    write_unavailable->fetch_add(1, std::memory_order_relaxed);
  } else {
    write_errors->fetch_add(1, std::memory_order_relaxed);
  }
}

void Cluster::AvailabilityCells::RecordQuery(const Status& status) {
  query_attempts->fetch_add(1, std::memory_order_relaxed);
  if (status.ok()) {
    query_successes->fetch_add(1, std::memory_order_relaxed);
  } else if (status.IsUnavailable()) {
    query_unavailable->fetch_add(1, std::memory_order_relaxed);
  } else {
    query_errors->fetch_add(1, std::memory_order_relaxed);
  }
}

void Cluster::RecordCycle(const Result<ControlCycleReport>& report,
                          int64_t elapsed_us) {
  // Caller holds monitor_mu_ (which also makes the gauge read-max-store
  // below race-free: RecordCycle is the only writer).
  ++monitor_stats_.cycles;
  monitor_stats_.last_cycle_us = elapsed_us;
  monitor_stats_.max_cycle_us =
      std::max(monitor_stats_.max_cycle_us, elapsed_us);
  monitor_stats_.total_cycle_us += elapsed_us;
  monitor_cells_.cycles->fetch_add(1, std::memory_order_relaxed);
  monitor_cells_.last_cycle_us->store(elapsed_us, std::memory_order_relaxed);
  monitor_cells_.max_cycle_us->store(monitor_stats_.max_cycle_us,
                                     std::memory_order_relaxed);
  monitor_cells_.total_cycle_us->fetch_add(elapsed_us,
                                           std::memory_order_relaxed);
  if (!report.ok()) {
    ++monitor_stats_.cycle_errors;
    monitor_cells_.cycle_errors->fetch_add(1, std::memory_order_relaxed);
    return;
  }
  monitor_stats_.failovers += report->failovers.size();
  monitor_stats_.replica_recoveries += report->replica_recoveries.size();
  monitor_stats_.election_waits += report->awaiting_election.size();
  monitor_stats_.skipped_workers += report->skipped.size();
  monitor_stats_.rebalanced_shards += report->rebalanced.size();
  monitor_cells_.failovers->fetch_add(report->failovers.size(),
                                      std::memory_order_relaxed);
  monitor_cells_.replica_recoveries->fetch_add(
      report->replica_recoveries.size(), std::memory_order_relaxed);
  monitor_cells_.election_waits->fetch_add(report->awaiting_election.size(),
                                           std::memory_order_relaxed);
  monitor_cells_.skipped_workers->fetch_add(report->skipped.size(),
                                            std::memory_order_relaxed);
  monitor_cells_.rebalanced_shards->fetch_add(report->rebalanced.size(),
                                              std::memory_order_relaxed);
  for (const FailoverReport& failover : report->failovers) {
    if (failover.tail_lost) {
      ++monitor_stats_.tails_lost;
      monitor_cells_.tails_lost->fetch_add(1, std::memory_order_relaxed);
    }
  }
}

Status Cluster::Write(uint64_t tenant, const logblock::RowBatch& rows) {
  Status status = WriteImpl(tenant, rows);
  availability_cells_.RecordWrite(status);
  return status;
}

Status Cluster::WriteImpl(uint64_t tenant, const logblock::RowBatch& rows) {
  controller_->EnsureTenantRoute(tenant);
  const flow::RouteTable routes = controller_->routes();
  uint32_t shard = 0;
  {
    // The RNG is the only shared-mutable state on this path; its lock
    // covers exactly the shard pick. (Every other broker write used to
    // serialize here on the global metrics lock — twice per call.)
    std::lock_guard<std::mutex> lock(rng_mu_);
    if (!routes.PickShard(tenant, &rng_, &shard)) {
      return Status::Internal("no route for tenant");
    }
  }
  const uint32_t worker_id = controller_->WorkerForShard(shard);
  // Liveness check before dereferencing: between a worker's death and the
  // next control cycle the routes still point at its shards. That window
  // is a retryable condition for the client, not a crash for the broker.
  const std::shared_ptr<Worker> worker = WorkerRef(worker_id);
  if (worker == nullptr || !controller_->WorkerAlive(worker_id)) {
    return Status::Unavailable("worker " + std::to_string(worker_id) +
                               " for shard " + std::to_string(shard) +
                               " is dead; retry after the control cycle");
  }
  const uint64_t epoch = controller_->placement_epoch();
  LOGSTORE_RETURN_IF_ERROR(worker->Write(shard, tenant, rows));
  // Fencing: if a failover reassigned this worker's shards while the write
  // was in flight, the rows may sit in a store nobody will archive. Refuse
  // the ack; the client retries against the new placement.
  if (controller_->placement_epoch() != epoch &&
      !controller_->WorkerAlive(worker_id)) {
    return Status::Unavailable("worker " + std::to_string(worker_id) +
                               " was fenced during the write; not acked");
  }

  // Routing accounting for the monitor: lock-free registry counters, only
  // bumped once the write actually acked.
  const uint64_t n = rows.num_rows();
  if (shard < shard_cells_.size()) {
    shard_cells_[shard]->fetch_add(n, std::memory_order_relaxed);
  }
  if (worker_id < worker_cells_.size()) {
    worker_cells_[worker_id]->fetch_add(n, std::memory_order_relaxed);
  }
  TenantCell(tenant)->fetch_add(n, std::memory_order_relaxed);
  return Status::OK();
}

std::atomic<uint64_t>* Cluster::TenantCell(uint64_t tenant) {
  {
    std::shared_lock<std::shared_mutex> lock(tenant_cells_mu_);
    auto it = tenant_cells_.find(tenant);
    if (it != tenant_cells_.end()) return it->second;
  }
  // Resolve outside the cache lock (the registry has its own); a racing
  // first-writer resolves the same canonical cell, so emplace is idempotent.
  std::atomic<uint64_t>* cell = registry_->Counter(
      "cluster.rows_routed", {{"tenant", std::to_string(tenant)}});
  std::unique_lock<std::shared_mutex> lock(tenant_cells_mu_);
  return tenant_cells_.emplace(tenant, cell).first->second;
}

Status Cluster::CollectRealtime(
    const query::LogQuery& query,
    const std::vector<std::shared_ptr<Worker>>& workers,
    const Controller::PlacementView& placement,
    std::vector<std::pair<uint32_t, logblock::RowBatch>>* batches) {
  for (uint32_t id = 0; id < workers.size(); ++id) {
    const bool alive =
        id < placement.worker_alive.size() && placement.worker_alive[id];
    if (workers[id] == nullptr) {
      if (alive) {
        // Dead process, failover not run yet: its un-archived rows are
        // unreachable but NOT absent. Refusing the read (retryable) beats
        // silently dropping them.
        return Status::Unavailable(
            "worker " + std::to_string(id) +
            " is dead but not failed over; retry after the control cycle");
      }
      continue;  // failed over: its tail was re-ingested into survivors
    }
    if (!alive) continue;  // fenced out: its rows were recovered elsewhere
    batches->emplace_back(
        id, workers[id]->ScanRealtime(query.tenant_id, query.ts_min,
                                      query.ts_max, query.predicates));
  }
  return Status::OK();
}

Result<query::QueryResult> Cluster::Query(const query::LogQuery& query) {
  // Availability accounting lives on the public dispatcher only —
  // QuerySingleEngine called directly (the tests' ground-truth diff path)
  // stays out of the denominator.
  Result<query::QueryResult> result = options_.scatter_reads
                                          ? ScatterQuery(query)
                                          : QuerySingleEngine(query);
  availability_cells_.RecordQuery(result.status());
  return result;
}

Result<query::QueryResult> Cluster::QuerySingleEngine(
    const query::LogQuery& query) {
  const uint64_t seq = control_seq_.load(std::memory_order_acquire);
  if (seq % 2 != 0) {
    return Status::Unavailable("control mutation in progress; retry");
  }
  const Controller::PlacementView placement = controller_->PlacementSnapshot();
  std::vector<std::shared_ptr<Worker>> workers;
  SnapshotEndpoints(&workers, nullptr);

  // Archived data from the object store, on the broker's own engine.
  auto result = engine_->Execute(query, *controller_->metadata());
  if (!result.ok()) return result.status();

  // Merge the real-time stores: rows not yet archived, in the same
  // deterministic placement-independent order the scatter path uses.
  std::vector<std::pair<uint32_t, logblock::RowBatch>> batches;
  LOGSTORE_RETURN_IF_ERROR(
      CollectRealtime(query, workers, placement, &batches));
  LOGSTORE_RETURN_IF_ERROR(
      query::MergeRealtimeRows(std::move(batches), query, &result.value()));

  // Read fencing (the §12 analogue of the write-side epoch check): if the
  // placement moved or a control mutation overlapped this read, parts of it
  // may predate the change and parts postdate it. Refuse; the client
  // retries against the settled state.
  if (controller_->placement_epoch() != placement.epoch ||
      control_seq_.load(std::memory_order_acquire) != seq) {
    return Status::Unavailable("placement changed during the read; retry");
  }
  return result;
}

Result<query::QueryResult> Cluster::ScatterQuery(const query::LogQuery& query) {
  const int64_t start_us = SystemClock::Default()->NowMicros();
  const uint64_t seq = control_seq_.load(std::memory_order_acquire);
  if (seq % 2 != 0) {
    return Status::Unavailable("control mutation in progress; retry");
  }
  const Controller::PlacementView placement = controller_->PlacementSnapshot();
  std::vector<std::shared_ptr<Worker>> workers;
  std::vector<std::shared_ptr<query::QueryEngine>> engines;
  SnapshotEndpoints(&workers, &engines);

  query::QueryResult result;
  const logblock::LogBlockMap* map = controller_->metadata();
  const auto all_blocks = map->TenantBlocks(query.tenant_id);
  const auto blocks = map->Prune(query.tenant_id, query.ts_min, query.ts_max);
  result.stats.logblocks_total = all_blocks.size();
  result.stats.logblocks_pruned = all_blocks.size() - blocks.size();

  // Partition the pruned list by owning worker: each LogBlock belongs to a
  // shard by content hash of its object key (stable across failovers), and
  // the shard's CURRENT worker — from the placement snapshot — serves it.
  // Blocks follow placement, so a failed-over worker's read load moves
  // with its shards.
  struct Fragment {
    std::vector<logblock::LogBlockEntry> blocks;
    std::vector<size_t> tags;  // global block-map indices
  };
  std::map<uint32_t, Fragment> fragments;
  const uint32_t num_shards =
      static_cast<uint32_t>(placement.shard_to_worker.size());
  for (size_t i = 0; i < blocks.size(); ++i) {
    const uint32_t shard =
        static_cast<uint32_t>(Hash64(blocks[i].object_key) % num_shards);
    const uint32_t owner = placement.shard_to_worker[shard];
    const bool alive =
        owner < placement.worker_alive.size() && placement.worker_alive[owner];
    if (!alive || owner >= engines.size() || engines[owner] == nullptr) {
      // The owning worker died and its shards have not been reassigned
      // yet. A retryable condition, exactly like the write path's.
      return Status::Unavailable(
          "worker " + std::to_string(owner) + " owning shard " +
          std::to_string(shard) + " is dead; retry after the control cycle");
    }
    Fragment& fragment = fragments[owner];
    fragment.blocks.push_back(blocks[i]);
    fragment.tags.push_back(i);
  }

  // Scatter: each owner executes its fragment on its own engine, under one
  // shared cancel flag and one GLOBAL limit tracker, so the §11 limit /
  // error / determinism contracts hold across the whole block list exactly
  // as they do inside a single engine.
  std::vector<query::FragmentSlot> slots(blocks.size());
  std::atomic<bool> cancel{false};
  // Aggregates scan every block, so the limit never arms the tracker.
  query::ScatterLimitTracker tracker(
      blocks.size(), query.is_aggregate() ? 0 : query.limit, &cancel);
  auto run_fragment = [&](uint32_t owner, Fragment& fragment) {
    query::FragmentOptions fragment_options;
    fragment_options.cancel = &cancel;
    fragment_options.tags = fragment.tags;
    fragment_options.on_block_done =
        [&tracker](size_t tag, const query::FragmentSlot& slot) {
          tracker.OnBlockDone(tag, slot);
        };
    std::vector<query::FragmentSlot> fragment_slots =
        engines[owner]->ExecuteFragment(query, fragment.blocks,
                                        fragment_options);
    for (size_t j = 0; j < fragment_slots.size(); ++j) {
      slots[fragment.tags[j]] = std::move(fragment_slots[j]);
    }
  };
  if (fragments.size() <= 1) {
    for (auto& [owner, fragment] : fragments) run_fragment(owner, fragment);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(fragments.size());
    for (auto it = fragments.begin(); it != fragments.end(); ++it) {
      threads.emplace_back(
          [&run_fragment, it] { run_fragment(it->first, it->second); });
    }
    for (auto& thread : threads) thread.join();
  }

  LOGSTORE_RETURN_IF_ERROR(
      query::QueryEngine::MergeFragmentSlots(query, slots, &result));
  // Aggregate queries keep the merged per-block rows_matched (ALL matching
  // rows; no result rows exist to recount from).
  if (!query.is_aggregate()) {
    result.stats.exec.rows_matched = result.rows.size();
  }

  // Real-time rows from the live workers, merged after the archived rows
  // in the deterministic placement-independent order.
  std::vector<std::pair<uint32_t, logblock::RowBatch>> batches;
  LOGSTORE_RETURN_IF_ERROR(
      CollectRealtime(query, workers, placement, &batches));
  LOGSTORE_RETURN_IF_ERROR(
      query::MergeRealtimeRows(std::move(batches), query, &result));

  // Read fencing: any placement move or control mutation since the
  // snapshot invalidates the result — some fragments/realtime scans may
  // reflect the old world and some the new. Retryable, never partial.
  if (controller_->placement_epoch() != placement.epoch ||
      control_seq_.load(std::memory_order_acquire) != seq) {
    return Status::Unavailable("placement changed during the read; retry");
  }
  result.stats.elapsed_us = SystemClock::Default()->NowMicros() - start_us;
  // Scatter-path registry aggregates: the broker engine's own query.*
  // counters only see QuerySingleEngine, so scattered reads account here.
  scatter_cells_.queries->fetch_add(1, std::memory_order_relaxed);
  scatter_cells_.rows_matched->fetch_add(result.stats.exec.rows_matched,
                                         std::memory_order_relaxed);
  scatter_cells_.realtime_rows->fetch_add(result.stats.realtime_rows,
                                          std::memory_order_relaxed);
  scatter_cells_.logblocks_total->fetch_add(result.stats.logblocks_total,
                                            std::memory_order_relaxed);
  scatter_cells_.logblocks_pruned->fetch_add(result.stats.logblocks_pruned,
                                             std::memory_order_relaxed);
  return result;
}

Result<int> Cluster::RunBuildPass() {
  std::lock_guard<std::mutex> control_lock(control_mu_);
  ControlMutation mutation(&control_seq_);
  std::vector<std::shared_ptr<Worker>> workers;
  SnapshotEndpoints(&workers, nullptr);
  int total = 0;
  for (auto& worker : workers) {
    if (worker == nullptr) continue;  // dead worker: nothing to archive
    auto built = worker->RunBuildPass();
    if (!built.ok()) return built.status();
    total += *built;
  }
  return total;
}

Controller::ControlDecision Cluster::RunTrafficControl() {
  // The routing counters are cumulative (registry counters never reset);
  // traffic control consumes the delta since the previous cycle, so each
  // cycle subtracts the remembered baseline. Entries with no traffic since
  // the last cycle are omitted, matching the old move-and-clear maps.
  std::map<uint64_t, int64_t> tenants;
  std::map<uint32_t, int64_t> shards;
  std::map<uint32_t, int64_t> workers;
  std::lock_guard<std::mutex> baseline_lock(traffic_baseline_mu_);
  {
    std::shared_lock<std::shared_mutex> cells_lock(tenant_cells_mu_);
    for (const auto& [tenant, cell] : tenant_cells_) {
      const int64_t cur =
          static_cast<int64_t>(cell->load(std::memory_order_relaxed));
      const int64_t delta = cur - last_tenant_rows_[tenant];
      if (delta != 0) tenants[tenant] = delta;
      last_tenant_rows_[tenant] = cur;
    }
  }
  for (uint32_t s = 0; s < shard_cells_.size(); ++s) {
    const int64_t cur =
        static_cast<int64_t>(shard_cells_[s]->load(std::memory_order_relaxed));
    const int64_t delta = cur - last_shard_rows_[s];
    if (delta != 0) shards[s] = delta;
    last_shard_rows_[s] = cur;
  }
  for (uint32_t w = 0; w < worker_cells_.size(); ++w) {
    const int64_t cur =
        static_cast<int64_t>(worker_cells_[w]->load(std::memory_order_relaxed));
    const int64_t delta = cur - last_worker_rows_[w];
    if (delta != 0) workers[w] = delta;
    last_worker_rows_[w] = cur;
  }
  return controller_->RunTrafficControl(tenants, shards, workers);
}

Result<int> Cluster::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts) {
  return controller_->ExpireTenantData(tenant, cutoff_ts, store_);
}

}  // namespace logstore::cluster
