#include "cluster/cluster.h"

#include <algorithm>

namespace logstore::cluster {

Result<std::unique_ptr<Cluster>> Cluster::Open(
    objectstore::ObjectStore* store, ClusterDeploymentOptions options) {
  std::unique_ptr<Cluster> cluster(new Cluster());
  cluster->options_ = options;
  cluster->store_ = store;
  cluster->controller_ = std::make_unique<Controller>(
      options.num_workers, options.shards_per_worker, options.controller);
  for (uint32_t w = 0; w < options.num_workers; ++w) {
    cluster->workers_.push_back(std::make_unique<Worker>(
        w, store, cluster->controller_->metadata(),
        cluster->WorkerOptionsFor(w)));
    // Fail fast: a worker that could not open/recover its WALs would
    // reject every write anyway, and surfacing the recovery error here
    // (rather than on the first Write) makes restart bugs visible.
    LOGSTORE_RETURN_IF_ERROR(cluster->workers_.back()->wal_status());
  }
  auto engine = query::QueryEngine::Open(store, options.engine);
  if (!engine.ok()) return engine.status();
  cluster->engine_ = std::move(engine).value();
  return cluster;
}

WorkerOptions Cluster::WorkerOptionsFor(uint32_t id) const {
  WorkerOptions worker_options = options_.worker;
  if (!worker_options.wal_dir.empty()) {
    worker_options.wal_dir += "/worker-" + std::to_string(id);
  }
  return worker_options;
}

Status Cluster::RestartWorker(uint32_t id) {
  if (options_.worker.wal_dir.empty()) {
    return Status::InvalidArgument(
        "RestartWorker without wal_dir would lose acked writes");
  }
  // Destroy first (releases the WAL directories), then reconstruct over
  // them: the Worker constructor IS the recovery path.
  workers_[id].reset();
  workers_[id] = std::make_unique<Worker>(id, store_, controller_->metadata(),
                                          WorkerOptionsFor(id));
  return workers_[id]->wal_status();
}

Status Cluster::Write(uint64_t tenant, const logblock::RowBatch& rows) {
  controller_->EnsureTenantRoute(tenant);
  const flow::RouteTable routes = controller_->routes();
  uint32_t shard = 0;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    if (!routes.PickShard(tenant, &rng_, &shard)) {
      return Status::Internal("no route for tenant");
    }
  }
  const uint32_t worker_id = controller_->WorkerForShard(shard);
  LOGSTORE_RETURN_IF_ERROR(workers_[worker_id]->Write(shard, tenant, rows));

  std::lock_guard<std::mutex> lock(metrics_mu_);
  tenant_traffic_[tenant] += rows.num_rows();
  shard_loads_[shard] += rows.num_rows();
  worker_loads_[worker_id] += rows.num_rows();
  return Status::OK();
}

Result<query::QueryResult> Cluster::Query(const query::LogQuery& query) {
  // Archived data from the object store.
  auto result = engine_->Execute(query, *controller_->metadata());
  if (!result.ok()) return result.status();

  // Merge the real-time stores: rows not yet archived.
  for (auto& worker : workers_) {
    const logblock::RowBatch realtime = worker->ScanRealtime(
        query.tenant_id, query.ts_min, query.ts_max, query.predicates);
    LOGSTORE_RETURN_IF_ERROR(
        query::AppendRealtimeRows(realtime, query, &result.value()));
  }
  return result;
}

Result<int> Cluster::RunBuildPass() {
  int total = 0;
  for (auto& worker : workers_) {
    auto built = worker->RunBuildPass();
    if (!built.ok()) return built.status();
    total += *built;
  }
  return total;
}

Controller::ControlDecision Cluster::RunTrafficControl() {
  std::map<uint64_t, int64_t> tenants;
  std::map<uint32_t, int64_t> shards;
  std::map<uint32_t, int64_t> workers;
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    tenants = std::move(tenant_traffic_);
    shards = std::move(shard_loads_);
    workers = std::move(worker_loads_);
    tenant_traffic_.clear();
    shard_loads_.clear();
    worker_loads_.clear();
  }
  return controller_->RunTrafficControl(tenants, shards, workers);
}

Result<int> Cluster::ExpireTenantData(uint64_t tenant, int64_t cutoff_ts) {
  return controller_->ExpireTenantData(tenant, cutoff_ts, store_);
}

}  // namespace logstore::cluster
