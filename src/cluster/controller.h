#ifndef LOGSTORE_CLUSTER_CONTROLLER_H_
#define LOGSTORE_CLUSTER_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "flow/balancer.h"
#include "flow/consistent_hash.h"
#include "flow/route_table.h"
#include "logblock/logblock_map.h"
#include "objectstore/object_store.h"

namespace logstore::cluster {

enum class BalancePolicy { kNone, kGreedy, kMaxFlow };

struct ControllerOptions {
  BalancePolicy policy = BalancePolicy::kMaxFlow;
  double alpha = 0.85;
  double hot_threshold = 0.9;
  int64_t edge_max_flow = 100'000;
  int64_t shard_capacity = 150'000;
  int64_t worker_capacity = 300'000;
};

// The controller of Figure 3/Figure 6: owns the metadata (tenant LogBlock
// map), the tenant routing table, and the hotspot manager (monitor ->
// balancer -> router). This in-process controller stands in for the
// ZooKeeper-elected controller of the production deployment.
class Controller {
 public:
  Controller(uint32_t num_workers, uint32_t shards_per_worker,
             ControllerOptions options = {});

  // Initial placement: ConsistentHash(K_i) with weight 100% (Algorithm 1
  // lines 4-7). Idempotent per tenant.
  void EnsureTenantRoute(uint64_t tenant);

  // One monitor->balancer->router cycle (Algorithm 1 body). `tenant_traffic`
  // / `shard_loads` / `worker_loads` are the metrics harvested since the
  // last cycle, in rows per interval.
  struct ControlDecision {
    bool rebalanced = false;
    bool scale_needed = false;
    int routes_added = 0;
    size_t route_count = 0;
  };
  ControlDecision RunTrafficControl(
      const std::map<uint64_t, int64_t>& tenant_traffic,
      const std::map<uint32_t, int64_t>& shard_loads,
      const std::map<uint32_t, int64_t>& worker_loads);

  // Current write routing table (brokers copy it).
  flow::RouteTable routes() const;

  // Shard -> worker placement.
  uint32_t WorkerForShard(uint32_t shard) const {
    return shard / shards_per_worker_;
  }
  uint32_t num_shards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_shards_;
  }
  uint32_t num_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_workers_;
  }

  // ScaleCluster (Algorithm 1 lines 23-27): provisions one more worker and
  // its shards ("add new shards; add new workers"). New shards join the
  // consistent-hash ring (future tenants) and become targets for the
  // balancer's route additions (existing hot tenants). Returns the new
  // worker id.
  uint32_t AddWorker();

  logblock::LogBlockMap* metadata() { return &metadata_; }

  // Data-expiration task (§3.1): removes LogBlocks of `tenant` wholly older
  // than `cutoff_ts` from the catalog and the object store. Returns the
  // number of deleted blocks.
  Result<int> ExpireTenantData(uint64_t tenant, int64_t cutoff_ts,
                               objectstore::ObjectStore* store);

  const ControllerOptions& options() const { return options_; }

 private:
  flow::ClusterState BuildState(
      const std::map<uint64_t, int64_t>& tenant_traffic,
      const std::map<uint32_t, int64_t>& shard_loads,
      const std::map<uint32_t, int64_t>& worker_loads) const;

  const uint32_t shards_per_worker_;
  const ControllerOptions options_;
  uint32_t num_workers_;  // guarded by mu_
  uint32_t num_shards_;   // guarded by mu_

  mutable std::mutex mu_;
  flow::ConsistentHashRing ring_;
  flow::RouteTable routes_;
  std::unique_ptr<flow::Balancer> balancer_;

  logblock::LogBlockMap metadata_;
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_CONTROLLER_H_
