#ifndef LOGSTORE_CLUSTER_CONTROLLER_H_
#define LOGSTORE_CLUSTER_CONTROLLER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "flow/balancer.h"
#include "flow/consistent_hash.h"
#include "flow/route_table.h"
#include "logblock/logblock_map.h"
#include "objectstore/object_store.h"

namespace logstore::cluster {

enum class BalancePolicy { kNone, kGreedy, kMaxFlow };

struct ControllerOptions {
  BalancePolicy policy = BalancePolicy::kMaxFlow;
  double alpha = 0.85;
  double hot_threshold = 0.9;
  int64_t edge_max_flow = 100'000;
  int64_t shard_capacity = 150'000;
  int64_t worker_capacity = 300'000;
};

// The controller of Figure 3/Figure 6: owns the metadata (tenant LogBlock
// map), the tenant routing table, and the hotspot manager (monitor ->
// balancer -> router). This in-process controller stands in for the
// ZooKeeper-elected controller of the production deployment.
class Controller {
 public:
  Controller(uint32_t num_workers, uint32_t shards_per_worker,
             ControllerOptions options = {});

  // Initial placement: ConsistentHash(K_i) with weight 100% (Algorithm 1
  // lines 4-7). Idempotent per tenant.
  void EnsureTenantRoute(uint64_t tenant);

  // One monitor->balancer->router cycle (Algorithm 1 body). `tenant_traffic`
  // / `shard_loads` / `worker_loads` are the metrics harvested since the
  // last cycle, in rows per interval.
  struct ControlDecision {
    bool rebalanced = false;
    bool scale_needed = false;
    int routes_added = 0;
    size_t route_count = 0;
  };
  ControlDecision RunTrafficControl(
      const std::map<uint64_t, int64_t>& tenant_traffic,
      const std::map<uint32_t, int64_t>& shard_loads,
      const std::map<uint32_t, int64_t>& worker_loads);

  // Current write routing table (brokers copy it).
  flow::RouteTable routes() const;

  // Shard -> worker placement: a dynamic map, seeded with the uniform
  // shard/shards_per_worker layout and rewritten by FailoverWorker. (The
  // FoundationDB Record Layer lesson: placement must be a lookup, not a
  // formula, or no shard can ever move.)
  uint32_t WorkerForShard(uint32_t shard) const {
    std::lock_guard<std::mutex> lock(mu_);
    return placement_[shard];
  }
  // Shards currently placed on `worker`, ascending.
  std::vector<uint32_t> ShardsOfWorker(uint32_t worker) const;
  uint32_t num_shards() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_shards_;
  }
  uint32_t num_workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_workers_;
  }

  // --- Worker liveness / failover ---

  bool WorkerAlive(uint32_t worker) const {
    std::lock_guard<std::mutex> lock(mu_);
    return worker < worker_alive_.size() && worker_alive_[worker];
  }
  uint32_t live_worker_count() const;

  // Bumped on every failover; brokers snapshot it around a write to detect
  // a placement change that raced with the write (the fencing epoch).
  uint64_t placement_epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return placement_epoch_;
  }

  // Atomic snapshot of the placement map, liveness vector, and epoch — one
  // lock acquisition, so a broker's scatter routing can never observe a
  // half-applied failover. The read-side analogue of the write fencing:
  // route by the snapshot, re-check the epoch after the read.
  struct PlacementView {
    uint64_t epoch = 0;
    std::vector<uint32_t> shard_to_worker;
    std::vector<bool> worker_alive;
  };
  PlacementView PlacementSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    PlacementView view;
    view.epoch = placement_epoch_;
    view.shard_to_worker = placement_;
    view.worker_alive = worker_alive_;
    return view;
  }

  // The failover decision of the monitor->balancer->router cycle: marks
  // `worker` dead, fences it out of the placement epoch, and reassigns its
  // shards to survivors — capacity-aware, least-loaded first, using the
  // loads harvested by the last control cycle. Tenant routes reference
  // shards, not workers, so every route follows its shard automatically.
  // Fails when the worker is already dead or is the last live worker.
  struct FailoverDecision {
    uint32_t worker = 0;
    uint64_t epoch = 0;                  // placement epoch after the failover
    std::map<uint32_t, uint32_t> moved;  // shard -> surviving worker
  };
  Result<FailoverDecision> FailoverWorker(uint32_t worker);

  // Rejoin after RestartWorker: the worker comes back alive, empty, with no
  // shards — eligible as a target for future failovers and scale-out.
  // Nothing moves back to it inside this call; the control cycle's
  // RebalanceBack pass drains shards onto it on its next run.
  Status ReviveWorker(uint32_t worker);

  // The inverse of failover: drains shards onto live workers that own none
  // (a worker that rejoined empty after a failover), so a revived worker
  // becomes a load-bearing member again instead of idling forever. Donors
  // are the most-shard-loaded live workers; the shards moved are their
  // coldest by the last harvested shard loads, and a move never pushes the
  // target past the balancer's worker capacity. All moves land under one
  // placement-epoch bump, so an in-flight scatter read routed by the old
  // placement fails its epoch re-check and retries.
  struct RebalanceDecision {
    uint64_t epoch = 0;                  // placement epoch after the pass
    std::map<uint32_t, uint32_t> moved;  // shard -> new (rejoined) worker
  };
  RebalanceDecision RebalanceBack();

  // ScaleCluster (Algorithm 1 lines 23-27): provisions one more worker and
  // its shards ("add new shards; add new workers"). New shards join the
  // consistent-hash ring (future tenants) and become targets for the
  // balancer's route additions (existing hot tenants). Returns the new
  // worker id.
  uint32_t AddWorker();

  logblock::LogBlockMap* metadata() { return &metadata_; }

  // Data-expiration task (§3.1): removes LogBlocks of `tenant` wholly older
  // than `cutoff_ts` from the catalog and the object store. Returns the
  // number of deleted blocks.
  Result<int> ExpireTenantData(uint64_t tenant, int64_t cutoff_ts,
                               objectstore::ObjectStore* store);

  const ControllerOptions& options() const { return options_; }

 private:
  flow::ClusterState BuildState(
      const std::map<uint64_t, int64_t>& tenant_traffic,
      const std::map<uint32_t, int64_t>& shard_loads,
      const std::map<uint32_t, int64_t>& worker_loads) const;

  const uint32_t shards_per_worker_;
  const ControllerOptions options_;
  uint32_t num_workers_;  // guarded by mu_
  uint32_t num_shards_;   // guarded by mu_

  mutable std::mutex mu_;
  std::vector<uint32_t> placement_;   // shard -> worker, guarded by mu_
  std::vector<bool> worker_alive_;    // guarded by mu_
  uint64_t placement_epoch_ = 0;      // guarded by mu_
  // Worker/shard loads from the last monitor harvest, for capacity-aware
  // failover target selection and rebalance-back donor/shard choice.
  // Guarded by mu_.
  std::map<uint32_t, int64_t> last_worker_loads_;
  std::map<uint32_t, int64_t> last_shard_loads_;
  flow::ConsistentHashRing ring_;
  flow::RouteTable routes_;
  std::unique_ptr<flow::Balancer> balancer_;

  logblock::LogBlockMap metadata_;
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_CONTROLLER_H_
