#ifndef LOGSTORE_CLUSTER_WORKER_H_
#define LOGSTORE_CLUSTER_WORKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/data_builder.h"
#include "common/result.h"
#include "consensus/raft.h"
#include "logblock/logblock_map.h"
#include "objectstore/object_store.h"
#include "rowstore/row_store.h"

namespace logstore::cluster {

struct WorkerOptions {
  logblock::Schema schema;
  // When true, every write goes through a 3-replica Raft group (two full
  // row stores + one WAL-only replica, the §3 production layout) before it
  // is acknowledged. When false, writes apply directly — the mode used by
  // large-scale scheduling simulations.
  bool replicated = false;
  consensus::RaftOptions raft;
  DataBuilderOptions builder;
};

// One execution-layer worker (Figure 3): local WAL + row store, a data
// builder for background archiving, and per-shard traffic accounting for
// the controller's monitor.
class Worker {
 public:
  // `store` and `map` must outlive the worker.
  Worker(uint32_t id, objectstore::ObjectStore* store,
         logblock::LogBlockMap* map, WorkerOptions options);

  uint32_t id() const { return id_; }

  // Local-write phase: WAL + replication + row-store apply. Returns
  // ResourceExhausted under backpressure (BFC), letting the client retry
  // at a reduced rate.
  Status Write(uint32_t shard, uint64_t tenant,
               const logblock::RowBatch& rows);

  // Remote-archive phase: one data-builder pass. Returns LogBlocks built.
  Result<int> RunBuildPass();

  // Real-time query path over un-archived rows.
  logblock::RowBatch ScanRealtime(
      uint64_t tenant, int64_t ts_min, int64_t ts_max,
      const std::vector<query::Predicate>& predicates = {}) const;

  rowstore::RowStore* row_store() { return primary_store_.get(); }
  const DataBuilder& builder() const { return *builder_; }

  // Monitor metrics: rows written per shard and per tenant since the last
  // harvest (§4.1.3: "It collects tenant traffic f(Ki), shard load f(Pj)
  // and worker node load f(Dk)").
  struct TrafficSnapshot {
    std::map<uint32_t, int64_t> per_shard;
    std::map<uint64_t, int64_t> per_tenant;
    int64_t total = 0;
  };
  TrafficSnapshot HarvestTraffic();

 private:
  const uint32_t id_;
  WorkerOptions options_;

  // Replica row stores. Index 0 is the primary; with replication, index 1
  // is the second full copy and index 2 is WAL-only (never applied).
  std::unique_ptr<rowstore::RowStore> primary_store_;
  std::unique_ptr<rowstore::RowStore> replica_store_;
  std::unique_ptr<consensus::RaftCluster> raft_;

  std::unique_ptr<DataBuilder> builder_;

  mutable std::mutex traffic_mu_;
  TrafficSnapshot traffic_;
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_WORKER_H_
