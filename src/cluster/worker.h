#ifndef LOGSTORE_CLUSTER_WORKER_H_
#define LOGSTORE_CLUSTER_WORKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/data_builder.h"
#include "common/result.h"
#include "consensus/durable_log.h"
#include "consensus/raft.h"
#include "logblock/logblock_map.h"
#include "objectstore/object_store.h"
#include "rowstore/row_store.h"

namespace logstore::cluster {

struct WorkerOptions {
  logblock::Schema schema;
  // When true, every write goes through a 3-replica Raft group (two full
  // row stores + one WAL-only replica, the §3 production layout) before it
  // is acknowledged. When false, writes apply directly — the mode used by
  // large-scale scheduling simulations.
  bool replicated = false;
  consensus::RaftOptions raft;
  DataBuilderOptions builder;

  // Non-empty (with replicated=true): each replica keeps a durable WAL at
  // <wal_dir>/node-<i>, so constructing a worker over an existing directory
  // is a process restart — term, vote and log reload from disk, committed
  // entries replay into the row stores, and the builder's object-key
  // sequence resumes from the recovered watermark cookie. Empty: in-memory
  // replication only (the original simulation behavior).
  std::string wal_dir;
  consensus::DurableLogOptions wal;

  // Distinguishes successive lives of the same worker id in the builder's
  // object-key salt. A rejoin after failover wipes the WAL directory, which
  // resets the recovered sequence cookie to zero — without a fresh
  // incarnation the revived worker would re-issue object keys its previous
  // life (or the survivor that inherited its tenants) already uploaded,
  // silently overwriting LogBlocks that hold the only archived copy of
  // those rows. The cluster bumps this on every Worker construction.
  uint64_t incarnation = 0;
};

// Aggregated health of one worker, harvested by the cluster's control
// cycle alongside the monitor metrics (the signal layer the controller's
// FailoverWorker decision consumes). `process_alive` is filled in by the
// harvester: a worker whose process died cannot report anything, so the
// cluster synthesizes a dead report for it.
struct WorkerHealth {
  uint32_t worker_id = 0;
  bool process_alive = true;
  bool fenced = false;       // failed over; must not acknowledge writes
  bool wal_ok = true;        // WAL open/recovery succeeded
  bool replicated = false;
  int num_replicas = 0;
  int connected_replicas = 0;
  int wedged_replicas = 0;   // connected members with sticky persist errors
  bool has_leader = true;

  // Per-replica detail, so the escalation ladder can name WHICH replica to
  // repair in place instead of condemning the whole worker.
  struct Replica {
    int node = -1;
    bool connected = false;
    bool wedged = false;  // sticky persist error latched
    bool leader = false;
  };
  std::vector<Replica> replicas;

  // Whether this worker can durably acknowledge a write right now. A false
  // answer from a live process means the worker is wedged (sticky
  // persist_error_, lost quorum, broken WAL) — exactly the state that used
  // to degrade the deployment silently.
  bool CanAck() const {
    if (!process_alive || fenced || !wal_ok) return false;
    if (!replicated) return true;
    return has_leader && wedged_replicas == 0 &&
           connected_replicas >= num_replicas / 2 + 1;
  }
};

// One execution-layer worker (Figure 3): local WAL + row store, a data
// builder for background archiving, and per-shard traffic accounting for
// the controller's monitor.
class Worker {
 public:
  // `store` and `map` must outlive the worker.
  Worker(uint32_t id, objectstore::ObjectStore* store,
         logblock::LogBlockMap* map, WorkerOptions options);

  uint32_t id() const { return id_; }

  // Local-write phase: WAL + replication + row-store apply. Returns
  // ResourceExhausted under backpressure (BFC), letting the client retry
  // at a reduced rate. An OK return means the batch is applied on the
  // primary AND durable on every replica WAL (SyncAll ran) — the crash
  // harness holds the worker to exactly this promise.
  Status Write(uint32_t shard, uint64_t tenant,
               const logblock::RowBatch& rows);

  // Remote-archive phase: one data-builder pass. Returns LogBlocks built.
  // With `advance_watermark` (the normal path), a successful pass then
  // persists the archived-through watermark into every replica WAL and
  // deletes log segments wholly below it. Passing false models a crash in
  // the window between upload completion and watermark persist: recovery
  // replays those entries again (at-least-once archiving; acked data is
  // never lost, duplicate LogBlocks are possible).
  Result<int> RunBuildPass(bool advance_watermark = true);

  // Real-time query path over un-archived rows.
  logblock::RowBatch ScanRealtime(
      uint64_t tenant, int64_t ts_min, int64_t ts_max,
      const std::vector<query::Predicate>& predicates = {}) const;

  rowstore::RowStore* row_store() { return primary_store_.get(); }
  const DataBuilder& builder() const { return *builder_; }

  // Durable-WAL introspection (null when wal_dir is unset / not
  // replicated). After SimulateCrash on the returned logs, destroy the
  // worker and construct a new one over the same wal_dir.
  consensus::DurableLog* wal(int node) {
    return node < static_cast<int>(wals_.size()) ? wals_[node].get() : nullptr;
  }
  consensus::RaftCluster* raft() { return raft_.get(); }
  // Error from opening/recovering the WALs; Write fails with it when set.
  const Status& wal_status() const { return wal_status_; }

  // Kills one replica in place (durable mode): partitions it from the
  // group and mangles its WAL the way a crash at this instant could have.
  // The surviving majority keeps accepting writes; WAL GC on the live
  // replicas keeps advancing (their disk usage stays bounded).
  Status CrashReplica(int node, consensus::CrashMode mode, uint64_t seed);
  // Restarts a crashed replica: recovers its WAL, rebuilds the raft node
  // from it (volatile state lost, like a real process restart) and rejoins
  // the group. If the group's log base has moved past what this replica
  // holds, the leader repairs it with an InstallSnapshot — drive ticks
  // (e.g. via Write) to let it catch up. In-memory replicated mode rejoins
  // with an empty log (the leader repairs it entirely over the wire).
  Status RecoverReplica(int node);

  // Fault injection for the chaos harness (durable mode): the next WAL
  // fsync on `node` fails with EIO, wedging that replica fail-stop the
  // next time the group tries to ack a write.
  Status InjectReplicaSyncError(int node);
  // Partitions one replica from the group (a lost network link, not a
  // crash). RecoverReplica heals it.
  Status PartitionReplica(int node);
  // Drives the replication group forward without proposing anything —
  // elections converge, repaired replicas catch up. Safe concurrently
  // with Write (both serialize on the raft lock).
  void PumpRaft(int ms);

  // Health snapshot for the control cycle: WAL status, replica
  // connectivity, leader presence, and latched persistence errors.
  WorkerHealth Health() const;

  // Snapshot-manifest verification counters (§13). A chunked InstallSnapshot
  // ships the builder's archived-key manifest as its blob; the installing
  // replica probes each key against shared storage before trusting the
  // archived prefix. `unverified` counts keys the probe could not confirm —
  // a lost/overwritten LogBlock, or shared storage browning out during the
  // install (retryable; the next transfer re-verifies).
  uint64_t snapshot_manifest_keys_checked() const {
    return manifest_keys_checked_.load();
  }
  uint64_t snapshot_manifest_keys_unverified() const {
    return manifest_keys_unverified_.load();
  }

  // Fencing: after the controller fails this worker over, its shards belong
  // to survivors, so a late write accepted here would be acknowledged into
  // a store nobody archives. Fence() makes every later Write fail with
  // kUnavailable; it is irreversible for this object (the worker rejoins
  // the deployment only as a fresh instance via Cluster::RestartWorker).
  void Fence() { fenced_.store(true); }
  bool fenced() const { return fenced_.load(); }

  // Monitor metrics: rows written per shard and per tenant since the last
  // harvest (§4.1.3: "It collects tenant traffic f(Ki), shard load f(Pj)
  // and worker node load f(Dk)").
  struct TrafficSnapshot {
    std::map<uint32_t, int64_t> per_shard;
    std::map<uint64_t, int64_t> per_tenant;
    int64_t total = 0;
  };
  TrafficSnapshot HarvestTraffic();

 private:
  // Persists the largest fully-archived entry index into every live
  // replica WAL and GCs segments below it.
  void AdvanceWalWatermark();

  // The apply / snapshot-install behavior of one raft node, reusable for
  // both construction and RecoverReplica (which rebuilds the node).
  consensus::ApplyFn MakeApplyFn(int node);
  consensus::InstallSnapshotFn MakeInstallFn(int node);
  void InstallSnapshotHooks(int node);
  // Leader-side snapshot blob: the archived-key manifest (see
  // InstallSnapshotHooks). Follower-side check of a received manifest.
  std::string BuildSnapshotManifest() const;
  void VerifySnapshotManifest(const std::string& manifest);
  rowstore::RowStore* store_for(int node) {
    if (node == 0) return primary_store_.get();
    if (node == 1) return replica_store_.get();
    return nullptr;  // node 2 is WAL-only
  }
  std::string WalNodeDir(int node) const {
    return options_.wal_dir + "/node-" + std::to_string(node);
  }

  const uint32_t id_;
  WorkerOptions options_;
  // Shared object store, for snapshot-manifest verification (the builder
  // holds its own pointer for uploads).
  objectstore::ObjectStore* store_ = nullptr;
  std::atomic<uint64_t> manifest_keys_checked_{0};
  std::atomic<uint64_t> manifest_keys_unverified_{0};

  // Replica row stores. Index 0 is the primary; with replication, index 1
  // is the second full copy and index 2 is WAL-only (never applied).
  std::unique_ptr<rowstore::RowStore> primary_store_;
  std::unique_ptr<rowstore::RowStore> replica_store_;
  std::unique_ptr<consensus::RaftCluster> raft_;

  // Durable WALs, one per replica, indexed like raft nodes.
  std::vector<std::unique_ptr<consensus::DurableLog>> wals_;
  Status wal_status_ = Status::OK();
  // Apply-order map from raft entry index to the primary row store's last
  // seq after applying it; lets the build pass translate "rows archived
  // through seq S" into "entries archived through index I" for WAL GC.
  std::map<uint64_t, uint64_t> applied_index_to_seq_;

  std::unique_ptr<DataBuilder> builder_;
  std::atomic<bool> fenced_{false};

  // Serializes every raft-group access (Write's propose/tick/sync loop,
  // the build pass's watermark advance, health harvests, and the monitor
  // thread's replica recoveries). The raft harness itself is
  // single-threaded by design; this lock is what lets a background control
  // plane share a worker with foreground writers.
  mutable std::mutex raft_mu_;

  mutable std::mutex traffic_mu_;
  TrafficSnapshot traffic_;
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_WORKER_H_
