#include "cluster/traffic_sim.h"

#include <algorithm>
#include <cmath>

#include "workload/zipfian.h"

namespace logstore::cluster {

namespace {

double Stddev(const std::vector<int64_t>& values) {
  if (values.empty()) return 0;
  double mean = 0;
  for (int64_t v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(values.size());
  double var = 0;
  for (int64_t v : values) {
    var += (static_cast<double>(v) - mean) * (static_cast<double>(v) - mean);
  }
  return std::sqrt(var / static_cast<double>(values.size()));
}

}  // namespace

double TrafficSimMetrics::ShardAccessStddev() const {
  return Stddev(shard_accesses);
}
double TrafficSimMetrics::WorkerAccessStddev() const {
  return Stddev(worker_accesses);
}

TrafficSimulator::TrafficSimulator(TrafficSimOptions options)
    : options_(options),
      controller_(options.num_workers, options.shards_per_worker,
                  ControllerOptions{
                      .policy = options.policy,
                      .alpha = options.alpha,
                      .hot_threshold = options.hot_threshold,
                      .edge_max_flow = options.edge_max_flow,
                      .shard_capacity = options.shard_capacity,
                      .worker_capacity = options.worker_capacity,
                  }) {
  if (options_.total_offered_load == 0) {
    options_.total_offered_load = static_cast<int64_t>(
        0.75 * static_cast<double>(options_.num_workers) *
        static_cast<double>(options_.worker_capacity));
  }
  const std::vector<double> shares =
      workload::ZipfianShares(options_.num_tenants, options_.theta);
  tenant_load_.resize(options_.num_tenants);
  for (uint32_t t = 0; t < options_.num_tenants; ++t) {
    tenant_load_[t] =
        shares[t] * static_cast<double>(options_.total_offered_load);
    controller_.EnsureTenantRoute(t);
  }
  worker_backlog_.assign(options_.num_workers, 0.0);
  worker_latency_.assign(options_.num_workers, options_.base_latency_ms);
}

void TrafficSimulator::RunRound(TrafficSimMetrics* metrics,
                                bool allow_rebalance, int round_index) {
  options_.num_workers = controller_.num_workers();  // may have scaled out
  const uint32_t num_shards = controller_.num_shards();
  const flow::RouteTable routes = controller_.routes();

  // Offered traffic -> shard and worker demand fractions.
  std::vector<double> shard_demand(num_shards, 0.0);
  std::vector<double> worker_demand(options_.num_workers, 0.0);
  double offered_total = 0;
  for (uint32_t t = 0; t < options_.num_tenants; ++t) {
    const auto* weights = routes.Get(t);
    if (weights == nullptr) continue;
    for (const auto& [shard, weight] : *weights) {
      const double flow = weight * tenant_load_[t];
      shard_demand[shard] += flow;
      worker_demand[controller_.WorkerForShard(shard)] += flow;
      offered_total += flow;
    }
  }

  // Closed-loop clients: the pool's aggregate issue rate is bounded by the
  // traffic-weighted batch latency it currently observes. A saturated
  // worker therefore throttles everything routed through the same client
  // threads, not just its own shards.
  double mean_latency_ms = options_.base_latency_ms;
  if (offered_total > 0) {
    double weighted = 0;
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      weighted += worker_demand[w] * worker_latency_[w];
    }
    mean_latency_ms = std::max(options_.base_latency_ms,
                               weighted / offered_total);
  }
  const double client_capacity =
      static_cast<double>(options_.client_threads) *
      (1000.0 / mean_latency_ms) * static_cast<double>(options_.batch_size);
  const double sent_scale =
      offered_total > 0 ? std::min(1.0, client_capacity / offered_total) : 1.0;

  std::vector<double> shard_arrivals(num_shards, 0.0);
  std::vector<double> worker_arrivals(options_.num_workers, 0.0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    shard_arrivals[s] = shard_demand[s] * sent_scale;
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    worker_arrivals[w] = worker_demand[w] * sent_scale;
  }

  // Workers drain their bounded queues.
  const double queue_cap = options_.max_queue_seconds *
                           static_cast<double>(options_.worker_capacity);
  double processed_total = 0;
  double dropped_total = 0;
  std::vector<double> worker_processed(options_.num_workers, 0.0);
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    const double capacity = static_cast<double>(options_.worker_capacity);
    double queue = worker_backlog_[w] + worker_arrivals[w];
    if (queue > queue_cap + capacity) {
      dropped_total += queue - queue_cap - capacity;
      queue = queue_cap + capacity;
    }
    const double processed = std::min(queue, capacity);
    worker_backlog_[w] = queue - processed;
    processed_total += processed;
    worker_processed[w] = processed;
    // A batch arriving now waits for the backlog ahead of it.
    const double instant_ms =
        options_.base_latency_ms + 1000.0 * worker_backlog_[w] / capacity;
    worker_latency_[w] = options_.latency_ema * worker_latency_[w] +
                         (1.0 - options_.latency_ema) * instant_ms;
  }

  metrics->throughput += processed_total;
  metrics->offered += static_cast<double>(options_.total_offered_load);
  metrics->dropped_fraction += dropped_total;
  metrics->avg_latency_ms += mean_latency_ms;

  metrics->shard_accesses.assign(num_shards, 0);
  metrics->worker_accesses.assign(options_.num_workers, 0);
  metrics->worker_utilization.assign(options_.num_workers, 0);
  for (uint32_t s = 0; s < num_shards; ++s) {
    metrics->shard_accesses[s] = static_cast<int64_t>(shard_arrivals[s]);
  }
  for (uint32_t w = 0; w < options_.num_workers; ++w) {
    metrics->worker_accesses[w] = static_cast<int64_t>(worker_arrivals[w]);
    metrics->worker_utilization[w] =
        worker_processed[w] / static_cast<double>(options_.worker_capacity);
  }

  // Monitor -> balancer -> router cycle.
  if (allow_rebalance && options_.policy != BalancePolicy::kNone &&
      (round_index + 1) % options_.rebalance_every_rounds == 0) {
    std::map<uint64_t, int64_t> tenant_traffic;
    for (uint32_t t = 0; t < options_.num_tenants; ++t) {
      tenant_traffic[t] = static_cast<int64_t>(tenant_load_[t]);
    }
    std::map<uint32_t, int64_t> shard_loads;
    for (uint32_t s = 0; s < num_shards; ++s) {
      shard_loads[s] = static_cast<int64_t>(shard_arrivals[s]);
    }
    std::map<uint32_t, int64_t> worker_loads;
    for (uint32_t w = 0; w < options_.num_workers; ++w) {
      worker_loads[w] = static_cast<int64_t>(worker_arrivals[w]);
    }
    const auto decision =
        controller_.RunTrafficControl(tenant_traffic, shard_loads, worker_loads);
    if (decision.rebalanced) metrics->rebalances++;
    if (decision.scale_needed) {
      metrics->scale_requested = true;
      // Algorithm 1 line 25: "add more worker nodes".
      if (options_.max_workers_on_scale_out > 0 &&
          controller_.num_workers() < options_.max_workers_on_scale_out) {
        controller_.AddWorker();
        worker_backlog_.push_back(0.0);
        worker_latency_.push_back(options_.base_latency_ms);
        metrics->workers_added++;
      }
    }
  }
  metrics->route_count = controller_.routes().RouteCount();
  metrics->final_workers = controller_.num_workers();
}

TrafficSimMetrics TrafficSimulator::Run(int warmup_rounds,
                                        int measure_rounds) {
  TrafficSimMetrics warmup;
  for (int r = 0; r < warmup_rounds; ++r) {
    RunRound(&warmup, /*allow_rebalance=*/true, r);
  }

  TrafficSimMetrics metrics;
  metrics.scale_requested = warmup.scale_requested;
  metrics.workers_added = warmup.workers_added;
  for (int r = 0; r < measure_rounds; ++r) {
    RunRound(&metrics, /*allow_rebalance=*/true, warmup_rounds + r);
  }
  const double rounds = std::max(1, measure_rounds);
  metrics.throughput /= rounds;
  metrics.offered /= rounds;
  metrics.avg_latency_ms /= rounds;
  metrics.dropped_fraction =
      metrics.dropped_fraction / (metrics.offered * rounds);
  metrics.rebalances += warmup.rebalances;
  return metrics;
}

TrafficSimMetrics TrafficSimulator::MeasureUnbalancedRound() {
  TrafficSimMetrics metrics;
  // One round with rebalancing suppressed and a fresh backlog.
  std::fill(worker_backlog_.begin(), worker_backlog_.end(), 0.0);
  RunRound(&metrics, /*allow_rebalance=*/false, 0);
  metrics.dropped_fraction /= std::max(1.0, metrics.offered);
  return metrics;
}

}  // namespace logstore::cluster
