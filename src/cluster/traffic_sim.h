#ifndef LOGSTORE_CLUSTER_TRAFFIC_SIM_H_
#define LOGSTORE_CLUSTER_TRAFFIC_SIM_H_

#include <cstdint>
#include <vector>

#include "cluster/controller.h"
#include "flow/balancer.h"

namespace logstore::cluster {

// ---------------------------------------------------------------------------
// Discrete-time simulation of the multi-tenant write path for the traffic-
// control experiments (Figures 12-14). Each round is one second: tenants
// offer Zipfian-distributed load, brokers split it over shards by the
// routing table, workers drain bounded queues at their capacity. The
// controller's monitor/balancer/router cycle runs periodically, exactly as
// the production hotspot manager does every 300 s.
//
// This deliberately simulates *load*, not data: scheduling quality is a
// property of the routing algorithm and the capacity model. The functional
// write path (WAL, Raft, row stores, archiving) is exercised by
// cluster::Cluster.
// ---------------------------------------------------------------------------

struct TrafficSimOptions {
  uint32_t num_workers = 24;
  uint32_t shards_per_worker = 4;
  // Per-worker drain rate, log entries/second.
  int64_t worker_capacity = 120'000;
  int64_t shard_capacity = 60'000;
  // f_max: one shard processes at most this much of a single tenant (the
  // paper's per-shard tenant limit; here one tenant may fill a shard).
  int64_t edge_max_flow = 60'000;

  uint32_t num_tenants = 1000;
  double theta = 0.99;
  // Total offered load across all tenants, log entries/second. Defaults to
  // 75% of aggregate worker capacity: a balanced plan fits comfortably
  // under the alpha watermark, but skew saturates individual workers.
  int64_t total_offered_load = 0;  // 0 = 0.75 * num_workers * worker_capacity

  BalancePolicy policy = BalancePolicy::kMaxFlow;
  int rebalance_every_rounds = 3;
  double alpha = 0.85;
  double hot_threshold = 0.9;

  // Elastic scale-out (Algorithm 1's ScaleCluster): when the controller
  // reports that rebalancing cannot cover the demand, provision more
  // workers, up to this cap (0 disables scaling).
  uint32_t max_workers_on_scale_out = 0;

  // Worker queue bound, in seconds of capacity; beyond it writes drop.
  double max_queue_seconds = 2.0;
  double base_latency_ms = 5.0;
  // Closed-loop clients, like the YCSB driver of §6: a fixed pool of
  // threads issues batches synchronously, so a hot worker's queueing delay
  // throttles the entire offered stream — the mechanism behind Figure
  // 12(a)'s sharp throughput collapse under skew.
  int client_threads = 64;
  int64_t batch_size = 1000;  // entries per client batch (§6.2's 1000)
  // Smoothing for the clients' latency estimate (0 = no memory).
  double latency_ema = 0.5;
  uint64_t seed = 99;
};

struct TrafficSimMetrics {
  double throughput = 0;        // processed entries/second (avg)
  double offered = 0;           // offered entries/second
  double avg_latency_ms = 0;    // traffic-weighted batch write latency
  double dropped_fraction = 0;
  size_t route_count = 0;
  int rebalances = 0;
  bool scale_requested = false;
  uint32_t workers_added = 0;  // by elastic scale-out
  uint32_t final_workers = 0;

  // Last measured round, for the Figure 13/14 plots.
  std::vector<int64_t> shard_accesses;     // per shard id
  std::vector<int64_t> worker_accesses;    // per worker id
  std::vector<double> worker_utilization;  // processed/capacity

  double ShardAccessStddev() const;
  double WorkerAccessStddev() const;
};

class TrafficSimulator {
 public:
  explicit TrafficSimulator(TrafficSimOptions options);

  // Runs `warmup + measure` one-second rounds; metrics aggregate over the
  // measure window.
  TrafficSimMetrics Run(int warmup_rounds, int measure_rounds);

  // Snapshot of per-shard accesses before any rebalancing (for the
  // "Before Balancing" series), measured over one round with the initial
  // consistent-hash routing.
  TrafficSimMetrics MeasureUnbalancedRound();

 private:
  void RunRound(TrafficSimMetrics* metrics, bool allow_rebalance,
                int round_index);

  TrafficSimOptions options_;
  Controller controller_;
  std::vector<double> tenant_load_;      // offered entries/second per tenant
  std::vector<double> worker_backlog_;   // queued entries per worker
  std::vector<double> worker_latency_;   // clients' smoothed latency view, ms
};

}  // namespace logstore::cluster

#endif  // LOGSTORE_CLUSTER_TRAFFIC_SIM_H_
