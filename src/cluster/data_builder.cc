#include "cluster/data_builder.h"

#include <algorithm>

namespace logstore::cluster {

DataBuilder::DataBuilder(objectstore::ObjectStore* store,
                         logblock::LogBlockMap* map,
                         DataBuilderOptions options)
    : store_(store), map_(map), options_(std::move(options)) {
  if (options_.use_retry) {
    retry_store_ = std::make_unique<objectstore::RetryingObjectStore>(
        store, options_.retry_options);
    store_ = retry_store_.get();
  }
}

Result<int> DataBuilder::BuildOnce(rowstore::RowStore* row_store) {
  const rowstore::RowStore::BuildSnapshot snapshot =
      row_store->SnapshotForBuild(options_.max_rows_per_build);
  if (snapshot.total_rows == 0) return 0;

  int built = 0;
  // The snapshot divides the time-ordered row store into per-tenant
  // columnar batches (§3.1); large tenants are split further.
  for (const auto& [tenant, batch] : snapshot.per_tenant) {
    for (uint32_t begin = 0; begin < batch.num_rows();
         begin += options_.max_rows_per_logblock) {
      const uint32_t end = std::min(begin + options_.max_rows_per_logblock,
                                    batch.num_rows());
      // Re-slice the batch when splitting.
      const logblock::RowBatch* to_build = &batch;
      logblock::RowBatch slice(batch.schema());
      if (begin != 0 || end != batch.num_rows()) {
        for (uint32_t r = begin; r < end; ++r) {
          std::vector<logblock::Value> row;
          row.reserve(batch.schema().num_columns());
          for (size_t c = 0; c < batch.schema().num_columns(); ++c) {
            row.push_back(batch.ValueAt(c, r));
          }
          slice.AddRow(row);
        }
        to_build = &slice;
      }

      auto block =
          logblock::BuildLogBlock(*to_build, tenant, options_.block_options);
      if (!block.ok()) return block.status();

      const std::string key = options_.key_prefix + std::to_string(tenant) +
                              "/" + options_.key_salt +
                              std::to_string(sequence_.fetch_add(1)) + ".tar";
      LOGSTORE_RETURN_IF_ERROR(store_->Put(key, block->data));

      map_->Add({.tenant_id = tenant,
                 .min_ts = block->meta.min_ts,
                 .max_ts = block->meta.max_ts,
                 .object_key = key,
                 .size_bytes = block->data.size(),
                 .row_count = block->meta.row_count});
      bytes_uploaded_ += block->data.size();
      blocks_built_++;
      ++built;
      {
        std::lock_guard<std::mutex> lock(keys_mu_);
        archived_keys_.push_back(key);
      }
    }
  }

  rows_archived_ += snapshot.total_rows;
  // Checkpoint: drop archived rows from the real-time store.
  row_store->TruncateUpTo(snapshot.end_seq);
  return built;
}

std::vector<std::string> DataBuilder::ArchivedKeys() const {
  std::lock_guard<std::mutex> lock(keys_mu_);
  return archived_keys_;
}

}  // namespace logstore::cluster
