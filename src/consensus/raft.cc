#include "consensus/raft.h"

#include <algorithm>

namespace logstore::consensus {

RaftNode::RaftNode(int id, int cluster_size, RaftOptions options,
                   uint64_t seed, ApplyFn apply_fn)
    : id_(id),
      cluster_size_(cluster_size),
      options_(options),
      rng_(seed),
      apply_fn_(std::move(apply_fn)),
      next_index_(cluster_size, 1),
      match_index_(cluster_size, 0) {
  metrics::MetricRegistry* registry = metrics::OrDefault(options_.registry);
  snapshots_installed_.Bind(registry->Counter("raft.snapshots_installed"));
  snapshots_sent_.Bind(registry->Counter("raft.snapshots_sent"));
  snapshot_chunks_sent_.Bind(registry->Counter("raft.snapshot_chunks_sent"));
  snapshot_chunks_received_.Bind(
      registry->Counter("raft.snapshot_chunks_received"));
  snapshot_chunk_rewinds_.Bind(
      registry->Counter("raft.snapshot_chunk_rewinds"));
  snapshot_stale_rejections_.Bind(
      registry->Counter("raft.snapshot_stale_rejections"));
  ResetElectionTimer();
}

void RaftNode::AttachPersistence(RaftPersistence* persistence,
                                 const RecoveredState* recovered) {
  persistence_ = persistence;
  persist_error_ = Status::OK();
  if (recovered == nullptr) return;
  term_ = recovered->term;
  voted_for_ = recovered->voted_for;
  log_base_index_ = recovered->base_index;
  log_base_term_ = recovered->base_term;
  log_base_aux_ = recovered->watermark_aux;
  log_ = recovered->entries;
  // Entries at or below the base were archived before the crash and are
  // never re-applied; everything above re-commits through the protocol
  // (the embedder drives a no-op barrier to force it, Raft §5.4.2).
  commit_index_ = log_base_index_;
  last_applied_ = log_base_index_;
  std::fill(next_index_.begin(), next_index_.end(), LastLogIndex() + 1);
  std::fill(match_index_.begin(), match_index_.end(), 0);
}

void RaftNode::PersistHardState() {
  if (persistence_ == nullptr) return;
  // A failed persist must not crash the tick loop; it is latched instead so
  // SyncWal (and so the write ack path) observes it.
  NotePersistError(persistence_->PersistHardState(term_, voted_for_));
}

void RaftNode::NotePersistError(const Status& s) {
  if (!s.ok() && persist_error_.ok()) persist_error_ = s;
}

void RaftNode::SetSnapshotHooks(SnapshotStateFn state_fn,
                                InstallSnapshotFn install_fn) {
  snapshot_state_fn_ = std::move(state_fn);
  install_snapshot_fn_ = std::move(install_fn);
}

void RaftNode::ResetElectionTimer() {
  election_elapsed_ms_ = 0;
  election_timeout_ms_ = static_cast<int>(
      options_.election_timeout_min_ms +
      rng_.Uniform(options_.election_timeout_max_ms -
                   options_.election_timeout_min_ms + 1));
}

Status RaftNode::Propose(std::string payload) {
  if (role_ != Role::kLeader) {
    return Status::Unavailable("not leader; try node " +
                               std::to_string(leader_hint_));
  }
  // BFC trigger point 1: the sync queue monitors both the number and size
  // of pending requests.
  if (sync_queue_.size() >= options_.sync_queue_max_items ||
      (sync_queue_bytes_ + payload.size() > options_.sync_queue_max_bytes &&
       !sync_queue_.empty())) {
    return Status::ResourceExhausted("sync queue at BFC limit");
  }
  sync_queue_bytes_ += payload.size();
  sync_queue_.push_back(std::move(payload));
  return Status::OK();
}

Status RaftNode::AdvanceWatermark(uint64_t index, uint64_t aux) {
  // Only applied entries may be archived, and the base never moves back.
  index = std::min(index, last_applied_);
  if (index < log_base_index_) return Status::OK();
  const uint64_t term = TermAt(index);
  if (persistence_ != nullptr) {
    const Status s = persistence_->PersistWatermark(index, term, aux);
    if (!s.ok()) {
      NotePersistError(s);
      return s;
    }
  }
  log_.erase(log_.begin(), log_.begin() + (index - log_base_index_));
  log_base_index_ = index;
  log_base_term_ = term;
  log_base_aux_ = aux;
  // A peer's next_index below the base would make us fabricate entries we
  // no longer hold; clamp. When such a peer rejects the resulting append it
  // is repaired with an InstallSnapshot instead of further decrements.
  for (uint64_t& next : next_index_) {
    next = std::max(next, log_base_index_ + 1);
  }
  return Status::OK();
}

Status RaftNode::SyncWal() {
  if (!persist_error_.ok()) return persist_error_;
  if (persistence_ == nullptr) return Status::OK();
  // Latch a failed group-commit fsync like any other persistence failure:
  // the journal is fail-stop, so this node must never ack again, and the
  // health report has to show the wedge (not just the one refused write).
  Status s = persistence_->Sync();
  NotePersistError(s);
  return s;
}

void RaftNode::Restart() {
  role_ = Role::kFollower;
  leader_hint_ = -1;
  commit_index_ = log_base_index_;  // volatile; recomputed from the leader
  last_applied_ = log_base_index_;  // state machine is rebuilt by re-applying
  votes_received_ = 0;
  heartbeat_elapsed_ms_ = 0;
  sync_queue_.clear();
  sync_queue_bytes_ = 0;
  apply_queue_.clear();
  apply_queue_bytes_ = 0;
  // A process restart loses in-flight snapshot transfers on both sides:
  // the leader re-freezes a blob on the next trigger, and a follower that
  // lost its staging rejects mid-blob chunks until the leader rewinds.
  snapshot_xfers_.clear();
  snapshot_staging_ = SnapshotStaging();
  std::fill(next_index_.begin(), next_index_.end(), LastLogIndex() + 1);
  std::fill(match_index_.begin(), match_index_.end(), 0);
  ResetElectionTimer();
}

void RaftNode::BecomeFollower(uint64_t term, int leader_hint) {
  const bool term_changed = term != term_;
  term_ = term;
  role_ = Role::kFollower;
  if (leader_hint >= 0) leader_hint_ = leader_hint;
  votes_received_ = 0;
  // Client payloads queued while we thought we were leader are dropped;
  // clients observe kUnavailable on subsequent writes and re-route.
  sync_queue_.clear();
  sync_queue_bytes_ = 0;
  // Leader-side snapshot transfers die with the leadership; a follower's
  // chunk acks for them are ignored by the term/role guard.
  snapshot_xfers_.clear();
  if (term_changed) PersistHardState();
  ResetElectionTimer();
}

void RaftNode::BecomeCandidate(std::vector<Message>* out) {
  ++term_;
  role_ = Role::kCandidate;
  voted_for_ = id_;
  votes_received_ = 1;  // own vote
  PersistHardState();
  ResetElectionTimer();
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    Message m;
    m.type = MessageType::kRequestVote;
    m.from = id_;
    m.to = peer;
    m.term = term_;
    m.last_log_index = LastLogIndex();
    m.last_log_term = LastLogTerm();
    out->push_back(std::move(m));
  }
  if (cluster_size_ == 1) BecomeLeader(out);
}

void RaftNode::BecomeLeader(std::vector<Message>* out) {
  role_ = Role::kLeader;
  leader_hint_ = id_;
  heartbeat_elapsed_ms_ = 0;
  snapshot_xfers_.clear();
  std::fill(next_index_.begin(), next_index_.end(), LastLogIndex() + 1);
  std::fill(match_index_.begin(), match_index_.end(), 0);
  match_index_[id_] = LastLogIndex();
  BroadcastAppendEntries(out);  // immediate heartbeat asserts leadership
}

Message RaftNode::MakeAppendFor(int peer) const {
  Message m;
  m.type = MessageType::kAppendEntries;
  m.from = id_;
  m.to = peer;
  m.term = term_;
  m.prev_log_index = next_index_[peer] - 1;
  m.prev_log_term = m.prev_log_index == 0 ? 0 : TermAt(m.prev_log_index);
  const uint64_t last = LastLogIndex();
  uint64_t next = next_index_[peer];
  for (int n = 0; next <= last && n < options_.max_entries_per_append;
       ++next, ++n) {
    m.entries.push_back(log_at(next));
  }
  m.leader_commit = commit_index_;
  return m;
}

void RaftNode::BroadcastAppendEntries(std::vector<Message>* out) {
  for (int peer = 0; peer < cluster_size_; ++peer) {
    if (peer == id_) continue;
    out->push_back(MakeAppendFor(peer));
  }
}

void RaftNode::AdvanceCommit() {
  // Raft §5.4.2: only entries of the current term commit by counting.
  for (uint64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (TermAt(n) != term_) break;
    int replicas = 0;
    for (int peer = 0; peer < cluster_size_; ++peer) {
      if (match_index_[peer] >= n) ++replicas;
    }
    if (replicas * 2 > cluster_size_) {
      commit_index_ = n;
      break;
    }
  }
}

void RaftNode::DrainApplyQueue(int budget) {
  // Move newly committed entries into the apply queue (BFC point 2)...
  while (last_applied_ + static_cast<uint64_t>(apply_queue_.size()) <
         commit_index_) {
    const uint64_t next =
        last_applied_ + static_cast<uint64_t>(apply_queue_.size()) + 1;
    const std::string& payload = log_at(next).payload;
    if (apply_queue_.size() >= options_.apply_queue_max_items ||
        (apply_queue_bytes_ + payload.size() >
             options_.apply_queue_max_bytes &&
         !apply_queue_.empty())) {
      break;  // apply queue full: stop pulling committed entries
    }
    apply_queue_bytes_ += payload.size();
    apply_queue_.emplace_back(next, payload);
  }
  // ...then apply up to `budget` of them to the state machine.
  int applied = 0;
  while (!apply_queue_.empty() && (budget == 0 || applied < budget)) {
    auto& [index, payload] = apply_queue_.front();
    if (options_.apply_enabled && apply_fn_) apply_fn_(index, payload);
    last_applied_ = index;
    apply_queue_bytes_ -= payload.size();
    apply_queue_.pop_front();
    ++applied;
  }
}

void RaftNode::Tick(int ms, std::vector<Message>* out) {
  if (role_ == Role::kLeader) {
    // Append queued client payloads to the log, bounded by the pipeline
    // window so a stalled commit (slow/backpressured followers) propagates
    // into a full sync queue.
    while (!sync_queue_.empty() &&
           LastLogIndex() - commit_index_ < options_.max_uncommitted_entries) {
      sync_queue_bytes_ -= sync_queue_.front().size();
      log_.push_back(LogEntry{term_, std::move(sync_queue_.front())});
      sync_queue_.pop_front();
      // Under kOnSync this write reaches the disk at the embedder's group
      // commit (SyncWal before the client ack), not here. A journaling
      // failure is latched so that group commit refuses the ack.
      if (persistence_ != nullptr) {
        NotePersistError(
            persistence_->AppendEntry(LastLogIndex(), log_.back()));
      }
    }
    match_index_[id_] = LastLogIndex();
    if (cluster_size_ == 1) AdvanceCommit();

    heartbeat_elapsed_ms_ += ms;
    if (heartbeat_elapsed_ms_ >= options_.heartbeat_interval_ms) {
      heartbeat_elapsed_ms_ = 0;
      BroadcastAppendEntries(out);
    }
  } else {
    election_elapsed_ms_ += ms;
    if (election_elapsed_ms_ >= election_timeout_ms_) {
      BecomeCandidate(out);
    }
  }
  DrainApplyQueue(options_.apply_per_tick);
}

void RaftNode::Receive(const Message& m, std::vector<Message>* out) {
  if (m.term > term_) {
    voted_for_ = -1;
    const bool from_leader = m.type == MessageType::kAppendEntries ||
                             m.type == MessageType::kInstallSnapshot;
    BecomeFollower(m.term, from_leader ? m.from : -1);
  }

  switch (m.type) {
    case MessageType::kRequestVote: {
      Message reply;
      reply.type = MessageType::kVoteResponse;
      reply.from = id_;
      reply.to = m.from;
      reply.term = term_;
      const bool log_ok =
          m.last_log_term > LastLogTerm() ||
          (m.last_log_term == LastLogTerm() &&
           m.last_log_index >= LastLogIndex());
      if (m.term == term_ && log_ok &&
          (voted_for_ == -1 || voted_for_ == m.from)) {
        voted_for_ = m.from;
        // The vote must be durable before the response leaves: a vote
        // granted, forgotten in a crash, then granted to another candidate
        // would elect two leaders for this term.
        PersistHardState();
        reply.vote_granted = true;
        ResetElectionTimer();
      }
      out->push_back(std::move(reply));
      break;
    }

    case MessageType::kVoteResponse: {
      if (role_ != Role::kCandidate || m.term != term_) break;
      if (m.vote_granted) {
        ++votes_received_;
        if (votes_received_ * 2 > cluster_size_) BecomeLeader(out);
      }
      break;
    }

    case MessageType::kAppendEntries: {
      Message reply;
      reply.type = MessageType::kAppendResponse;
      reply.from = id_;
      reply.to = m.from;
      reply.term = term_;
      if (m.term < term_) {
        reply.success = false;
        out->push_back(std::move(reply));
        break;
      }
      // Valid leader for this term.
      if (role_ != Role::kFollower) BecomeFollower(m.term, m.from);
      leader_hint_ = m.from;
      ResetElectionTimer();

      // BFC trigger point 2: a follower whose apply path has fallen behind
      // (committed-but-unapplied backlog at the queue limit) rejects new
      // entries, slowing the leader (and so the client) down.
      if (!m.entries.empty() &&
          commit_index_ >=
              last_applied_ + options_.apply_queue_max_items) {
        reply.success = false;
        reply.backpressured = true;
        reply.match_index = 0;
        out->push_back(std::move(reply));
        break;
      }

      // Log consistency check. A prev below our base is consistent by
      // construction: those entries are committed and archived here.
      if (m.prev_log_index > LastLogIndex() ||
          (m.prev_log_index > log_base_index_ &&
           TermAt(m.prev_log_index) != m.prev_log_term)) {
        reply.success = false;
        out->push_back(std::move(reply));
        break;
      }
      // Append, truncating conflicts. Durability of the success ack below
      // follows the sync policy: kPerRecord syncs inside AppendEntry,
      // kOnSync defers to the embedder's group commit before the client
      // ack (SyncAll).
      uint64_t index = m.prev_log_index;
      for (const LogEntry& entry : m.entries) {
        ++index;
        if (index <= log_base_index_) continue;  // archived, already durable
        if (index <= LastLogIndex()) {
          if (TermAt(index) != entry.term) {
            log_.resize(index - log_base_index_ - 1);
            if (persistence_ != nullptr) {
              NotePersistError(persistence_->TruncateSuffix(index));
            }
            log_.push_back(entry);
            if (persistence_ != nullptr) {
              NotePersistError(persistence_->AppendEntry(index, entry));
            }
          }
        } else {
          log_.push_back(entry);
          if (persistence_ != nullptr) {
            NotePersistError(persistence_->AppendEntry(index, entry));
          }
        }
      }
      if (m.leader_commit > commit_index_) {
        commit_index_ = std::min<uint64_t>(m.leader_commit, LastLogIndex());
      }
      reply.success = true;
      reply.match_index = m.prev_log_index + m.entries.size();
      out->push_back(std::move(reply));
      break;
    }

    case MessageType::kAppendResponse: {
      if (role_ != Role::kLeader || m.term != term_) break;
      if (m.success) {
        match_index_[m.from] = std::max(match_index_[m.from], m.match_index);
        next_index_[m.from] = match_index_[m.from] + 1;
        // A duplicated old response can leave next_index below the base
        // after compaction; clamp (entries below base no longer exist).
        next_index_[m.from] =
            std::max(next_index_[m.from], log_base_index_ + 1);
        // The install ack that completes a chunked transfer.
        auto xfer = snapshot_xfers_.find(m.from);
        if (xfer != snapshot_xfers_.end() &&
            match_index_[m.from] >= xfer->second.index) {
          snapshot_xfers_.erase(xfer);
        }
        AdvanceCommit();
        // Keep streaming if the follower is behind.
        if (next_index_[m.from] <= LastLogIndex()) {
          out->push_back(MakeAppendFor(m.from));
        }
      } else if (m.backpressured) {
        // Follower is applying slowly; retry later (next heartbeat) rather
        // than decrementing next_index.
      } else if (next_index_[m.from] > log_base_index_ + 1) {
        --next_index_[m.from];
        out->push_back(MakeAppendFor(m.from));
      } else if (log_base_index_ > 0) {
        // The follower needs entries at or below our base, which are
        // compacted away: repair it with a snapshot instead (the state up
        // to the base lives in shared storage, Taurus-style catch-up).
        out->push_back(MakeSnapshotFor(m.from));
      }
      break;
    }

    case MessageType::kInstallSnapshot: {
      HandleInstallSnapshot(m, out);
      break;
    }

    case MessageType::kSnapshotChunkAck: {
      HandleSnapshotChunkAck(m, out);
      break;
    }
  }
}

Message RaftNode::MakeSnapshotFor(int peer) {
  std::string blob;
  if (snapshot_state_fn_) {
    blob = snapshot_state_fn_(log_base_index_, log_base_aux_);
  }
  if (options_.snapshot_chunk_bytes > 0 &&
      blob.size() > options_.snapshot_chunk_bytes) {
    // Chunked transfer. Resume the peer's in-flight transfer if it still
    // describes the current base; otherwise freeze a fresh blob under a
    // new transfer id (the follower discards stale staging on seeing it).
    auto it = snapshot_xfers_.find(peer);
    if (it == snapshot_xfers_.end() || it->second.index != log_base_index_) {
      SnapshotTransfer xfer;
      xfer.xfer = ++next_snapshot_xfer_;
      xfer.index = log_base_index_;
      xfer.term_at = log_base_term_;
      xfer.aux = log_base_aux_;
      xfer.blob = std::move(blob);
      snapshot_xfers_[peer] = std::move(xfer);
      ++snapshots_sent_;
    }
    return MakeSnapshotChunkFor(peer);
  }

  Message m;
  m.type = MessageType::kInstallSnapshot;
  m.from = id_;
  m.to = peer;
  m.term = term_;
  m.snapshot_index = log_base_index_;
  m.snapshot_term = log_base_term_;
  m.snapshot_aux = log_base_aux_;
  m.snapshot_state = std::move(blob);
  m.snapshot_total = m.snapshot_state.size();
  m.leader_commit = commit_index_;
  snapshot_xfers_.erase(peer);
  ++snapshots_sent_;
  // Optimistically resume appends right after the snapshot; if the follower
  // rejects them again (it never installed), the trigger above re-sends it.
  next_index_[peer] = log_base_index_ + 1;
  return m;
}

Message RaftNode::MakeSnapshotChunkFor(int peer) {
  SnapshotTransfer& xfer = snapshot_xfers_[peer];
  Message m;
  m.type = MessageType::kInstallSnapshot;
  m.from = id_;
  m.to = peer;
  m.term = term_;
  m.snapshot_index = xfer.index;
  m.snapshot_term = xfer.term_at;
  m.snapshot_aux = xfer.aux;
  m.snapshot_xfer = xfer.xfer;
  m.snapshot_offset = xfer.offset;
  m.snapshot_total = xfer.blob.size();
  const size_t len =
      std::min(options_.snapshot_chunk_bytes,
               xfer.blob.size() - static_cast<size_t>(xfer.offset));
  m.snapshot_state = xfer.blob.substr(xfer.offset, len);
  m.snapshot_last = xfer.offset + len >= xfer.blob.size();
  m.leader_commit = commit_index_;
  ++snapshot_chunks_sent_;
  if (m.snapshot_last) {
    // Optimistic, as in the unchunked path: the follower's install ack
    // (kAppendResponse) confirms; a later reject re-triggers the snapshot
    // path, which resumes or restarts this transfer.
    next_index_[peer] = xfer.index + 1;
  }
  return m;
}

void RaftNode::HandleSnapshotChunkAck(const Message& m,
                                      std::vector<Message>* out) {
  if (role_ != Role::kLeader || m.term != term_) return;
  auto it = snapshot_xfers_.find(m.from);
  if (it == snapshot_xfers_.end() || it->second.xfer != m.snapshot_xfer) {
    return;  // ack for a transfer we already finished or replaced
  }
  SnapshotTransfer& xfer = it->second;
  // The follower's cursor is authoritative: a success ack advances past
  // the chunk it received; a reject rewinds to where its staging actually
  // ends (0 if it discarded). Duplicated acks are idempotent — the cursor
  // just lands where it already was.
  xfer.offset = std::min<uint64_t>(m.next_offset, xfer.blob.size());
  if (!m.success) ++snapshot_chunk_rewinds_;
  if (xfer.offset < xfer.blob.size()) {
    out->push_back(MakeSnapshotChunkFor(m.from));
  }
  // At offset == size the final chunk is in flight (or was installed); the
  // follower's kAppendResponse completes the transfer.
}

void RaftNode::HandleInstallSnapshot(const Message& m,
                                     std::vector<Message>* out) {
  Message reply;
  reply.type = MessageType::kAppendResponse;
  reply.from = id_;
  reply.to = m.from;
  reply.term = term_;
  if (m.term < term_) {
    // Stale-term rejection: chunks (and whole snapshots) from a deposed
    // leader must never touch the staging buffer or the state machine.
    ++snapshot_stale_rejections_;
    reply.success = false;
    out->push_back(std::move(reply));
    return;
  }
  if (role_ != Role::kFollower) BecomeFollower(m.term, m.from);
  leader_hint_ = m.from;
  ResetElectionTimer();

  if (m.snapshot_index <= last_applied_) {
    // Stale or duplicated: everything the snapshot covers is applied here
    // already (this also swallows duplicated chunks of a transfer that
    // completed). Installing it anyway would rewind last_applied_ and
    // re-apply entries, so acknowledge progress and do nothing.
    if (snapshot_staging_.index == m.snapshot_index) {
      snapshot_staging_ = SnapshotStaging();
    }
    reply.success = true;
    reply.match_index = last_applied_;
    out->push_back(std::move(reply));
    return;
  }

  if (m.snapshot_xfer != 0) {
    // One chunk of a chunked transfer: splice it into the staging buffer
    // at its offset, ack the receive cursor, and install only when the
    // final byte lands.
    Message ack;
    ack.type = MessageType::kSnapshotChunkAck;
    ack.from = id_;
    ack.to = m.from;
    ack.term = term_;
    ack.snapshot_xfer = m.snapshot_xfer;
    // A transfer's identity is (leader, term, xfer id, snapshot index) —
    // ALL four. Leader-side xfer ids restart from zero after a process
    // restart, so a deposed leader's id can collide with its next life's;
    // without the term in the key, a chunk of the new transfer could
    // splice into bytes staged by the abandoned one.
    const bool same_transfer = snapshot_staging_.xfer == m.snapshot_xfer &&
                               snapshot_staging_.from == m.from &&
                               snapshot_staging_.from_term == m.term &&
                               snapshot_staging_.index == m.snapshot_index;
    if (!same_transfer) {
      if (m.snapshot_offset != 0) {
        // Mid-blob chunk of a transfer we are not staging (stale transfer
        // id, or our staging was lost in a restart): refuse and ask the
        // leader to rewind to 0.
        ++snapshot_stale_rejections_;
        ack.success = false;
        ack.next_offset = 0;
        out->push_back(std::move(ack));
        return;
      }
      // A transfer begins (replacing any stale staging).
      snapshot_staging_ = SnapshotStaging();
      snapshot_staging_.xfer = m.snapshot_xfer;
      snapshot_staging_.from = m.from;
      snapshot_staging_.from_term = m.term;
      snapshot_staging_.index = m.snapshot_index;
      snapshot_staging_.total = m.snapshot_total;
    }
    SnapshotStaging& staging = snapshot_staging_;
    if (m.snapshot_offset > staging.data.size()) {
      // Gap — a chunk was lost or reordered past us. Resume from the
      // cursor instead of restarting the blob.
      ack.success = false;
      ack.next_offset = staging.data.size();
      out->push_back(std::move(ack));
      return;
    }
    if (m.snapshot_offset < staging.data.size()) {
      // Duplicate of bytes already staged (the transport duplicates
      // messages by design): re-ack the cursor, idempotently.
      ack.success = true;
      ack.next_offset = staging.data.size();
      out->push_back(std::move(ack));
      return;
    }
    staging.data += m.snapshot_state;
    ++snapshot_chunks_received_;
    if (!m.snapshot_last) {
      ack.success = true;
      ack.next_offset = staging.data.size();
      out->push_back(std::move(ack));
      return;
    }
    // Final chunk: the blob is complete; fall through to the install.
    std::string blob = std::move(staging.data);
    snapshot_staging_ = SnapshotStaging();
    InstallSnapshotBlob(m, blob, out);
    return;
  }

  InstallSnapshotBlob(m, m.snapshot_state, out);
}

void RaftNode::InstallSnapshotBlob(const Message& m, const std::string& state,
                                   std::vector<Message>* out) {
  Message reply;
  reply.type = MessageType::kAppendResponse;
  reply.from = id_;
  reply.to = m.from;
  reply.term = term_;

  // A snapshotted prefix is committed on a quorum, so a local suffix whose
  // term lines up at the snapshot point can be kept; anything else (or a
  // log that ends short of the snapshot) is discarded wholesale.
  const bool retain_suffix = m.snapshot_index <= LastLogIndex() &&
                             m.snapshot_index > log_base_index_ &&
                             TermAt(m.snapshot_index) == m.snapshot_term;
  if (retain_suffix) {
    log_.erase(log_.begin(),
               log_.begin() + (m.snapshot_index - log_base_index_));
  } else {
    log_.clear();
    if (persistence_ != nullptr) {
      // Drop journaled entries above the old base before the watermark
      // record jumps the WAL's expected next index past the snapshot.
      NotePersistError(persistence_->TruncateSuffix(log_base_index_ + 1));
    }
  }
  log_base_index_ = m.snapshot_index;
  log_base_term_ = m.snapshot_term;
  log_base_aux_ = m.snapshot_aux;
  if (persistence_ != nullptr) {
    NotePersistError(persistence_->PersistWatermark(
        m.snapshot_index, m.snapshot_term, m.snapshot_aux));
  }
  // The embedder rebuilds its state machine from shared storage (or the
  // blob); entries the snapshot covers must never be applied again.
  if (install_snapshot_fn_) {
    install_snapshot_fn_(m.snapshot_index, m.snapshot_aux, state);
  }
  apply_queue_.clear();
  apply_queue_bytes_ = 0;
  last_applied_ = m.snapshot_index;
  commit_index_ =
      std::max(std::min(commit_index_, LastLogIndex()), m.snapshot_index);
  if (m.leader_commit > commit_index_) {
    commit_index_ = std::min<uint64_t>(m.leader_commit, LastLogIndex());
  }
  ++snapshots_installed_;
  reply.success = true;
  reply.match_index = m.snapshot_index;
  out->push_back(std::move(reply));
}

// ---------------------------------------------------------------------------
// RaftCluster
// ---------------------------------------------------------------------------

RaftCluster::RaftCluster(int num_nodes, RaftOptions options, uint64_t seed)
    : options_(options), rng_(seed), disconnected_(num_nodes, false) {
  retransmits_.Bind(
      metrics::OrDefault(options_.registry)->Counter("raft.retransmits"));
  nodes_.reserve(num_nodes);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<RaftNode>(
        i, num_nodes, options, seed * 1000 + i, ApplyFn()));
  }
}

void RaftCluster::SetApplyFn(int node, ApplyFn fn) {
  nodes_[node] = std::make_unique<RaftNode>(
      node, static_cast<int>(nodes_.size()), options_,
      /*seed=*/rng_.Next(), std::move(fn));
}

void RaftCluster::AttachPersistence(int node, RaftPersistence* persistence,
                                    const RecoveredState* recovered) {
  nodes_[node]->AttachPersistence(persistence, recovered);
}

void RaftCluster::SetSnapshotHooks(int node, SnapshotStateFn state_fn,
                                   InstallSnapshotFn install_fn) {
  nodes_[node]->SetSnapshotHooks(std::move(state_fn), std::move(install_fn));
}

void RaftCluster::RestartNode(int node, ApplyFn fn) {
  // A fresh object loses all volatile state, exactly like a process
  // restart; the caller re-attaches persistence and hooks, then Reconnects.
  disconnected_[node] = true;
  SetApplyFn(node, std::move(fn));
}

Status RaftCluster::SyncAll() {
  // Skip crashed/partitioned members: an acked write is durable on every
  // live replica, and a quorum of those synced WALs is what recovery
  // elects from — a stale rejoiner cannot win an election (vote log check),
  // so acked writes survive any single-node loss.
  for (auto& node : nodes_) {
    if (disconnected_[node->id()]) continue;
    LOGSTORE_RETURN_IF_ERROR(node->SyncWal());
  }
  return Status::OK();
}

void RaftCluster::MaybeRetransmit(const Message& message) {
  // The in-process analogue of a sender retransmitting after an ack
  // timeout: the dropped RPC re-enters the network after a jittered
  // exponential backoff, carrying its spent budget. Safe for every raft
  // message type — the transport already injects duplication, so receivers
  // are idempotent by construction.
  if (options_.rpc_max_retries <= 0) return;
  if (message.transport_attempt >= options_.rpc_max_retries) return;
  RetryPolicy policy;
  policy.max_retries = 1;  // one step of the schedule at a time
  policy.base_delay = options_.rpc_backoff_base_rounds;
  policy.max_delay = options_.rpc_backoff_max_rounds;
  policy.jitter = options_.rpc_backoff_jitter;
  double delay = static_cast<double>(options_.rpc_backoff_base_rounds);
  for (int i = 0; i < message.transport_attempt; ++i) delay *= 2.0;
  delay = std::min(delay, static_cast<double>(options_.rpc_backoff_max_rounds));
  if (policy.jitter > 0.0) {
    delay *= 1.0 - policy.jitter + 2.0 * policy.jitter * rng_.NextDouble();
  }
  const int64_t rounds = std::max<int64_t>(1, static_cast<int64_t>(delay));
  if (options_.rpc_retry_deadline_rounds > 0 &&
      message.transport_delay + rounds > options_.rpc_retry_deadline_rounds) {
    return;  // deadline: give up; the protocol's own timers take over
  }
  DelayedMessage retry;
  retry.message = message;
  ++retry.message.transport_attempt;
  retry.message.transport_delay += rounds;
  retry.rounds_left = static_cast<int>(rounds);
  delayed_.push_back(std::move(retry));
  ++retransmits_;
}

void RaftCluster::DeliverAll(std::vector<Message>* messages) {
  // Messages held back by the reorder injector re-enter one delivery batch
  // (= one Tick step) later, so reordering is bounded, not starvation.
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (--it->rounds_left <= 0) {
      messages->push_back(std::move(it->message));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }
  // Deliver rounds until quiescent, so RPCs and their cascading responses
  // settle within one logical step.
  int rounds = 0;
  while (!messages->empty() && rounds++ < 64) {
    std::vector<Message> next;
    for (const Message& m : *messages) {
      if (disconnected_[m.from] || disconnected_[m.to]) continue;
      if (drop_rate_ > 0.0 && rng_.NextDouble() < drop_rate_) {
        MaybeRetransmit(m);
        continue;
      }
      if (reorder_rate_ > 0.0 && rng_.NextDouble() < reorder_rate_) {
        delayed_.push_back({m, static_cast<int>(rng_.Uniform(3)) + 1});
        continue;
      }
      nodes_[m.to]->Receive(m, &next);
      if (duplicate_rate_ > 0.0 && rng_.NextDouble() < duplicate_rate_) {
        nodes_[m.to]->Receive(m, &next);
      }
    }
    *messages = std::move(next);
  }
}

void RaftCluster::Tick(int ms) {
  const int step = 10;
  for (int elapsed = 0; elapsed < ms; elapsed += step) {
    std::vector<Message> messages;
    for (auto& node : nodes_) {
      if (!disconnected_[node->id()]) {
        node->Tick(std::min(step, ms - elapsed), &messages);
      }
    }
    DeliverAll(&messages);
  }
}

int RaftCluster::leader() const {
  for (const auto& node : nodes_) {
    if (node->role() == Role::kLeader && !disconnected_[node->id()]) {
      return node->id();
    }
  }
  return -1;
}

GroupHealth RaftCluster::Health() const {
  GroupHealth health;
  health.leader = leader();
  for (const auto& node : nodes_) {
    ReplicaHealth replica;
    replica.node = node->id();
    replica.connected = !disconnected_[node->id()];
    replica.persist_ok = node->persist_error().ok();
    replica.role = node->role();
    replica.last_applied = node->last_applied();
    if (replica.connected) {
      ++health.connected;
      if (!replica.persist_ok) ++health.wedged_connected;
    }
    health.replicas.push_back(std::move(replica));
  }
  return health;
}

int RaftCluster::WaitForLeader(int max_ms) {
  for (int elapsed = 0; elapsed < max_ms; elapsed += 10) {
    if (leader() >= 0) return leader();
    Tick(10);
  }
  return leader();
}

void RaftCluster::Disconnect(int node) { disconnected_[node] = true; }

void RaftCluster::Reconnect(int node) { disconnected_[node] = false; }

Status RaftCluster::Propose(std::string payload) {
  const int l = leader();
  if (l < 0) return Status::Unavailable("no leader");
  return nodes_[l]->Propose(std::move(payload));
}

}  // namespace logstore::consensus
