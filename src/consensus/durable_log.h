#ifndef LOGSTORE_CONSENSUS_DURABLE_LOG_H_
#define LOGSTORE_CONSENSUS_DURABLE_LOG_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "consensus/raft_persistence.h"

namespace logstore::consensus {

// When appended records reach the disk.
enum class SyncPolicy {
  // fsync inside every AppendEntry/PersistHardState: an acknowledged write
  // survives a crash of every replica. Highest latency.
  kPerRecord,
  // fsync only on Sync() — the group-commit point the embedder chooses
  // (RaftNode: end of tick; Worker: before acking a client write). Records
  // appended since the last Sync() may be lost or torn by a crash.
  kOnSync,
  // Never fsync; the OS flushes eventually. A process crash keeps the data,
  // a machine crash can lose or tear any suffix.
  kNever,
};

struct DurableLogOptions {
  SyncPolicy sync_policy = SyncPolicy::kPerRecord;
  // Active segment is sealed and a new one started past this size.
  uint64_t segment_target_bytes = 4ull << 20;
  // BtrLog-style group commit with a dedicated syncer thread: when > 0 (and
  // the policy is kOnSync), Sync() parks the caller on a background syncer
  // instead of flushing inline. The syncer issues ONE fsync covering every
  // parked caller once max_sync_batch Sync()s are pending or the oldest has
  // waited this long — trading bounded latency for fewer, fuller batches.
  // 0 (the default) keeps the inline group-commit behavior, where batching
  // only happens when callers contend on the log mutex.
  // `sync_batches`/`fsyncs_issued` accounting is identical in both modes:
  // every Sync() counts one batch; only real flushes count an fsync.
  int64_t max_sync_delay_us = 0;
  // Pending Sync() callers that trigger an immediate flush (>= 1).
  uint32_t max_sync_batch = 32;
  // Registry receiving the `wal.*` aggregates; nullptr means the
  // process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

// How SimulateCrash mangles the un-fsynced suffix of the active segment.
enum class CrashMode {
  // Everything not covered by the last fsync disappears.
  kDropUnsynced,
  // The file ends at a random byte inside the un-fsynced suffix: the final
  // record is partial (a torn write).
  kTornWrite,
  // One random bit inside the final record flips (media/controller
  // corruption); length is preserved so only the CRC catches it.
  kBitFlipTail,
  // The final record keeps only its first half.
  kHalveTailRecord,
};

// A file-backed, segmented, CRC-framed write-ahead log implementing
// RaftPersistence. One directory per raft replica:
//
//   wal-000001.seg  wal-000002.seg  ...   (recovered in name order)
//
// Record framing: fixed32 masked crc | fixed32 len | type byte | body,
// with the CRC covering len+type+body so a corrupt length can never cause
// an over-read. Record types: hard state (term/vote), log entry
// (index/term/payload), suffix truncation marker, and archived-through
// watermark. Every segment begins with a hard-state and a watermark record
// reflecting the state at rotation, which is what makes any suffix of
// segments self-describing — and therefore makes prefix GC safe.
//
// Recovery scans all segments in order, last-writer-wins. A partial or
// CRC-failing record truncates the log at the last valid record boundary
// (torn-tail repair) instead of failing open; segments after the torn one
// are dropped.
//
// Thread-safe. Sync() group-commits: one fsync covers every record written
// before it, so a caller whose bytes an earlier concurrent Sync already
// flushed returns without issuing its own fsync (fsyncs_issued() counts
// real flushes, letting tests assert the batching).
//
// Failure model: a failed append is rolled back to the previous record
// boundary (the segment stays parseable and the next append is clean); a
// failed fsync wedges the log permanently — after fsync fails, the kernel
// may already have discarded the dirty pages, so no later "successful"
// fsync can be trusted to cover them. Reopen the directory to resume.
class DurableLog : public RaftPersistence {
 public:
  // Opens (creating the directory if needed) and recovers. Repairs a torn
  // tail in place: after Open returns, the on-disk log equals recovered().
  static Result<std::unique_ptr<DurableLog>> Open(const std::string& dir,
                                                  DurableLogOptions options = {});

  ~DurableLog() override;

  const RecoveredState& recovered() const { return recovered_; }
  const std::string& dir() const { return dir_; }

  // RaftPersistence:
  Status PersistHardState(uint64_t term, int voted_for) override;
  Status AppendEntry(uint64_t index, const LogEntry& entry) override;
  Status TruncateSuffix(uint64_t from_index) override;
  Status PersistWatermark(uint64_t index, uint64_t term, uint64_t aux) override;
  Status Sync() override;

  // --- Introspection (tests, GC assertions) ---
  struct SegmentInfo {
    std::string path;
    uint64_t seq = 0;            // from the file name
    uint64_t max_entry_index = 0;  // 0 = no entries in this segment
    bool active = false;
  };
  std::vector<SegmentInfo> segments() const;
  uint64_t unsynced_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return written_bytes_ - synced_bytes_;
  }
  // Real flushes (atomic: read by tests and monitors without the lock).
  uint64_t fsyncs_issued() const { return fsyncs_issued_.load(); }
  // Sync() group-commit points; sync_batches() - fsyncs_issued() of them
  // found their bytes already covered by a concurrent flush.
  uint64_t sync_batches() const { return sync_batches_.load(); }

  // --- Deterministic IO-error injection (tests) ---
  // The next `count` appends fail like ENOSPC. With `partial_write` the
  // first half of the record reaches the file before the failure, so the
  // rollback path (ftruncate to the last record boundary) is exercised;
  // without it the write fails before any byte lands. Either way the
  // append reports an error (never acked) and the segment stays parseable.
  void InjectAppendErrors(int count, bool partial_write);
  // The next `count` fsyncs fail like EIO; each wedges the log (fail-stop).
  void InjectSyncErrors(int count);

  // --- Deterministic crash injection (tests) ---
  // Mangles the on-disk state the way a crash at this instant could have:
  // data past the last fsync may be missing, partial, or corrupt. The
  // object is dead afterwards (every later call fails); destroy it and
  // re-Open the directory to model the process restart. With kBitFlipTail /
  // kHalveTailRecord the damage targets the newest record even if it was
  // already synced, modeling torn sector writes and media corruption.
  Status SimulateCrash(CrashMode mode, uint64_t seed);

 private:
  DurableLog(std::string dir, DurableLogOptions options);

  Status Recover();
  // The dedicated group-commit thread (max_sync_delay_us > 0): waits for
  // pending Sync() callers, flushes once the batch fills or the oldest
  // caller's delay budget expires.
  void SyncerLoop();
  bool SyncerEnabled() const { return syncer_.joinable(); }
  // Appends one framed record to the active segment, creating/rotating
  // segments as needed. `force_sync` overrides kOnSync (hard state).
  // Callers hold mu_ (all private mutators assume mu_ held).
  Status AppendRecord(uint8_t type, const std::string& body, bool force_sync);
  Status OpenActiveSegment();  // creates the next segment with header records
  Status RotateLocked();
  Status FsyncActive();
  Status DeleteSegmentsBelowWatermark();
  std::string SegmentPath(uint64_t seq) const;

  const std::string dir_;
  const DurableLogOptions options_;

  // Guards every mutable field below. fsync happens with mu_ held: a
  // concurrent Sync that queues on the mutex finds synced_bytes_ already
  // covering its records and returns without a second flush — that queuing
  // IS the group commit.
  mutable std::mutex mu_;

  RecoveredState recovered_;

  // Cached last-persisted values, re-written as the header of each new
  // segment so any retained suffix of segments recovers them.
  uint64_t term_ = 0;
  int voted_for_ = -1;
  uint64_t watermark_index_ = 0;
  uint64_t watermark_term_ = 0;
  uint64_t watermark_aux_ = 0;

  struct Segment {
    uint64_t seq = 0;
    uint64_t max_entry_index = 0;
    uint64_t size = 0;
  };
  std::vector<Segment> sealed_;  // ascending seq, excludes active
  Segment active_;
  int fd_ = -1;
  uint64_t next_entry_index_ = 1;  // index the next AppendEntry must carry

  // Crash-simulation bookkeeping for the active segment.
  uint64_t written_bytes_ = 0;      // logical size of the active segment
  uint64_t synced_bytes_ = 0;       // covered by the last fsync
  uint64_t last_record_offset_ = 0;  // start of the newest record
  bool dead_ = false;               // SimulateCrash was called

  // Background-syncer state (all under mu_ except the thread handle, which
  // only Open and the destructor touch).
  std::thread syncer_;
  std::condition_variable syncer_cv_;        // wakes the syncer
  std::condition_variable sync_waiters_cv_;  // wakes parked Sync() callers
  bool syncer_stop_ = false;
  uint64_t pending_syncs_ = 0;  // parked callers awaiting the next flush
  std::chrono::steady_clock::time_point first_pending_{};

  metrics::Counter fsyncs_issued_{0};
  metrics::Counter sync_batches_{0};
  metrics::Counter records_appended_{0};
  Status failed_ = Status::OK();  // latched by a failed fsync (fail-stop)
  int inject_append_errors_ = 0;
  bool inject_append_partial_ = false;
  int inject_sync_errors_ = 0;
};

}  // namespace logstore::consensus

#endif  // LOGSTORE_CONSENSUS_DURABLE_LOG_H_
