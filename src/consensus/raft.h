#ifndef LOGSTORE_CONSENSUS_RAFT_H_
#define LOGSTORE_CONSENSUS_RAFT_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/retry.h"
#include "common/status.h"
#include "consensus/raft_persistence.h"

namespace logstore::consensus {

// ---------------------------------------------------------------------------
// A Raft implementation (Ongaro & Ousterhout '14) with the backpressure
// flow control (BFC) integration of §4.2: the two blocking points of the
// protocol — WAL synchronization and WAL apply — are fronted by bounded
// queues (`sync_queue`, `apply_queue`). When a queue is at its limit the
// node rejects further input, propagating backpressure upstream until the
// client's write rate is limited, instead of letting internal queues
// "explode" and make the node unresponsive.
//
// Persistent state (term, vote, log) can be backed by a RaftPersistence
// (see durable_log.h): the node notifies it on every term/vote change and
// log append/truncate, so a real process restart reloads state from disk
// via AttachPersistence. Without one attached, behavior is the original
// in-memory simulation.
//
// The log carries a base offset (log_base_index_/log_base_term_): entries
// at or below the base have been archived to the object store (the durable
// watermark) and are dropped from memory and from WAL segments. A follower
// whose log ends below a leader's base is repaired with an InstallSnapshot
// RPC: the snapshot is the base itself (index/term/embedder cookie) plus an
// opaque state blob from the embedder — for LogStore the heavy state lives
// in OSS-resident LogBlocks (Taurus-style catch-up from shared storage), so
// the blob stays small and the RPC mostly re-points the follower at the
// shared substrate. This is what lets the embedder advance the watermark
// past a slow, partitioned or dead replica instead of pinning WAL growth on
// the slowest member.
//
// The implementation is tick-driven and single-threaded per cluster: a
// harness (RaftCluster) advances virtual time and shuttles messages, which
// keeps elections, replication and failure tests fully deterministic.
// ---------------------------------------------------------------------------

enum class MessageType {
  kRequestVote,
  kVoteResponse,
  kAppendEntries,
  kAppendResponse,
  kInstallSnapshot,
  // Acknowledges one chunk of a chunked InstallSnapshot transfer; carries
  // the follower's receive cursor so the leader can resume mid-blob after
  // a loss, reorder, or reconnect. The FINAL chunk is acknowledged with a
  // normal kAppendResponse (the install itself), like an unchunked
  // snapshot.
  kSnapshotChunkAck,
};

struct LogEntry {
  uint64_t term = 0;
  std::string payload;
};

struct Message {
  MessageType type = MessageType::kRequestVote;
  int from = -1;
  int to = -1;
  uint64_t term = 0;

  // kRequestVote
  uint64_t last_log_index = 0;
  uint64_t last_log_term = 0;
  // kVoteResponse
  bool vote_granted = false;
  // kAppendEntries
  uint64_t prev_log_index = 0;
  uint64_t prev_log_term = 0;
  std::vector<LogEntry> entries;
  uint64_t leader_commit = 0;
  // kAppendResponse (also acknowledges kInstallSnapshot)
  bool success = false;
  uint64_t match_index = 0;
  bool backpressured = false;  // rejection came from a full apply_queue
  // kInstallSnapshot: the leader's log base and the embedder state blob.
  uint64_t snapshot_index = 0;
  uint64_t snapshot_term = 0;
  uint64_t snapshot_aux = 0;
  std::string snapshot_state;
  // Chunked InstallSnapshot framing. `snapshot_state` holds the chunk's
  // bytes, `snapshot_offset` its position in the blob, `snapshot_total` the
  // full blob size, and `snapshot_last` marks the chunk whose receipt
  // triggers the install. `snapshot_xfer` identifies the transfer: a new
  // leader snapshot (or a restarted transfer) gets a fresh id, and chunks
  // carrying a stale id or an older term are rejected rather than spliced
  // into the current staging buffer. Unchunked snapshots are the
  // degenerate single-chunk case (offset 0, last = true).
  uint64_t snapshot_xfer = 0;
  uint64_t snapshot_offset = 0;
  uint64_t snapshot_total = 0;
  bool snapshot_last = true;
  // kSnapshotChunkAck: where the follower wants the next byte. `success`
  // false asks the leader to rewind (gap or discarded staging).
  uint64_t next_offset = 0;

  // Transport bookkeeping (not protocol state): retransmit attempt count
  // and cumulative backoff rounds already spent on this RPC, carried so a
  // retransmitted copy that is dropped again knows its remaining budget.
  int transport_attempt = 0;
  int64_t transport_delay = 0;
};

enum class Role { kFollower, kCandidate, kLeader };

struct RaftOptions {
  int election_timeout_min_ms = 150;
  int election_timeout_max_ms = 300;
  int heartbeat_interval_ms = 50;
  int max_entries_per_append = 64;

  // BFC limits (§4.2): both item count and byte size are monitored.
  size_t sync_queue_max_items = 1024;
  uint64_t sync_queue_max_bytes = 8ull << 20;
  size_t apply_queue_max_items = 1024;
  uint64_t apply_queue_max_bytes = 8ull << 20;

  // Entries applied to the state machine per tick; models apply-path IO
  // throughput. 0 = unlimited.
  int apply_per_tick = 0;

  // Pipeline window: the leader stops draining the sync queue when the log
  // is this many entries ahead of the commit index. This is what couples a
  // slow follower (stalled commit) back to the client: the window fills,
  // then the sync queue fills, then Propose returns ResourceExhausted.
  uint64_t max_uncommitted_entries = 4096;

  // §3: "it can store only WAL on other replicas" — a WAL-only replica
  // participates in replication and voting but never applies entries to a
  // row store.
  bool apply_enabled = true;

  // Chunked InstallSnapshot: state blobs larger than this are shipped in
  // offset-framed chunks with per-chunk acks, so an embedder with large
  // per-replica state can catch up across a lossy link without one giant
  // RPC. 0 = unchunked (single-message snapshots, the original behavior;
  // LogStore workers ship empty blobs, so they never chunk either way).
  size_t snapshot_chunk_bytes = 0;

  // Transport retransmit schedule (RetryPolicy semantics, in delivery
  // rounds): a dropped RPC is retransmitted after an exponential backoff
  // with jitter, up to max_retries extra attempts or the deadline in
  // cumulative backoff rounds. Raft RPCs are idempotent by construction —
  // the transport already injects the duplication a retry layer must
  // tolerate — so retransmission never violates protocol safety; it only
  // turns an effective loss rate p into p^(1+retries). max_retries 0
  // disables (the original fire-and-forget transport).
  int rpc_max_retries = 3;
  int rpc_backoff_base_rounds = 1;
  int rpc_backoff_max_rounds = 8;
  double rpc_backoff_jitter = 0.5;
  int64_t rpc_retry_deadline_rounds = 32;

  // Registry receiving the `raft.*` aggregates; nullptr means the
  // process-wide default.
  metrics::MetricRegistry* registry = nullptr;
};

// Applies committed entries; the worker's row store implements this.
using ApplyFn = std::function<void(uint64_t index, const std::string& payload)>;

// Produces the opaque state blob a leader ships in InstallSnapshot: the
// state machine's content through `index` (whose watermark cookie is
// `aux`). For LogStore the rows below the watermark already live in OSS
// LogBlocks, so the blob is typically empty — the snapshot re-points the
// follower at shared storage rather than copying state.
using SnapshotStateFn = std::function<std::string(uint64_t index, uint64_t aux)>;

// Installs a received snapshot: REPLACES the state machine's content with
// the state through `index` described by (`aux`, `state`). Called before
// last_applied jumps to `index`; entries above it re-apply normally.
using InstallSnapshotFn =
    std::function<void(uint64_t index, uint64_t aux, const std::string& state)>;

class RaftNode {
 public:
  RaftNode(int id, int cluster_size, RaftOptions options, uint64_t seed,
           ApplyFn apply_fn);

  // Installs the durability layer. With `recovered` non-null, term, vote,
  // log and base are reloaded from it first (process-restart path);
  // commit/applied restart at the base and committed entries re-commit and
  // re-apply through the normal protocol once a leader emerges. Call before
  // the first Tick.
  void AttachPersistence(RaftPersistence* persistence,
                         const RecoveredState* recovered);

  // Installs the snapshot callbacks (both optional). Without a state fn the
  // leader ships an empty blob; without an install fn the follower only
  // adopts the log base. Call before the first Tick.
  void SetSnapshotHooks(SnapshotStateFn state_fn, InstallSnapshotFn install_fn);

  // Client write: enqueue a payload for replication. Fails with
  // kUnavailable when not leader, kResourceExhausted when the sync queue is
  // at its BFC limit.
  Status Propose(std::string payload);

  // Advances virtual time by `ms`, producing outbound messages.
  void Tick(int ms, std::vector<Message>* out);

  // Delivers one inbound message, producing responses.
  void Receive(const Message& message, std::vector<Message>* out);

  // Declares entries through `index` archived: persists a watermark record
  // (with the embedder cookie `aux`), garbage-collects WAL segments wholly
  // below it, and drops the in-memory prefix. Clamped to last_applied().
  Status AdvanceWatermark(uint64_t index, uint64_t aux);

  // Group-commit point: flushes WAL appends buffered under kOnSync. Call
  // before acknowledging a client write. Returns the first persistence
  // error this node has seen (a failed entry append wedges the node until
  // it is restarted over a reopened WAL — acking on top of a diverged
  // journal would break the durability promise).
  Status SyncWal();

  int id() const { return id_; }
  Role role() const { return role_; }
  uint64_t term() const { return term_; }
  uint64_t commit_index() const { return commit_index_; }
  uint64_t last_applied() const { return last_applied_; }
  // Index of the newest entry (log indexes are global and 1-based; entries
  // at or below log_base_index() have been archived and dropped).
  uint64_t log_size() const { return log_base_index_ + log_.size(); }
  uint64_t log_base_index() const { return log_base_index_; }
  uint64_t log_base_aux() const { return log_base_aux_; }
  // How many snapshots this node has installed (tests).
  uint64_t snapshots_installed() const { return snapshots_installed_; }
  // How many snapshots this node has shipped as leader (tests).
  uint64_t snapshots_sent() const { return snapshots_sent_; }
  // Chunked-transfer observability (tests): chunks shipped as leader,
  // chunks accepted as follower, and mid-blob resumes (a transfer that
  // continued from a non-zero offset after a loss/reorder/reconnect).
  uint64_t snapshot_chunks_sent() const { return snapshot_chunks_sent_; }
  uint64_t snapshot_chunks_received() const {
    return snapshot_chunks_received_;
  }
  uint64_t snapshot_chunk_rewinds() const { return snapshot_chunk_rewinds_; }
  // Snapshot traffic refused as stale: chunks from a deposed leader's term
  // and mid-blob chunks whose transfer the follower no longer stages (so a
  // later transfer can never splice a dead transfer's bytes).
  uint64_t snapshot_stale_rejections() const {
    return snapshot_stale_rejections_;
  }
  const LogEntry& log_at(uint64_t index) const {
    return log_[index - log_base_index_ - 1];
  }
  size_t sync_queue_depth() const { return sync_queue_.size(); }
  size_t apply_queue_depth() const { return apply_queue_.size(); }
  int leader_hint() const { return leader_hint_; }
  // First persistence failure this node has latched (sticky until the
  // embedder rebuilds the node over a reopened WAL). A non-OK value means
  // the replica is wedged fail-stop: it will never acknowledge another
  // write, and a health monitor should schedule its repair or failover.
  const Status& persist_error() const { return persist_error_; }

  // Simulated crash/restart: volatile state is lost, persistent state
  // (term, vote, log) survives.
  void Restart();

 private:
  void BecomeFollower(uint64_t term, int leader_hint);
  void BecomeCandidate(std::vector<Message>* out);
  void BecomeLeader(std::vector<Message>* out);
  void BroadcastAppendEntries(std::vector<Message>* out);
  Message MakeAppendFor(int peer) const;
  Message MakeSnapshotFor(int peer);
  // One chunk message of the peer's in-flight transfer, at its cursor.
  Message MakeSnapshotChunkFor(int peer);
  void HandleInstallSnapshot(const Message& m, std::vector<Message>* out);
  void HandleSnapshotChunkAck(const Message& m, std::vector<Message>* out);
  // Installs a fully-received blob (unchunked, or the staging buffer after
  // the final chunk): adopts the log base, resets the state machine, and
  // emits the kAppendResponse acknowledging the install.
  void InstallSnapshotBlob(const Message& m, const std::string& state,
                           std::vector<Message>* out);
  void AdvanceCommit();
  void DrainApplyQueue(int budget);
  void ResetElectionTimer();
  uint64_t LastLogIndex() const { return log_base_index_ + log_.size(); }
  uint64_t LastLogTerm() const {
    return log_.empty() ? log_base_term_ : log_.back().term;
  }
  uint64_t TermAt(uint64_t index) const {
    return index == log_base_index_ ? log_base_term_
                                    : log_[index - log_base_index_ - 1].term;
  }
  // Mirror a term/vote change to the durability layer (no-op when none).
  void PersistHardState();
  // Latches the first persistence failure; SyncWal surfaces it so a write
  // whose journaling failed is never acknowledged.
  void NotePersistError(const Status& s);

  const int id_;
  const int cluster_size_;
  const RaftOptions options_;
  Random rng_;
  ApplyFn apply_fn_;
  SnapshotStateFn snapshot_state_fn_;
  InstallSnapshotFn install_snapshot_fn_;
  RaftPersistence* persistence_ = nullptr;  // not owned; may be null
  // First persistence failure; sticky until the embedder rebuilds the node
  // over a reopened WAL. SyncWal reports it so a wedged journal blocks acks.
  Status persist_error_ = Status::OK();

  // Persistent state.
  uint64_t term_ = 0;
  int voted_for_ = -1;
  // In-memory suffix of the log: log_[i] holds global index
  // log_base_index_ + 1 + i.
  std::vector<LogEntry> log_;
  uint64_t log_base_index_ = 0;
  uint64_t log_base_term_ = 0;
  // Embedder cookie persisted with the watermark/snapshot at the base.
  uint64_t log_base_aux_ = 0;

  // Volatile state.
  Role role_ = Role::kFollower;
  int leader_hint_ = -1;
  uint64_t commit_index_ = 0;
  uint64_t last_applied_ = 0;
  int election_elapsed_ms_ = 0;
  int election_timeout_ms_ = 0;
  int heartbeat_elapsed_ms_ = 0;
  int votes_received_ = 0;

  // Leader state.
  std::vector<uint64_t> next_index_;
  std::vector<uint64_t> match_index_;
  // Atomic (metrics::Counter): ticked on the embedder's control thread but
  // read by test oracles and the monitor from other threads.
  metrics::Counter snapshots_installed_{0};
  metrics::Counter snapshots_sent_{0};
  metrics::Counter snapshot_chunks_sent_{0};
  metrics::Counter snapshot_chunks_received_{0};
  metrics::Counter snapshot_chunk_rewinds_{0};
  metrics::Counter snapshot_stale_rejections_{0};

  // Leader-side chunked transfers, one per peer: the frozen blob being
  // shipped and the send cursor. Frozen at transfer start — if the base
  // advances mid-transfer, the NEXT snapshot trigger starts a fresh
  // transfer with a new id and the follower discards its staging.
  struct SnapshotTransfer {
    uint64_t xfer = 0;
    uint64_t index = 0;
    uint64_t term_at = 0;
    uint64_t aux = 0;
    std::string blob;
    uint64_t offset = 0;  // next byte to ship
  };
  std::map<int, SnapshotTransfer> snapshot_xfers_;
  uint64_t next_snapshot_xfer_ = 0;

  // Follower-side staging for one in-flight chunked transfer. Survives a
  // partition (resume-on-reconnect); replaced when a chunk with a newer
  // transfer id arrives at offset 0; never consulted across terms (a
  // stale-term chunk is rejected before reaching it).
  struct SnapshotStaging {
    uint64_t xfer = 0;  // 0 = none
    int from = -1;
    uint64_t from_term = 0;
    uint64_t index = 0;
    uint64_t total = 0;
    std::string data;  // data.size() is the receive cursor
  };
  SnapshotStaging snapshot_staging_;

  // BFC queues. sync_queue: payloads accepted from clients but not yet
  // appended+broadcast. apply_queue: committed entries awaiting apply.
  std::deque<std::string> sync_queue_;
  uint64_t sync_queue_bytes_ = 0;
  std::deque<std::pair<uint64_t, std::string>> apply_queue_;
  uint64_t apply_queue_bytes_ = 0;
};

// Per-replica health, exported by RaftCluster::Health(). This is the raw
// signal layer the embedder (cluster::Worker) aggregates into a
// WorkerHealth report for the controller's failover decision.
struct ReplicaHealth {
  int node = -1;
  bool connected = false;   // member of the group (not Disconnect()ed)
  bool persist_ok = true;   // no sticky persist_error_ latched
  Role role = Role::kFollower;
  uint64_t last_applied = 0;
};

struct GroupHealth {
  int leader = -1;               // -1: no leader among connected members
  int connected = 0;             // connected member count
  int wedged_connected = 0;      // connected members with a persist error
  std::vector<ReplicaHealth> replicas;

  // A group can durably acknowledge writes only with a leader, a connected
  // majority, and no wedged member inside that majority (SyncAll flushes
  // every connected WAL, so one wedged connected replica fails every ack).
  bool CanAck(int cluster_size) const {
    return leader >= 0 && wedged_connected == 0 &&
           connected >= cluster_size / 2 + 1;
  }
};

// Harness owning a full cluster: routes messages, injects drops, duplicates
// and bounded reordering, advances time. Deterministic given a seed.
class RaftCluster {
 public:
  RaftCluster(int num_nodes, RaftOptions options, uint64_t seed = 42);

  // Per-node apply callbacks must be installed before first Tick.
  void SetApplyFn(int node, ApplyFn fn);

  // Installs a node's durability layer (after SetApplyFn — installing an
  // apply fn recreates the node and would discard the attachment).
  void AttachPersistence(int node, RaftPersistence* persistence,
                         const RecoveredState* recovered);

  // Installs a node's snapshot callbacks (after SetApplyFn, same reason).
  void SetSnapshotHooks(int node, SnapshotStateFn state_fn,
                        InstallSnapshotFn install_fn);

  // Replaces the node with a fresh object (volatile state lost), modeling a
  // single replica's process restart. Re-attach persistence and snapshot
  // hooks afterwards; the node stays disconnected until Reconnect.
  void RestartNode(int node, ApplyFn fn);

  // Advances all nodes by `ms` (in steps), delivering messages in between.
  void Tick(int ms);

  // Runs ticks until a leader exists (or `max_ms` elapses). Returns leader
  // id or -1.
  int WaitForLeader(int max_ms = 10000);

  // Proposes on the current leader.
  Status Propose(std::string payload);

  // Flushes every CONNECTED node's WAL (group commit); first error wins.
  // Call before acknowledging a write so acked ⇒ durable under kOnSync too.
  // Disconnected replicas are skipped: a crashed member must not block the
  // surviving quorum from acknowledging writes.
  Status SyncAll();

  RaftNode& node(int id) { return *nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int leader() const;

  // Aggregated per-replica health: connectivity, leader presence, and
  // sticky persistence errors. Cheap; safe to call every control cycle.
  GroupHealth Health() const;

  // Fault injection.
  void Disconnect(int node);
  void Reconnect(int node);
  bool disconnected(int node) const { return disconnected_[node]; }
  bool IsConnected(int node) const { return !disconnected_[node]; }
  // Fraction of messages dropped on otherwise-connected links.
  void SetDropRate(double rate) { drop_rate_ = rate; }
  // Fraction of delivered messages that are delivered twice.
  void SetDuplicateRate(double rate) { duplicate_rate_ = rate; }
  // Fraction of messages held back and re-injected 1–3 delivery rounds
  // later (bounded reordering).
  void SetReorderRate(double rate) { reorder_rate_ = rate; }

  // RPCs retransmitted by the transport retry layer after an injected drop
  // (tests: proves the backoff path ran, and bounds it).
  uint64_t retransmits() const { return retransmits_; }

 private:
  void DeliverAll(std::vector<Message>* messages);
  // Transport retry: schedules a dropped message for retransmission after
  // a jittered exponential backoff, if its budget allows.
  void MaybeRetransmit(const Message& message);

  RaftOptions options_;
  Random rng_;
  std::vector<std::unique_ptr<RaftNode>> nodes_;
  std::vector<bool> disconnected_;
  double drop_rate_ = 0.0;
  double duplicate_rate_ = 0.0;
  double reorder_rate_ = 0.0;
  metrics::Counter retransmits_{0};
  struct DelayedMessage {
    Message message;
    int rounds_left = 0;
  };
  std::vector<DelayedMessage> delayed_;
};

}  // namespace logstore::consensus

#endif  // LOGSTORE_CONSENSUS_RAFT_H_
