#ifndef LOGSTORE_CONSENSUS_RAFT_PERSISTENCE_H_
#define LOGSTORE_CONSENSUS_RAFT_PERSISTENCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace logstore::consensus {

struct LogEntry;

// State reloaded from a durable log on restart. `entries[i]` carries log
// index `base_index + 1 + i`; entries at or below `base_index` were archived
// to the object store before the crash (the durable watermark) and are never
// replayed into the row store again.
struct RecoveredState {
  uint64_t term = 0;
  int voted_for = -1;
  // Archived-through watermark: index/term of the newest compacted entry.
  uint64_t base_index = 0;
  uint64_t base_term = 0;
  // Opaque embedder cookie persisted with the watermark (the data builder's
  // object-key sequence, so recovered uploads never collide with keys
  // already on the store).
  uint64_t watermark_aux = 0;
  std::vector<LogEntry> entries;
  // Bytes dropped from the tail of the newest segment because a final
  // record was partial or failed its CRC (torn write repair).
  uint64_t repaired_tail_bytes = 0;
};

// The durability boundary of the write path: RaftNode calls these on every
// term/vote change and log mutation, so that a real process restart (unlike
// the in-memory Restart() simulation) reloads term, vote and log from disk.
// All calls happen on the single thread driving the node.
class RaftPersistence {
 public:
  virtual ~RaftPersistence() = default;

  // Term/vote. Must be durable before any message that depends on it is
  // sent (a vote granted then forgotten can elect two leaders).
  virtual Status PersistHardState(uint64_t term, int voted_for) = 0;

  // Appends the entry at `index` (always last_index + 1 after any pending
  // truncation).
  virtual Status AppendEntry(uint64_t index, const LogEntry& entry) = 0;

  // Discards entries with index >= `from_index` (leader-forced conflict
  // resolution on a follower).
  virtual Status TruncateSuffix(uint64_t from_index) = 0;

  // Records that entries through `index` (which has term `term`) are
  // redundant with LogBlocks on the object store, then deletes log segments
  // wholly below the watermark. `index` may jump PAST the end of the
  // journaled log (an InstallSnapshot on a lagging follower): the
  // implementation must accept the gap and expect the next AppendEntry at
  // `index + 1` — the skipped entries live in shared storage, not the WAL.
  virtual Status PersistWatermark(uint64_t index, uint64_t term,
                                  uint64_t aux) = 0;

  // Flushes buffered appends per the sync policy (group commit point).
  virtual Status Sync() = 0;
};

}  // namespace logstore::consensus

#endif  // LOGSTORE_CONSENSUS_RAFT_PERSISTENCE_H_
