#include "consensus/durable_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>

#include "common/coding.h"
#include "common/crc32c.h"
#include "common/random.h"
#include "common/slice.h"
#include "consensus/raft.h"

namespace logstore::consensus {

namespace fs = std::filesystem;

namespace {

// Record types. The framing is fixed32 masked crc | fixed32 len | type |
// body, with the CRC over everything after itself (len included), so a
// corrupted length field fails the CRC instead of causing an over-read.
constexpr uint8_t kHardStateRecord = 1;
constexpr uint8_t kEntryRecord = 2;
constexpr uint8_t kTruncateRecord = 3;
constexpr uint8_t kWatermarkRecord = 4;

constexpr uint64_t kRecordHeaderSize = 8;  // crc + len
// A record larger than this is treated as torn even if the bytes for its
// claimed length happen to exist (allocation-bomb guard).
constexpr uint64_t kMaxRecordLen = 64ull << 20;

std::string FrameRecord(uint8_t type, const std::string& body) {
  std::string framed;
  framed.reserve(kRecordHeaderSize + 1 + body.size());
  std::string after_crc;
  PutFixed32(&after_crc, static_cast<uint32_t>(1 + body.size()));
  after_crc.push_back(static_cast<char>(type));
  after_crc.append(body);
  PutFixed32(&framed,
             crc32c::Mask(crc32c::Value(after_crc.data(), after_crc.size())));
  framed.append(after_crc);
  return framed;
}

}  // namespace

DurableLog::DurableLog(std::string dir, DurableLogOptions options)
    : dir_(std::move(dir)), options_(options) {
  metrics::MetricRegistry* registry = metrics::OrDefault(options_.registry);
  fsyncs_issued_.Bind(registry->Counter("wal.fsyncs_issued"));
  sync_batches_.Bind(registry->Counter("wal.sync_batches"));
  records_appended_.Bind(registry->Counter("wal.records_appended"));
}

DurableLog::~DurableLog() {
  if (syncer_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      syncer_stop_ = true;
    }
    syncer_cv_.notify_all();
    sync_waiters_cv_.notify_all();
    syncer_.join();
  }
  if (fd_ >= 0) ::close(fd_);
}

std::string DurableLog::SegmentPath(uint64_t seq) const {
  char name[32];
  snprintf(name, sizeof(name), "wal-%06llu.seg",
           static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Result<std::unique_ptr<DurableLog>> DurableLog::Open(const std::string& dir,
                                                     DurableLogOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create wal dir " + dir + ": " + ec.message());
  }
  std::unique_ptr<DurableLog> log(new DurableLog(dir, options));
  LOGSTORE_RETURN_IF_ERROR(log->Recover());
  // The dedicated syncer only exists for kOnSync group commit with a delay
  // budget; kPerRecord flushes inline per append and kNever not at all.
  if (options.sync_policy == SyncPolicy::kOnSync &&
      options.max_sync_delay_us > 0) {
    log->syncer_ = std::thread([raw = log.get()] { raw->SyncerLoop(); });
  }
  return log;
}

void DurableLog::SyncerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!syncer_stop_) {
    if (pending_syncs_ == 0) {
      syncer_cv_.wait(
          lock, [&] { return syncer_stop_ || pending_syncs_ > 0; });
      continue;
    }
    const auto deadline =
        first_pending_ + std::chrono::microseconds(options_.max_sync_delay_us);
    const uint32_t batch_floor = std::max<uint32_t>(1, options_.max_sync_batch);
    if (pending_syncs_ < batch_floor &&
        std::chrono::steady_clock::now() < deadline) {
      // Batch not full yet: sleep until the oldest caller's delay budget
      // expires or enough peers arrive to fill it.
      syncer_cv_.wait_until(lock, deadline, [&] {
        return syncer_stop_ || pending_syncs_ >= batch_floor;
      });
      continue;  // re-evaluate the flush condition
    }
    // Flush: one fsync covers every caller parked so far (and any bytes a
    // force-sync append already flushed cost nothing — FsyncActive early-
    // returns). FsyncActive wakes the waiters on success AND on failure.
    pending_syncs_ = 0;
    if (dead_) {
      sync_waiters_cv_.notify_all();
      continue;
    }
    (void)FsyncActive();
  }
}

Status DurableLog::Recover() {
  // Collect segments in name (= creation) order.
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    uint64_t seq = 0;
    if (sscanf(name.c_str(), "wal-%llu.seg",
               reinterpret_cast<unsigned long long*>(&seq)) == 1) {
      files.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());

  // Replay every record across segments, last-writer-wins. Entries go into
  // a map so a watermark record can retroactively cover a prefix that was
  // GC'd out of earlier (deleted) segments.
  std::map<uint64_t, LogEntry> entries;
  bool torn = false;
  size_t torn_segment = 0;  // index into `files` where scanning stopped
  uint64_t torn_valid_end = 0;

  for (size_t f = 0; f < files.size() && !torn; ++f) {
    std::string data;
    {
      std::ifstream in(files[f].second, std::ios::binary | std::ios::ate);
      if (!in) return Status::IOError("cannot read " + files[f].second);
      const auto size = static_cast<uint64_t>(in.tellg());
      data.resize(static_cast<size_t>(size));
      in.seekg(0);
      in.read(data.data(), static_cast<std::streamsize>(size));
      if (!in && size > 0) {
        return Status::IOError("failed reading " + files[f].second);
      }
    }

    Segment segment;
    segment.seq = files[f].first;
    uint64_t offset = 0;
    while (offset < data.size()) {
      // A record that does not fully parse and verify is a torn tail: the
      // log ends at the last valid boundary.
      if (data.size() - offset < kRecordHeaderSize) break;
      const uint32_t masked_crc = DecodeFixed32(data.data() + offset);
      const uint32_t len = DecodeFixed32(data.data() + offset + 4);
      if (len == 0 || len > kMaxRecordLen ||
          data.size() - offset - kRecordHeaderSize < len) {
        break;
      }
      if (crc32c::Unmask(masked_crc) !=
          crc32c::Value(data.data() + offset + 4, 4 + len)) {
        break;
      }
      const uint8_t type = static_cast<uint8_t>(data[offset + kRecordHeaderSize]);
      Slice body(data.data() + offset + kRecordHeaderSize + 1, len - 1);
      switch (type) {
        case kHardStateRecord: {
          uint64_t term;
          int64_t voted_for;
          if (!GetVarint64(&body, &term) || !GetVarsint64(&body, &voted_for)) {
            return Status::Corruption("wal: bad hard-state record");
          }
          term_ = term;
          voted_for_ = static_cast<int>(voted_for);
          break;
        }
        case kEntryRecord: {
          uint64_t index, term;
          if (!GetVarint64(&body, &index) || !GetVarint64(&body, &term)) {
            return Status::Corruption("wal: bad entry record");
          }
          LogEntry entry;
          entry.term = term;
          entry.payload.assign(body.data(), body.size());
          entries[index] = std::move(entry);
          segment.max_entry_index = std::max(segment.max_entry_index, index);
          break;
        }
        case kTruncateRecord: {
          uint64_t from;
          if (!GetVarint64(&body, &from)) {
            return Status::Corruption("wal: bad truncate record");
          }
          entries.erase(entries.lower_bound(from), entries.end());
          break;
        }
        case kWatermarkRecord: {
          uint64_t index, term, aux;
          if (!GetVarint64(&body, &index) || !GetVarint64(&body, &term) ||
              !GetVarint64(&body, &aux)) {
            return Status::Corruption("wal: bad watermark record");
          }
          if (index >= watermark_index_) {
            watermark_index_ = index;
            watermark_term_ = term;
            watermark_aux_ = aux;
          }
          break;
        }
        default:
          return Status::Corruption("wal: unknown record type " +
                                    std::to_string(type));
      }
      offset += kRecordHeaderSize + len;
    }

    segment.size = offset;
    if (offset < data.size()) {
      // Torn tail: repair by truncating at the last valid boundary and
      // dropping any later segments (they would leave a hole in the log).
      torn = true;
      torn_segment = f;
      torn_valid_end = offset;
      recovered_.repaired_tail_bytes = data.size() - offset;
    }
    if (f + 1 < files.size() && !torn) {
      sealed_.push_back(segment);
    } else {
      active_ = segment;
    }
  }

  if (torn) {
    std::error_code ec;
    if (torn_valid_end == 0) {
      // No valid record at all: delete the segment instead of keeping a
      // zero-length file, so the newest surviving segment still opens with
      // its header records (the self-describing-suffix invariant).
      fs::remove(files[torn_segment].second, ec);
      if (!sealed_.empty()) {
        active_ = sealed_.back();
        sealed_.pop_back();
      } else {
        active_ = Segment{};
      }
    } else {
      fs::resize_file(files[torn_segment].second, torn_valid_end, ec);
    }
    if (ec) {
      return Status::IOError("wal: cannot repair torn tail of " +
                             files[torn_segment].second + ": " + ec.message());
    }
    for (size_t f = torn_segment + 1; f < files.size(); ++f) {
      fs::remove(files[f].second, ec);
    }
  }

  // Entries at or below the watermark are archived; the rest must be a
  // contiguous run starting right above it.
  entries.erase(entries.begin(), entries.upper_bound(watermark_index_));
  recovered_.term = term_;
  recovered_.voted_for = voted_for_;
  recovered_.base_index = watermark_index_;
  recovered_.base_term = watermark_term_;
  recovered_.watermark_aux = watermark_aux_;
  uint64_t expected = watermark_index_ + 1;
  for (auto& [index, entry] : entries) {
    if (index != expected) {
      return Status::Corruption("wal: log gap at index " +
                                std::to_string(expected));
    }
    recovered_.entries.push_back(std::move(entry));
    ++expected;
  }
  next_entry_index_ = expected;

  // Resume appending into the newest surviving segment.
  if (active_.seq != 0) {
    const std::string path = SegmentPath(active_.seq);
    fd_ = ::open(path.c_str(), O_WRONLY);
    if (fd_ < 0) {
      return Status::IOError("wal: cannot reopen " + path);
    }
    if (::lseek(fd_, static_cast<off_t>(active_.size), SEEK_SET) < 0) {
      ::close(fd_);
      fd_ = -1;
      return Status::IOError("wal: cannot seek " + path);
    }
    written_bytes_ = synced_bytes_ = active_.size;
    last_record_offset_ = active_.size;
  }
  // Finish any GC a crash interrupted between the watermark fsync and the
  // segment deletes (the deletes are idempotent; the watermark is durable).
  return DeleteSegmentsBelowWatermark();
}

Status DurableLog::OpenActiveSegment() {
  const uint64_t seq =
      std::max(active_.seq, sealed_.empty() ? 0 : sealed_.back().seq) + 1;
  const std::string path = SegmentPath(seq);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) return Status::IOError("wal: cannot create " + path);
  active_ = Segment{seq, 0, 0};
  written_bytes_ = synced_bytes_ = 0;
  last_record_offset_ = 0;

  // Header: the state as of this segment's creation. This is what makes a
  // suffix of segments (after prefix GC) self-describing.
  std::string hard_state;
  PutVarint64(&hard_state, term_);
  PutVarsint64(&hard_state, voted_for_);
  std::string watermark;
  PutVarint64(&watermark, watermark_index_);
  PutVarint64(&watermark, watermark_term_);
  PutVarint64(&watermark, watermark_aux_);
  for (const auto& [type, body] :
       {std::pair<uint8_t, std::string>{kHardStateRecord, hard_state},
        {kWatermarkRecord, watermark}}) {
    const std::string framed = FrameRecord(type, body);
    if (::write(fd_, framed.data(), framed.size()) !=
        static_cast<ssize_t>(framed.size())) {
      return Status::IOError("wal: header write failed");
    }
    last_record_offset_ = written_bytes_;
    written_bytes_ += framed.size();
    active_.size = written_bytes_;
  }
  return Status::OK();
}

Status DurableLog::FsyncActive() {
  if (!failed_.ok()) return failed_;
  if (fd_ < 0 || synced_bytes_ == written_bytes_) return Status::OK();
  ++fsyncs_issued_;
  if (inject_sync_errors_ > 0) {
    --inject_sync_errors_;
    // Fail-stop, like a real post-fsync-failure: the kernel may already
    // have discarded the dirty pages, so no later fsync can be trusted to
    // cover the records written since the last good one.
    failed_ = Status::IOError("wal: fsync failed (injected EIO); log wedged");
    sync_waiters_cv_.notify_all();
    return failed_;
  }
  if (::fsync(fd_) != 0) {
    failed_ = Status::IOError("wal: fsync failed; log wedged");
    sync_waiters_cv_.notify_all();
    return failed_;
  }
  synced_bytes_ = written_bytes_;
  // Any flush can cover callers parked on the background syncer (a force-
  // sync append or rotation flushes everything written so far): wake them.
  sync_waiters_cv_.notify_all();
  return Status::OK();
}

Status DurableLog::RotateLocked() {
  // Seal the active segment durably before starting its successor, so a
  // crash mid-rotation can only affect the (still unacknowledged) new one.
  if (options_.sync_policy != SyncPolicy::kNever) {
    LOGSTORE_RETURN_IF_ERROR(FsyncActive());
  }
  ::close(fd_);
  fd_ = -1;
  sealed_.push_back(active_);
  LOGSTORE_RETURN_IF_ERROR(OpenActiveSegment());
  // Eager GC: the segment just sealed may hold nothing above the watermark
  // (the watermark record itself lands mid-segment, so the segment that
  // carried it seals "fully archived"). Its replacement's header repeats
  // all of its state — make that header durable first, then drop it.
  if (!sealed_.empty() &&
      sealed_.front().max_entry_index <= watermark_index_) {
    if (options_.sync_policy != SyncPolicy::kNever) {
      LOGSTORE_RETURN_IF_ERROR(FsyncActive());
    }
    return DeleteSegmentsBelowWatermark();
  }
  return Status::OK();
}

Status DurableLog::AppendRecord(uint8_t type, const std::string& body,
                                bool force_sync) {
  if (dead_) return Status::IOError("wal: simulated crash; reopen required");
  if (!failed_.ok()) return failed_;
  if (fd_ < 0) LOGSTORE_RETURN_IF_ERROR(OpenActiveSegment());
  if (active_.size >= options_.segment_target_bytes) {
    LOGSTORE_RETURN_IF_ERROR(RotateLocked());
  }
  const std::string framed = FrameRecord(type, body);
  bool failed_write = false;
  if (inject_append_errors_ > 0) {
    --inject_append_errors_;
    if (inject_append_partial_) {
      // ENOSPC mid-record: half the frame lands before the write gives up.
      (void)!::write(fd_, framed.data(), framed.size() / 2);
    }
    failed_write = true;
  } else if (::write(fd_, framed.data(), framed.size()) !=
             static_cast<ssize_t>(framed.size())) {
    failed_write = true;
  }
  if (failed_write) {
    // Roll the file back to the last record boundary. Leaving the partial
    // bytes in place would interleave them with the next record, tearing
    // the segment at a point recovery cannot repair; if even the rollback
    // fails the log wedges rather than risk that.
    if (::ftruncate(fd_, static_cast<off_t>(written_bytes_)) != 0 ||
        ::lseek(fd_, static_cast<off_t>(written_bytes_), SEEK_SET) < 0) {
      failed_ = Status::IOError(
          "wal: rollback after failed append failed; log wedged");
      return failed_;
    }
    return Status::IOError("wal: write failed");
  }
  last_record_offset_ = written_bytes_;
  written_bytes_ += framed.size();
  active_.size = written_bytes_;
  ++records_appended_;
  if (force_sync || options_.sync_policy == SyncPolicy::kPerRecord) {
    if (options_.sync_policy != SyncPolicy::kNever) {
      LOGSTORE_RETURN_IF_ERROR(FsyncActive());
    }
  }
  return Status::OK();
}

Status DurableLog::PersistHardState(uint64_t term, int voted_for) {
  std::lock_guard<std::mutex> lock(mu_);
  if (term == term_ && voted_for == voted_for_) return Status::OK();
  term_ = term;
  voted_for_ = voted_for;
  std::string body;
  PutVarint64(&body, term);
  PutVarsint64(&body, voted_for);
  // Votes must be durable before the response leaves the node, whatever
  // the batching policy: a vote granted then forgotten can elect two
  // leaders for one term. Elections are rare, so this costs little.
  return AppendRecord(kHardStateRecord, body, /*force_sync=*/true);
}

Status DurableLog::AppendEntry(uint64_t index, const LogEntry& entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index != next_entry_index_) {
    return Status::InvalidArgument(
        "wal: non-contiguous append at " + std::to_string(index) +
        ", expected " + std::to_string(next_entry_index_));
  }
  std::string body;
  PutVarint64(&body, index);
  PutVarint64(&body, entry.term);
  body.append(entry.payload);
  LOGSTORE_RETURN_IF_ERROR(AppendRecord(kEntryRecord, body, false));
  active_.max_entry_index = std::max(active_.max_entry_index, index);
  next_entry_index_ = index + 1;
  return Status::OK();
}

Status DurableLog::TruncateSuffix(uint64_t from_index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (from_index >= next_entry_index_) return Status::OK();
  std::string body;
  PutVarint64(&body, from_index);
  LOGSTORE_RETURN_IF_ERROR(AppendRecord(kTruncateRecord, body, false));
  next_entry_index_ = from_index;
  return Status::OK();
}

Status DurableLog::PersistWatermark(uint64_t index, uint64_t term,
                                    uint64_t aux) {
  std::lock_guard<std::mutex> lock(mu_);
  if (index < watermark_index_) return Status::OK();
  std::string body;
  PutVarint64(&body, index);
  PutVarint64(&body, term);
  PutVarint64(&body, aux);
  // Durable before GC: deleting segments on the strength of an un-fsynced
  // watermark could lose the only copy of un-archived entries.
  LOGSTORE_RETURN_IF_ERROR(AppendRecord(kWatermarkRecord, body,
                                        /*force_sync=*/true));
  watermark_index_ = index;
  watermark_term_ = term;
  watermark_aux_ = aux;
  if (index >= next_entry_index_) {
    // Snapshot install: the log's contents jumped forward wholesale (the
    // prefix now lives in shared storage), so the next append continues
    // right above the snapshot instead of where the old log ended.
    next_entry_index_ = index + 1;
  }
  return DeleteSegmentsBelowWatermark();
}

Status DurableLog::DeleteSegmentsBelowWatermark() {
  // A sealed segment whose every entry is at or below the watermark is
  // redundant with the object store (and header-only segments carry no
  // state a later segment's header does not repeat). Only a PREFIX of the
  // sealed list is eligible: after a suffix truncation, a later segment's
  // max_entry_index can be lower than an earlier segment's, and deleting
  // the later one (which holds the truncate record) while the earlier
  // survives would resurrect truncated entries at recovery. The active
  // segment is never deleted.
  while (!sealed_.empty() &&
         sealed_.front().max_entry_index <= watermark_index_) {
    std::error_code ec;
    fs::remove(SegmentPath(sealed_.front().seq), ec);
    if (ec) {
      return Status::IOError("wal: cannot delete segment " +
                             SegmentPath(sealed_.front().seq) + ": " +
                             ec.message());
    }
    sealed_.erase(sealed_.begin());
  }
  return Status::OK();
}

Status DurableLog::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  ++sync_batches_;
  if (dead_) return Status::IOError("wal: simulated crash; reopen required");
  if (options_.sync_policy == SyncPolicy::kNever) return Status::OK();
  if (!SyncerEnabled()) {
    // Group commit: FsyncActive early-returns when a concurrent Sync that
    // held the mutex first already flushed everything written so far.
    return FsyncActive();
  }
  // Dedicated-syncer mode: park on the batch and let the syncer thread
  // issue one fsync for everyone, once the batch fills or the oldest
  // caller has waited max_sync_delay_us.
  if (!failed_.ok()) return failed_;
  if (synced_bytes_ == written_bytes_) return Status::OK();  // already covered
  const uint64_t target = written_bytes_;
  if (pending_syncs_ == 0) first_pending_ = std::chrono::steady_clock::now();
  ++pending_syncs_;
  syncer_cv_.notify_one();
  sync_waiters_cv_.wait(lock, [&] {
    return dead_ || syncer_stop_ || !failed_.ok() || synced_bytes_ >= target;
  });
  if (!failed_.ok()) return failed_;
  if (synced_bytes_ >= target) return Status::OK();
  return Status::IOError("wal: log closed before the batched fsync");
}

void DurableLog::InjectAppendErrors(int count, bool partial_write) {
  std::lock_guard<std::mutex> lock(mu_);
  inject_append_errors_ = count;
  inject_append_partial_ = partial_write;
}

void DurableLog::InjectSyncErrors(int count) {
  std::lock_guard<std::mutex> lock(mu_);
  inject_sync_errors_ = count;
}

std::vector<DurableLog::SegmentInfo> DurableLog::segments() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SegmentInfo> out;
  for (const Segment& s : sealed_) {
    out.push_back({SegmentPath(s.seq), s.seq, s.max_entry_index, false});
  }
  if (active_.seq != 0) {
    out.push_back({SegmentPath(active_.seq), active_.seq,
                   active_.max_entry_index, true});
  }
  return out;
}

Status DurableLog::SimulateCrash(CrashMode mode, uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  dead_ = true;
  // Callers parked on the background syncer observe the crash, not a hang.
  sync_waiters_cv_.notify_all();
  syncer_cv_.notify_all();
  if (written_bytes_ == 0) return Status::OK();

  Random rng(seed);
  const std::string path = SegmentPath(active_.seq);
  std::error_code ec;
  switch (mode) {
    case CrashMode::kDropUnsynced:
      fs::resize_file(path, synced_bytes_, ec);
      break;
    case CrashMode::kTornWrite: {
      // The file ends somewhere inside the un-fsynced suffix — possibly in
      // the middle of a record's bytes.
      const uint64_t cut =
          synced_bytes_ + rng.Uniform(written_bytes_ - synced_bytes_ + 1);
      fs::resize_file(path, cut, ec);
      break;
    }
    case CrashMode::kHalveTailRecord: {
      const uint64_t cut =
          last_record_offset_ + (written_bytes_ - last_record_offset_) / 2;
      fs::resize_file(path, cut, ec);
      break;
    }
    case CrashMode::kBitFlipTail: {
      if (written_bytes_ <= last_record_offset_) break;
      const uint64_t victim =
          last_record_offset_ +
          rng.Uniform(written_bytes_ - last_record_offset_);
      std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
      if (!file) return Status::IOError("wal: cannot corrupt " + path);
      file.seekg(static_cast<std::streamoff>(victim));
      char byte = 0;
      file.read(&byte, 1);
      byte = static_cast<char>(byte ^ (1 << rng.Uniform(8)));
      file.seekp(static_cast<std::streamoff>(victim));
      file.write(&byte, 1);
      break;
    }
  }
  if (ec) return Status::IOError("wal: crash simulation failed: " + ec.message());
  return Status::OK();
}

}  // namespace logstore::consensus
