#ifndef LOGSTORE_ROWSTORE_WAL_H_
#define LOGSTORE_ROWSTORE_WAL_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "logblock/row_batch.h"

namespace logstore::rowstore {

// WAL record payloads: one record carries a tenant's batch of rows in a
// write-optimized row-major encoding (§2: "a write-optimized row-oriented
// storage format, avoiding the use of CPU-intensive optimizations, such as
// building extra indexes or data compression"). These payloads are what the
// Raft log replicates between replicas.
//
// Layout: fixed32 crc (masked, over the rest), varint64 tenant_id,
// varint32 row_count, then row-major values (varsint64 / length-prefixed).

struct WalRecord {
  uint64_t tenant_id = 0;
  logblock::RowBatch rows;

  explicit WalRecord(logblock::Schema schema) : rows(std::move(schema)) {}
};

// Encodes a batch for tenant `tenant_id`.
std::string EncodeWalRecord(uint64_t tenant_id, const logblock::RowBatch& rows);

// Decodes and CRC-verifies a WAL payload against `schema`.
Result<WalRecord> DecodeWalRecord(const Slice& payload,
                                  const logblock::Schema& schema);

}  // namespace logstore::rowstore

#endif  // LOGSTORE_ROWSTORE_WAL_H_
