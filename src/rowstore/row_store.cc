#include "rowstore/row_store.h"

#include "index/inverted_index.h"

namespace logstore::rowstore {

using logblock::ColumnType;
using logblock::RowBatch;
using logblock::Value;

RowStore::RowStore(logblock::Schema schema)
    : schema_(std::move(schema)), ts_col_(schema_.FindColumn("ts")) {}

uint64_t RowStore::Append(uint64_t tenant_id, const RowBatch& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t r = 0; r < rows.num_rows(); ++r) {
    Row row;
    row.seq = next_seq_++;
    row.tenant_id = tenant_id;
    row.values.reserve(schema_.num_columns());
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      row.values.push_back(rows.ValueAt(c, r));
      bytes_ += schema_.column(c).type == ColumnType::kInt64
                    ? 8
                    : row.values.back().s.size() + 16;
    }
    rows_.push_back(std::move(row));
  }
  return next_seq_ - 1;
}

uint64_t RowStore::row_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rows_.size();
}

uint64_t RowStore::ApproximateBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

uint64_t RowStore::last_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - 1;
}

uint64_t RowStore::archived_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return archived_seq_;
}

RowStore::BuildSnapshot RowStore::SnapshotForBuild(uint64_t max_rows) const {
  std::lock_guard<std::mutex> lock(mu_);
  BuildSnapshot snapshot;
  snapshot.end_seq = archived_seq_;
  for (const Row& row : rows_) {
    if (row.seq <= archived_seq_) continue;
    if (snapshot.total_rows >= max_rows) break;
    auto [it, inserted] =
        snapshot.per_tenant.try_emplace(row.tenant_id, schema_);
    it->second.AddRow(row.values);
    snapshot.end_seq = row.seq;
    ++snapshot.total_rows;
  }
  return snapshot;
}

void RowStore::TruncateUpTo(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  while (!rows_.empty() && rows_.front().seq <= seq) {
    for (size_t c = 0; c < schema_.num_columns(); ++c) {
      bytes_ -= schema_.column(c).type == ColumnType::kInt64
                    ? 8
                    : rows_.front().values[c].s.size() + 16;
    }
    rows_.pop_front();
  }
  if (seq > archived_seq_) archived_seq_ = seq;
}

void RowStore::ResetToArchived() {
  std::lock_guard<std::mutex> lock(mu_);
  rows_.clear();
  bytes_ = 0;
  archived_seq_ = next_seq_ - 1;
}

bool RowStore::RowMatches(
    const Row& row, int64_t ts_min, int64_t ts_max,
    const std::vector<query::Predicate>& predicates) const {
  if (ts_col_ >= 0) {
    const int64_t ts = row.values[ts_col_].i;
    if (ts < ts_min || ts > ts_max) return false;
  }
  for (const query::Predicate& pred : predicates) {
    const int col = schema_.FindColumn(pred.column);
    if (col < 0) return false;
    const Value& v = row.values[col];
    switch (pred.kind) {
      case query::Predicate::Kind::kInt64Compare:
        if (v.type != ColumnType::kInt64 || !pred.EvalInt64(v.i)) return false;
        break;
      case query::Predicate::Kind::kStringEq:
        if (v.type != ColumnType::kString || v.s != pred.str_value) {
          return false;
        }
        break;
      case query::Predicate::Kind::kMatch: {
        if (v.type != ColumnType::kString) return false;
        const auto want = index::Tokenize(pred.str_value);
        const auto have = index::Tokenize(v.s);
        for (const std::string& token : want) {
          bool found = false;
          for (const std::string& h : have) {
            if (h == token) {
              found = true;
              break;
            }
          }
          if (!found) return false;
        }
        break;
      }
    }
  }
  return true;
}

RowBatch RowStore::ScanTenant(
    uint64_t tenant_id, int64_t ts_min, int64_t ts_max,
    const std::vector<query::Predicate>& predicates) const {
  std::lock_guard<std::mutex> lock(mu_);
  RowBatch result(schema_);
  for (const Row& row : rows_) {
    if (row.tenant_id != tenant_id) continue;
    if (RowMatches(row, ts_min, ts_max, predicates)) {
      result.AddRow(row.values);
    }
  }
  return result;
}

}  // namespace logstore::rowstore
