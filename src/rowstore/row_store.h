#ifndef LOGSTORE_ROWSTORE_ROW_STORE_H_
#define LOGSTORE_ROWSTORE_ROW_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <vector>

#include "logblock/row_batch.h"
#include "query/predicate.h"

namespace logstore::rowstore {

// The write-optimized real-time store of §3.1: "all log data is stored in a
// single huge table, and organized only by the timestamp, rather than
// separated by tenants, to improve space efficiency and reduce random I/O
// accesses". Rows arrive in WAL-apply order and are retained until the data
// builder archives them into per-tenant LogBlocks and truncates (the
// checkpoint). Recent rows remain queryable here, giving LogStore its
// real-time data visibility.
//
// Thread-safe.
class RowStore {
 public:
  explicit RowStore(logblock::Schema schema);

  const logblock::Schema& schema() const { return schema_; }

  // Appends a tenant's batch; returns the sequence number of the last row.
  uint64_t Append(uint64_t tenant_id, const logblock::RowBatch& rows);

  uint64_t row_count() const;
  uint64_t ApproximateBytes() const;
  uint64_t last_seq() const;
  uint64_t archived_seq() const;

  // Snapshot of un-archived rows (seq in (archived_seq, end_seq]), divided
  // into per-tenant column batches — the remote-archiving step where "the
  // row-store table will be divided into separated columnar tables
  // according to tenants". At most `max_rows` rows are taken.
  struct BuildSnapshot {
    uint64_t end_seq = 0;
    std::map<uint64_t, logblock::RowBatch> per_tenant;
    uint64_t total_rows = 0;
  };
  BuildSnapshot SnapshotForBuild(uint64_t max_rows) const;

  // Drops rows with seq <= `seq` after they have been archived to the
  // object store (the checkpoint advancing).
  void TruncateUpTo(uint64_t seq);

  // Drops every retained row and marks everything issued so far as
  // archived, as if a checkpoint covered the whole store. Used when a
  // lagging replica installs a snapshot: all rows at or below the snapshot
  // live in LogBlocks on the object store, and rows above it re-arrive
  // through the replication protocol.
  void ResetToArchived();

  // Real-time query path: scans retained rows of `tenant` within the ts
  // range, applying `predicates` (all must hold).
  logblock::RowBatch ScanTenant(
      uint64_t tenant_id, int64_t ts_min, int64_t ts_max,
      const std::vector<query::Predicate>& predicates = {}) const;

 private:
  struct Row {
    uint64_t seq;
    uint64_t tenant_id;
    std::vector<logblock::Value> values;
  };

  bool RowMatches(const Row& row, int64_t ts_min, int64_t ts_max,
                  const std::vector<query::Predicate>& predicates) const;

  const logblock::Schema schema_;
  const int ts_col_;

  mutable std::mutex mu_;
  std::deque<Row> rows_;
  uint64_t next_seq_ = 1;
  uint64_t archived_seq_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace logstore::rowstore

#endif  // LOGSTORE_ROWSTORE_ROW_STORE_H_
