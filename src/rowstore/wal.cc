#include "rowstore/wal.h"

#include "common/coding.h"
#include "common/crc32c.h"

namespace logstore::rowstore {

using logblock::ColumnType;
using logblock::RowBatch;
using logblock::Value;

std::string EncodeWalRecord(uint64_t tenant_id, const RowBatch& rows) {
  std::string body;
  PutVarint64(&body, tenant_id);
  PutVarint32(&body, rows.num_rows());
  const logblock::Schema& schema = rows.schema();
  for (uint32_t r = 0; r < rows.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (schema.column(c).type == ColumnType::kInt64) {
        PutVarsint64(&body, rows.Int64At(c, r));
      } else {
        PutLengthPrefixedSlice(&body, rows.StringAt(c, r));
      }
    }
  }
  std::string out;
  PutFixed32(&out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  out.append(body);
  return out;
}

Result<WalRecord> DecodeWalRecord(const Slice& payload,
                                  const logblock::Schema& schema) {
  Slice in = payload;
  uint32_t masked_crc;
  if (!GetFixed32(&in, &masked_crc)) {
    return Status::Corruption("wal record: missing crc");
  }
  if (crc32c::Unmask(masked_crc) != crc32c::Value(in.data(), in.size())) {
    return Status::Corruption("wal record: crc mismatch");
  }

  WalRecord record(schema);
  uint32_t row_count;
  if (!GetVarint64(&in, &record.tenant_id) || !GetVarint32(&in, &row_count)) {
    return Status::Corruption("wal record: bad header");
  }
  std::vector<Value> row(schema.num_columns());
  for (uint32_t r = 0; r < row_count; ++r) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (schema.column(c).type == ColumnType::kInt64) {
        int64_t v;
        if (!GetVarsint64(&in, &v)) {
          return Status::Corruption("wal record: truncated int value");
        }
        row[c] = Value::Int64(v);
      } else {
        Slice s;
        if (!GetLengthPrefixedSlice(&in, &s)) {
          return Status::Corruption("wal record: truncated string value");
        }
        row[c] = Value::String(s.ToString());
      }
    }
    record.rows.AddRow(row);
  }
  if (!in.empty()) return Status::Corruption("wal record: trailing bytes");
  return record;
}

}  // namespace logstore::rowstore
