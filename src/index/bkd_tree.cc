#include "index/bkd_tree.h"

#include <algorithm>

#include "common/coding.h"

namespace logstore::index {

void BkdTreeWriter::Add(int64_t value, uint32_t row) {
  entries_.emplace_back(value, row);
}

std::string BkdTreeWriter::Finish() {
  std::sort(entries_.begin(), entries_.end());

  const uint32_t leaf_count =
      static_cast<uint32_t>((entries_.size() + leaf_size_ - 1) / leaf_size_);

  // Serialize leaves first to learn their offsets.
  std::vector<std::string> leaf_blobs;
  std::vector<std::pair<int64_t, int64_t>> leaf_ranges;
  std::vector<uint32_t> leaf_counts;
  leaf_blobs.reserve(leaf_count);
  for (uint32_t li = 0; li < leaf_count; ++li) {
    const size_t begin = static_cast<size_t>(li) * leaf_size_;
    const size_t end = std::min(begin + leaf_size_, entries_.size());
    std::string blob;
    int64_t prev = entries_[begin].first;
    leaf_ranges.emplace_back(entries_[begin].first, entries_[end - 1].first);
    leaf_counts.push_back(static_cast<uint32_t>(end - begin));
    for (size_t i = begin; i < end; ++i) {
      // Within-leaf values are ascending, so deltas are non-negative, but we
      // keep zig-zag coding for uniformity with the first entry's base.
      PutVarsint64(&blob, entries_[i].first - (i == begin ? 0 : prev));
      prev = entries_[i].first;
      PutVarint32(&blob, entries_[i].second);
    }
    leaf_blobs.push_back(std::move(blob));
  }

  // Directory entries have a fixed-size tail (fixed32 offset) but varint
  // min/max, so build the directory, then fix offsets knowing its length.
  // We iterate to a fixed point like the tar writer: directory size depends
  // only on min/max/count (stable), offsets are fixed32, so one pass works.
  std::string header;
  PutVarint32(&header, leaf_count);
  PutVarint32(&header, leaf_size_);
  std::string directory;
  // First compute directory size with placeholder offsets.
  for (uint32_t li = 0; li < leaf_count; ++li) {
    PutVarsint64(&directory, leaf_ranges[li].first);
    PutVarsint64(&directory, leaf_ranges[li].second);
    PutVarint32(&directory, leaf_counts[li]);
    PutFixed32(&directory, 0);
  }
  const size_t data_start = header.size() + directory.size();

  directory.clear();
  uint32_t offset = static_cast<uint32_t>(data_start);
  for (uint32_t li = 0; li < leaf_count; ++li) {
    PutVarsint64(&directory, leaf_ranges[li].first);
    PutVarsint64(&directory, leaf_ranges[li].second);
    PutVarint32(&directory, leaf_counts[li]);
    PutFixed32(&directory, offset);
    offset += static_cast<uint32_t>(leaf_blobs[li].size());
  }

  std::string out = header + directory;
  for (const std::string& blob : leaf_blobs) out += blob;
  entries_.clear();
  return out;
}

Result<BkdTreeReader> BkdTreeReader::Open(std::string data) {
  BkdTreeReader reader;
  reader.data_ = std::move(data);
  Slice in(reader.data_);
  uint32_t leaf_count, leaf_size;
  if (!GetVarint32(&in, &leaf_count) || !GetVarint32(&in, &leaf_size)) {
    return Status::Corruption("bkd: bad header");
  }
  reader.leaves_.reserve(leaf_count);
  for (uint32_t li = 0; li < leaf_count; ++li) {
    LeafInfo leaf;
    uint32_t off;
    if (!GetVarsint64(&in, &leaf.min) || !GetVarsint64(&in, &leaf.max) ||
        !GetVarint32(&in, &leaf.count) || !GetFixed32(&in, &off)) {
      return Status::Corruption("bkd: truncated directory");
    }
    leaf.offset = off;
    if (leaf.offset > reader.data_.size()) {
      return Status::Corruption("bkd: leaf offset out of range");
    }
    reader.leaves_.push_back(leaf);
  }
  return reader;
}

void BkdTreeReader::ScanLeaf(const LeafInfo& leaf, int64_t lo, int64_t hi,
                             RowIdSet* out) const {
  Slice in(data_.data() + leaf.offset, data_.size() - leaf.offset);
  int64_t value = 0;
  for (uint32_t i = 0; i < leaf.count; ++i) {
    int64_t delta;
    uint32_t row;
    if (!GetVarsint64(&in, &delta) || !GetVarint32(&in, &row)) return;
    value = (i == 0) ? delta : value + delta;
    if (value > hi) return;  // ascending: nothing further can match
    if (value >= lo && row < out->num_rows()) out->Add(row);
  }
}

void BkdTreeReader::AddWholeLeaf(const LeafInfo& leaf, RowIdSet* out) const {
  Slice in(data_.data() + leaf.offset, data_.size() - leaf.offset);
  for (uint32_t i = 0; i < leaf.count; ++i) {
    int64_t delta;
    uint32_t row;
    if (!GetVarsint64(&in, &delta) || !GetVarint32(&in, &row)) return;
    if (row < out->num_rows()) out->Add(row);
  }
}

RowIdSet BkdTreeReader::QueryRange(int64_t lo, int64_t hi,
                                   uint32_t num_rows) const {
  RowIdSet result(num_rows);
  if (lo > hi || leaves_.empty()) return result;

  // Leaves are sorted by min (values ascending across leaves). Find the
  // first leaf whose max >= lo via binary search on max.
  size_t first = 0, last = leaves_.size();
  {
    size_t lo_i = 0, hi_i = leaves_.size();
    while (lo_i < hi_i) {
      const size_t mid = lo_i + (hi_i - lo_i) / 2;
      if (leaves_[mid].max < lo) {
        lo_i = mid + 1;
      } else {
        hi_i = mid;
      }
    }
    first = lo_i;
  }

  for (size_t li = first; li < last; ++li) {
    const LeafInfo& leaf = leaves_[li];
    if (leaf.min > hi) break;
    if (leaf.min >= lo && leaf.max <= hi) {
      AddWholeLeaf(leaf, &result);  // fully covered: skip value decoding
    } else {
      ScanLeaf(leaf, lo, hi, &result);
    }
  }
  return result;
}

}  // namespace logstore::index
