#ifndef LOGSTORE_INDEX_BKD_TREE_H_
#define LOGSTORE_INDEX_BKD_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "index/rowid_set.h"

namespace logstore::index {

// Numeric index for int64 columns (§3.2: "BKD tree index ... corresponding
// to numerical type"). Like Lucene's 1-D BKD usage, we bulk-load a packed
// tree: values are sorted, grouped into fixed-size leaves, and an in-order
// leaf directory with per-leaf [min,max] acts as the internal tree levels.
// A range query binary-searches the directory, scans at most two boundary
// leaves, and bulk-adds all fully-covered interior leaves without decoding
// their values.
//
// On-storage layout:
//   varint32 leaf_count, varint32 leaf_size
//   directory: per leaf varsint64 min, varsint64 max, varint32 count,
//              fixed32 leaf_offset
//   leaf data: per leaf, `count` entries of (varsint64 value_delta,
//              varint32 row_id); values ascending within and across leaves.
class BkdTreeWriter {
 public:
  explicit BkdTreeWriter(uint32_t leaf_size = 256) : leaf_size_(leaf_size) {}

  void Add(int64_t value, uint32_t row);

  // Sorts, packs and serializes; the writer is left empty.
  std::string Finish();

  size_t entry_count() const { return entries_.size(); }

 private:
  const uint32_t leaf_size_;
  std::vector<std::pair<int64_t, uint32_t>> entries_;
};

class BkdTreeReader {
 public:
  static Result<BkdTreeReader> Open(std::string data);

  // Rows whose value lies in [lo, hi] (inclusive).
  RowIdSet QueryRange(int64_t lo, int64_t hi, uint32_t num_rows) const;

  RowIdSet QueryEqual(int64_t v, uint32_t num_rows) const {
    return QueryRange(v, v, num_rows);
  }

  size_t leaf_count() const { return leaves_.size(); }

 private:
  struct LeafInfo {
    int64_t min;
    int64_t max;
    uint32_t count;
    uint32_t offset;  // into data_
  };

  // Decodes leaf `li`, adding rows whose value is within [lo,hi].
  void ScanLeaf(const LeafInfo& leaf, int64_t lo, int64_t hi,
                RowIdSet* out) const;
  // Adds every row of leaf `li` without value tests.
  void AddWholeLeaf(const LeafInfo& leaf, RowIdSet* out) const;

  std::string data_;
  std::vector<LeafInfo> leaves_;
};

}  // namespace logstore::index

#endif  // LOGSTORE_INDEX_BKD_TREE_H_
