#ifndef LOGSTORE_INDEX_ROWID_SET_H_
#define LOGSTORE_INDEX_ROWID_SET_H_

#include <cstdint>
#include <vector>

namespace logstore::index {

// A set of row positions within one LogBlock, used to combine filter results
// across columns (§5.1: "After merging the rowid set that meets the filter
// conditions, the log data can be finally loaded according to it").
//
// Backed by a word-packed bitmap sized to the block's row count.
class RowIdSet {
 public:
  RowIdSet() : num_rows_(0) {}
  explicit RowIdSet(uint32_t num_rows)
      : num_rows_(num_rows), words_((num_rows + 63) / 64, 0) {}

  // A set with every row in [0, num_rows) present.
  static RowIdSet All(uint32_t num_rows) {
    RowIdSet s(num_rows);
    for (auto& w : s.words_) w = ~0ull;
    s.ClearTail();
    return s;
  }

  uint32_t num_rows() const { return num_rows_; }

  void Add(uint32_t row) { words_[row >> 6] |= (1ull << (row & 63)); }
  void Remove(uint32_t row) { words_[row >> 6] &= ~(1ull << (row & 63)); }
  bool Contains(uint32_t row) const {
    return (words_[row >> 6] >> (row & 63)) & 1;
  }

  // Adds every row in [begin, end).
  void AddRange(uint32_t begin, uint32_t end) {
    for (uint32_t r = begin; r < end; ++r) Add(r);
  }

  // True if any row in [begin, end) is present. Word-at-a-time, so probing
  // a column block's whole row range costs O(rows/64), not O(rows).
  bool AnyInRange(uint32_t begin, uint32_t end) const {
    if (begin >= end || begin >= num_rows_) return false;
    if (end > num_rows_) end = num_rows_;
    const uint32_t first_word = begin >> 6;
    const uint32_t last_word = (end - 1) >> 6;
    const uint64_t head_mask = ~0ull << (begin & 63);
    const uint64_t tail_mask = (end & 63) == 0 ? ~0ull : (1ull << (end & 63)) - 1;
    if (first_word == last_word) {
      return (words_[first_word] & head_mask & tail_mask) != 0;
    }
    if ((words_[first_word] & head_mask) != 0) return true;
    for (uint32_t w = first_word + 1; w < last_word; ++w) {
      if (words_[w] != 0) return true;
    }
    return (words_[last_word] & tail_mask) != 0;
  }

  // Removes every row in [begin, end), word-at-a-time.
  void RemoveRange(uint32_t begin, uint32_t end) {
    if (begin >= end || begin >= num_rows_) return;
    if (end > num_rows_) end = num_rows_;
    const uint32_t first_word = begin >> 6;
    const uint32_t last_word = (end - 1) >> 6;
    const uint64_t head_mask = ~0ull << (begin & 63);
    const uint64_t tail_mask = (end & 63) == 0 ? ~0ull : (1ull << (end & 63)) - 1;
    if (first_word == last_word) {
      words_[first_word] &= ~(head_mask & tail_mask);
      return;
    }
    words_[first_word] &= ~head_mask;
    for (uint32_t w = first_word + 1; w < last_word; ++w) words_[w] = 0;
    words_[last_word] &= ~tail_mask;
  }

  // ANDs a block-local selection bitmap into this set: bit j of `block`
  // (word-packed, (count+63)/64 words, tail bits past `count` ignored)
  // covers global row first_row + j. Rows outside [first_row, first_row +
  // count) are untouched. This is how vectorized filter kernels — which
  // emit bitmaps indexed from the column block's first row — fold their
  // verdicts into the global candidate set without a per-row loop.
  void IntersectBitmap(uint32_t first_row, const uint64_t* block,
                       uint32_t count) {
    if (count == 0 || first_row >= num_rows_) return;
    uint32_t end = first_row + count;
    if (end > num_rows_) end = num_rows_;
    const uint32_t shift = first_row & 63;
    const uint32_t base = first_row >> 6;
    const uint32_t last = (end - 1) >> 6;
    const int64_t nblock = (count + 63) / 64;
    auto block_word = [&](int64_t i) -> uint64_t {
      return (i >= 0 && i < nblock) ? block[i] : 0;
    };
    for (uint32_t g = base; g <= last; ++g) {
      const int64_t i = static_cast<int64_t>(g) - base;
      // Shift the block words into global bit positions (two-word funnel).
      const uint64_t match =
          shift == 0 ? block_word(i)
                     : (block_word(i) << shift) |
                           (block_word(i - 1) >> (64 - shift));
      // Bits of word g outside [first_row, end) must survive untouched.
      uint64_t keep = 0;
      if (g == base && shift != 0) keep |= (1ull << shift) - 1;
      if (g == last && (end & 63) != 0) keep |= ~0ull << (end & 63);
      words_[g] &= match | keep;
    }
  }

  // Invokes fn(row) for every present row in [begin, end), ascending.
  template <typename Fn>
  void ForEachInRange(uint32_t begin, uint32_t end, Fn&& fn) const {
    if (begin >= end || begin >= num_rows_) return;
    if (end > num_rows_) end = num_rows_;
    const uint32_t first_word = begin >> 6;
    const uint32_t last_word = (end - 1) >> 6;
    for (uint32_t wi = first_word; wi <= last_word; ++wi) {
      uint64_t w = words_[wi];
      if (wi == first_word) w &= ~0ull << (begin & 63);
      if (wi == last_word && (end & 63) != 0) w &= (1ull << (end & 63)) - 1;
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        fn(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
  }

  void IntersectWith(const RowIdSet& other) {
    const size_t n = words_.size() < other.words_.size() ? words_.size()
                                                         : other.words_.size();
    for (size_t i = 0; i < n; ++i) words_[i] &= other.words_[i];
    for (size_t i = n; i < words_.size(); ++i) words_[i] = 0;
  }

  void UnionWith(const RowIdSet& other) {
    const size_t n = words_.size() < other.words_.size() ? words_.size()
                                                         : other.words_.size();
    for (size_t i = 0; i < n; ++i) words_[i] |= other.words_[i];
  }

  uint32_t Count() const {
    uint32_t count = 0;
    for (uint64_t w : words_) count += __builtin_popcountll(w);
    return count;
  }

  bool Empty() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  // Materializes the set as an ascending row-id list.
  std::vector<uint32_t> ToVector() const {
    std::vector<uint32_t> rows;
    rows.reserve(Count());
    for (size_t wi = 0; wi < words_.size(); ++wi) {
      uint64_t w = words_[wi];
      while (w != 0) {
        const int bit = __builtin_ctzll(w);
        rows.push_back(static_cast<uint32_t>(wi * 64 + bit));
        w &= w - 1;
      }
    }
    return rows;
  }

 private:
  void ClearTail() {
    const uint32_t tail = num_rows_ & 63;
    if (tail != 0 && !words_.empty()) {
      words_.back() &= (1ull << tail) - 1;
    }
  }

  uint32_t num_rows_;
  std::vector<uint64_t> words_;
};

}  // namespace logstore::index

#endif  // LOGSTORE_INDEX_ROWID_SET_H_
