#ifndef LOGSTORE_INDEX_INVERTED_INDEX_H_
#define LOGSTORE_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"
#include "index/rowid_set.h"

namespace logstore::index {

// Tokenizes `text` into lower-cased alphanumeric terms (runs of [a-z0-9]).
// This is the analyzer used for full-text MATCH queries on log bodies.
std::vector<std::string> Tokenize(const Slice& text);

// High-entropy identifiers (request ids, hashes) are not indexed: they
// would dominate the term dictionary without ever serving as search keys.
// Queries containing such tokens fall back to scanning.
inline bool IsIndexableToken(const std::string& token) {
  return token.size() < 8 ||
         token.find_first_of("0123456789") == std::string::npos;
}

// ---------------------------------------------------------------------------
// Inverted index for string columns (§3.2), Lucene-style two-part layout:
//
//   dict:      varint32 term_count, then per term (sorted):
//              length-prefixed term, varint32 doc_count,
//              varint64 postings_offset, varint32 postings_len;
//              then a fixed32 per-term offset directory + fixed32 dir start
//   postings:  concatenated delta-varint row-id lists
//
// The dictionary is small (distinct terms) and fetched once per query; a
// term probe then range-reads ONLY its postings bytes from remote storage,
// so a selective MATCH costs far less than scanning the column. Two kinds
// of terms are indexed per value, controlled by the column's Analyzer:
//   - the exact raw value under a reserved '=' prefix (col = 'v' probes)
//   - each analyzed token (full-text MATCH probes)
// ---------------------------------------------------------------------------

struct SerializedInvertedIndex {
  std::string dict;
  std::string postings;
};

class InvertedIndexWriter {
 public:
  // `index_exact` / `index_tokens` select which term classes are built;
  // identifier columns need only exact terms, free-text columns only
  // tokens (the column's Analyzer in the schema records the choice).
  explicit InvertedIndexWriter(bool index_exact = true,
                               bool index_tokens = true)
      : index_exact_(index_exact), index_tokens_(index_tokens) {}

  // Indexes the exact value and/or its tokens for `row`.
  void Add(uint32_t row, const Slice& value);

  // Serializes the index; the writer is left empty.
  SerializedInvertedIndex Finish();

  size_t term_count() const { return postings_.size(); }

  // Reserved prefix for exact-value terms. '=' cannot appear in analyzed
  // tokens so exact and token namespaces never collide.
  static std::string ExactTerm(const Slice& value) {
    return "=" + value.ToString();
  }

 private:
  const bool index_exact_;
  const bool index_tokens_;
  std::map<std::string, std::vector<uint32_t>> postings_;
};

// Byte range of one term's postings within the postings member.
struct PostingsRef {
  uint32_t doc_count = 0;
  uint64_t offset = 0;
  uint32_t length = 0;
};

// Parses the term dictionary; supports binary-searched term lookup without
// touching any postings bytes.
class InvertedIndexDict {
 public:
  // `data` is copied so the dict owns its bytes (usually cached).
  static Result<InvertedIndexDict> Open(std::string data);

  // Byte range of `term`'s postings, or nullopt if absent.
  std::optional<PostingsRef> Lookup(const Slice& term) const;

  // Case-folded token lookup (MATCH semantics).
  std::optional<PostingsRef> LookupToken(const Slice& token) const;

  size_t term_count() const { return term_offsets_.size(); }

 private:
  Slice TermAt(size_t i) const;

  std::string data_;
  std::vector<uint32_t> term_offsets_;  // into data_, sorted by term
};

// Decodes one term's postings bytes into a row-id set.
Result<RowIdSet> DecodePostings(const Slice& postings, uint32_t doc_count,
                                uint32_t num_rows);

// Convenience fully-in-memory reader over (dict, postings) — used by tests
// and by callers that already hold both parts.
class InvertedIndexReader {
 public:
  static Result<InvertedIndexReader> Open(SerializedInvertedIndex serialized);

  RowIdSet LookupExact(const Slice& value, uint32_t num_rows) const;
  RowIdSet LookupToken(const Slice& token, uint32_t num_rows) const;
  // Rows matching ALL tokens of `text` (conjunctive full-text match).
  RowIdSet MatchAllTokens(const Slice& text, uint32_t num_rows) const;

  size_t term_count() const { return dict_.term_count(); }
  const InvertedIndexDict& dict() const { return dict_; }

 private:
  RowIdSet Resolve(const std::optional<PostingsRef>& ref,
                   uint32_t num_rows) const;

  InvertedIndexDict dict_;
  std::string postings_;
};

}  // namespace logstore::index

#endif  // LOGSTORE_INDEX_INVERTED_INDEX_H_
