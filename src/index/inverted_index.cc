#include "index/inverted_index.h"

#include <algorithm>
#include <cctype>

#include "common/coding.h"

namespace logstore::index {

std::vector<std::string> Tokenize(const Slice& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

void InvertedIndexWriter::Add(uint32_t row, const Slice& value) {
  auto append_unique = [row](std::vector<uint32_t>& rows) {
    if (rows.empty() || rows.back() != row) rows.push_back(row);
  };
  if (index_exact_) append_unique(postings_[ExactTerm(value)]);
  if (index_tokens_) {
    for (const std::string& token : Tokenize(value)) {
      if (!IsIndexableToken(token)) continue;
      append_unique(postings_[token]);
    }
  }
}

SerializedInvertedIndex InvertedIndexWriter::Finish() {
  SerializedInvertedIndex out;

  // Postings first: per term, delta-varint row ids; record ranges.
  std::vector<PostingsRef> refs;
  refs.reserve(postings_.size());
  for (const auto& [term, rows] : postings_) {
    PostingsRef ref;
    ref.doc_count = static_cast<uint32_t>(rows.size());
    ref.offset = out.postings.size();
    uint32_t prev = 0;
    for (uint32_t row : rows) {
      PutVarint32(&out.postings, row - prev);
      prev = row;
    }
    ref.length = static_cast<uint32_t>(out.postings.size() - ref.offset);
    refs.push_back(ref);
  }

  // Dictionary: sorted terms with their postings ranges, then a fixed32
  // per-term offset directory for binary search.
  PutVarint32(&out.dict, static_cast<uint32_t>(postings_.size()));
  std::vector<uint32_t> offsets;
  offsets.reserve(postings_.size());
  size_t i = 0;
  for (const auto& [term, rows] : postings_) {
    (void)rows;
    offsets.push_back(static_cast<uint32_t>(out.dict.size()));
    PutLengthPrefixedSlice(&out.dict, term);
    PutVarint32(&out.dict, refs[i].doc_count);
    PutVarint64(&out.dict, refs[i].offset);
    PutVarint32(&out.dict, refs[i].length);
    ++i;
  }
  const uint32_t dir_offset = static_cast<uint32_t>(out.dict.size());
  for (uint32_t off : offsets) PutFixed32(&out.dict, off);
  PutFixed32(&out.dict, dir_offset);

  postings_.clear();
  return out;
}

Result<InvertedIndexDict> InvertedIndexDict::Open(std::string data) {
  InvertedIndexDict dict;
  dict.data_ = std::move(data);
  const std::string& d = dict.data_;
  if (d.size() < sizeof(uint32_t)) {
    return Status::Corruption("inverted dict too small");
  }
  const uint32_t dir_offset = DecodeFixed32(d.data() + d.size() - 4);
  Slice head(d);
  uint32_t term_count;
  if (!GetVarint32(&head, &term_count)) {
    return Status::Corruption("inverted dict: bad term count");
  }
  const uint64_t dir_size = static_cast<uint64_t>(term_count) * 4;
  if (dir_offset + dir_size + 4 != d.size()) {
    return Status::Corruption("inverted dict: directory size mismatch");
  }
  dict.term_offsets_.reserve(term_count);
  for (uint32_t i = 0; i < term_count; ++i) {
    const uint32_t off = DecodeFixed32(d.data() + dir_offset + i * 4);
    if (off >= dir_offset) {
      return Status::Corruption("inverted dict: bad term offset");
    }
    dict.term_offsets_.push_back(off);
  }
  return dict;
}

Slice InvertedIndexDict::TermAt(size_t i) const {
  Slice entry(data_.data() + term_offsets_[i],
              data_.size() - term_offsets_[i]);
  Slice term;
  GetLengthPrefixedSlice(&entry, &term);
  return term;
}

std::optional<PostingsRef> InvertedIndexDict::Lookup(const Slice& term) const {
  size_t lo = 0, hi = term_offsets_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (TermAt(mid).compare(term) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == term_offsets_.size() || TermAt(lo) != term) return std::nullopt;

  Slice entry(data_.data() + term_offsets_[lo],
              data_.size() - term_offsets_[lo]);
  Slice t;
  PostingsRef ref;
  if (!GetLengthPrefixedSlice(&entry, &t) ||
      !GetVarint32(&entry, &ref.doc_count) ||
      !GetVarint64(&entry, &ref.offset) || !GetVarint32(&entry, &ref.length)) {
    return std::nullopt;
  }
  return ref;
}

std::optional<PostingsRef> InvertedIndexDict::LookupToken(
    const Slice& token) const {
  std::string lowered(token.data(), token.size());
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return Lookup(lowered);
}

Result<RowIdSet> DecodePostings(const Slice& postings, uint32_t doc_count,
                                uint32_t num_rows) {
  RowIdSet result(num_rows);
  Slice in = postings;
  uint32_t row = 0;
  for (uint32_t i = 0; i < doc_count; ++i) {
    uint32_t delta;
    if (!GetVarint32(&in, &delta)) {
      return Status::Corruption("postings: truncated");
    }
    row += delta;
    if (row < num_rows) result.Add(row);
  }
  return result;
}

Result<InvertedIndexReader> InvertedIndexReader::Open(
    SerializedInvertedIndex serialized) {
  auto dict = InvertedIndexDict::Open(std::move(serialized.dict));
  if (!dict.ok()) return dict.status();
  InvertedIndexReader reader;
  reader.dict_ = std::move(dict).value();
  reader.postings_ = std::move(serialized.postings);
  return reader;
}

RowIdSet InvertedIndexReader::Resolve(const std::optional<PostingsRef>& ref,
                                      uint32_t num_rows) const {
  if (!ref.has_value() || ref->offset + ref->length > postings_.size()) {
    return RowIdSet(num_rows);
  }
  auto rows = DecodePostings(
      Slice(postings_.data() + ref->offset, ref->length), ref->doc_count,
      num_rows);
  return rows.ok() ? std::move(rows).value() : RowIdSet(num_rows);
}

RowIdSet InvertedIndexReader::LookupExact(const Slice& value,
                                          uint32_t num_rows) const {
  return Resolve(dict_.Lookup(InvertedIndexWriter::ExactTerm(value)),
                 num_rows);
}

RowIdSet InvertedIndexReader::LookupToken(const Slice& token,
                                          uint32_t num_rows) const {
  return Resolve(dict_.LookupToken(token), num_rows);
}

RowIdSet InvertedIndexReader::MatchAllTokens(const Slice& text,
                                             uint32_t num_rows) const {
  const std::vector<std::string> tokens = Tokenize(text);
  if (tokens.empty()) return RowIdSet::All(num_rows);
  RowIdSet result = LookupToken(tokens[0], num_rows);
  for (size_t i = 1; i < tokens.size() && !result.Empty(); ++i) {
    result.IntersectWith(LookupToken(tokens[i], num_rows));
  }
  return result;
}

}  // namespace logstore::index
