#ifndef LOGSTORE_INDEX_SMA_H_
#define LOGSTORE_INDEX_SMA_H_

#include <cstdint>
#include <string>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"

namespace logstore::index {

// Small Materialized Aggregates (Moerkotte '98), kept per column and per
// column block (§3.2): min/max plus row count, enough to skip a column or
// a block without touching its data.
struct Int64Sma {
  int64_t min = INT64_MAX;
  int64_t max = INT64_MIN;
  uint32_t row_count = 0;

  void Update(int64_t v) {
    if (v < min) min = v;
    if (v > max) max = v;
    ++row_count;
  }

  void Merge(const Int64Sma& other) {
    if (other.row_count == 0) return;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    row_count += other.row_count;
  }

  // True if no value in [min,max] can satisfy a comparison against the
  // range [lo,hi]: the block can be skipped.
  bool DisjointWith(int64_t lo, int64_t hi) const {
    return row_count == 0 || hi < min || lo > max;
  }

  void EncodeTo(std::string* dst) const {
    PutVarsint64(dst, min);
    PutVarsint64(dst, max);
    PutVarint32(dst, row_count);
  }

  bool DecodeFrom(Slice* input) {
    uint32_t rc;
    if (!GetVarsint64(input, &min) || !GetVarsint64(input, &max) ||
        !GetVarint32(input, &rc)) {
      return false;
    }
    row_count = rc;
    return true;
  }
};

struct StringSma {
  std::string min;
  std::string max;
  uint32_t row_count = 0;

  void Update(const Slice& v) {
    if (row_count == 0) {
      min = v.ToString();
      max = v.ToString();
    } else {
      if (v.compare(min) < 0) min = v.ToString();
      if (v.compare(max) > 0) max = v.ToString();
    }
    ++row_count;
  }

  void Merge(const StringSma& other) {
    if (other.row_count == 0) return;
    if (row_count == 0) {
      *this = other;
      return;
    }
    if (Slice(other.min).compare(min) < 0) min = other.min;
    if (Slice(other.max).compare(max) > 0) max = other.max;
    row_count += other.row_count;
  }

  // True if value v cannot appear in this column/block.
  bool Excludes(const Slice& v) const {
    return row_count == 0 || v.compare(min) < 0 || v.compare(max) > 0;
  }

  void EncodeTo(std::string* dst) const {
    PutLengthPrefixedSlice(dst, min);
    PutLengthPrefixedSlice(dst, max);
    PutVarint32(dst, row_count);
  }

  bool DecodeFrom(Slice* input) {
    Slice mn, mx;
    uint32_t rc;
    if (!GetLengthPrefixedSlice(input, &mn) ||
        !GetLengthPrefixedSlice(input, &mx) || !GetVarint32(input, &rc)) {
      return false;
    }
    min = mn.ToString();
    max = mx.ToString();
    row_count = rc;
    return true;
  }
};

}  // namespace logstore::index

#endif  // LOGSTORE_INDEX_SMA_H_
