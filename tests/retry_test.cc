// Fault-injection and retry/backoff coverage for the object-store read and
// write paths: the FaultInjectingObjectStore + RetryingObjectStore pair, and
// the end-to-end guarantee that a QueryEngine scan and a DataBuilder pass
// survive a flaky store with correct results.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/data_builder.h"
#include "common/clock.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "objectstore/retrying_object_store.h"
#include "query/engine.h"
#include "rowstore/row_store.h"
#include "workload/loggen.h"

namespace logstore::objectstore {
namespace {

// Test double with exact failure control: fails the next `failures` ops
// with `failure_status`, truncates the next `truncations` GetRanges, then
// behaves like the in-memory backend.
class FlakyStore : public ObjectStore {
 public:
  Status Put(const std::string& key, const Slice& data) override {
    if (TakeFailure()) return failure_status_;
    return base_.Put(key, data);
  }
  Result<std::string> Get(const std::string& key) override {
    if (TakeFailure()) return failure_status_;
    return base_.Get(key);
  }
  Result<std::string> GetRange(const std::string& key, uint64_t offset,
                               uint64_t length) override {
    if (TakeFailure()) return failure_status_;
    auto result = base_.GetRange(key, offset, length);
    if (result.ok() && truncations_.fetch_sub(1) > 0 && result->size() > 1) {
      result->resize(result->size() / 2);
    }
    return result;
  }
  Result<uint64_t> Head(const std::string& key) override {
    return base_.Head(key);
  }
  Result<std::vector<std::string>> List(const std::string& prefix) override {
    if (TakeFailure()) return failure_status_;
    return base_.List(prefix);
  }
  Status Delete(const std::string& key) override {
    if (TakeFailure()) return failure_status_;
    return base_.Delete(key);
  }
  ObjectStoreStats& stats() override { return base_.stats(); }

  void FailNext(int n, Status status = Status::IOError("flaky")) {
    failure_status_ = std::move(status);
    failures_.store(n);
  }
  void TruncateNext(int n) { truncations_.store(n); }
  MemoryObjectStore& base() { return base_; }

 private:
  bool TakeFailure() { return failures_.fetch_sub(1) > 0; }

  MemoryObjectStore base_;
  std::atomic<int> failures_{0};
  std::atomic<int> truncations_{0};
  Status failure_status_ = Status::IOError("flaky");
};

RetryOptions FastRetryOptions() {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_us = 10;
  options.max_backoff_us = 100;
  options.call_deadline_us = 0;
  return options;
}

TEST(FaultInjectingStoreTest, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    MemoryObjectStore base;
    EXPECT_TRUE(base.Put("k", "value-bytes").ok());
    FaultInjectionOptions options;
    options.error_rate = 0.3;
    options.seed = seed;
    FaultInjectingObjectStore store(&base, options);
    std::string pattern;
    for (int i = 0; i < 200; ++i) {
      pattern.push_back(store.Get("k").ok() ? '.' : 'X');
    }
    return pattern;
  };
  const std::string a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a.find('X'), std::string::npos);
  EXPECT_NE(a.find('.'), std::string::npos);
}

TEST(FaultInjectingStoreTest, ErrorRateApproximatelyHonored) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "v").ok());
  FaultInjectionOptions options;
  options.error_rate = 0.3;
  options.seed = 11;
  FaultInjectingObjectStore store(&base, options);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!store.Get("k").ok()) ++failures;
  }
  EXPECT_GT(failures, 200);
  EXPECT_LT(failures, 400);
  EXPECT_EQ(store.fault_stats().injected_errors.load(),
            static_cast<uint64_t>(failures));
  EXPECT_EQ(store.fault_stats().ops.load(), 1000u);
}

TEST(FaultInjectingStoreTest, ShortReadsReturnStrictPrefix) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "0123456789").ok());
  FaultInjectionOptions options;
  options.short_read_rate = 1.0;
  options.seed = 3;
  FaultInjectingObjectStore store(&base, options);
  for (int i = 0; i < 20; ++i) {
    auto got = store.GetRange("k", 0, 10);
    ASSERT_TRUE(got.ok());
    EXPECT_GE(got->size(), 1u);
    EXPECT_LT(got->size(), 10u);
    EXPECT_EQ(*got, std::string("0123456789").substr(0, got->size()));
  }
  EXPECT_GT(store.fault_stats().injected_short_reads.load(), 0u);
}

TEST(FaultInjectingStoreTest, LatencySpikesAdvanceClock) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "v").ok());
  FaultInjectionOptions options;
  options.latency_spike_rate = 1.0;
  options.latency_spike_us = 500;
  ManualClock clock;
  FaultInjectingObjectStore store(&base, options, &clock);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(store.Get("k").ok());
  EXPECT_EQ(clock.NowMicros(), 1500);
  EXPECT_EQ(store.fault_stats().injected_latency_spikes.load(), 3u);
}

TEST(FaultInjectingStoreTest, MutationsExemptWhenConfigured) {
  MemoryObjectStore base;
  FaultInjectionOptions options;
  options.error_rate = 1.0;
  options.fail_mutations = false;
  FaultInjectingObjectStore store(&base, options);
  EXPECT_TRUE(store.Put("k", "v").ok());
  EXPECT_TRUE(store.Delete("k").ok());
  EXPECT_TRUE(store.Put("k", "v").ok());
  EXPECT_FALSE(store.Get("k").ok());
}

TEST(FaultInjectingStoreTest, BrownoutRejectsEveryOpInWindow) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "v").ok());
  ManualClock clock;
  FaultInjectingObjectStore store(&base, {}, &clock);

  store.SetBrownout(1000, 5000);
  EXPECT_TRUE(store.Get("k").ok());  // before the window
  clock.Advance(1000);
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  EXPECT_TRUE(store.Put("k2", "v").IsUnavailable());
  EXPECT_TRUE(store.List("").status().IsUnavailable());
  clock.Advance(4000);
  EXPECT_TRUE(store.Get("k").ok());  // window end is exclusive
  EXPECT_EQ(store.fault_stats().brownout_rejections.load(), 3u);
}

TEST(FaultInjectingStoreTest, BrownoutShorterThanRetryDeadlineRecovers) {
  // The store browns out for 2.5ms; the retry schedule (1ms then 2ms of
  // backoff) outlasts it, so the caller never sees the outage.
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "payload").ok());
  ManualClock clock;
  FaultInjectingObjectStore faulty(&base, {}, &clock);
  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff_us = 1000;
  options.backoff_multiplier = 2.0;
  options.max_backoff_us = 100000;
  options.jitter = 0.0;
  options.call_deadline_us = 1000000;
  RetryingObjectStore store(&faulty, options, &clock);

  faulty.SetBrownout(0, 2500);
  auto got = store.Get("k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(*got, "payload");
  EXPECT_EQ(store.retry_stats().attempts.load(), 3u);  // t=0, t=1ms, t=3ms
  EXPECT_EQ(store.retry_stats().giveups.load(), 0u);
  EXPECT_EQ(faulty.fault_stats().brownout_rejections.load(), 2u);
}

TEST(FaultInjectingStoreTest, BrownoutLongerThanRetryDeadlineSurfaces) {
  // The outage outlasts the caller's deadline: the retry layer gives up and
  // surfaces the brownout's Unavailable instead of masking it forever.
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("k", "payload").ok());
  ManualClock clock;
  FaultInjectingObjectStore faulty(&base, {}, &clock);
  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff_us = 1000;
  options.backoff_multiplier = 2.0;
  options.max_backoff_us = 100000;
  options.jitter = 0.0;
  options.call_deadline_us = 1500;  // fits one 1ms backoff, not 1ms + 2ms
  RetryingObjectStore store(&faulty, options, &clock);

  faulty.SetBrownout(0, 1000000);
  auto got = store.Get("k");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsUnavailable()) << got.status().ToString();
  EXPECT_EQ(store.retry_stats().attempts.load(), 2u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 1u);
  // The outage ends; the next call succeeds without any reconfiguration.
  clock.Set(1000000);
  EXPECT_TRUE(store.Get("k").ok());
}

TEST(FaultInjectingStoreTest, BlacklistedKeyFailsOthersUnaffected) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("good", "g").ok());
  ASSERT_TRUE(base.Put("bad", "b").ok());
  FaultInjectingObjectStore store(&base, {});

  store.BlacklistKey("bad");
  EXPECT_TRUE(store.Get("bad").status().IsUnavailable());
  EXPECT_TRUE(store.Head("bad").status().IsUnavailable());
  EXPECT_TRUE(store.Delete("bad").IsUnavailable());
  EXPECT_TRUE(store.Get("good").ok());
  EXPECT_EQ(store.fault_stats().blacklist_rejections.load(), 3u);

  store.ClearBlacklist();
  EXPECT_TRUE(store.Get("bad").ok());
}

TEST(FaultInjectingStoreTest, BlacklistExhaustsRetriesOnThatKeyOnly) {
  MemoryObjectStore base;
  ASSERT_TRUE(base.Put("good", "g").ok());
  ASSERT_TRUE(base.Put("bad", "b").ok());
  ManualClock clock;
  FaultInjectingObjectStore faulty(&base, {}, &clock);
  RetryingObjectStore store(&faulty, FastRetryOptions(), &clock);

  faulty.BlacklistKey("bad");
  EXPECT_TRUE(store.Get("bad").status().IsUnavailable());
  EXPECT_EQ(store.retry_stats().giveups.load(), 1u);
  EXPECT_TRUE(store.Get("good").ok());
  EXPECT_EQ(store.retry_stats().giveups.load(), 1u);
}

TEST(RetryingStoreTest, RetriesTransientErrorsUntilSuccess) {
  FlakyStore flaky;
  ASSERT_TRUE(flaky.base().Put("k", "payload").ok());
  ManualClock clock;
  RetryingObjectStore store(&flaky, FastRetryOptions(), &clock);

  flaky.FailNext(2);
  auto got = store.Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "payload");
  EXPECT_EQ(store.retry_stats().attempts.load(), 3u);
  EXPECT_EQ(store.retry_stats().retries.load(), 2u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 0u);
  EXPECT_GT(clock.NowMicros(), 0);  // backoff slept between attempts
}

TEST(RetryingStoreTest, NonRetryableSurfacesImmediately) {
  FlakyStore flaky;
  ManualClock clock;
  RetryingObjectStore store(&flaky, FastRetryOptions(), &clock);

  EXPECT_TRUE(store.Get("missing").status().IsNotFound());
  EXPECT_EQ(store.retry_stats().attempts.load(), 1u);
  EXPECT_EQ(store.retry_stats().retries.load(), 0u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 0u);
  EXPECT_EQ(clock.NowMicros(), 0);  // no backoff sleep
}

TEST(RetryingStoreTest, GivesUpAfterMaxAttempts) {
  FlakyStore flaky;
  ASSERT_TRUE(flaky.base().Put("k", "v").ok());
  ManualClock clock;
  auto options = FastRetryOptions();
  options.max_attempts = 3;
  RetryingObjectStore store(&flaky, options, &clock);

  flaky.FailNext(100, Status::Unavailable("throttled"));
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  EXPECT_EQ(store.retry_stats().attempts.load(), 3u);
  EXPECT_EQ(store.retry_stats().retries.load(), 2u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 1u);
}

TEST(RetryingStoreTest, DeadlineBoundsRetries) {
  FlakyStore flaky;
  ASSERT_TRUE(flaky.base().Put("k", "v").ok());
  ManualClock clock;
  RetryOptions options;
  options.max_attempts = 10;
  options.initial_backoff_us = 1000;
  options.backoff_multiplier = 2.0;
  options.max_backoff_us = 100000;
  options.jitter = 0.0;
  options.call_deadline_us = 1500;  // fits one 1000us backoff, not two
  RetryingObjectStore store(&flaky, options, &clock);

  flaky.FailNext(100);
  EXPECT_FALSE(store.Get("k").ok());
  EXPECT_EQ(store.retry_stats().attempts.load(), 2u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 1u);
  EXPECT_EQ(clock.NowMicros(), 1000);
}

TEST(RetryingStoreTest, ShortReadDetectedAndRetried) {
  FlakyStore flaky;
  ASSERT_TRUE(flaky.base().Put("k", "0123456789").ok());
  ManualClock clock;
  RetryingObjectStore store(&flaky, FastRetryOptions(), &clock);

  flaky.TruncateNext(1);
  auto got = store.GetRange("k", 0, 10);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "0123456789");
  EXPECT_EQ(store.retry_stats().short_reads.load(), 1u);
  EXPECT_EQ(store.retry_stats().retries.load(), 1u);
  EXPECT_EQ(store.retry_stats().giveups.load(), 0u);
}

TEST(RetryingStoreTest, ShortReadAtEndOfObjectIsLegitimate) {
  FlakyStore flaky;
  ASSERT_TRUE(flaky.base().Put("k", "12345").ok());
  ManualClock clock;
  RetryingObjectStore store(&flaky, FastRetryOptions(), &clock);

  auto got = store.GetRange("k", 2, 100);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "345");
  EXPECT_EQ(store.retry_stats().attempts.load(), 1u);
  EXPECT_EQ(store.retry_stats().short_reads.load(), 0u);
}

}  // namespace
}  // namespace logstore::objectstore

namespace logstore::query {
namespace {

// End-to-end acceptance: a full QueryEngine scan over LogBlocks behind a
// store with a 20% injected GetRange failure rate must complete with
// byte-identical results, >0 retries and 0 giveups.
class FaultEndToEndTest : public ::testing::Test {
 protected:
  static constexpr int64_t kHistory = 4ll * 3600 * 1'000'000;
  static constexpr uint64_t kTenant = 1;

  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    cluster::DataBuilderOptions builder_options;
    builder_options.max_rows_per_logblock = 2000;
    builder_options.block_options.rows_per_block = 256;
    cluster::DataBuilder builder(store_.get(), &map_, builder_options);
    rowstore::RowStore rows(logblock::RequestLogSchema());
    workload::LogGenerator gen(17);
    for (uint64_t tenant = 0; tenant < 3; ++tenant) {
      rows.Append(tenant, gen.Generate(tenant, 5000, 0, kHistory));
    }
    ASSERT_TRUE(builder.BuildOnce(&rows).ok());
  }

  static LogQuery FullScan() {
    LogQuery query;
    query.tenant_id = kTenant;
    query.ts_min = 0;
    query.ts_max = kHistory;
    query.select_columns = {"ts", "ip", "log"};
    return query;
  }

  static std::multiset<std::string> Flatten(const QueryResult& result) {
    std::multiset<std::string> rows;
    for (const auto& row : result.rows) {
      std::string flat;
      for (const auto& value : row) {
        flat += value.type == logblock::ColumnType::kInt64
                    ? std::to_string(value.i)
                    : value.s;
        flat += '|';
      }
      rows.insert(flat);
    }
    return rows;
  }

  EngineOptions FaultTolerantOptions() {
    EngineOptions options;
    options.prefetch_threads = 4;
    options.io_block_size = 4096;
    options.cache_options.memory_capacity_bytes = 8 << 20;
    options.cache_options.ssd_dir.clear();
    // 20% error rate with 8 attempts: giveup odds per call ~0.2^8.
    options.retry_options.max_attempts = 8;
    options.retry_options.initial_backoff_us = 50;
    options.retry_options.max_backoff_us = 1000;
    return options;
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  logblock::LogBlockMap map_;
};

TEST_F(FaultEndToEndTest, ScanSurvivesInjectedGetRangeFailures) {
  // Baseline over the clean store.
  auto clean_engine = QueryEngine::Open(store_.get(), FaultTolerantOptions());
  ASSERT_TRUE(clean_engine.ok());
  auto expected = (*clean_engine)->Execute(FullScan(), map_);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_GT(expected->rows.size(), 0u);

  objectstore::FaultInjectionOptions faults;
  faults.error_rate = 0.2;
  faults.short_read_rate = 0.1;
  faults.seed = 29;
  objectstore::FaultInjectingObjectStore faulty(store_.get(), faults);

  auto engine = QueryEngine::Open(&faulty, FaultTolerantOptions());
  ASSERT_TRUE(engine.ok());
  auto result = (*engine)->Execute(FullScan(), map_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Flatten(*result), Flatten(*expected));

  const objectstore::RetryStats* stats = (*engine)->retry_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->retries.load(), 0u);
  EXPECT_EQ(stats->giveups.load(), 0u);
  EXPECT_GT(faulty.fault_stats().injected_errors.load(), 0u);
}

TEST_F(FaultEndToEndTest, DataBuilderUploadsSurviveInjectedPutFailures) {
  objectstore::FaultInjectionOptions faults;
  faults.error_rate = 0.3;
  faults.seed = 31;
  objectstore::MemoryObjectStore clean;
  objectstore::FaultInjectingObjectStore faulty(&clean, faults);

  logblock::LogBlockMap map;
  cluster::DataBuilderOptions options;
  options.max_rows_per_logblock = 1000;
  options.block_options.rows_per_block = 128;
  options.retry_options.max_attempts = 8;
  options.retry_options.initial_backoff_us = 50;
  options.retry_options.max_backoff_us = 1000;
  cluster::DataBuilder builder(&faulty, &map, options);

  rowstore::RowStore rows(logblock::RequestLogSchema());
  workload::LogGenerator gen(23);
  rows.Append(5, gen.Generate(5, 4000, 0, kHistory));
  auto built = builder.BuildOnce(&rows);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(*built, 4);
  EXPECT_EQ(clean.object_count(), 4u);  // all uploads landed despite faults

  const objectstore::RetryStats* stats = builder.retry_stats();
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->retries.load(), 0u);
  EXPECT_EQ(stats->giveups.load(), 0u);
}

}  // namespace
}  // namespace logstore::query
