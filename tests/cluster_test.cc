#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "cluster/cluster.h"
#include "cluster/controller.h"
#include "cluster/data_builder.h"
#include "cluster/traffic_sim.h"
#include "objectstore/memory_object_store.h"
#include "workload/loggen.h"
#include "workload/zipfian.h"

namespace logstore::cluster {
namespace {

using logblock::RowBatch;
using logblock::Value;

RowBatch OneRow(uint64_t tenant, int64_t ts, const std::string& log) {
  RowBatch batch(logblock::RequestLogSchema());
  batch.AddRow({Value::Int64(static_cast<int64_t>(tenant)), Value::Int64(ts),
                Value::String("10.0.0.1"), Value::Int64(5),
                Value::String("false"), Value::String(log)});
  return batch;
}

TEST(DataBuilderTest, BuildsPerTenantBlocks) {
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;
  DataBuilder builder(&store, &map);
  rowstore::RowStore rows(logblock::RequestLogSchema());

  workload::LogGenerator gen(3);
  rows.Append(1, gen.Generate(1, 500, 0, 1000));
  rows.Append(2, gen.Generate(2, 300, 0, 1000));

  auto built = builder.BuildOnce(&rows);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ(*built, 2);  // one block per tenant
  EXPECT_EQ(map.TenantBlockCount(1), 1u);
  EXPECT_EQ(map.TenantBlockCount(2), 1u);
  EXPECT_EQ(rows.row_count(), 0u);  // checkpoint advanced
  EXPECT_EQ(builder.rows_archived(), 800u);
  EXPECT_GT(builder.bytes_uploaded(), 0u);

  // Tenant objects live under per-tenant prefixes: physical isolation.
  auto keys1 = store.List("tenants/1/");
  ASSERT_TRUE(keys1.ok());
  EXPECT_EQ(keys1->size(), 1u);
}

TEST(DataBuilderTest, LargeTenantSplitsIntoMultipleBlocks) {
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;
  DataBuilderOptions options;
  options.max_rows_per_logblock = 100;
  DataBuilder builder(&store, &map, options);
  rowstore::RowStore rows(logblock::RequestLogSchema());

  workload::LogGenerator gen(4);
  rows.Append(7, gen.Generate(7, 450, 0, 1000));
  auto built = builder.BuildOnce(&rows);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(*built, 5);  // 450 rows / 100 per block
  EXPECT_EQ(map.TenantBlockCount(7), 5u);
}

TEST(DataBuilderTest, NothingToBuildIsNoop) {
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;
  DataBuilder builder(&store, &map);
  rowstore::RowStore rows(logblock::RequestLogSchema());
  auto built = builder.BuildOnce(&rows);
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(*built, 0);
}

TEST(ControllerTest, InitialRoutesViaConsistentHash) {
  Controller controller(4, 4);
  controller.EnsureTenantRoute(11);
  controller.EnsureTenantRoute(11);  // idempotent
  const auto routes = controller.routes();
  const auto* weights = routes.Get(11);
  ASSERT_NE(weights, nullptr);
  EXPECT_EQ(weights->size(), 1u);
  EXPECT_DOUBLE_EQ(weights->begin()->second, 1.0);
  EXPECT_LT(weights->begin()->first, 16u);
}

TEST(ControllerTest, RebalancesOnHotShard) {
  ControllerOptions options;
  options.policy = BalancePolicy::kMaxFlow;
  options.shard_capacity = 1000;
  options.worker_capacity = 4000;
  options.edge_max_flow = 800;
  Controller controller(2, 2, options);
  controller.EnsureTenantRoute(0);

  const auto routes = controller.routes();
  const uint32_t shard = routes.Get(0)->begin()->first;

  // Tenant 0 floods its shard.
  const auto decision = controller.RunTrafficControl(
      {{0, 3000}}, {{shard, 3000}}, {{controller.WorkerForShard(shard), 3000}});
  EXPECT_TRUE(decision.rebalanced);
  // routes() returns the table by value; keep it alive while we hold a
  // pointer into it.
  const auto updated = controller.routes();
  const auto* weights = updated.Get(0);
  ASSERT_NE(weights, nullptr);
  EXPECT_GE(weights->size(), 4u);  // 3000 / 800 => 4 routes
}

TEST(ControllerTest, NoActionWithoutHotShards) {
  Controller controller(2, 2);
  controller.EnsureTenantRoute(0);
  const auto decision =
      controller.RunTrafficControl({{0, 100}}, {{0, 100}}, {{0, 100}});
  EXPECT_FALSE(decision.rebalanced);
  EXPECT_FALSE(decision.scale_needed);
}

TEST(ControllerTest, RequestsScaleOutWhenSaturated) {
  ControllerOptions options;
  options.shard_capacity = 1000;
  options.worker_capacity = 1000;
  Controller controller(2, 1, options);
  controller.EnsureTenantRoute(0);
  const uint32_t shard = controller.routes().Get(0)->begin()->first;
  const auto decision = controller.RunTrafficControl(
      {{0, 5000}}, {{shard, 5000}},
      {{0, 2500}, {1, 2500}});  // both workers above alpha
  EXPECT_TRUE(decision.scale_needed);
  EXPECT_FALSE(decision.rebalanced);
}

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    ClusterDeploymentOptions options;
    options.num_workers = 2;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = false;
    options.engine.prefetch_threads = 2;
    options.engine.cache_options.memory_capacity_bytes = 8 << 20;
    options.engine.cache_options.ssd_dir.clear();
    auto cluster = Cluster::Open(store_.get(), options);
    ASSERT_TRUE(cluster.ok());
    cluster_ = std::move(cluster).value();
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  std::unique_ptr<Cluster> cluster_;
};

TEST_F(ClusterTest, WriteIsImmediatelyVisible) {
  ASSERT_TRUE(cluster_->Write(5, OneRow(5, 100, "fresh")).ok());
  query::LogQuery query;
  query.tenant_id = 5;
  auto result = cluster_->Query(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 1u);  // served from the real-time store
}

TEST_F(ClusterTest, ArchivedAndRealtimeMerge) {
  ASSERT_TRUE(cluster_->Write(5, OneRow(5, 100, "old")).ok());
  auto built = cluster_->RunBuildPass();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(*built, 1);
  ASSERT_TRUE(cluster_->Write(5, OneRow(5, 200, "new")).ok());

  query::LogQuery query;
  query.tenant_id = 5;
  query.select_columns = {"log"};
  auto result = cluster_->Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);  // one from OSS, one real-time
}

TEST_F(ClusterTest, ExpirationRemovesObjects) {
  ASSERT_TRUE(cluster_->Write(5, OneRow(5, 100, "expiring")).ok());
  ASSERT_TRUE(cluster_->RunBuildPass().ok());
  EXPECT_EQ(store_->object_count(), 1u);

  auto expired = cluster_->ExpireTenantData(5, 1000);
  ASSERT_TRUE(expired.ok());
  EXPECT_EQ(*expired, 1);
  EXPECT_EQ(store_->object_count(), 0u);

  query::LogQuery query;
  query.tenant_id = 5;
  auto result = cluster_->Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(ClusterTest, TrafficControlCycleRuns) {
  workload::LogGenerator gen(5);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(cluster_->Write(0, gen.Generate(0, 100, i * 100, (i + 1) * 100))
                    .ok());
  }
  const auto decision = cluster_->RunTrafficControl();
  // With default capacities nothing is hot; the cycle completes cleanly.
  EXPECT_FALSE(decision.scale_needed);
}

TEST(ReplicatedClusterTest, WritesSurviveThroughRaft) {
  objectstore::MemoryObjectStore store;
  ClusterDeploymentOptions options;
  options.num_workers = 1;
  options.shards_per_worker = 1;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.replicated = true;
  options.worker.raft.election_timeout_min_ms = 50;
  options.worker.raft.election_timeout_max_ms = 100;
  options.worker.raft.heartbeat_interval_ms = 20;
  options.engine.prefetch_threads = 2;
  options.engine.cache_options.ssd_dir.clear();
  auto cluster = Cluster::Open(&store, options);
  ASSERT_TRUE(cluster.ok());

  ASSERT_TRUE((*cluster)->Write(3, OneRow(3, 50, "replicated")).ok());
  query::LogQuery query;
  query.tenant_id = 3;
  auto result = (*cluster)->Query(query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST(ReplicatedClusterTest, DurableWorkerRestartKeepsAckedWrites) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "cluster_test_durable";
  fs::remove_all(dir);

  objectstore::MemoryObjectStore store;
  ClusterDeploymentOptions options;
  options.num_workers = 1;
  options.shards_per_worker = 1;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.replicated = true;
  options.worker.wal_dir = dir.string();  // each worker gets a subdirectory
  options.engine.prefetch_threads = 2;
  options.engine.cache_options.ssd_dir.clear();
  auto cluster = Cluster::Open(&store, options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  ASSERT_TRUE((*cluster)->Write(3, OneRow(3, 50, "durable")).ok());
  ASSERT_TRUE((*cluster)->RestartWorker(0).ok());

  // The acked write survives the worker process restart via its WAL.
  query::LogQuery query;
  query.tenant_id = 3;
  auto result = (*cluster)->Query(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);

  cluster->reset();
  fs::remove_all(dir);
}

TEST(ReplicatedClusterTest, RestartWithoutWalDirIsRejected) {
  objectstore::MemoryObjectStore store;
  ClusterDeploymentOptions options;
  options.num_workers = 1;
  options.shards_per_worker = 1;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.replicated = true;  // no wal_dir: in-memory consensus only
  options.engine.prefetch_threads = 2;
  options.engine.cache_options.ssd_dir.clear();
  auto cluster = Cluster::Open(&store, options);
  ASSERT_TRUE(cluster.ok());

  // Restarting a worker with no journal would silently lose acked writes;
  // the cluster refuses instead of pretending.
  EXPECT_FALSE((*cluster)->RestartWorker(0).ok());
}

TrafficSimOptions SimOptions(double theta, BalancePolicy policy) {
  TrafficSimOptions options;
  options.num_workers = 8;
  options.shards_per_worker = 2;
  options.num_tenants = 1000;  // the evaluation's tenant count
  options.theta = theta;
  options.policy = policy;
  return options;
}

TEST(TrafficSimTest, UniformLoadIsBalancedWithoutControl) {
  TrafficSimulator sim(SimOptions(0.0, BalancePolicy::kNone));
  const auto metrics = sim.Run(5, 5);
  // Uniform traffic over many tenants: nearly all offered load processed.
  EXPECT_GT(metrics.throughput, 0.98 * metrics.offered);
  EXPECT_LT(metrics.avg_latency_ms, 50);
}

TEST(TrafficSimTest, SkewWithoutControlCollapsesThroughput) {
  TrafficSimulator sim(SimOptions(0.99, BalancePolicy::kNone));
  const auto metrics = sim.Run(20, 10);
  EXPECT_LT(metrics.throughput, 0.8 * metrics.offered);
  EXPECT_GT(metrics.avg_latency_ms, 50);
}

TEST(TrafficSimTest, MaxFlowRestoresThroughputUnderSkew) {
  TrafficSimulator sim(SimOptions(0.99, BalancePolicy::kMaxFlow));
  const auto metrics = sim.Run(20, 10);
  EXPECT_GT(metrics.throughput, 0.95 * metrics.offered);
  EXPECT_LT(metrics.avg_latency_ms, 50);
  EXPECT_GT(metrics.rebalances, 0);
}

TEST(TrafficSimTest, GreedyAlsoRestoresThroughputButSlower) {
  TrafficSimulator sim(SimOptions(0.99, BalancePolicy::kGreedy));
  const auto metrics = sim.Run(20, 10);
  EXPECT_GT(metrics.throughput, 0.9 * metrics.offered);
}

TEST(TrafficSimTest, MaxFlowUsesFewerRoutesThanGreedy) {
  // Figure 12(c): greedy keeps splitting hot tenants onto more shards;
  // max-flow re-weights existing routes first.
  TrafficSimulator greedy_sim(SimOptions(0.99, BalancePolicy::kGreedy));
  TrafficSimulator maxflow_sim(SimOptions(0.99, BalancePolicy::kMaxFlow));
  const auto greedy = greedy_sim.Run(20, 10);
  const auto maxflow = maxflow_sim.Run(20, 10);
  EXPECT_LT(maxflow.route_count, greedy.route_count);
}

TEST(TrafficSimTest, BalancingReducesAccessStddev) {
  TrafficSimulator sim(SimOptions(0.99, BalancePolicy::kMaxFlow));
  const auto before = sim.MeasureUnbalancedRound();
  const auto after = sim.Run(20, 10);
  EXPECT_LT(after.ShardAccessStddev(), before.ShardAccessStddev());
  EXPECT_LT(after.WorkerAccessStddev(), before.WorkerAccessStddev());
}

TEST(TrafficSimTest, ScaleOutAbsorbsExcessDemand) {
  // Offered load beyond the initial cluster's alpha watermark: rebalancing
  // alone cannot help (Algorithm 1 line 17 fails), so the controller must
  // add workers until the demand fits.
  TrafficSimOptions options = SimOptions(0.8, BalancePolicy::kMaxFlow);
  options.total_offered_load =
      static_cast<int64_t>(1.2 * 8 * options.worker_capacity);

  // Without scale-out: saturated, throughput capped below offered.
  TrafficSimulator capped(options);
  const auto capped_metrics = capped.Run(20, 10);
  EXPECT_TRUE(capped_metrics.scale_requested);
  EXPECT_EQ(capped_metrics.workers_added, 0u);
  EXPECT_LT(capped_metrics.throughput, 0.95 * capped_metrics.offered);

  // With scale-out allowed: workers are added and throughput recovers.
  options.max_workers_on_scale_out = 16;
  TrafficSimulator elastic(options);
  const auto elastic_metrics = elastic.Run(30, 10);
  EXPECT_GT(elastic_metrics.workers_added, 0u);
  EXPECT_GT(elastic_metrics.final_workers, 8u);
  EXPECT_GT(elastic_metrics.throughput, 0.95 * elastic_metrics.offered);
}

TEST(TrafficSimTest, WorkerUtilizationApproachesAlphaAfterBalancing) {
  // Figure 14(c): after max-flow balancing, workers run near-uniformly
  // below the alpha watermark.
  TrafficSimulator sim(SimOptions(0.99, BalancePolicy::kMaxFlow));
  const auto metrics = sim.Run(20, 10);
  for (double util : metrics.worker_utilization) {
    EXPECT_LT(util, 0.9);
    EXPECT_GT(util, 0.4);
  }
}

}  // namespace
}  // namespace logstore::cluster
