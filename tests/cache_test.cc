#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/block_manager.h"
#include "cache/lru_cache.h"
#include "cache/ssd_block_cache.h"
#include "common/metrics.h"

namespace logstore::cache {
namespace {

std::shared_ptr<const std::string> Block(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

TEST(LruCacheTest, InsertGetErase) {
  LruCache<const std::string> cache(1000);
  cache.Insert("a", Block("aaa"), 3);
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "aaa");
  EXPECT_EQ(cache.used_bytes(), 3u);
  cache.Erase("a");
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<const std::string> cache(10);
  cache.Insert("a", Block("aaaa"), 4);
  cache.Insert("b", Block("bbbb"), 4);
  cache.Get("a");                      // refresh a; b is now LRU
  cache.Insert("c", Block("cccc"), 4); // 12 > 10: evict b
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_NE(cache.Get("c"), nullptr);
}

TEST(LruCacheTest, ReplaceUpdatesCharge) {
  LruCache<const std::string> cache(100);
  cache.Insert("a", Block("xx"), 2);
  cache.Insert("a", Block("xxxxxxxx"), 8);
  EXPECT_EQ(cache.used_bytes(), 8u);
  EXPECT_EQ(*cache.Get("a"), "xxxxxxxx");
}

TEST(LruCacheTest, OversizedValueNotCached) {
  LruCache<const std::string> cache(5);
  cache.Insert("big", Block("0123456789"), 10);
  EXPECT_EQ(cache.Get("big"), nullptr);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(LruCacheTest, StatsTrackHitsMisses) {
  // Legacy CacheStats fields and their registry mirrors are dual-written
  // by the same increments and must agree exactly.
  metrics::MetricRegistry registry;
  CacheStats stats;
  stats.BindTo(&registry, "memory");
  LruCache<const std::string> cache(100, &stats);
  cache.Insert("a", Block("a"), 1);
  cache.Get("a");
  cache.Get("missing");
  EXPECT_EQ(stats.hits.load(), 1u);
  EXPECT_EQ(stats.misses.load(), 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  const auto snap = registry.SnapshotMap();
  EXPECT_EQ(snap.at("cache.hits{tier=memory}"),
            static_cast<int64_t>(stats.hits.load()));
  EXPECT_EQ(snap.at("cache.misses{tier=memory}"),
            static_cast<int64_t>(stats.misses.load()));
  EXPECT_EQ(snap.at("cache.inserts{tier=memory}"),
            static_cast<int64_t>(stats.inserts.load()));
}

TEST(LruCacheTest, EvictionCallbackFires) {
  LruCache<const std::string> cache(4);
  std::vector<std::string> evicted;
  cache.set_eviction_callback(
      [&](const std::string& key, const std::shared_ptr<const std::string>&,
          uint64_t) { evicted.push_back(key); });
  cache.Insert("a", Block("aaaa"), 4);
  cache.Insert("b", Block("bbbb"), 4);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], "a");
}

// Regression: the eviction callback used to run while the cache mutex was
// held, so a callback touching the same cache self-deadlocked. It must be
// safe for the callback to re-enter the cache.
TEST(LruCacheTest, EvictionCallbackMayReenterCache) {
  LruCache<const std::string> cache(8);
  std::vector<std::string> evicted;
  cache.set_eviction_callback(
      [&](const std::string& key, const std::shared_ptr<const std::string>&,
          uint64_t) {
        evicted.push_back(key);
        // Re-entrant reads and writes: both took the mutex recursively
        // before the fix.
        (void)cache.Get(key);
        cache.Insert("reentrant-" + key, Block("r"), 1);
      });
  cache.Insert("a", Block("aaaa"), 4);
  cache.Insert("b", Block("bbbb"), 4);
  cache.Insert("c", Block("cccc"), 4);  // evicts a; re-entrant insert
                                        // cascades to evict b as well
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], "a");
  EXPECT_EQ(evicted[1], "b");
  EXPECT_NE(cache.Get("reentrant-a"), nullptr);
  EXPECT_NE(cache.Get("reentrant-b"), nullptr);
}

// Regression: an oversized insert used to count an insert, erase any
// existing entry for the key, and only then reject the new value — losing
// the old entry and skewing stats.
TEST(LruCacheTest, OversizedInsertKeepsExistingEntry) {
  CacheStats stats;
  LruCache<const std::string> cache(5, &stats);
  cache.Insert("a", Block("xx"), 2);
  cache.Insert("a", Block("0123456789"), 10);  // larger than capacity
  auto got = cache.Get("a");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "xx");
  EXPECT_EQ(cache.used_bytes(), 2u);
  EXPECT_EQ(stats.inserts.load(), 1u);
  EXPECT_EQ(stats.evictions.load(), 0u);
}

TEST(ShardedLruCacheTest, SpreadsAcrossShards) {
  ShardedLruCache<const std::string> cache(16000, 16);
  for (int i = 0; i < 100; ++i) {
    cache.Insert("key" + std::to_string(i), Block("v"), 1);
  }
  EXPECT_EQ(cache.entry_count(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NE(cache.Get("key" + std::to_string(i)), nullptr) << i;
  }
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ShardedLruCacheTest, ConcurrentAccessIsSafe) {
  ShardedLruCache<const std::string> cache(1 << 20, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 1000; ++i) {
        const std::string key = "k" + std::to_string((t * 1000 + i) % 97);
        cache.Insert(key, Block("data"), 4);
        cache.Get(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_LE(cache.entry_count(), 97u);
}

class SsdCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("logstore_ssd_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(SsdCacheTest, RoundTrip) {
  auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20);
  ASSERT_TRUE(cache.ok());
  (*cache)->Insert("obj#0", "block-zero-bytes");
  auto got = (*cache)->Get("obj#0");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "block-zero-bytes");
  EXPECT_EQ((*cache)->Get("obj#1"), nullptr);
  EXPECT_EQ((*cache)->entry_count(), 1u);
}

TEST_F(SsdCacheTest, EvictsOverCapacity) {
  auto cache = SsdBlockCache::Open(dir_.string(), 100);
  ASSERT_TRUE(cache.ok());
  (*cache)->Insert("a", std::string(60, 'a'));
  (*cache)->Insert("b", std::string(60, 'b'));  // 120 > 100: evict a
  EXPECT_EQ((*cache)->Get("a"), nullptr);
  ASSERT_NE((*cache)->Get("b"), nullptr);
  EXPECT_LE((*cache)->used_bytes(), 100u);
}

TEST_F(SsdCacheTest, FilesRemovedOnDestruction) {
  {
    auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20);
    ASSERT_TRUE(cache.ok());
    (*cache)->Insert("k", "v");
  }
  EXPECT_FALSE(std::filesystem::exists(dir_));
}

TEST_F(SsdCacheTest, BlockManagerSpillsToSsdAndPromotes) {
  BlockManagerOptions options;
  options.memory_capacity_bytes = 64;  // tiny: force spills
  options.memory_shards = 1;
  options.ssd_dir = dir_.string();
  options.ssd_capacity_bytes = 1 << 20;
  auto manager = BlockManager::Open(options);
  ASSERT_TRUE(manager.ok());

  (*manager)->Insert("a", Block(std::string(40, 'a')));
  (*manager)->Insert("b", Block(std::string(40, 'b')));  // evicts a -> SSD

  EXPECT_EQ((*manager)->memory_stats().evictions.load(), 1u);
  EXPECT_GT((*manager)->ssd_used_bytes(), 0u);

  // "a" must still be readable (from SSD), and gets promoted to memory.
  auto a = (*manager)->Get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, std::string(40, 'a'));
  EXPECT_EQ((*manager)->ssd_stats().hits.load(), 1u);
}

// Regression: cache files are named by a hash of the key; two colliding
// keys share one file. The seed served whichever bytes were written last
// under either key. With the embedded-key header, a collision overwrite
// turns the older key into a miss instead of wrong data.
TEST_F(SsdCacheTest, HashCollisionsDoNotServeWrongBytes) {
  CacheStats stats;
  auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20, &stats,
                                   /*hash_bits=*/4);
  ASSERT_TRUE(cache.ok());

  // Find two distinct keys whose low-4-bit file hashes collide.
  auto masked = [](const std::string& key) { return Hash64(key) & 0xf; };
  const std::string first = "key0";
  std::string second;
  for (int i = 1; second.empty(); ++i) {
    std::string candidate = "key" + std::to_string(i);
    if (masked(candidate) == masked(first)) second = candidate;
  }

  (*cache)->Insert(first, "bytes-of-first");
  ASSERT_NE((*cache)->Get(first), nullptr);
  (*cache)->Insert(second, "bytes-of-second");

  // `first`'s file was overwritten: it must read as a miss, never as
  // `second`'s bytes.
  EXPECT_EQ((*cache)->Get(first), nullptr);
  auto got = (*cache)->Get(second);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "bytes-of-second");
  EXPECT_EQ((*cache)->entry_count(), 1u);

  // Evicting/overwriting `second` must not resurrect `first`.
  (*cache)->Insert(first, "fresh-first");
  got = (*cache)->Get(first);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "fresh-first");
  EXPECT_EQ((*cache)->Get(second), nullptr);
}

TEST_F(SsdCacheTest, TamperedFileReadsAsMiss) {
  auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20);
  ASSERT_TRUE(cache.ok());
  (*cache)->Insert("obj#7", "block-bytes");
  ASSERT_NE((*cache)->Get("obj#7"), nullptr);

  // Corrupt the header of the single cache file on disk.
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    std::fstream file(entry.path(), std::ios::binary | std::ios::in |
                                        std::ios::out);
    ASSERT_TRUE(file.is_open());
    file.seekp(0);
    file.write("XXXX", 4);  // clobber the magic
  }

  EXPECT_EQ((*cache)->Get("obj#7"), nullptr);
  // The stale index entry is dropped; later inserts work normally.
  EXPECT_EQ((*cache)->entry_count(), 0u);
  (*cache)->Insert("obj#7", "replacement");
  auto got = (*cache)->Get("obj#7");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(*got, "replacement");
}

// Regression (ROADMAP): an SSD hit used to be promoted by copying — the
// block stayed charged at the SSD level AND in memory until the memory copy
// aged out. The levels are exclusive now: promotion moves the block up, a
// later memory eviction spills it back down.
TEST_F(SsdCacheTest, PromotionIsExclusiveAcrossLevels) {
  BlockManagerOptions options;
  options.memory_capacity_bytes = 64;  // one 40-byte block at a time
  options.memory_shards = 1;
  options.ssd_dir = dir_.string();
  options.ssd_capacity_bytes = 1 << 20;
  auto manager = BlockManager::Open(options);
  ASSERT_TRUE(manager.ok());

  (*manager)->Insert("a", Block(std::string(40, 'a')));
  (*manager)->Insert("b", Block(std::string(40, 'b')));  // a -> SSD
  EXPECT_EQ((*manager)->ssd_stats().inserts.load(), 1u);
  EXPECT_EQ((*manager)->memory_used_bytes(), 40u);
  EXPECT_EQ((*manager)->ssd_used_bytes(), 40u);

  // Promoting `a` moves it up: the SSD copy is released (no double charge)
  // and the displaced `b` spills down.
  ASSERT_NE((*manager)->Get("a"), nullptr);
  EXPECT_EQ((*manager)->ssd_stats().inserts.load(), 2u);
  EXPECT_EQ((*manager)->memory_used_bytes(), 40u);  // a
  EXPECT_EQ((*manager)->ssd_used_bytes(), 40u);     // b only — a was moved
  EXPECT_EQ((*manager)->memory_used_bytes() + (*manager)->ssd_used_bytes(),
            80u);  // each block charged exactly once across the hierarchy

  // The promoted copy is now the only copy, so when it ages out of memory
  // it MUST spill back to SSD (the old no-respill rule would lose it from
  // the cache hierarchy entirely).
  (*manager)->Insert("c", Block(std::string(40, 'c')));  // evicts a
  EXPECT_EQ((*manager)->ssd_stats().inserts.load(), 3u);
  EXPECT_EQ((*manager)->ssd_used_bytes(), 80u);  // a and b
  auto a = (*manager)->Get("a");                 // served from SSD
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(*a, std::string(40, 'a'));
}

TEST_F(SsdCacheTest, BlockManagerWithoutSsdStillCaches) {
  BlockManagerOptions options;
  options.memory_capacity_bytes = 1 << 20;
  options.ssd_dir.clear();
  auto manager = BlockManager::Open(options);
  ASSERT_TRUE(manager.ok());
  (*manager)->Insert("k", Block("v"));
  ASSERT_NE((*manager)->Get("k"), nullptr);
  EXPECT_EQ((*manager)->Get("missing"), nullptr);
  EXPECT_EQ((*manager)->ssd_used_bytes(), 0u);
}

TEST_F(SsdCacheTest, ParallelGetsDoNotSerializeOrCorrupt) {
  // Many threads hammering Get on a shared working set: the disk reads run
  // outside the cache mutex, so this exercises the lock-free hit path for
  // races (ASan/TSan) and verifies every thread always sees its key's own
  // bytes — never a colliding key's, never a torn read.
  CacheStats stats;
  auto cache = SsdBlockCache::Open(dir_.string(), 16 << 20, &stats);
  ASSERT_TRUE(cache.ok());
  constexpr int kKeys = 32;
  std::vector<std::string> payloads;
  for (int k = 0; k < kKeys; ++k) {
    payloads.push_back(std::string(4096, static_cast<char>('a' + k % 26)) +
                       "#" + std::to_string(k));
    (*cache)->Insert("key-" + std::to_string(k), payloads[k]);
  }

  std::atomic<int> wrong{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const int k = (t * 37 + i) % kKeys;
        auto got = (*cache)->Get("key-" + std::to_string(k));
        if (got == nullptr || *got != payloads[k]) wrong.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(stats.hits.load(), 8 * 200);
}

TEST_F(SsdCacheTest, InsertBatchReadsBackWithOneRangedRead) {
  auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20);
  ASSERT_TRUE(cache.ok());

  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>> batch;
  std::vector<std::string> keys;
  for (int b = 0; b < 8; ++b) {
    keys.push_back("obj#" + std::to_string(b));
    batch.emplace_back(keys.back(),
                       Block(std::string(512, static_cast<char>('a' + b))));
  }
  (*cache)->InsertBatch(batch);
  EXPECT_EQ((*cache)->entry_count(), 8u);

  // All eight blocks live in one run file, so the batched lookup must cost
  // exactly one disk read span.
  EXPECT_EQ((*cache)->ranged_reads(), 0u);
  auto got = (*cache)->GetBatch(keys);
  ASSERT_EQ(got.size(), keys.size());
  for (int b = 0; b < 8; ++b) {
    ASSERT_NE(got[b], nullptr) << keys[b];
    EXPECT_EQ(*got[b], std::string(512, static_cast<char>('a' + b)));
  }
  EXPECT_EQ((*cache)->ranged_reads(), 1u);

  // Single-key Get still works against a run file.
  auto single = (*cache)->Get("obj#3");
  ASSERT_NE(single, nullptr);
  EXPECT_EQ(*single, std::string(512, 'd'));
}

TEST_F(SsdCacheTest, GetBatchReportsMissesAndSurvivesPartialErase) {
  auto cache = SsdBlockCache::Open(dir_.string(), 1 << 20);
  ASSERT_TRUE(cache.ok());
  std::vector<std::pair<std::string, std::shared_ptr<const std::string>>> batch;
  for (int b = 0; b < 4; ++b) {
    batch.emplace_back("run#" + std::to_string(b), Block("data-" + std::to_string(b)));
  }
  (*cache)->InsertBatch(batch);

  // Erasing one member of the run must not disturb its neighbors' extents.
  (*cache)->Erase("run#1");
  auto got = (*cache)->GetBatch({"run#0", "run#1", "run#2", "missing"});
  ASSERT_NE(got[0], nullptr);
  EXPECT_EQ(*got[0], "data-0");
  EXPECT_EQ(got[1], nullptr);
  ASSERT_NE(got[2], nullptr);
  EXPECT_EQ(*got[2], "data-2");
  EXPECT_EQ(got[3], nullptr);

  // Dropping the rest reclaims the run file's bytes.
  (*cache)->Erase("run#0");
  (*cache)->Erase("run#2");
  (*cache)->Erase("run#3");
  EXPECT_EQ((*cache)->used_bytes(), 0u);
  EXPECT_EQ((*cache)->entry_count(), 0u);
}

TEST_F(SsdCacheTest, BlockManagerBatchSpillAndBatchRead) {
  // Adjacent blocks aging out of memory in one eviction wave must land in
  // one run file and come back through GetBatch (with promotion, like Get).
  BlockManagerOptions options;
  options.memory_capacity_bytes = 8 * 512;  // exactly the run
  options.memory_shards = 1;
  options.ssd_dir = dir_.string();
  options.ssd_capacity_bytes = 1 << 20;
  auto manager = BlockManager::Open(options);
  ASSERT_TRUE(manager.ok());

  std::vector<std::string> keys;
  for (int b = 0; b < 8; ++b) {
    keys.push_back("obj#" + std::to_string(b));
    (*manager)->Insert(keys.back(),
                       Block(std::string(512, static_cast<char>('a' + b))));
  }
  // One oversized insert displaces the whole run as a single batch.
  (*manager)->Insert("big", Block(std::string(8 * 512, 'z')));
  EXPECT_EQ((*manager)->memory_stats().evictions.load(), 8u);
  EXPECT_GT((*manager)->ssd_used_bytes(), 0u);

  auto got = (*manager)->GetBatch(keys);
  ASSERT_EQ(got.size(), keys.size());
  for (int b = 0; b < 8; ++b) {
    ASSERT_NE(got[b], nullptr) << keys[b];
    EXPECT_EQ(*got[b], std::string(512, static_cast<char>('a' + b)));
  }
  EXPECT_EQ((*manager)->ssd_stats().hits.load(), 8u);
  // Promotion is exclusive: the run's SSD copies were released. Only "big"
  // remains below — it was displaced by the first promotion.
  EXPECT_EQ((*manager)->ssd_used_bytes(), 8u * 512);
}

TEST_F(SsdCacheTest, ConcurrentPromotionNeverMissesBothLevels) {
  // Regression for the promotion race: Get used to erase the SSD copy
  // before the memory insert was visible, so a concurrent Get of the same
  // key could miss both levels even though the block was cached. Hammer
  // promotion from many threads; a cached key must never read as absent.
  BlockManagerOptions options;
  options.memory_capacity_bytes = 4096;
  options.memory_shards = 1;
  options.ssd_dir = dir_.string();
  options.ssd_capacity_bytes = 1 << 20;
  auto manager = BlockManager::Open(options);
  ASSERT_TRUE(manager.ok());

  // Seed all keys, then displace the lot to SSD with one capacity-sized
  // insert. During the racing phase the working set fits in memory again,
  // so every key lives in exactly one level at all times.
  constexpr int kKeys = 64;
  auto payload = [](int k) {
    return std::string(40, static_cast<char>('a' + k % 26));
  };
  for (int k = 0; k < kKeys; ++k) {
    (*manager)->Insert("k" + std::to_string(k), Block(payload(k)));
  }
  (*manager)->Insert("big", Block(std::string(4096, 'z')));
  EXPECT_GE((*manager)->memory_stats().evictions.load(),
            static_cast<uint64_t>(kKeys));

  std::atomic<int> missing{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int k = 0; k < kKeys; ++k) {
        auto got = (*manager)->Get("k" + std::to_string(k));
        if (got == nullptr || *got != payload(k)) missing.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(missing.load(), 0);
}

}  // namespace
}  // namespace logstore::cache
