#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "logblock/logblock_map.h"
#include "logblock/logblock_reader.h"
#include "logblock/logblock_writer.h"
#include "objectstore/memory_object_store.h"
#include "query/aggregation.h"
#include "query/block_executor.h"
#include "query/engine.h"
#include "query/predicate.h"

namespace logstore::query {
namespace {

using logblock::RowBatch;
using logblock::Value;

// Deterministic batch covering the paper's query template:
// row i: ts = i*1000, ip cycles over 8 addresses, latency = i % 500,
// fail = (i % 10 == 0), log mentions "timeout" when i % 50 == 0.
RowBatch MakeBatch(uint32_t rows, uint64_t tenant = 7) {
  RowBatch batch(logblock::RequestLogSchema());
  for (uint32_t i = 0; i < rows; ++i) {
    batch.AddRow({
        Value::Int64(static_cast<int64_t>(tenant)),
        Value::Int64(static_cast<int64_t>(i) * 1000),
        Value::String("192.168.0." + std::to_string(i % 8)),
        Value::Int64(i % 500),
        Value::String(i % 10 == 0 ? "true" : "false"),
        Value::String(i % 50 == 0 ? "request failed with timeout"
                                  : "request served ok"),
    });
  }
  return batch;
}

std::unique_ptr<logblock::LogBlockReader> OpenBlock(const RowBatch& batch,
                                                    uint32_t rows_per_block) {
  auto built =
      logblock::BuildLogBlock(batch, 7, {.rows_per_block = rows_per_block});
  EXPECT_TRUE(built.ok());
  auto reader = logblock::LogBlockReader::Open(
      std::make_shared<logblock::StringSource>(std::move(built->data)));
  EXPECT_TRUE(reader.ok());
  return std::move(reader).value();
}

TEST(PredicateTest, Int64Intervals) {
  EXPECT_EQ(Predicate::Int64Compare("x", CompareOp::kEq, 5).Int64Interval(),
            std::make_pair(int64_t{5}, int64_t{5}));
  EXPECT_EQ(Predicate::Int64Compare("x", CompareOp::kGe, 5).Int64Interval(),
            std::make_pair(int64_t{5}, INT64_MAX));
  EXPECT_EQ(Predicate::Int64Compare("x", CompareOp::kLt, 5).Int64Interval(),
            std::make_pair(INT64_MIN, int64_t{4}));
}

TEST(PredicateTest, EvalInt64) {
  const auto ge = Predicate::Int64Compare("x", CompareOp::kGe, 10);
  EXPECT_TRUE(ge.EvalInt64(10));
  EXPECT_FALSE(ge.EvalInt64(9));
  const auto ne = Predicate::Int64Compare("x", CompareOp::kNe, 0);
  EXPECT_TRUE(ne.EvalInt64(1));
  EXPECT_FALSE(ne.EvalInt64(0));
}

TEST(BlockExecutorTest, PaperTemplateQuery) {
  const RowBatch batch = MakeBatch(1000);
  auto reader = OpenBlock(batch, 128);

  // The §5.1 sample: ts range + ip + latency >= X + fail = 'false'.
  LogQuery query;
  query.ts_min = 100'000;
  query.ts_max = 600'000;
  query.predicates = {
      Predicate::StringEq("ip", "192.168.0.1"),
      Predicate::Int64Compare("latency", CompareOp::kGe, 100),
      Predicate::StringEq("fail", "false"),
  };
  query.select_columns = {"log", "ts"};

  auto result = ExecuteOnLogBlock(reader.get(), query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Brute-force expected rows.
  uint32_t expected = 0;
  for (uint32_t i = 0; i < 1000; ++i) {
    const int64_t ts = static_cast<int64_t>(i) * 1000;
    if (ts >= query.ts_min && ts <= query.ts_max && i % 8 == 1 &&
        (i % 500) >= 100 && i % 10 != 0) {
      ++expected;
    }
  }
  EXPECT_EQ(result->rows.size(), expected);
  EXPECT_GT(expected, 0u);
  for (const auto& row : result->rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0].type, logblock::ColumnType::kString);
    EXPECT_GE(row[1].i, query.ts_min);
    EXPECT_LE(row[1].i, query.ts_max);
  }
  EXPECT_GT(result->stats.index_probes, 0u);
}

TEST(BlockExecutorTest, SkippingAndScanAgree) {
  const RowBatch batch = MakeBatch(2000);
  auto reader = OpenBlock(batch, 100);

  const std::vector<LogQuery> queries = [] {
    std::vector<LogQuery> qs;
    LogQuery q1;
    q1.predicates = {Predicate::Match("log", "timeout")};
    qs.push_back(q1);
    LogQuery q2;
    q2.ts_min = 500'000;
    q2.predicates = {Predicate::Int64Compare("latency", CompareOp::kLt, 50)};
    qs.push_back(q2);
    LogQuery q3;
    q3.predicates = {Predicate::StringEq("fail", "true"),
                     Predicate::StringEq("ip", "192.168.0.0")};
    qs.push_back(q3);
    LogQuery q4;  // kNe forces residual scan even on indexed column
    q4.predicates = {Predicate::Int64Compare("latency", CompareOp::kNe, 0),
                     Predicate::Int64Compare("tenant_id", CompareOp::kEq, 7)};
    qs.push_back(q4);
    return qs;
  }();

  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto with = ExecuteOnLogBlock(reader.get(), queries[qi],
                                  {.use_data_skipping = true});
    auto without = ExecuteOnLogBlock(reader.get(), queries[qi],
                                     {.use_data_skipping = false});
    ASSERT_TRUE(with.ok()) << with.status().ToString();
    ASSERT_TRUE(without.ok()) << without.status().ToString();
    EXPECT_EQ(with->rows.size(), without->rows.size()) << "query " << qi;
    for (size_t r = 0; r < with->rows.size(); ++r) {
      for (size_t c = 0; c < with->rows[r].size(); ++c) {
        EXPECT_TRUE(with->rows[r][c] == without->rows[r][c])
            << "query " << qi << " row " << r;
      }
    }
    // Skipping must not scan more blocks than the full scan.
    EXPECT_LE(with->stats.column_blocks_scanned,
              without->stats.column_blocks_scanned);
  }
}

TEST(BlockExecutorTest, ColumnSmaSkipsWholeBlock) {
  const RowBatch batch = MakeBatch(500);
  auto reader = OpenBlock(batch, 100);

  LogQuery query;
  query.predicates = {
      Predicate::Int64Compare("tenant_id", CompareOp::kEq, 999)};  // never
  auto result = ExecuteOnLogBlock(reader.get(), query);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.skipped_by_column_sma);
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->stats.column_blocks_scanned, 0u);
  EXPECT_EQ(result->stats.index_probes, 0u);
}

TEST(BlockExecutorTest, BlockSmaSkipsUnindexedColumn) {
  // latency is unindexed; blocks are aligned so that most can be skipped
  // by block SMA for a tight latency range.
  RowBatch batch(logblock::RequestLogSchema());
  for (uint32_t i = 0; i < 1000; ++i) {
    batch.AddRow({Value::Int64(7), Value::Int64(i),
                  Value::String("10.0.0.1"),
                  Value::Int64(i / 100),  // latency: 0,0,..,1,1,..,9
                  Value::String("false"), Value::String("msg")});
  }
  auto reader = OpenBlock(batch, 100);

  LogQuery query;
  query.predicates = {Predicate::Int64Compare("latency", CompareOp::kEq, 5)};
  query.select_columns = {"latency"};
  auto result = ExecuteOnLogBlock(reader.get(), query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 100u);
  // Only 1 of 10 latency blocks matches the SMA range.
  EXPECT_EQ(result->stats.column_blocks_scanned, 1u);
  EXPECT_EQ(result->stats.column_blocks_skipped, 9u);
}

TEST(BlockExecutorTest, LimitTruncatesRows) {
  const RowBatch batch = MakeBatch(500);
  auto reader = OpenBlock(batch, 100);
  LogQuery query;
  query.limit = 7;
  auto result = ExecuteOnLogBlock(reader.get(), query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 7u);
}

TEST(BlockExecutorTest, EmptySelectReturnsAllColumns) {
  const RowBatch batch = MakeBatch(10);
  auto reader = OpenBlock(batch, 10);
  LogQuery query;
  auto result = ExecuteOnLogBlock(reader.get(), query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 10u);
  EXPECT_EQ(result->rows[0].size(), 6u);
}

TEST(BlockExecutorTest, UnknownColumnRejected) {
  const RowBatch batch = MakeBatch(10);
  auto reader = OpenBlock(batch, 10);
  LogQuery query;
  query.predicates = {Predicate::StringEq("nope", "x")};
  EXPECT_TRUE(ExecuteOnLogBlock(reader.get(), query)
                  .status()
                  .IsInvalidArgument());
  LogQuery query2;
  query2.select_columns = {"nope"};
  EXPECT_TRUE(ExecuteOnLogBlock(reader.get(), query2)
                  .status()
                  .IsInvalidArgument());
}

TEST(BlockExecutorTest, TypeMismatchRejected) {
  const RowBatch batch = MakeBatch(10);
  auto reader = OpenBlock(batch, 10);
  LogQuery query;
  query.predicates = {Predicate::StringEq("latency", "5")};  // int column
  EXPECT_TRUE(ExecuteOnLogBlock(reader.get(), query)
                  .status()
                  .IsInvalidArgument());
  LogQuery query2;
  query2.predicates = {Predicate::Int64Compare("ip", CompareOp::kEq, 1)};
  EXPECT_TRUE(ExecuteOnLogBlock(reader.get(), query2)
                  .status()
                  .IsInvalidArgument());
}

TEST(AggregationTest, GroupCountTopK) {
  std::vector<Value> values = {
      Value::String("a"), Value::String("b"), Value::String("a"),
      Value::String("c"), Value::String("a"), Value::String("b")};
  auto top = GroupCountTopK(values, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 3u);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 2u);
}

TEST(AggregationTest, GroupCountFormatsInts) {
  std::vector<Value> values = {Value::Int64(5), Value::Int64(5),
                               Value::Int64(9)};
  auto top = GroupCountTopK(values, 10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "5");
}

TEST(AggregationTest, RollupInt64) {
  std::vector<Value> values = {Value::Int64(10), Value::Int64(-5),
                               Value::Int64(25)};
  auto rollup = RollupInt64(values);
  EXPECT_EQ(rollup.count, 3u);
  EXPECT_EQ(rollup.min, -5);
  EXPECT_EQ(rollup.max, 25);
  EXPECT_EQ(rollup.sum, 30);
  EXPECT_DOUBLE_EQ(rollup.mean(), 10.0);
}

class QueryEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    // Three LogBlocks for tenant 7 covering consecutive hours, plus one
    // block for tenant 8.
    for (int blk = 0; blk < 3; ++blk) {
      RowBatch batch(logblock::RequestLogSchema());
      for (uint32_t i = 0; i < 600; ++i) {
        const int64_t ts = blk * 1'000'000 + i * 1000;
        batch.AddRow({Value::Int64(7), Value::Int64(ts),
                      Value::String("10.0.0." + std::to_string(i % 4)),
                      Value::Int64(i % 300),
                      Value::String(i % 2 == 0 ? "false" : "true"),
                      Value::String("block " + std::to_string(blk))});
      }
      auto built = logblock::BuildLogBlock(batch, 7, {.rows_per_block = 128});
      ASSERT_TRUE(built.ok());
      const std::string key = "tenant7/" + std::to_string(blk) + ".tar";
      ASSERT_TRUE(store_->Put(key, built->data).ok());
      map_.Add({.tenant_id = 7,
                .min_ts = built->meta.min_ts,
                .max_ts = built->meta.max_ts,
                .object_key = key,
                .size_bytes = built->data.size(),
                .row_count = built->meta.row_count});
    }
    RowBatch other(logblock::RequestLogSchema());
    other.AddRow({Value::Int64(8), Value::Int64(0), Value::String("1.1.1.1"),
                  Value::Int64(1), Value::String("false"),
                  Value::String("other tenant")});
    auto built = logblock::BuildLogBlock(other, 8);
    ASSERT_TRUE(built.ok());
    ASSERT_TRUE(store_->Put("tenant8/0.tar", built->data).ok());
    map_.Add({.tenant_id = 8,
              .min_ts = built->meta.min_ts,
              .max_ts = built->meta.max_ts,
              .object_key = "tenant8/0.tar",
              .size_bytes = built->data.size(),
              .row_count = 1});
  }

  EngineOptions SmallCacheOptions() {
    EngineOptions options;
    options.prefetch_threads = 4;
    options.io_block_size = 4096;
    options.cache_options.memory_capacity_bytes = 16 << 20;
    options.cache_options.memory_shards = 4;
    options.cache_options.ssd_dir.clear();
    return options;
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  logblock::LogBlockMap map_;
};

TEST_F(QueryEngineTest, PrunesByTimeRange) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());

  LogQuery query;
  query.tenant_id = 7;
  query.ts_min = 1'000'000;          // second block only
  query.ts_max = 1'000'000 + 599'000;
  query.select_columns = {"log"};
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.logblocks_total, 3u);
  EXPECT_EQ(result->stats.logblocks_pruned, 2u);
  EXPECT_EQ(result->rows.size(), 600u);
  for (const auto& row : result->rows) EXPECT_EQ(row[0].s, "block 1");
}

TEST_F(QueryEngineTest, TenantIsolation) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());
  LogQuery query;
  query.tenant_id = 8;
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);

  query.tenant_id = 12345;  // unknown tenant: no blocks, no error
  result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
}

TEST_F(QueryEngineTest, CrossBlockQueryMergesResults) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());
  LogQuery query;
  query.tenant_id = 7;
  query.predicates = {Predicate::StringEq("ip", "10.0.0.2")};
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u * 150u);  // 150 matches per block
}

TEST_F(QueryEngineTest, LimitStopsEarly) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());
  LogQuery query;
  query.tenant_id = 7;
  query.limit = 10;
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
}

TEST_F(QueryEngineTest, CacheReducesRepeatIo) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());
  LogQuery query;
  query.tenant_id = 7;
  query.predicates = {Predicate::Match("log", "block")};
  query.select_columns = {"ts"};

  ASSERT_TRUE((*engine)->Execute(query, map_).ok());
  const uint64_t cold_io = store_->stats().range_gets.load();
  ASSERT_TRUE((*engine)->Execute(query, map_).ok());
  const uint64_t warm_io = store_->stats().range_gets.load() - cold_io;
  EXPECT_LT(warm_io, cold_io / 4) << "cold=" << cold_io << " warm=" << warm_io;
}

TEST_F(QueryEngineTest, DisabledOptimizationsStillCorrect) {
  EngineOptions options = SmallCacheOptions();
  options.use_data_skipping = false;
  options.use_cache = false;
  options.use_prefetch = false;
  auto engine = QueryEngine::Open(store_.get(), options);
  ASSERT_TRUE(engine.ok());

  LogQuery query;
  query.tenant_id = 7;
  query.ts_min = 0;
  query.ts_max = 599'000;
  query.predicates = {Predicate::StringEq("fail", "true")};
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 300u);
}

TEST_F(QueryEngineTest, ColumnExtractionAndAggregation) {
  auto engine = QueryEngine::Open(store_.get(), SmallCacheOptions());
  ASSERT_TRUE(engine.ok());
  LogQuery query;
  query.tenant_id = 7;
  query.select_columns = {"ip", "latency"};
  auto result = (*engine)->Execute(query, map_);
  ASSERT_TRUE(result.ok());

  const auto ips = QueryEngine::Column(*result, "ip");
  ASSERT_EQ(ips.size(), result->rows.size());
  auto top = GroupCountTopK(ips, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].count, 450u);  // 600*3/4 per ip

  const auto latency = QueryEngine::Column(*result, "latency");
  EXPECT_EQ(RollupInt64(latency).max, 299);
}

}  // namespace
}  // namespace logstore::query
