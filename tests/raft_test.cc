#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "consensus/durable_log.h"
#include "consensus/raft.h"

namespace logstore::consensus {
namespace {

RaftOptions FastOptions() {
  RaftOptions options;
  options.election_timeout_min_ms = 100;
  options.election_timeout_max_ms = 200;
  options.heartbeat_interval_ms = 30;
  return options;
}

TEST(RaftTest, ElectsSingleLeader) {
  RaftCluster cluster(3, FastOptions(), 1);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  int leaders = 0;
  for (int i = 0; i < cluster.num_nodes(); ++i) {
    if (cluster.node(i).role() == Role::kLeader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(RaftTest, ReplicatesAndAppliesEntries) {
  RaftCluster cluster(3, FastOptions(), 2);
  std::map<int, std::vector<std::string>> applied;
  for (int i = 0; i < 3; ++i) {
    cluster.SetApplyFn(i, [&applied, i](uint64_t, const std::string& payload) {
      applied[i].push_back(payload);
    });
  }
  ASSERT_GE(cluster.WaitForLeader(), 0);

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(cluster.Propose("entry-" + std::to_string(i)).ok());
  }
  cluster.Tick(500);

  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(applied[i].size(), 10u) << "node " << i;
    for (int e = 0; e < 10; ++e) {
      EXPECT_EQ(applied[i][e], "entry-" + std::to_string(e));
    }
    EXPECT_EQ(cluster.node(i).commit_index(), 10u);
  }
}

TEST(RaftTest, ProposeOnFollowerFails) {
  RaftCluster cluster(3, FastOptions(), 3);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 3; ++i) {
    if (i == leader) continue;
    Status s = cluster.node(i).Propose("x");
    EXPECT_TRUE(s.IsUnavailable());
  }
}

TEST(RaftTest, SurvivesLeaderFailure) {
  RaftCluster cluster(3, FastOptions(), 4);
  const int first = cluster.WaitForLeader();
  ASSERT_GE(first, 0);
  ASSERT_TRUE(cluster.Propose("before-failover").ok());
  cluster.Tick(300);

  cluster.Disconnect(first);
  const int second = cluster.WaitForLeader(20000);
  ASSERT_GE(second, 0);
  EXPECT_NE(second, first);

  ASSERT_TRUE(cluster.Propose("after-failover").ok());
  cluster.Tick(300);
  EXPECT_EQ(cluster.node(second).commit_index(), 2u);

  // Old leader reconnects and catches up as a follower.
  cluster.Reconnect(first);
  cluster.Tick(1000);
  EXPECT_EQ(cluster.node(first).commit_index(), 2u);
  EXPECT_NE(cluster.node(first).role(), Role::kLeader);
}

TEST(RaftTest, MinorityPartitionCannotCommit) {
  RaftCluster cluster(3, FastOptions(), 5);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  // Isolate the leader with no followers: its entries must not commit.
  for (int i = 0; i < 3; ++i) {
    if (i != leader) cluster.Disconnect(i);
  }
  (void)cluster.node(leader).Propose("uncommittable");
  cluster.Tick(500);
  EXPECT_EQ(cluster.node(leader).commit_index(), 0u);
}

TEST(RaftTest, ToleratesMessageLoss) {
  RaftCluster cluster(3, FastOptions(), 6);
  cluster.SetDropRate(0.2);
  const int leader = cluster.WaitForLeader(30000);
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 5; ++i) {
    // Retry proposes during churn.
    for (int attempt = 0; attempt < 50; ++attempt) {
      if (cluster.Propose("m" + std::to_string(i)).ok()) break;
      cluster.Tick(50);
    }
  }
  cluster.Tick(3000);
  cluster.SetDropRate(0.0);
  cluster.Tick(1000);
  const int final_leader = cluster.leader();
  ASSERT_GE(final_leader, 0);
  EXPECT_EQ(cluster.node(final_leader).commit_index(), 5u);
}

TEST(RaftTest, SingleNodeClusterCommitsAlone) {
  RaftCluster cluster(1, FastOptions(), 7);
  ASSERT_GE(cluster.WaitForLeader(), 0);
  ASSERT_TRUE(cluster.Propose("solo").ok());
  cluster.Tick(100);
  EXPECT_EQ(cluster.node(0).commit_index(), 1u);
}

TEST(RaftTest, SyncQueueBackpressureRejectsWrites) {
  RaftOptions options = FastOptions();
  options.sync_queue_max_items = 4;
  RaftCluster cluster(3, options, 8);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);

  // Without ticking, the sync queue cannot drain: the 5th write must be
  // rejected with ResourceExhausted (BFC).
  int accepted = 0;
  Status last = Status::OK();
  for (int i = 0; i < 10; ++i) {
    last = cluster.node(leader).Propose("burst");
    if (last.ok()) ++accepted;
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_TRUE(last.IsResourceExhausted());

  // After draining, writes are accepted again.
  cluster.Tick(200);
  EXPECT_TRUE(cluster.node(leader).Propose("after-drain").ok());
}

TEST(RaftTest, SyncQueueByteLimitAlsoTriggers) {
  RaftOptions options = FastOptions();
  options.sync_queue_max_items = 1000;
  options.sync_queue_max_bytes = 100;
  RaftCluster cluster(3, options, 9);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  ASSERT_TRUE(cluster.node(leader).Propose(std::string(80, 'x')).ok());
  // 80 + 80 > 100: second large write rejected (paper: "processing a small
  // number of massive inputs can also cause the system to overload").
  EXPECT_TRUE(cluster.node(leader)
                  .Propose(std::string(80, 'y'))
                  .IsResourceExhausted());
}

TEST(RaftTest, SlowApplierTriggersBackpressure) {
  RaftOptions options = FastOptions();
  options.apply_per_tick = 1;          // very slow state machine
  options.apply_queue_max_items = 8;
  options.sync_queue_max_items = 16;
  options.max_uncommitted_entries = 32;
  RaftCluster cluster(3, options, 10);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);

  // Flood the system; BFC must bound both queues rather than growing them
  // without limit.
  int rejected = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      if (!cluster.Propose("flood").ok()) ++rejected;
    }
    cluster.Tick(30);
    for (int n = 0; n < 3; ++n) {
      EXPECT_LE(cluster.node(n).apply_queue_depth(),
                options.apply_queue_max_items);
      EXPECT_LE(cluster.node(n).sync_queue_depth(),
                options.sync_queue_max_items);
    }
  }
  EXPECT_GT(rejected, 0);  // backpressure reached the client
}

TEST(RaftTest, WalOnlyReplicaDoesNotApply) {
  // §3: three replicas, two with a full row store, one WAL-only.
  RaftOptions options = FastOptions();
  RaftCluster cluster(3, options, 11);
  std::map<int, int> applied_counts;
  for (int i = 0; i < 3; ++i) {
    cluster.SetApplyFn(i, [&applied_counts, i](uint64_t, const std::string&) {
      applied_counts[i]++;
    });
  }
  ASSERT_GE(cluster.WaitForLeader(), 0);
  // (apply_enabled is an option on the node; emulate the WAL-only replica
  // by checking that an apply-disabled node still replicates the log.)
  ASSERT_TRUE(cluster.Propose("e1").ok());
  cluster.Tick(300);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).log_size(), 1u);  // WAL everywhere
  }
}

TEST(RaftTest, RestartedNodeRecoversFromLog) {
  RaftCluster cluster(3, FastOptions(), 12);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(cluster.Propose("p").ok());
  cluster.Tick(300);

  const int follower = (leader + 1) % 3;
  cluster.node(follower).Restart();  // keeps log, loses volatile state
  EXPECT_EQ(cluster.node(follower).log_size(), 5u);
  EXPECT_EQ(cluster.node(follower).commit_index(), 0u);
  cluster.Tick(500);
  EXPECT_EQ(cluster.node(follower).commit_index(), 5u);
}

TEST(RaftTest, DivergentLogsAreOverwrittenAfterPartition) {
  // The classic Raft scenario: an isolated leader accepts entries that
  // never commit; after healing, the new leader's log overwrites them.
  RaftCluster cluster(3, FastOptions(), 21);
  const int first = cluster.WaitForLeader();
  ASSERT_GE(first, 0);
  ASSERT_TRUE(cluster.Propose("committed-1").ok());
  cluster.Tick(300);

  // Isolate the leader, then feed it doomed entries.
  cluster.Disconnect(first);
  for (int i = 0; i < 3; ++i) {
    (void)cluster.node(first).Propose("doomed-" + std::to_string(i));
  }
  // Let the isolated node tick alone so it appends them to its log.
  // (RaftCluster::Tick skips disconnected nodes, so tick it directly.)
  std::vector<Message> ignored;
  for (int i = 0; i < 10; ++i) cluster.node(first).Tick(10, &ignored);
  EXPECT_EQ(cluster.node(first).log_size(), 4u);  // 1 committed + 3 doomed

  // Majority elects a new leader and commits different entries.
  const int second = cluster.WaitForLeader(20000);
  ASSERT_GE(second, 0);
  ASSERT_NE(second, first);
  ASSERT_TRUE(cluster.Propose("committed-2").ok());
  cluster.Tick(300);

  // Heal: the old leader must discard the doomed suffix and converge.
  cluster.Reconnect(first);
  cluster.Tick(2000);
  ASSERT_EQ(cluster.node(first).commit_index(), 2u);
  EXPECT_EQ(cluster.node(first).log_size(), 2u);
  EXPECT_EQ(cluster.node(first).log_at(2).payload, "committed-2");
}

TEST(RaftTest, AllNodesConvergeToIdenticalLogs) {
  RaftCluster cluster(5, FastOptions(), 22);
  ASSERT_GE(cluster.WaitForLeader(), 0);
  for (int i = 0; i < 20; ++i) {
    for (int attempt = 0; attempt < 20; ++attempt) {
      if (cluster.Propose("entry-" + std::to_string(i)).ok()) break;
      cluster.Tick(50);
    }
    if (i == 10) {
      // Mid-stream follower failure and recovery.
      cluster.Disconnect((cluster.leader() + 1) % 5);
    }
  }
  cluster.Reconnect((cluster.leader() + 1) % 5);
  cluster.Tick(3000);

  const uint64_t commit = cluster.node(cluster.leader()).commit_index();
  EXPECT_EQ(commit, 20u);
  for (int n = 0; n < 5; ++n) {
    ASSERT_GE(cluster.node(n).log_size(), commit) << "node " << n;
    for (uint64_t i = 1; i <= commit; ++i) {
      EXPECT_EQ(cluster.node(n).log_at(i).payload,
                "entry-" + std::to_string(i - 1))
          << "node " << n << " index " << i;
    }
  }
}

TEST(RaftTest, LeadershipIsStableWithoutFailures) {
  RaftCluster cluster(5, FastOptions(), 13);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  const uint64_t term = cluster.node(leader).term();
  cluster.Tick(5000);
  EXPECT_EQ(cluster.leader(), leader);
  EXPECT_EQ(cluster.node(leader).term(), term);
}

TEST(RaftTest, ConvergesUnderDuplicationReorderingAndLoss) {
  // An unreliable network delivers some messages twice, holds others back
  // for a few delivery rounds, and drops a fraction outright. The protocol
  // must still commit everything exactly once on every replica.
  for (uint64_t seed : {31, 32, 33, 34, 35}) {
    RaftCluster cluster(3, FastOptions(), seed);
    std::map<int, std::vector<std::string>> applied;
    for (int i = 0; i < 3; ++i) {
      cluster.SetApplyFn(i,
                         [&applied, i](uint64_t, const std::string& payload) {
                           applied[i].push_back(payload);
                         });
    }
    cluster.SetDuplicateRate(0.2);
    cluster.SetReorderRate(0.2);
    cluster.SetDropRate(0.1);
    ASSERT_GE(cluster.WaitForLeader(), 0) << "seed " << seed;

    for (int i = 0; i < 15; ++i) {
      for (int attempt = 0; attempt < 50; ++attempt) {
        if (cluster.Propose("entry-" + std::to_string(i)).ok()) break;
        cluster.Tick(50);
      }
    }
    // Heal the network so delayed messages flush and the group settles.
    cluster.SetDuplicateRate(0.0);
    cluster.SetReorderRate(0.0);
    cluster.SetDropRate(0.0);
    cluster.Tick(3000);

    const uint64_t commit = cluster.node(cluster.leader()).commit_index();
    EXPECT_EQ(commit, 15u) << "seed " << seed;
    for (int n = 0; n < 3; ++n) {
      // Exactly once: duplicated kAppendEntries must not re-apply, and
      // reordered ones must not apply out of order.
      ASSERT_EQ(applied[n].size(), 15u) << "seed " << seed << " node " << n;
      for (int e = 0; e < 15; ++e) {
        EXPECT_EQ(applied[n][e], "entry-" + std::to_string(e))
            << "seed " << seed << " node " << n;
      }
      EXPECT_EQ(cluster.node(n).commit_index(), commit)
          << "seed " << seed << " node " << n;
    }
  }
}

// --- InstallSnapshot: repairing a follower the log can no longer reach ---

// A toy replicated state machine whose snapshot is the applied map itself,
// serialized as "index:payload\n" lines. (The production embedder ships an
// EMPTY blob because its state lives in object-store LogBlocks; encoding
// real state here proves the blob plumbing end to end.)
struct SnapshotHarness {
  std::map<int, std::map<uint64_t, std::string>> state;  // node -> applied
  std::map<int, uint64_t> install_aux;                   // node -> last aux

  void Wire(RaftCluster* cluster, int node) {
    cluster->SetApplyFn(node,
                        [this, node](uint64_t index, const std::string& p) {
                          state[node][index] = p;
                        });
    cluster->SetSnapshotHooks(
        node,
        [this, node](uint64_t index, uint64_t) {
          std::string blob;
          for (const auto& [i, p] : state[node]) {
            if (i <= index) blob += std::to_string(i) + ":" + p + "\n";
          }
          return blob;
        },
        [this, node](uint64_t, uint64_t aux, const std::string& blob) {
          install_aux[node] = aux;
          state[node].clear();
          size_t pos = 0;
          while (pos < blob.size()) {
            const size_t colon = blob.find(':', pos);
            const size_t nl = blob.find('\n', colon);
            state[node][std::stoull(blob.substr(pos, colon - pos))] =
                blob.substr(colon + 1, nl - colon - 1);
            pos = nl + 1;
          }
        });
  }
};

TEST(RaftTest, SnapshotRepairsFollowerBehindCompaction) {
  RaftCluster cluster(3, FastOptions(), 41);
  SnapshotHarness harness;
  for (int i = 0; i < 3; ++i) harness.Wire(&cluster, i);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster.Propose("e" + std::to_string(i)).ok());
  }
  cluster.Tick(500);

  // One follower dies; the group keeps committing and then compacts its
  // log past everything the dead follower ever saw.
  const int follower = (leader + 1) % 3;
  cluster.Disconnect(follower);
  for (int i = 5; i < 10; ++i) {
    ASSERT_TRUE(cluster.Propose("e" + std::to_string(i)).ok());
  }
  cluster.Tick(500);
  for (int i = 0; i < 3; ++i) {
    if (i == follower) continue;
    ASSERT_TRUE(cluster.node(i).AdvanceWatermark(8, /*aux=*/42).ok());
    EXPECT_EQ(cluster.node(i).log_base_index(), 8u);
  }

  // On rejoin, AppendEntries cannot reach the follower (its log ends at 5,
  // the leader's starts above 8): the leader must ship a snapshot.
  cluster.Reconnect(follower);
  cluster.Tick(2000);

  EXPECT_GE(cluster.node(leader).snapshots_sent(), 1u);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).log_base_index(), 8u);
  EXPECT_EQ(cluster.node(follower).log_base_aux(), 42u);
  EXPECT_EQ(harness.install_aux[follower], 42u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 10u);
  // The follower's machine equals the leader's: 1..8 from the snapshot
  // blob, 9..10 re-applied through the protocol.
  ASSERT_EQ(harness.state[follower].size(), 10u);
  for (uint64_t i = 1; i <= 10; ++i) {
    EXPECT_EQ(harness.state[follower][i], "e" + std::to_string(i - 1));
  }
}

TEST(RaftTest, StaleSnapshotDoesNotRewindFollower) {
  RaftCluster cluster(3, FastOptions(), 42);
  SnapshotHarness harness;
  for (int i = 0; i < 3; ++i) harness.Wire(&cluster, i);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.Propose("e" + std::to_string(i)).ok());
  }
  cluster.Tick(500);

  // Hand-deliver a duplicated/stale snapshot that covers a prefix the
  // follower already applied. It must be acknowledged (match advances, so
  // the leader un-sticks) but MUST NOT reinstall or re-apply anything.
  const int follower = (leader + 1) % 3;
  const auto before = harness.state[follower];
  Message stale;
  stale.type = MessageType::kInstallSnapshot;
  stale.from = leader;
  stale.to = follower;
  stale.term = cluster.node(leader).term();
  stale.snapshot_index = 3;
  stale.snapshot_term = cluster.node(leader).log_at(3).term;
  stale.snapshot_state = "999:poison\n";
  std::vector<Message> replies;
  cluster.node(follower).Receive(stale, &replies);

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].type, MessageType::kAppendResponse);
  EXPECT_TRUE(replies[0].success);
  EXPECT_EQ(replies[0].match_index, 6u);  // acknowledges real progress
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 0u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 6u);
  EXPECT_EQ(harness.state[follower], before);  // no poison, no rewind
}

TEST(RaftTest, SnapshotCatchUpSurvivesUnreliableNetwork) {
  // Duplicated and reordered snapshot/append traffic: installs must stay
  // idempotent and the group must still converge exactly once.
  for (uint64_t seed : {51, 52, 53}) {
    RaftCluster cluster(3, FastOptions(), seed);
    SnapshotHarness harness;
    for (int i = 0; i < 3; ++i) harness.Wire(&cluster, i);
    const int leader = cluster.WaitForLeader();
    ASSERT_GE(leader, 0) << "seed " << seed;
    const int follower = (leader + 1) % 3;
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(cluster.Propose("e" + std::to_string(i)).ok());
    }
    cluster.Tick(500);
    cluster.Disconnect(follower);
    for (int i = 4; i < 8; ++i) {
      ASSERT_TRUE(cluster.Propose("e" + std::to_string(i)).ok());
    }
    cluster.Tick(500);
    for (int i = 0; i < 3; ++i) {
      if (i == follower) continue;
      ASSERT_TRUE(cluster.node(i).AdvanceWatermark(7, /*aux=*/7).ok());
    }
    cluster.SetDuplicateRate(0.3);
    cluster.SetReorderRate(0.2);
    cluster.Reconnect(follower);
    cluster.Tick(3000);
    cluster.SetDuplicateRate(0.0);
    cluster.SetReorderRate(0.0);
    cluster.Tick(1000);

    EXPECT_EQ(cluster.node(follower).last_applied(), 8u) << "seed " << seed;
    ASSERT_EQ(harness.state[follower].size(), 8u) << "seed " << seed;
    for (uint64_t i = 1; i <= 8; ++i) {
      EXPECT_EQ(harness.state[follower][i], "e" + std::to_string(i - 1))
          << "seed " << seed;
    }
  }
}

TEST(RaftTest, DurableWalAcceptsPostSnapshotAppends) {
  // The WAL of a follower that took a snapshot must accept the next append
  // at snapshot_index + 1 (the watermark jumped past its old log end) and
  // recover the jumped base after a restart.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "raft_snapshot_wal_test";
  fs::remove_all(dir);

  {
    auto wal = DurableLog::Open(dir.string());
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    LogEntry entry;
    entry.term = 1;
    entry.payload = "old";
    ASSERT_TRUE((*wal)->AppendEntry(1, entry).ok());
    ASSERT_TRUE((*wal)->AppendEntry(2, entry).ok());
    // InstallSnapshot at index 9: truncate the stale suffix, then the
    // watermark jumps the expected next index to 10.
    ASSERT_TRUE((*wal)->TruncateSuffix(1).ok());
    ASSERT_TRUE((*wal)->PersistWatermark(9, 3, 77).ok());
    entry.payload = "new";
    EXPECT_TRUE((*wal)->AppendEntry(10, entry).ok());
  }
  auto wal = DurableLog::Open(dir.string());
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_EQ((*wal)->recovered().base_index, 9u);
  EXPECT_EQ((*wal)->recovered().base_term, 3u);
  EXPECT_EQ((*wal)->recovered().watermark_aux, 77u);
  ASSERT_EQ((*wal)->recovered().entries.size(), 1u);
  EXPECT_EQ((*wal)->recovered().entries[0].payload, "new");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace logstore::consensus
