// Seeded query-during-failover harness (a TSan target): concurrent
// Cluster::Query against RunControlCycle kill/recover/rejoin loops. The
// read-path contract under test (§12): every concurrent query returns
// either bytes IDENTICAL to the quiescent oracle — content and order — or
// a retryable kUnavailable. Never a partial result, never a crash, never a
// torn merge.
//
// The oracle stays valid across failovers because the deployment is
// durable + replicated (the victim's un-archived tail is re-ingested into
// survivors, so the row multiset is preserved) and the realtime merge
// order is placement-independent (so the row SEQUENCE is preserved too).
//
// Seeds default to a quick smoke count; CI raises CLUSTER_READ_SEEDS.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/random.h"
#include "objectstore/memory_object_store.h"
#include "test_env.h"

namespace logstore::cluster {
namespace {

namespace fs = std::filesystem;

using logblock::RowBatch;
using logblock::Value;
using testenv::MarkerRow;

int SeedCount() {
  return testenv::SeedCount("CLUSTER_READ_SEEDS", 2);  // CI raises this
}

TEST(ClusterReadFailoverTest, ConcurrentQueriesSeeOracleBytesOrRetryable) {
  constexpr uint32_t kWorkers = 3;
  constexpr int kTenants = 3;
  constexpr int kRounds = 4;

  for (int seed = 1; seed <= SeedCount(); ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Random rng(static_cast<uint64_t>(seed) * 7919);

    const fs::path dir = testenv::UniqueTempDir(
        "cluster_read_failover", static_cast<uint64_t>(seed));
    auto store = std::make_unique<objectstore::MemoryObjectStore>();
    ClusterDeploymentOptions options;
    options.num_workers = kWorkers;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = true;
    options.worker.wal_dir = dir.string();
    options.worker.builder.max_rows_per_logblock = 40;
    options.engine.query_threads = 4;
    options.engine.prefetch_threads = 2;
    options.engine.io_block_size = 4096;
    options.engine.cache_options.memory_capacity_bytes = 4 << 20;
    options.engine.cache_options.ssd_dir.clear();
    options.admission_slots = 4;
    auto opened = Cluster::Open(store.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Cluster> cluster = std::move(opened).value();

    // Acked data: an archived body plus an un-archived realtime tail per
    // tenant, so concurrent queries exercise both the scatter and the
    // realtime-merge halves while failovers move the tail between workers.
    for (uint64_t tenant = 0; tenant < kTenants; ++tenant) {
      for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(cluster
                        ->Write(tenant, MarkerRow(tenant, 1000 * i,
                                                  "t" + std::to_string(tenant) +
                                                      "-a" + std::to_string(i)))
                        .ok());
      }
    }
    auto built = cluster->RunBuildPass();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_GT(*built, 0);
    for (uint64_t tenant = 0; tenant < kTenants; ++tenant) {
      for (int i = 0; i < 20; ++i) {
        ASSERT_TRUE(cluster
                        ->Write(tenant, MarkerRow(tenant, 100'000 + 1000 * i,
                                                  "t" + std::to_string(tenant) +
                                                      "-r" + std::to_string(i)))
                        .ok());
      }
    }

    // Quiescent oracle: the exact bytes every successful concurrent query
    // must reproduce.
    std::vector<query::LogQuery> queries(kTenants);
    std::vector<query::QueryResult> oracle(kTenants);
    for (int tenant = 0; tenant < kTenants; ++tenant) {
      queries[tenant].tenant_id = static_cast<uint64_t>(tenant);
      queries[tenant].ts_min = 0;
      queries[tenant].ts_max = 1'000'000'000;
      auto result = cluster->Query(queries[tenant]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ASSERT_EQ(result->rows.size(), 80u);
      oracle[tenant] = std::move(result).value();
    }

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> successes{0};
    std::atomic<uint64_t> retryables{0};
    std::atomic<int> violations{0};
    auto reader = [&](int thread_id) {
      uint64_t tenant = static_cast<uint64_t>(thread_id) % kTenants;
      while (!stop.load(std::memory_order_acquire)) {
        auto result = cluster->Query(queries[tenant]);
        if (result.ok()) {
          if (result->rows != oracle[tenant].rows ||
              result->columns != oracle[tenant].columns) {
            ++violations;  // partial/torn result: the bug under test
          }
          ++successes;
        } else if (result.status().IsUnavailable()) {
          ++retryables;  // the documented retry contract
        } else {
          ADD_FAILURE() << "non-retryable failure: "
                        << result.status().ToString();
          ++violations;
        }
        tenant = (tenant + 1) % kTenants;
      }
    };
    std::vector<std::thread> readers;
    for (int t = 0; t < 2; ++t) readers.emplace_back(reader, t);

    // The failure loop: kill a live worker mid-queries, run the control
    // cycle (failover + WAL-tail re-ingest into survivors), let the victim
    // rejoin empty, repeat with a fresh victim.
    for (int round = 0; round < kRounds; ++round) {
      const uint32_t victim = static_cast<uint32_t>(rng.Next() % kWorkers);
      ASSERT_TRUE(cluster->KillWorker(victim).ok()) << "round " << round;
      auto cycle = cluster->RunControlCycle();
      ASSERT_TRUE(cycle.ok())
          << "round " << round << ": " << cycle.status().ToString();
      ASSERT_EQ(cycle->failovers.size(), 1u) << "round " << round;
      EXPECT_FALSE(cycle->failovers[0].tail_lost) << "round " << round;
      ASSERT_TRUE(cluster->RestartWorker(victim).ok()) << "round " << round;
      // A quiescent window between rounds so readers get successful runs
      // against the settled placement, not only retryable refusals.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    stop.store(true, std::memory_order_release);
    for (auto& thread : readers) thread.join();

    EXPECT_EQ(violations.load(), 0);
    EXPECT_GT(successes.load(), 0u);
    // Final quiescent check: after all failovers the bytes still match the
    // original oracle — nothing lost, duplicated, or reordered.
    for (int tenant = 0; tenant < kTenants; ++tenant) {
      auto result = cluster->Query(queries[tenant]);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      EXPECT_EQ(result->rows, oracle[tenant].rows) << "tenant " << tenant;
      auto single = cluster->QuerySingleEngine(queries[tenant]);
      ASSERT_TRUE(single.ok()) << single.status().ToString();
      EXPECT_EQ(single->rows, oracle[tenant].rows) << "tenant " << tenant;
    }

    cluster.reset();
    store.reset();
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace logstore::cluster
