#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/random.h"
#include "flow/balancer.h"
#include "flow/consistent_hash.h"
#include "flow/dinic.h"
#include "flow/route_table.h"

namespace logstore::flow {
namespace {

TEST(DinicTest, SimplePath) {
  DinicMaxFlow graph(4);
  graph.AddEdge(0, 1, 10);
  graph.AddEdge(1, 2, 5);
  graph.AddEdge(2, 3, 10);
  EXPECT_EQ(graph.Solve(0, 3), 5);
}

TEST(DinicTest, ParallelPathsSum) {
  DinicMaxFlow graph(4);
  graph.AddEdge(0, 1, 7);
  graph.AddEdge(0, 2, 9);
  graph.AddEdge(1, 3, 6);
  graph.AddEdge(2, 3, 20);
  EXPECT_EQ(graph.Solve(0, 3), 15);  // min(7,6) + min(9,20)
}

TEST(DinicTest, ClassicTextbookGraph) {
  // CLRS figure: max flow 23.
  DinicMaxFlow graph(6);
  graph.AddEdge(0, 1, 16);
  graph.AddEdge(0, 2, 13);
  graph.AddEdge(1, 2, 10);
  graph.AddEdge(2, 1, 4);
  graph.AddEdge(1, 3, 12);
  graph.AddEdge(3, 2, 9);
  graph.AddEdge(2, 4, 14);
  graph.AddEdge(4, 3, 7);
  graph.AddEdge(3, 5, 20);
  graph.AddEdge(4, 5, 4);
  EXPECT_EQ(graph.Solve(0, 5), 23);
}

TEST(DinicTest, DisconnectedIsZero) {
  DinicMaxFlow graph(4);
  graph.AddEdge(0, 1, 10);
  graph.AddEdge(2, 3, 10);
  EXPECT_EQ(graph.Solve(0, 3), 0);
}

TEST(DinicTest, FlowOnEdgesMatchesConservation) {
  DinicMaxFlow graph(5);
  const int e01 = graph.AddEdge(0, 1, 8);
  const int e02 = graph.AddEdge(0, 2, 8);
  const int e13 = graph.AddEdge(1, 3, 5);
  const int e23 = graph.AddEdge(2, 3, 5);
  const int e34 = graph.AddEdge(3, 4, 9);
  const int64_t total = graph.Solve(0, 4);
  EXPECT_EQ(total, 9);
  EXPECT_EQ(graph.flow_on(e01) + graph.flow_on(e02), total);
  EXPECT_EQ(graph.flow_on(e13) + graph.flow_on(e23), total);
  EXPECT_EQ(graph.flow_on(e34), total);
  EXPECT_LE(graph.flow_on(e13), 5);
  EXPECT_LE(graph.flow_on(e23), 5);
}

TEST(DinicTest, SolveIsRepeatable) {
  DinicMaxFlow graph(3);
  graph.AddEdge(0, 1, 4);
  graph.AddEdge(1, 2, 4);
  EXPECT_EQ(graph.Solve(0, 2), 4);
  EXPECT_EQ(graph.Solve(0, 2), 4);  // residuals reset between solves
}

TEST(ConsistentHashTest, DeterministicAndComplete) {
  ConsistentHashRing ring;
  for (uint32_t s = 0; s < 8; ++s) ring.AddNode(s);
  EXPECT_EQ(ring.GetNode(42), ring.GetNode(42));
  std::set<uint32_t> seen;
  for (uint64_t t = 0; t < 2000; ++t) seen.insert(ring.GetNode(t));
  EXPECT_EQ(seen.size(), 8u);  // every shard receives tenants
}

TEST(ConsistentHashTest, RemovalOnlyRemapsOwnedKeys) {
  ConsistentHashRing ring;
  for (uint32_t s = 0; s < 8; ++s) ring.AddNode(s);
  std::map<uint64_t, uint32_t> before;
  for (uint64_t t = 0; t < 1000; ++t) before[t] = ring.GetNode(t);
  ring.RemoveNode(3);
  int moved = 0;
  for (auto& [t, node] : before) {
    const uint32_t now = ring.GetNode(t);
    if (node != 3) {
      EXPECT_EQ(now, node) << "tenant " << t << " moved unnecessarily";
    }
    if (now != node) ++moved;
  }
  EXPECT_GT(moved, 0);
}

TEST(RouteTableTest, PickShardFollowsWeights) {
  RouteTable table;
  table.Set(1, {{0, 0.8}, {1, 0.2}});
  Random rng(77);
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) {
    uint32_t shard;
    ASSERT_TRUE(table.PickShard(1, &rng, &shard));
    counts[shard]++;
  }
  EXPECT_NEAR(counts[0] / 10000.0, 0.8, 0.05);
  EXPECT_NEAR(counts[1] / 10000.0, 0.2, 0.05);
}

TEST(RouteTableTest, MissingTenantFails) {
  RouteTable table;
  Random rng(1);
  uint32_t shard;
  EXPECT_FALSE(table.PickShard(9, &rng, &shard));
}

TEST(RouteTableTest, RouteCountAndMerge) {
  RouteTable old_table;
  old_table.Set(1, {{0, 1.0}});
  old_table.Set(2, {{1, 1.0}});
  RouteTable new_table;
  new_table.Set(1, {{0, 0.5}, {2, 0.5}});

  EXPECT_EQ(old_table.RouteCount(), 2u);
  EXPECT_EQ(new_table.RouteCount(), 2u);

  const RouteTable merged = RouteTable::MergeForReads(old_table, new_table);
  // Tenant 1: union {0, 2}; tenant 2 kept from old.
  EXPECT_EQ(merged.Get(1)->size(), 2u);
  EXPECT_TRUE(merged.Contains(2));
  EXPECT_DOUBLE_EQ(merged.Get(1)->at(0), 0.5);  // new weight wins
}

// --- Balancer fixtures -----------------------------------------------------

// A cluster where one tenant overwhelms its shard: 4 shards on 2 workers,
// tenant 0 sends 250k logs/s (f_max 100k), others 10k each.
ClusterState SkewedState() {
  ClusterState state;
  state.tenants = {{0, 250'000}, {1, 10'000}, {2, 10'000}, {3, 10'000}};
  for (uint32_t j = 0; j < 4; ++j) {
    state.shards.push_back({j, j / 2, 150'000, 0});
  }
  state.workers = {{0, 300'000, 0}, {1, 300'000, 0}};
  // Initial placement: everything hashed onto shard 0 except tenant 3.
  state.routes.Set(0, {{0, 1.0}});
  state.routes.Set(1, {{0, 1.0}});
  state.routes.Set(2, {{0, 1.0}});
  state.routes.Set(3, {{1, 1.0}});
  // Measured loads.
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, state.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    state.shards[j].load = shard_loads[j];
  }
  for (size_t k = 0; k < state.workers.size(); ++k) {
    state.workers[k].load = worker_loads[k];
  }
  return state;
}

TEST(BalancerTest, DetectHotShardsFindsOverload) {
  ClusterState state = SkewedState();
  const auto hot = DetectHotShards(state);
  ASSERT_EQ(hot.size(), 1u);
  EXPECT_EQ(hot[0], 0u);  // 270k load on 150k capacity
}

TEST(BalancerTest, NeedsScaleOutWhenSaturated) {
  ClusterState state = SkewedState();
  EXPECT_FALSE(NeedsScaleOut(state));
  state.workers[0].load = 299'000;
  state.workers[1].load = 299'000;
  EXPECT_TRUE(NeedsScaleOut(state));
}

TEST(BalancerTest, GreedySplitsHotTenant) {
  ClusterState state = SkewedState();
  GreedyBalancer balancer;
  const BalanceResult result = balancer.Schedule(state);

  // 250k / 100k => at least 3 routes for tenant 0.
  const auto* weights = result.routes.Get(0);
  ASSERT_NE(weights, nullptr);
  EXPECT_GE(weights->size(), 3u);
  // Weights are averaged.
  for (const auto& [_, w] : *weights) {
    EXPECT_NEAR(w, 1.0 / weights->size(), 1e-9);
  }

  // No shard exceeds its capacity under the new plan.
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    EXPECT_LE(shard_loads[j], state.shards[j].capacity) << "shard " << j;
  }
}

TEST(BalancerTest, MaxFlowCoversDemand) {
  ClusterState state = SkewedState();
  MaxFlowBalancer balancer;
  const BalanceResult result = balancer.Schedule(state);

  int64_t demand = 0;
  for (const auto& tenant : state.tenants) demand += tenant.traffic;
  EXPECT_GE(result.max_flow, demand);
  EXPECT_FALSE(result.scale_needed);

  // Constraints hold.
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    EXPECT_LE(shard_loads[j], state.shards[j].capacity + 1) << "shard " << j;
  }
  for (size_t k = 0; k < state.workers.size(); ++k) {
    EXPECT_LE(static_cast<double>(worker_loads[k]),
              state.alpha * state.workers[k].capacity + 1)
        << "worker " << k;
  }
  // Per-route limit respected: no single route carries more than f_max.
  for (const auto& [tenant_id, weights] : result.routes.rules()) {
    for (const auto& [shard, w] : weights) {
      const auto& tenant = state.tenants[tenant_id];
      EXPECT_LE(w * tenant.traffic, state.edge_max_flow * 1.01)
          << "tenant " << tenant_id << " shard " << shard;
    }
  }
}

TEST(BalancerTest, MaxFlowUsesNoMoreRoutesThanGreedy) {
  // Figure 12(c): the max-flow plan needs fewer route rules because it
  // re-weights existing edges before adding new ones.
  ClusterState state = SkewedState();
  GreedyBalancer greedy;
  MaxFlowBalancer maxflow;
  const auto greedy_result = greedy.Schedule(state);
  const auto maxflow_result = maxflow.Schedule(state);
  EXPECT_LE(maxflow_result.routes.RouteCount(),
            greedy_result.routes.RouteCount());
}

TEST(BalancerTest, MaxFlowReportsScaleNeededWhenImpossible) {
  ClusterState state = SkewedState();
  state.tenants[0].traffic = 10'000'000;  // far beyond cluster capacity
  state.shards[0].load = 10'020'000;
  MaxFlowBalancer balancer;
  const BalanceResult result = balancer.Schedule(state);
  EXPECT_TRUE(result.scale_needed);
  EXPECT_LT(result.max_flow, 10'030'000);
}

TEST(BalancerTest, BalancedClusterIsLeftAlone) {
  ClusterState state = SkewedState();
  // Calm the hot tenant: no shard is hot now.
  state.tenants[0].traffic = 20'000;
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, state.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    state.shards[j].load = shard_loads[j];
  }
  EXPECT_TRUE(DetectHotShards(state).empty());

  GreedyBalancer greedy;
  const auto result = greedy.Schedule(state);
  EXPECT_EQ(result.routes_added, 0);
  EXPECT_EQ(result.routes.RouteCount(), state.routes.RouteCount());
}

TEST(BalancerTest, MaxFlowReducesLoadStddev) {
  // Figure 13: after balancing, the standard deviation of shard loads
  // drops substantially.
  ClusterState state = SkewedState();
  auto stddev = [&](const RouteTable& routes) {
    std::vector<int64_t> shard_loads, worker_loads;
    ComputeLoads(state, routes, &shard_loads, &worker_loads);
    double mean = 0;
    for (int64_t l : shard_loads) mean += static_cast<double>(l);
    mean /= shard_loads.size();
    double var = 0;
    for (int64_t l : shard_loads) {
      var += (static_cast<double>(l) - mean) * (static_cast<double>(l) - mean);
    }
    return std::sqrt(var / shard_loads.size());
  };

  MaxFlowBalancer balancer;
  const auto result = balancer.Schedule(state);
  EXPECT_LT(stddev(result.routes), stddev(state.routes) / 2);
}

// Property sweep: random clusters; max-flow must satisfy demand whenever
// total demand fits under the aggregate worker watermark and per-route
// limits allow it, and must never violate capacity constraints.
class MaxFlowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MaxFlowPropertyTest, ConstraintsAlwaysHold) {
  Random rng(static_cast<uint64_t>(GetParam()));
  ClusterState state;
  const int num_workers = 2 + static_cast<int>(rng.Uniform(4));
  const int shards_per_worker = 2 + static_cast<int>(rng.Uniform(3));
  for (int k = 0; k < num_workers; ++k) {
    state.workers.push_back(
        {static_cast<uint32_t>(k), 200'000 + static_cast<int64_t>(rng.Uniform(200'000)), 0});
  }
  uint32_t shard_id = 0;
  for (int k = 0; k < num_workers; ++k) {
    for (int s = 0; s < shards_per_worker; ++s) {
      state.shards.push_back({shard_id++, static_cast<uint32_t>(k), 120'000, 0});
    }
  }
  ConsistentHashRing ring;
  for (const auto& shard : state.shards) ring.AddNode(shard.id);
  const int num_tenants = 5 + static_cast<int>(rng.Uniform(20));
  for (int t = 0; t < num_tenants; ++t) {
    state.tenants.push_back(
        {static_cast<uint64_t>(t),
         static_cast<int64_t>(rng.Uniform(120'000)) + 1000});
    state.routes.Set(t, {{ring.GetNode(t), 1.0}});
  }
  std::vector<int64_t> shard_loads, worker_loads;
  ComputeLoads(state, state.routes, &shard_loads, &worker_loads);
  for (size_t j = 0; j < state.shards.size(); ++j) {
    state.shards[j].load = shard_loads[j];
  }
  for (size_t k = 0; k < state.workers.size(); ++k) {
    state.workers[k].load = worker_loads[k];
  }

  MaxFlowBalancer balancer;
  const BalanceResult result = balancer.Schedule(state);

  // When the planner finds a feasible assignment, capacity constraints must
  // hold. (When demand genuinely exceeds cluster capacity the planner says
  // scale_needed and admission control, not routing, bounds the load.)
  if (!result.scale_needed) {
    ComputeLoads(state, result.routes, &shard_loads, &worker_loads);
    for (size_t j = 0; j < state.shards.size(); ++j) {
      EXPECT_LE(shard_loads[j], state.shards[j].capacity + 2)
          << "seed " << GetParam() << " shard " << j;
    }
  }
  // Every tenant keeps at least one route.
  for (const auto& tenant : state.tenants) {
    const auto* weights = result.routes.Get(tenant.id);
    ASSERT_NE(weights, nullptr) << "tenant " << tenant.id;
    EXPECT_GE(weights->size(), 1u);
    double total_weight = 0;
    for (const auto& [_, w] : *weights) total_weight += w;
    EXPECT_NEAR(total_weight, 1.0, 1e-6) << "tenant " << tenant.id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowPropertyTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace logstore::flow
