// Unit coverage for the durable segmented WAL: append/recover round trips,
// suffix truncation, segment rotation, the four crash modes with torn-tail
// repair, and watermark-driven prefix GC.

#include "consensus/durable_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "consensus/raft.h"

namespace logstore::consensus {
namespace {

namespace fs = std::filesystem;

class DurableLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("durable_log_test_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::unique_ptr<DurableLog> MustOpen(DurableLogOptions options = {}) {
    auto log = DurableLog::Open(dir_.string(), options);
    EXPECT_TRUE(log.ok()) << log.status().ToString();
    return std::move(log).value();
  }

  static LogEntry Entry(uint64_t term, const std::string& payload) {
    LogEntry entry;
    entry.term = term;
    entry.payload = payload;
    return entry;
  }

  fs::path dir_;
};

TEST_F(DurableLogTest, FreshDirectoryRecoversEmpty) {
  auto log = MustOpen();
  EXPECT_EQ(log->recovered().term, 0u);
  EXPECT_EQ(log->recovered().voted_for, -1);
  EXPECT_EQ(log->recovered().base_index, 0u);
  EXPECT_TRUE(log->recovered().entries.empty());
  EXPECT_EQ(log->recovered().repaired_tail_bytes, 0u);
}

TEST_F(DurableLogTest, HardStateAndEntriesSurviveReopen) {
  {
    auto log = MustOpen();
    ASSERT_TRUE(log->PersistHardState(3, 1).ok());
    ASSERT_TRUE(log->AppendEntry(1, Entry(2, "alpha")).ok());
    ASSERT_TRUE(log->AppendEntry(2, Entry(3, "beta")).ok());
  }
  auto log = MustOpen();
  EXPECT_EQ(log->recovered().term, 3u);
  EXPECT_EQ(log->recovered().voted_for, 1);
  ASSERT_EQ(log->recovered().entries.size(), 2u);
  EXPECT_EQ(log->recovered().entries[0].term, 2u);
  EXPECT_EQ(log->recovered().entries[0].payload, "alpha");
  EXPECT_EQ(log->recovered().entries[1].payload, "beta");
  // Appends continue at the recovered end.
  EXPECT_TRUE(log->AppendEntry(3, Entry(3, "gamma")).ok());
}

TEST_F(DurableLogTest, NonContiguousAppendRejected) {
  auto log = MustOpen();
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "a")).ok());
  EXPECT_TRUE(log->AppendEntry(3, Entry(1, "c")).IsInvalidArgument());
}

TEST_F(DurableLogTest, TruncateSuffixSurvivesReopen) {
  {
    auto log = MustOpen();
    for (uint64_t i = 1; i <= 5; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(1, "old" + std::to_string(i))).ok());
    }
    ASSERT_TRUE(log->TruncateSuffix(3).ok());
    ASSERT_TRUE(log->AppendEntry(3, Entry(2, "new3")).ok());
    ASSERT_TRUE(log->AppendEntry(4, Entry(2, "new4")).ok());
  }
  auto log = MustOpen();
  ASSERT_EQ(log->recovered().entries.size(), 4u);
  EXPECT_EQ(log->recovered().entries[1].payload, "old2");
  EXPECT_EQ(log->recovered().entries[2].payload, "new3");
  EXPECT_EQ(log->recovered().entries[3].payload, "new4");
}

TEST_F(DurableLogTest, RotationSpreadsEntriesAcrossSegments) {
  DurableLogOptions options;
  options.segment_target_bytes = 256;  // force frequent rotation
  {
    auto log = MustOpen(options);
    for (uint64_t i = 1; i <= 50; ++i) {
      ASSERT_TRUE(
          log->AppendEntry(i, Entry(1, std::string(20, 'x'))).ok());
    }
    EXPECT_GT(log->segments().size(), 2u);
  }
  auto log = MustOpen(options);
  EXPECT_EQ(log->recovered().entries.size(), 50u);
}

TEST_F(DurableLogTest, DropUnsyncedLosesExactlyTheUnsyncedSuffix) {
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  {
    auto log = MustOpen(options);
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(1, "synced")).ok());
    }
    ASSERT_TRUE(log->Sync().ok());
    // Crash between append and fsync: these two never reach the disk.
    ASSERT_TRUE(log->AppendEntry(4, Entry(1, "lost")).ok());
    ASSERT_TRUE(log->AppendEntry(5, Entry(1, "lost")).ok());
    ASSERT_GT(log->unsynced_bytes(), 0u);
    ASSERT_TRUE(log->SimulateCrash(CrashMode::kDropUnsynced, 7).ok());
    // The object is dead after the crash.
    EXPECT_FALSE(log->AppendEntry(6, Entry(1, "x")).ok());
  }
  auto log = MustOpen(options);
  EXPECT_EQ(log->recovered().entries.size(), 3u);
}

TEST_F(DurableLogTest, TornWriteTruncatesAtRecordBoundary) {
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    fs::remove_all(dir_);
    {
      auto log = MustOpen(options);
      for (uint64_t i = 1; i <= 3; ++i) {
        ASSERT_TRUE(log->AppendEntry(i, Entry(1, "synced")).ok());
      }
      ASSERT_TRUE(log->Sync().ok());
      ASSERT_TRUE(log->AppendEntry(4, Entry(1, "maybe-torn")).ok());
      ASSERT_TRUE(log->SimulateCrash(CrashMode::kTornWrite, seed).ok());
    }
    auto log = MustOpen(options);
    // Whatever the cut point, recovery lands on a record boundary: either
    // the unsynced entry survived whole or it is gone entirely.
    const size_t n = log->recovered().entries.size();
    ASSERT_TRUE(n == 3 || n == 4) << "seed " << seed << " recovered " << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(log->recovered().entries[i].payload,
                i < 3 ? "synced" : "maybe-torn");
    }
    // The repair is persistent: a second recovery sees a clean log.
    log.reset();
    auto again = MustOpen(options);
    EXPECT_EQ(again->recovered().entries.size(), n);
    EXPECT_EQ(again->recovered().repaired_tail_bytes, 0u);
  }
}

TEST_F(DurableLogTest, BitFlipInTailRecordDropsIt) {
  {
    auto log = MustOpen();
    ASSERT_TRUE(log->AppendEntry(1, Entry(1, "keep-one")).ok());
    ASSERT_TRUE(log->AppendEntry(2, Entry(1, "keep-two")).ok());
    ASSERT_TRUE(log->AppendEntry(3, Entry(1, "flipped!")).ok());
    ASSERT_TRUE(log->SimulateCrash(CrashMode::kBitFlipTail, 11).ok());
  }
  auto log = MustOpen();
  // The CRC catches the flip; the log truncates at the last valid boundary.
  ASSERT_EQ(log->recovered().entries.size(), 2u);
  EXPECT_EQ(log->recovered().entries[1].payload, "keep-two");
  EXPECT_GT(log->recovered().repaired_tail_bytes, 0u);
}

TEST_F(DurableLogTest, HalvedTailRecordDropsIt) {
  {
    auto log = MustOpen();
    ASSERT_TRUE(log->AppendEntry(1, Entry(1, "keep")).ok());
    ASSERT_TRUE(log->AppendEntry(2, Entry(1, "half-written-record")).ok());
    ASSERT_TRUE(log->SimulateCrash(CrashMode::kHalveTailRecord, 13).ok());
  }
  auto log = MustOpen();
  ASSERT_EQ(log->recovered().entries.size(), 1u);
  EXPECT_EQ(log->recovered().entries[0].payload, "keep");
  EXPECT_GT(log->recovered().repaired_tail_bytes, 0u);
}

TEST_F(DurableLogTest, CrashDuringRotationKeepsSealedSegments) {
  DurableLogOptions options;
  options.segment_target_bytes = 128;
  options.sync_policy = SyncPolicy::kOnSync;
  uint64_t appended = 0;
  {
    auto log = MustOpen(options);
    // Enough appends that several rotations happen with unsynced bytes in
    // flight; the crash then tears the freshly-started segment.
    for (uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(1, std::string(40, 'r'))).ok());
      appended = i;
    }
    ASSERT_GE(log->segments().size(), 2u);
    ASSERT_TRUE(log->SimulateCrash(CrashMode::kTornWrite, 17).ok());
  }
  auto log = MustOpen(options);
  // Rotation seals the previous segment durably (fsync before close), so
  // only entries in the active segment can be missing.
  const size_t recovered = log->recovered().entries.size();
  EXPECT_LE(recovered, appended);
  for (size_t i = 0; i < recovered; ++i) {
    EXPECT_EQ(log->recovered().entries[i].payload, std::string(40, 'r'));
  }
  // And every sealed segment survived intact: recovery reaches at least
  // the entries of all non-active segments.
  uint64_t sealed_max = 0;
  for (const auto& segment : log->segments()) {
    if (!segment.active) {
      sealed_max = std::max(sealed_max, segment.max_entry_index);
    }
  }
  EXPECT_GE(recovered, sealed_max);
}

TEST_F(DurableLogTest, WatermarkGcDeletesWholeArchivedSegments) {
  DurableLogOptions options;
  options.segment_target_bytes = 128;
  {
    auto log = MustOpen(options);
    for (uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(1, std::string(40, 'g'))).ok());
    }
    const auto before = log->segments();
    ASSERT_GT(before.size(), 2u);

    ASSERT_TRUE(log->PersistWatermark(20, 1, 777).ok());
    // Segments wholly at or below the watermark are gone; every surviving
    // non-active segment still carries entries above it.
    for (const auto& segment : log->segments()) {
      if (!segment.active && segment.max_entry_index != 0) {
        EXPECT_GT(segment.max_entry_index, 20u) << segment.path;
      }
      EXPECT_TRUE(fs::exists(segment.path));
    }
    for (const auto& segment : before) {
      if (segment.max_entry_index != 0 && segment.max_entry_index <= 20 &&
          !segment.active) {
        EXPECT_FALSE(fs::exists(segment.path)) << segment.path;
      }
    }
  }
  // The retained suffix is self-describing: recovery reloads the watermark
  // (with its aux cookie) and exactly the entries above it.
  auto log = MustOpen(options);
  EXPECT_EQ(log->recovered().base_index, 20u);
  EXPECT_EQ(log->recovered().watermark_aux, 777u);
  EXPECT_EQ(log->recovered().entries.size(), 10u);
}

TEST_F(DurableLogTest, HardStateSurvivesGcViaSegmentHeaders) {
  DurableLogOptions options;
  options.segment_target_bytes = 128;
  {
    auto log = MustOpen(options);
    ASSERT_TRUE(log->PersistHardState(9, 2).ok());
    for (uint64_t i = 1; i <= 30; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(9, std::string(40, 'h'))).ok());
    }
    ASSERT_TRUE(log->PersistWatermark(30, 9, 5).ok());
    // Everything is archived: every sealed segment is deleted. The hard
    // state persisted long ago must still be recoverable from the active
    // segment's header.
    for (const auto& segment : log->segments()) {
      EXPECT_TRUE(segment.active);
    }
  }
  auto log = MustOpen(options);
  EXPECT_EQ(log->recovered().term, 9u);
  EXPECT_EQ(log->recovered().voted_for, 2);
  EXPECT_EQ(log->recovered().base_index, 30u);
  EXPECT_TRUE(log->recovered().entries.empty());
  // Life goes on after GC: the next entry index continues from the base.
  EXPECT_TRUE(log->AppendEntry(31, Entry(10, "after-gc")).ok());
}

// --- Group-commit fsync batching ---

TEST_F(DurableLogTest, RedundantSyncsShareOneFsync) {
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  auto log = MustOpen(options);
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "a")).ok());
  ASSERT_TRUE(log->AppendEntry(2, Entry(1, "b")).ok());
  ASSERT_TRUE(log->AppendEntry(3, Entry(1, "c")).ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(log->Sync().ok());
  // One flush covered all three records; the four extra Syncs found
  // nothing new to write and issued no fsync of their own.
  EXPECT_EQ(log->fsyncs_issued(), 1u);
  ASSERT_TRUE(log->AppendEntry(4, Entry(1, "d")).ok());
  ASSERT_TRUE(log->Sync().ok());
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(log->fsyncs_issued(), 2u);
  EXPECT_EQ(log->unsynced_bytes(), 0u);
}

TEST_F(DurableLogTest, ConcurrentSyncersBatchBehindTheWriter) {
  // One writer appends while several committers hammer Sync — the Worker's
  // SyncAll-before-ack pattern. Every fsync must cover new bytes, so the
  // flush count is bounded by the append count no matter how the threads
  // interleave, and the recovered log must be complete.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  constexpr int kAppends = 100;
  {
    auto log = MustOpen(options);
    std::atomic<bool> done{false};
    std::vector<std::thread> syncers;
    for (int t = 0; t < 4; ++t) {
      syncers.emplace_back([&log, &done] {
        while (!done.load()) {
          ASSERT_TRUE(log->Sync().ok());
        }
      });
    }
    for (int i = 1; i <= kAppends; ++i) {
      ASSERT_TRUE(log->AppendEntry(i, Entry(1, "payload-" +
                                                   std::to_string(i))).ok());
    }
    done.store(true);
    for (auto& t : syncers) t.join();
    ASSERT_TRUE(log->Sync().ok());
    EXPECT_LE(log->fsyncs_issued(), static_cast<uint64_t>(kAppends) + 1);
    EXPECT_EQ(log->unsynced_bytes(), 0u);
  }
  auto log = MustOpen(options);
  ASSERT_EQ(log->recovered().entries.size(), static_cast<size_t>(kAppends));
  EXPECT_EQ(log->recovered().entries.back().payload,
            "payload-" + std::to_string(kAppends));
}

// --- Append / fsync error paths ---

TEST_F(DurableLogTest, FailedAppendIsNotAckedAndIsRetryable) {
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  {
    auto log = MustOpen(options);
    ASSERT_TRUE(log->AppendEntry(1, Entry(1, "kept")).ok());
    log->InjectAppendErrors(1, /*partial_write=*/false);
    EXPECT_TRUE(log->AppendEntry(2, Entry(1, "refused")).IsIOError());
    // The index was not consumed: the same append retries cleanly.
    ASSERT_TRUE(log->AppendEntry(2, Entry(1, "retried")).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  auto log = MustOpen(options);
  ASSERT_EQ(log->recovered().entries.size(), 2u);
  EXPECT_EQ(log->recovered().entries[1].payload, "retried");
  EXPECT_EQ(log->recovered().repaired_tail_bytes, 0u);
}

TEST_F(DurableLogTest, PartialWriteRollsBackToRecordBoundary) {
  // ENOSPC strikes halfway through a record: the half-written frame must
  // be rolled back so the next append starts at a clean boundary — with no
  // torn-tail repair needed at recovery (the segment never tore).
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  {
    auto log = MustOpen(options);
    ASSERT_TRUE(log->AppendEntry(1, Entry(1, "kept")).ok());
    log->InjectAppendErrors(1, /*partial_write=*/true);
    EXPECT_TRUE(
        log->AppendEntry(2, Entry(1, "half-written-victim")).IsIOError());
    ASSERT_TRUE(log->AppendEntry(2, Entry(1, "clean")).ok());
    ASSERT_TRUE(log->Sync().ok());
  }
  auto log = MustOpen(options);
  ASSERT_EQ(log->recovered().entries.size(), 2u);
  EXPECT_EQ(log->recovered().entries[0].payload, "kept");
  EXPECT_EQ(log->recovered().entries[1].payload, "clean");
  EXPECT_EQ(log->recovered().repaired_tail_bytes, 0u);
}

TEST_F(DurableLogTest, FsyncFailureWedgesTheLogUntilReopen) {
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  {
    auto log = MustOpen(options);
    ASSERT_TRUE(log->AppendEntry(1, Entry(1, "acked")).ok());
    ASSERT_TRUE(log->Sync().ok());
    ASSERT_TRUE(log->AppendEntry(2, Entry(1, "doomed")).ok());
    log->InjectSyncErrors(1);
    EXPECT_TRUE(log->Sync().IsIOError());
    // EIO on fsync is fail-stop: the kernel may have dropped the dirty
    // pages, so no later call may pretend to succeed.
    EXPECT_TRUE(log->Sync().IsIOError());
    EXPECT_TRUE(log->AppendEntry(3, Entry(1, "rejected")).IsIOError());
  }
  // Reopen recovers a valid record-bounded prefix and accepts appends.
  auto log = MustOpen(options);
  ASSERT_GE(log->recovered().entries.size(), 1u);
  EXPECT_EQ(log->recovered().entries[0].payload, "acked");
  const uint64_t next =
      log->recovered().base_index + log->recovered().entries.size() + 1;
  EXPECT_TRUE(log->AppendEntry(next, Entry(2, "after-reopen")).ok());
}

// --- BtrLog-style background syncer (max_sync_delay_us > 0) ---

TEST_F(DurableLogTest, BackgroundSyncerBatchesConcurrentSyncs) {
  // Committers park on the dedicated syncer; one fsync covers the whole
  // batch. Accounting stays exact: every Sync() is a batch, only real
  // flushes are fsyncs, and nothing is left unsynced once all Syncs return.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  options.max_sync_delay_us = 2'000;
  options.max_sync_batch = 8;
  constexpr int kAppends = 100;
  {
    auto log = MustOpen(options);
    std::atomic<bool> done{false};
    std::atomic<uint64_t> syncs{0};
    std::vector<std::thread> syncers;
    for (int t = 0; t < 4; ++t) {
      syncers.emplace_back([&log, &done, &syncs] {
        while (!done.load()) {
          ASSERT_TRUE(log->Sync().ok());
          syncs.fetch_add(1);
        }
      });
    }
    for (int i = 1; i <= kAppends; ++i) {
      ASSERT_TRUE(
          log->AppendEntry(i, Entry(1, "payload-" + std::to_string(i))).ok());
    }
    done.store(true);
    for (auto& t : syncers) t.join();
    ASSERT_TRUE(log->Sync().ok());
    syncs.fetch_add(1);
    EXPECT_EQ(log->sync_batches(), syncs.load());
    EXPECT_LE(log->fsyncs_issued(), log->sync_batches());
    EXPECT_GE(log->fsyncs_issued(), 1u);
    EXPECT_EQ(log->unsynced_bytes(), 0u);
  }
  // An acked Sync means durable: the full log recovers.
  auto log = MustOpen(options);
  ASSERT_EQ(log->recovered().entries.size(), static_cast<size_t>(kAppends));
  EXPECT_EQ(log->recovered().entries.back().payload,
            "payload-" + std::to_string(kAppends));
}

TEST_F(DurableLogTest, SyncerDelayFlushesASingleWriter) {
  // A lone committer never fills the batch: the oldest caller's delay
  // budget must trigger the flush, so Sync() returns in bounded time.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  options.max_sync_delay_us = 1'000;
  options.max_sync_batch = 32;
  auto log = MustOpen(options);
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "solo")).ok());
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(log->unsynced_bytes(), 0u);
  EXPECT_EQ(log->fsyncs_issued(), 1u);
  EXPECT_EQ(log->sync_batches(), 1u);
  // A Sync with nothing new pending returns without parking or flushing.
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(log->fsyncs_issued(), 1u);
  EXPECT_EQ(log->sync_batches(), 2u);
}

TEST_F(DurableLogTest, SyncerBatchThresholdFlushesBeforeTheDelay) {
  // With an hour-long delay budget, only the batch threshold can flush:
  // two parked committers fill max_sync_batch=2 and share one fsync. The
  // test completing at all proves the threshold fired, not the delay.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  options.max_sync_delay_us = 3'600'000'000LL;
  options.max_sync_batch = 2;
  auto log = MustOpen(options);
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "a")).ok());
  ASSERT_TRUE(log->AppendEntry(2, Entry(1, "b")).ok());
  std::thread peer([&log] { ASSERT_TRUE(log->Sync().ok()); });
  ASSERT_TRUE(log->Sync().ok());
  peer.join();
  EXPECT_EQ(log->unsynced_bytes(), 0u);
  EXPECT_EQ(log->sync_batches(), 2u);
  // Both callers' bytes were covered by one flush (the second caller can
  // at most have raced into a second, already-covered flush: never more).
  EXPECT_LE(log->fsyncs_issued(), 2u);
  EXPECT_GE(log->fsyncs_issued(), 1u);
}

TEST_F(DurableLogTest, SyncerEioFailsParkedCallersAndWedgesTheLog) {
  // The syncer's fsync hits EIO: every parked caller gets the error (never
  // a hang, never a false ack) and the log is wedged fail-stop.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  options.max_sync_delay_us = 500;
  options.max_sync_batch = 32;
  auto log = MustOpen(options);
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "doomed")).ok());
  log->InjectSyncErrors(1);
  EXPECT_TRUE(log->Sync().IsIOError());
  EXPECT_TRUE(log->Sync().IsIOError());
  EXPECT_TRUE(log->AppendEntry(2, Entry(1, "rejected")).IsIOError());
}

TEST_F(DurableLogTest, CrashWhileParkedOnTheSyncerReturnsError) {
  // A simulated crash while a committer is parked must wake it with an
  // error — whichever side wins the race, the Sync returns non-OK promptly.
  DurableLogOptions options;
  options.sync_policy = SyncPolicy::kOnSync;
  options.max_sync_delay_us = 3'600'000'000LL;  // only the crash can wake it
  options.max_sync_batch = 32;
  auto log = MustOpen(options);
  ASSERT_TRUE(log->AppendEntry(1, Entry(1, "parked")).ok());
  std::thread committer([&log] { EXPECT_FALSE(log->Sync().ok()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(log->SimulateCrash(CrashMode::kDropUnsynced, 7).ok());
  committer.join();
}

}  // namespace
}  // namespace logstore::consensus
