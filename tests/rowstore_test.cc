#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/crc32c.h"
#include "logblock/schema.h"
#include "rowstore/row_store.h"
#include "rowstore/wal.h"

namespace logstore::rowstore {
namespace {

using logblock::RowBatch;
using logblock::Value;

RowBatch OneRow(uint64_t tenant, int64_t ts, const std::string& ip,
                int64_t latency, const std::string& fail,
                const std::string& log) {
  RowBatch batch(logblock::RequestLogSchema());
  batch.AddRow({Value::Int64(static_cast<int64_t>(tenant)), Value::Int64(ts),
                Value::String(ip), Value::Int64(latency), Value::String(fail),
                Value::String(log)});
  return batch;
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  RowBatch batch(logblock::RequestLogSchema());
  for (int i = 0; i < 20; ++i) {
    batch.AddRow({Value::Int64(3), Value::Int64(i * 100),
                  Value::String("1.2.3.4"), Value::Int64(i),
                  Value::String("false"),
                  Value::String("line " + std::to_string(i))});
  }
  const std::string payload = EncodeWalRecord(3, batch);
  auto record = DecodeWalRecord(payload, batch.schema());
  ASSERT_TRUE(record.ok()) << record.status().ToString();
  EXPECT_EQ(record->tenant_id, 3u);
  ASSERT_EQ(record->rows.num_rows(), 20u);
  EXPECT_EQ(record->rows.Int64At(1, 5), 500);
  EXPECT_EQ(record->rows.StringAt(5, 19), "line 19");
}

TEST(WalRecordTest, CrcDetectsCorruption) {
  const std::string payload = EncodeWalRecord(1, OneRow(1, 0, "a", 1, "f", "l"));
  for (size_t flip : {size_t{0}, size_t{5}, payload.size() - 1}) {
    std::string corrupted = payload;
    corrupted[flip] ^= 0x40;
    EXPECT_TRUE(DecodeWalRecord(corrupted, logblock::RequestLogSchema())
                    .status()
                    .IsCorruption())
        << "flip at " << flip;
  }
}

TEST(WalRecordTest, TruncationDetected) {
  const std::string payload = EncodeWalRecord(1, OneRow(1, 0, "a", 1, "f", "l"));
  EXPECT_FALSE(DecodeWalRecord(Slice(payload.data(), payload.size() - 3),
                               logblock::RequestLogSchema())
                   .ok());
  EXPECT_FALSE(DecodeWalRecord(Slice("xy"), logblock::RequestLogSchema()).ok());
}

// Wraps a hand-crafted record body with a VALID checksum, so decode gets
// past the CRC and must survive the malformed body on its own.
std::string FrameBody(const std::string& body) {
  std::string out;
  PutFixed32(&out, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  out.append(body);
  return out;
}

TEST(WalRecordTest, BitFlippedCrcRejected) {
  const std::string payload = EncodeWalRecord(1, OneRow(1, 0, "a", 1, "f", "l"));
  // Flip one bit in each byte of the checksum itself (not the body).
  for (size_t byte = 0; byte < 4; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = payload;
      corrupted[byte] ^= static_cast<char>(1 << bit);
      EXPECT_TRUE(DecodeWalRecord(corrupted, logblock::RequestLogSchema())
                      .status()
                      .IsCorruption())
          << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(WalRecordTest, TruncatedVarintHeaderRejected) {
  // The tenant_id varint says "more bytes follow" and then the record ends.
  EXPECT_TRUE(DecodeWalRecord(FrameBody("\x80"), logblock::RequestLogSchema())
                  .status()
                  .IsCorruption());
  // Valid tenant_id, then a dangling row_count varint.
  std::string body;
  PutVarint64(&body, 7);
  body.push_back('\x80');
  EXPECT_TRUE(DecodeWalRecord(FrameBody(body), logblock::RequestLogSchema())
                  .status()
                  .IsCorruption());
  // Empty body: no header at all.
  EXPECT_TRUE(DecodeWalRecord(FrameBody(""), logblock::RequestLogSchema())
                  .status()
                  .IsCorruption());
}

TEST(WalRecordTest, RowCountOverclaimingPayloadRejected) {
  // A record claiming far more rows than its payload holds must fail with a
  // clean Corruption — never crash, over-read, or try to allocate for the
  // claimed count up front.
  for (uint32_t claimed : {2u, 1000u, 100000000u, 0xFFFFFFFFu}) {
    std::string body;
    PutVarint64(&body, 1);          // tenant
    PutVarint32(&body, claimed);    // row_count lies
    // Payload for exactly one row.
    const RowBatch one = OneRow(1, 5, "ip", 9, "false", "only-row");
    const logblock::Schema& schema = one.schema();
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      if (schema.column(c).type == logblock::ColumnType::kInt64) {
        PutVarsint64(&body, one.Int64At(c, 0));
      } else {
        PutLengthPrefixedSlice(&body, one.StringAt(c, 0));
      }
    }
    auto decoded = DecodeWalRecord(FrameBody(body), schema);
    EXPECT_TRUE(decoded.status().IsCorruption()) << "claimed " << claimed;
  }
  // A string value whose length prefix overclaims the remaining bytes must
  // not read past the end of the buffer either.
  std::string body;
  PutVarint64(&body, 1);
  PutVarint32(&body, 1);
  PutVarsint64(&body, 1);   // tenant column
  PutVarsint64(&body, 5);   // ts column
  PutVarint32(&body, 1u << 30);  // ip string claims 1GB
  body.append("short");
  EXPECT_TRUE(DecodeWalRecord(FrameBody(body), logblock::RequestLogSchema())
                  .status()
                  .IsCorruption());
}

TEST(RowStoreTest, AppendAssignsSequences) {
  RowStore store(logblock::RequestLogSchema());
  EXPECT_EQ(store.Append(1, OneRow(1, 10, "a", 1, "false", "x")), 1u);
  EXPECT_EQ(store.Append(2, OneRow(2, 20, "b", 2, "false", "y")), 2u);
  EXPECT_EQ(store.row_count(), 2u);
  EXPECT_EQ(store.last_seq(), 2u);
  EXPECT_GT(store.ApproximateBytes(), 0u);
}

TEST(RowStoreTest, ScanFiltersTenantAndTime) {
  RowStore store(logblock::RequestLogSchema());
  store.Append(1, OneRow(1, 100, "a", 1, "false", "one"));
  store.Append(1, OneRow(1, 200, "a", 1, "false", "two"));
  store.Append(2, OneRow(2, 150, "a", 1, "false", "other"));

  auto rows = store.ScanTenant(1, 0, 1000);
  EXPECT_EQ(rows.num_rows(), 2u);
  rows = store.ScanTenant(1, 150, 1000);
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.StringAt(5, 0), "two");
  EXPECT_EQ(store.ScanTenant(3, 0, 1000).num_rows(), 0u);
}

TEST(RowStoreTest, ScanAppliesPredicates) {
  RowStore store(logblock::RequestLogSchema());
  store.Append(1, OneRow(1, 100, "10.0.0.1", 50, "false", "slow query ran"));
  store.Append(1, OneRow(1, 200, "10.0.0.2", 500, "true", "fast path"));

  auto rows = store.ScanTenant(
      1, 0, 1000, {query::Predicate::StringEq("ip", "10.0.0.2")});
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.Int64At(3, 0), 500);

  rows = store.ScanTenant(1, 0, 1000,
                          {query::Predicate::Int64Compare(
                              "latency", query::CompareOp::kGe, 100)});
  EXPECT_EQ(rows.num_rows(), 1u);

  rows = store.ScanTenant(1, 0, 1000,
                          {query::Predicate::Match("log", "slow query")});
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.StringAt(5, 0), "slow query ran");
}

TEST(RowStoreTest, SnapshotGroupsByTenant) {
  RowStore store(logblock::RequestLogSchema());
  store.Append(5, OneRow(5, 1, "a", 1, "false", "t5-a"));
  store.Append(9, OneRow(9, 2, "a", 1, "false", "t9-a"));
  store.Append(5, OneRow(5, 3, "a", 1, "false", "t5-b"));

  auto snapshot = store.SnapshotForBuild(100);
  EXPECT_EQ(snapshot.end_seq, 3u);
  EXPECT_EQ(snapshot.total_rows, 3u);
  ASSERT_EQ(snapshot.per_tenant.size(), 2u);
  EXPECT_EQ(snapshot.per_tenant.at(5).num_rows(), 2u);
  EXPECT_EQ(snapshot.per_tenant.at(9).num_rows(), 1u);
  EXPECT_EQ(snapshot.per_tenant.at(5).StringAt(5, 1), "t5-b");
}

TEST(RowStoreTest, SnapshotRespectsMaxRows) {
  RowStore store(logblock::RequestLogSchema());
  for (int i = 0; i < 10; ++i) {
    store.Append(1, OneRow(1, i, "a", 1, "false", "x"));
  }
  auto snapshot = store.SnapshotForBuild(4);
  EXPECT_EQ(snapshot.total_rows, 4u);
  EXPECT_EQ(snapshot.end_seq, 4u);
}

TEST(RowStoreTest, TruncateAdvancesCheckpoint) {
  RowStore store(logblock::RequestLogSchema());
  for (int i = 0; i < 6; ++i) {
    store.Append(1, OneRow(1, i, "a", 1, "false", "x"));
  }
  auto snapshot = store.SnapshotForBuild(3);
  store.TruncateUpTo(snapshot.end_seq);
  EXPECT_EQ(store.row_count(), 3u);
  EXPECT_EQ(store.archived_seq(), 3u);

  // Next snapshot picks up where the last one ended.
  auto next = store.SnapshotForBuild(100);
  EXPECT_EQ(next.total_rows, 3u);
  EXPECT_EQ(next.end_seq, 6u);

  store.TruncateUpTo(6);
  EXPECT_EQ(store.row_count(), 0u);
  EXPECT_EQ(store.ApproximateBytes(), 0u);
}

TEST(RowStoreTest, SnapshotSkipsArchivedWithoutTruncate) {
  // Archived rows may still be in memory (serving real-time queries) but
  // must not be re-archived.
  RowStore store(logblock::RequestLogSchema());
  store.Append(1, OneRow(1, 1, "a", 1, "false", "x"));
  auto first = store.SnapshotForBuild(10);
  store.TruncateUpTo(first.end_seq);
  store.Append(1, OneRow(1, 2, "a", 1, "false", "y"));
  auto second = store.SnapshotForBuild(10);
  EXPECT_EQ(second.total_rows, 1u);
  EXPECT_EQ(second.per_tenant.at(1).StringAt(5, 0), "y");
}

TEST(RowStoreTest, WalApplyPathIntegration) {
  // Simulates the Raft apply path: payload -> decode -> append.
  RowStore store(logblock::RequestLogSchema());
  const std::string payload =
      EncodeWalRecord(4, OneRow(4, 77, "ip", 9, "false", "from-wal"));
  auto record = DecodeWalRecord(payload, store.schema());
  ASSERT_TRUE(record.ok());
  store.Append(record->tenant_id, record->rows);
  auto rows = store.ScanTenant(4, 0, 100);
  ASSERT_EQ(rows.num_rows(), 1u);
  EXPECT_EQ(rows.StringAt(5, 0), "from-wal");
}

}  // namespace
}  // namespace logstore::rowstore
