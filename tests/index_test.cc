#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/random.h"
#include "index/bkd_tree.h"
#include "index/inverted_index.h"
#include "index/rowid_set.h"
#include "index/sma.h"

namespace logstore::index {
namespace {

TEST(RowIdSetTest, AddContainsRemove) {
  RowIdSet s(100);
  EXPECT_TRUE(s.Empty());
  s.Add(0);
  s.Add(63);
  s.Add(64);
  s.Add(99);
  EXPECT_TRUE(s.Contains(0));
  EXPECT_TRUE(s.Contains(63));
  EXPECT_TRUE(s.Contains(64));
  EXPECT_TRUE(s.Contains(99));
  EXPECT_FALSE(s.Contains(50));
  EXPECT_EQ(s.Count(), 4u);
  s.Remove(63);
  EXPECT_FALSE(s.Contains(63));
  EXPECT_EQ(s.Count(), 3u);
}

TEST(RowIdSetTest, AllRespectsNumRows) {
  RowIdSet s = RowIdSet::All(70);
  EXPECT_EQ(s.Count(), 70u);
  EXPECT_TRUE(s.Contains(69));
  const auto rows = s.ToVector();
  EXPECT_EQ(rows.size(), 70u);
  EXPECT_EQ(rows.front(), 0u);
  EXPECT_EQ(rows.back(), 69u);
}

TEST(RowIdSetTest, IntersectAndUnion) {
  RowIdSet a(128), b(128);
  a.Add(1);
  a.Add(5);
  a.Add(100);
  b.Add(5);
  b.Add(100);
  b.Add(127);

  RowIdSet inter = a;
  inter.IntersectWith(b);
  EXPECT_EQ(inter.ToVector(), (std::vector<uint32_t>{5, 100}));

  RowIdSet uni = a;
  uni.UnionWith(b);
  EXPECT_EQ(uni.ToVector(), (std::vector<uint32_t>{1, 5, 100, 127}));
}

TEST(RowIdSetTest, AddRange) {
  RowIdSet s(200);
  s.AddRange(60, 70);
  EXPECT_EQ(s.Count(), 10u);
  EXPECT_TRUE(s.Contains(60));
  EXPECT_TRUE(s.Contains(69));
  EXPECT_FALSE(s.Contains(70));
}

TEST(Int64SmaTest, UpdateAndSkip) {
  Int64Sma sma;
  EXPECT_TRUE(sma.DisjointWith(0, 100));  // empty: always skippable
  sma.Update(10);
  sma.Update(50);
  sma.Update(-3);
  EXPECT_EQ(sma.min, -3);
  EXPECT_EQ(sma.max, 50);
  EXPECT_EQ(sma.row_count, 3u);
  EXPECT_TRUE(sma.DisjointWith(51, 100));
  EXPECT_TRUE(sma.DisjointWith(-100, -4));
  EXPECT_FALSE(sma.DisjointWith(50, 60));
  EXPECT_FALSE(sma.DisjointWith(0, 0));
}

TEST(Int64SmaTest, MergeAndEncode) {
  Int64Sma a, b;
  a.Update(5);
  b.Update(-7);
  b.Update(100);
  a.Merge(b);
  EXPECT_EQ(a.min, -7);
  EXPECT_EQ(a.max, 100);
  EXPECT_EQ(a.row_count, 3u);

  std::string buf;
  a.EncodeTo(&buf);
  Int64Sma c;
  Slice in(buf);
  ASSERT_TRUE(c.DecodeFrom(&in));
  EXPECT_EQ(c.min, -7);
  EXPECT_EQ(c.max, 100);
  EXPECT_EQ(c.row_count, 3u);
}

TEST(StringSmaTest, UpdateExcludesEncode) {
  StringSma sma;
  EXPECT_TRUE(sma.Excludes("anything"));
  sma.Update("banana");
  sma.Update("apple");
  sma.Update("cherry");
  EXPECT_EQ(sma.min, "apple");
  EXPECT_EQ(sma.max, "cherry");
  EXPECT_TRUE(sma.Excludes("aardvark"));
  EXPECT_TRUE(sma.Excludes("zebra"));
  EXPECT_FALSE(sma.Excludes("apple"));
  EXPECT_FALSE(sma.Excludes("box"));

  std::string buf;
  sma.EncodeTo(&buf);
  StringSma restored;
  Slice in(buf);
  ASSERT_TRUE(restored.DecodeFrom(&in));
  EXPECT_EQ(restored.min, "apple");
  EXPECT_EQ(restored.max, "cherry");
  EXPECT_EQ(restored.row_count, 3u);
}

TEST(StringSmaTest, MergeEmptySides) {
  StringSma a, b;
  b.Update("m");
  a.Merge(b);  // empty.Merge(nonempty)
  EXPECT_EQ(a.min, "m");
  StringSma c;
  a.Merge(c);  // nonempty.Merge(empty)
  EXPECT_EQ(a.min, "m");
  EXPECT_EQ(a.row_count, 1u);
}

TEST(TokenizeTest, SplitsOnNonAlnumAndLowercases) {
  auto tokens = Tokenize("GET /Api/v1?id=42 HTTP");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"get", "api", "v1", "id", "42", "http"}));
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("...!!!").empty());
}

TEST(InvertedIndexTest, ExactLookup) {
  InvertedIndexWriter writer;
  writer.Add(0, "192.168.0.1");
  writer.Add(1, "192.168.0.2");
  writer.Add(2, "192.168.0.1");
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(reader->LookupExact("192.168.0.1", 3).ToVector(),
            (std::vector<uint32_t>{0, 2}));
  EXPECT_EQ(reader->LookupExact("192.168.0.2", 3).ToVector(),
            (std::vector<uint32_t>{1}));
  EXPECT_TRUE(reader->LookupExact("10.0.0.1", 3).Empty());
}

TEST(InvertedIndexTest, TokenLookupIsCaseInsensitive) {
  InvertedIndexWriter writer;
  writer.Add(0, "Error: connection TIMEOUT");
  writer.Add(1, "warning: slow query");
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(reader->LookupToken("error", 2).ToVector(),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(reader->LookupToken("TIMEOUT", 2).ToVector(),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(reader->LookupToken("slow", 2).ToVector(),
            (std::vector<uint32_t>{1}));
}

TEST(InvertedIndexTest, MatchAllTokensIsConjunctive) {
  InvertedIndexWriter writer;
  writer.Add(0, "connection timeout on api gateway");
  writer.Add(1, "connection refused");
  writer.Add(2, "timeout waiting for lock");
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());

  EXPECT_EQ(reader->MatchAllTokens("connection timeout", 3).ToVector(),
            (std::vector<uint32_t>{0}));
  EXPECT_EQ(reader->MatchAllTokens("timeout", 3).ToVector(),
            (std::vector<uint32_t>{0, 2}));
  EXPECT_TRUE(reader->MatchAllTokens("nonexistent", 3).Empty());
  // Empty match text matches everything.
  EXPECT_EQ(reader->MatchAllTokens("", 3).Count(), 3u);
}

TEST(InvertedIndexTest, DuplicateRowsCollapsed) {
  InvertedIndexWriter writer;
  writer.Add(5, "abc abc abc");  // token appears 3 times in one row
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->LookupToken("abc", 10).ToVector(),
            (std::vector<uint32_t>{5}));
}

TEST(InvertedIndexTest, ExactOnlyAnalyzerSkipsTokens) {
  InvertedIndexWriter writer(/*index_exact=*/true, /*index_tokens=*/false);
  writer.Add(0, "192.168.0.1");
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->LookupExact("192.168.0.1", 1).Count(), 1u);
  EXPECT_TRUE(reader->LookupToken("192", 1).Empty());  // tokens not built
  EXPECT_EQ(reader->term_count(), 1u);
}

TEST(InvertedIndexTest, TokensOnlyAnalyzerSkipsExact) {
  InvertedIndexWriter writer(/*index_exact=*/false, /*index_tokens=*/true);
  writer.Add(0, "connection timeout");
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->LookupExact("connection timeout", 1).Empty());
  EXPECT_EQ(reader->LookupToken("timeout", 1).Count(), 1u);
  EXPECT_EQ(reader->term_count(), 2u);
}

TEST(InvertedIndexTest, ExactOnlyIsSmaller) {
  InvertedIndexWriter both(true, true);
  InvertedIndexWriter exact_only(true, false);
  for (uint32_t r = 0; r < 500; ++r) {
    const std::string ip = "10.0." + std::to_string(r % 8) + ".1";
    both.Add(r, ip);
    exact_only.Add(r, ip);
  }
  const auto both_out = both.Finish();
  const auto exact_out = exact_only.Finish();
  EXPECT_LT(exact_out.dict.size() + exact_out.postings.size(),
            both_out.dict.size() + both_out.postings.size());
}

TEST(InvertedIndexTest, EmptyIndex) {
  InvertedIndexWriter writer;
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->term_count(), 0u);
  EXPECT_TRUE(reader->LookupToken("x", 5).Empty());
}

TEST(InvertedIndexTest, CorruptionRejected) {
  EXPECT_FALSE(InvertedIndexDict::Open("").ok());
  EXPECT_FALSE(InvertedIndexDict::Open("garbage-bytes-here").ok());
  SerializedInvertedIndex bad;
  bad.dict = "garbage";
  EXPECT_FALSE(InvertedIndexReader::Open(std::move(bad)).ok());
}

TEST(InvertedIndexTest, DictExposesPostingsRanges) {
  InvertedIndexWriter writer;
  writer.Add(0, "alpha beta");
  writer.Add(1, "beta");
  auto serialized = writer.Finish();
  auto dict = InvertedIndexDict::Open(serialized.dict);
  ASSERT_TRUE(dict.ok());

  const auto beta = dict->LookupToken("beta");
  ASSERT_TRUE(beta.has_value());
  EXPECT_EQ(beta->doc_count, 2u);
  ASSERT_LE(beta->offset + beta->length, serialized.postings.size());
  // Decoding just that byte range yields the postings.
  auto rows = DecodePostings(
      Slice(serialized.postings.data() + beta->offset, beta->length),
      beta->doc_count, 2);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->ToVector(), (std::vector<uint32_t>{0, 1}));

  EXPECT_FALSE(dict->Lookup("missing").has_value());
}

TEST(InvertedIndexTest, LargeTermSpace) {
  InvertedIndexWriter writer;
  Random rng(11);
  std::vector<std::set<uint32_t>> expected(50);
  for (uint32_t row = 0; row < 2000; ++row) {
    const uint32_t word = static_cast<uint32_t>(rng.Uniform(50));
    writer.Add(row, "w" + std::to_string(word));
    expected[word].insert(row);
  }
  auto reader = InvertedIndexReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  for (uint32_t word = 0; word < 50; ++word) {
    const auto rows = reader->LookupToken("w" + std::to_string(word), 2000);
    std::vector<uint32_t> want(expected[word].begin(), expected[word].end());
    EXPECT_EQ(rows.ToVector(), want) << "word " << word;
  }
}

TEST(BkdTreeTest, RangeQueryBasics) {
  BkdTreeWriter writer(4);  // small leaves exercise the directory
  // values: row i has value i*10
  for (uint32_t i = 0; i < 50; ++i) writer.Add(static_cast<int64_t>(i) * 10, i);
  auto reader = BkdTreeReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_GT(reader->leaf_count(), 5u);

  EXPECT_EQ(reader->QueryRange(100, 130, 50).ToVector(),
            (std::vector<uint32_t>{10, 11, 12, 13}));
  EXPECT_EQ(reader->QueryEqual(250, 50).ToVector(),
            (std::vector<uint32_t>{25}));
  EXPECT_TRUE(reader->QueryRange(1000, 2000, 50).Empty());
  EXPECT_TRUE(reader->QueryRange(5, 9, 50).Empty());
  // Full range.
  EXPECT_EQ(reader->QueryRange(INT64_MIN, INT64_MAX, 50).Count(), 50u);
}

TEST(BkdTreeTest, NegativeValuesAndDuplicates) {
  BkdTreeWriter writer(8);
  writer.Add(-5, 0);
  writer.Add(-5, 1);
  writer.Add(0, 2);
  writer.Add(7, 3);
  writer.Add(-100, 4);
  auto reader = BkdTreeReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ(reader->QueryEqual(-5, 5).ToVector(),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_EQ(reader->QueryRange(-100, -5, 5).ToVector(),
            (std::vector<uint32_t>{0, 1, 4}));
}

TEST(BkdTreeTest, EmptyTree) {
  BkdTreeWriter writer;
  auto reader = BkdTreeReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->QueryRange(INT64_MIN, INT64_MAX, 10).Empty());
}

TEST(BkdTreeTest, InvertedRangeIsEmpty) {
  BkdTreeWriter writer;
  writer.Add(1, 0);
  auto reader = BkdTreeReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->QueryRange(10, 5, 1).Empty());
}

TEST(BkdTreeTest, CorruptionRejected) {
  EXPECT_FALSE(BkdTreeReader::Open("").ok());
}

// Property sweep: random values, compare against brute force.
class BkdPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BkdPropertyTest, MatchesBruteForce) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Random rng(seed);
  const uint32_t n = 500 + static_cast<uint32_t>(rng.Uniform(1500));
  std::vector<int64_t> values(n);
  BkdTreeWriter writer(64);
  for (uint32_t i = 0; i < n; ++i) {
    values[i] = rng.UniformRange(-1000, 1000);
    writer.Add(values[i], i);
  }
  auto reader = BkdTreeReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());

  for (int q = 0; q < 20; ++q) {
    int64_t lo = rng.UniformRange(-1200, 1200);
    int64_t hi = rng.UniformRange(-1200, 1200);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < n; ++i) {
      if (values[i] >= lo && values[i] <= hi) expected.push_back(i);
    }
    EXPECT_EQ(reader->QueryRange(lo, hi, n).ToVector(), expected)
        << "seed=" << seed << " q=[" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BkdPropertyTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace logstore::index
