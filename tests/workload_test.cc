#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "workload/loggen.h"
#include "workload/querygen.h"
#include "workload/zipfian.h"

namespace logstore::workload {
namespace {

TEST(ZipfianSharesTest, SumToOneAndDecrease) {
  for (double theta : {0.0, 0.5, 0.99}) {
    const auto shares = ZipfianShares(1000, theta);
    double total = 0;
    for (size_t k = 0; k < shares.size(); ++k) {
      total += shares[k];
      if (k > 0) {
        EXPECT_LE(shares[k], shares[k - 1]) << "theta " << theta;
      }
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ZipfianSharesTest, ThetaZeroIsUniform) {
  const auto shares = ZipfianShares(100, 0.0);
  for (double share : shares) EXPECT_NEAR(share, 0.01, 1e-12);
}

TEST(ZipfianSharesTest, HigherThetaIsMoreSkewed) {
  const auto mild = ZipfianShares(1000, 0.4);
  const auto heavy = ZipfianShares(1000, 0.99);
  EXPECT_GT(heavy[0], mild[0]);
  EXPECT_LT(heavy[999], mild[999]);
}

TEST(ZipfianGeneratorTest, SamplesMatchAnalyticWeights) {
  const uint64_t n = 100;
  ZipfianGenerator gen(n, 0.99, 7);
  std::vector<uint64_t> counts(n, 0);
  const int kSamples = 200'000;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t v = gen.Next();
    ASSERT_LT(v, n);
    counts[v]++;
  }
  // Head ranks within 15% relative error of the analytic mass.
  for (uint64_t k : {0ull, 1ull, 4ull}) {
    const double expected = gen.Weight(k) * kSamples;
    EXPECT_NEAR(counts[k], expected, expected * 0.15) << "rank " << k;
  }
  // Rank order roughly preserved at the head.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
}

TEST(ZipfianGeneratorTest, ThetaZeroCoversUniformly) {
  ZipfianGenerator gen(10, 0.0, 3);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10'000; ++i) counts[gen.Next()]++;
  for (int count : counts) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(LogGeneratorTest, SchemaAndOrdering) {
  LogGenerator gen(1);
  const auto batch = gen.Generate(5, 1000, 0, 1'000'000);
  EXPECT_TRUE(batch.schema() == logblock::RequestLogSchema());
  ASSERT_EQ(batch.num_rows(), 1000u);
  int64_t prev_ts = INT64_MIN;
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    EXPECT_EQ(batch.Int64At(0, r), 5);  // tenant_id column
    const int64_t ts = batch.Int64At(1, r);
    EXPECT_GE(ts, prev_ts);  // timestamps non-decreasing
    EXPECT_GE(ts, 0);
    EXPECT_LT(ts, 1'000'000);
    prev_ts = ts;
  }
}

TEST(LogGeneratorTest, FailuresClusterInIncidentWindows) {
  LogGenerator gen(2);
  // Span 48 windows (6 days at 3h/window) so each window id repeats.
  const int64_t span = 48 * LogGenerator::kWindowMicros;
  const auto batch = gen.Generate(3, 50'000, 0, span);
  std::map<uint64_t, int> failures_per_window;
  std::map<uint64_t, int> rows_per_window;
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    const uint64_t window = static_cast<uint64_t>(
        batch.Int64At(1, r) / LogGenerator::kWindowMicros) %
        LogGenerator::kWindows;
    rows_per_window[window]++;
    if (batch.StringAt(4, r) == "true") failures_per_window[window]++;
  }
  // Two incident windows exist and hold the bulk of failures.
  int windows_with_many_failures = 0;
  int total_failures = 0;
  for (auto& [w, f] : failures_per_window) total_failures += f;
  ASSERT_GT(total_failures, 0);
  for (auto& [w, f] : failures_per_window) {
    if (f > total_failures / 10) ++windows_with_many_failures;
  }
  EXPECT_LE(windows_with_many_failures, 4);

  // Incident failures have spike latencies.
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    if (batch.StringAt(4, r) == "false") {
      EXPECT_LT(batch.Int64At(3, r), 250);
    }
  }
}

TEST(LogGeneratorTest, DeterministicForSeed) {
  LogGenerator a(9), b(9);
  const auto batch_a = a.Generate(1, 100, 0, 1000);
  const auto batch_b = b.Generate(1, 100, 0, 1000);
  for (uint32_t r = 0; r < 100; ++r) {
    EXPECT_EQ(batch_a.StringAt(5, r), batch_b.StringAt(5, r));
  }
}

TEST(QueryGeneratorTest, ProducesSixValidQueries) {
  QueryGenerator gen(4);
  const auto queries = gen.TenantQuerySet(17, 0, 1'000'000);
  ASSERT_EQ(queries.size(), 6u);
  const auto schema = logblock::RequestLogSchema();
  for (const auto& q : queries) {
    EXPECT_EQ(q.tenant_id, 17u);
    EXPECT_LE(q.ts_min, q.ts_max);
    EXPECT_GT(q.limit, 0u);
    for (const auto& pred : q.predicates) {
      EXPECT_GE(schema.FindColumn(pred.column), 0) << pred.column;
    }
    for (const auto& col : q.select_columns) {
      EXPECT_GE(schema.FindColumn(col), 0) << col;
    }
  }
}

TEST(QueryGeneratorTest, CoversThePaperTemplate) {
  QueryGenerator gen(4);
  const auto queries = gen.TenantQuerySet(1, 0, 1000);
  // The last query is the full §5.1 template: ip + latency + fail.
  const auto& full = queries.back();
  ASSERT_EQ(full.predicates.size(), 3u);
  EXPECT_EQ(full.predicates[0].column, "ip");
  EXPECT_EQ(full.predicates[1].column, "latency");
  EXPECT_EQ(full.predicates[2].column, "fail");
}

}  // namespace
}  // namespace logstore::workload
