#include <gtest/gtest.h>

#include "core/logstore.h"
#include "query/sql_parser.h"

namespace logstore::query {
namespace {

const logblock::Schema kSchema = logblock::RequestLogSchema();

TEST(DateTimeTest, ParsesPaperLiterals) {
  // 2020-11-11 00:00:00 UTC = 1605052800 seconds since the epoch.
  auto micros = ParseDateTimeMicros("2020-11-11 00:00:00");
  ASSERT_TRUE(micros.ok());
  EXPECT_EQ(*micros, 1605052800ll * 1'000'000);

  auto plus_hour = ParseDateTimeMicros("2020-11-11 01:00:00");
  ASSERT_TRUE(plus_hour.ok());
  EXPECT_EQ(*plus_hour - *micros, 3600ll * 1'000'000);

  auto date_only = ParseDateTimeMicros("1970-01-01");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(*date_only, 0);

  EXPECT_FALSE(ParseDateTimeMicros("not a date").ok());
  EXPECT_FALSE(ParseDateTimeMicros("2020-13-01 00:00:00").ok());
}

TEST(SqlParserTest, ParsesThePaperSampleQuery) {
  auto query = ParseSql(
      "SELECT log FROM request_log WHERE tenant_id = 12276 "
      "AND ts >= '2020-11-11 00:00:00' AND ts <= '2020-11-11 01:00:00' "
      "AND ip = '192.168.0.1' AND latency >= 100 AND fail = 'false'",
      kSchema);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_EQ(query->tenant_id, 12276u);
  EXPECT_EQ(query->ts_min, 1605052800ll * 1'000'000);
  EXPECT_EQ(query->ts_max, 1605056400ll * 1'000'000);
  EXPECT_EQ(query->select_columns, std::vector<std::string>{"log"});
  ASSERT_EQ(query->predicates.size(), 3u);
  EXPECT_EQ(query->predicates[0].column, "ip");
  EXPECT_EQ(query->predicates[0].kind, Predicate::Kind::kStringEq);
  EXPECT_EQ(query->predicates[1].column, "latency");
  EXPECT_EQ(query->predicates[1].op, CompareOp::kGe);
  EXPECT_EQ(query->predicates[1].int_value, 100);
  EXPECT_EQ(query->predicates[2].str_value, "false");
}

TEST(SqlParserTest, MatchAndLimitAndStar) {
  auto query = ParseSql(
      "select * from request_log where tenant_id = 7 and "
      "log match 'connection timeout' limit 50",
      kSchema);
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  EXPECT_TRUE(query->select_columns.empty());  // * = all columns
  EXPECT_EQ(query->limit, 50u);
  ASSERT_EQ(query->predicates.size(), 1u);
  EXPECT_EQ(query->predicates[0].kind, Predicate::Kind::kMatch);
  EXPECT_EQ(query->predicates[0].str_value, "connection timeout");
}

TEST(SqlParserTest, MultiColumnSelectAndIntTs) {
  auto query = ParseSql(
      "SELECT ts, ip, latency FROM request_log "
      "WHERE tenant_id = 1 AND ts > 1000 AND ts < 2000 AND latency != 0",
      kSchema);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->select_columns.size(), 3u);
  EXPECT_EQ(query->ts_min, 1001);  // strict bound folded
  EXPECT_EQ(query->ts_max, 1999);
  ASSERT_EQ(query->predicates.size(), 1u);
  EXPECT_EQ(query->predicates[0].op, CompareOp::kNe);
}

TEST(SqlParserTest, RejectsMalformedQueries) {
  const char* bad[] = {
      "",
      "SELECT",
      "SELECT log",
      "SELECT log FROM",
      "SELECT log FROM t WHERE",
      "SELECT log FROM t WHERE nope = 1 AND tenant_id = 1",
      "SELECT log FROM t WHERE tenant_id = 1 AND ip = 5",       // type err
      "SELECT log FROM t WHERE tenant_id = 1 AND latency = 'x'",  // type err
      "SELECT log FROM t WHERE tenant_id = 1 AND ip < 'a'",     // str ineq
      "SELECT log FROM t WHERE tenant_id = 1 AND log MATCH 5",
      "SELECT log FROM t WHERE tenant_id = 1 LIMIT 0",
      "SELECT log FROM t WHERE tenant_id = 1 LIMIT -5",
      "SELECT log FROM t WHERE tenant_id = 1 garbage",
      "SELECT log FROM t WHERE ip = '1.2.3.4'",  // tenant not bound
      "SELECT log FROM t WHERE tenant_id = 1 AND ip = 'unterminated",
  };
  for (const char* sql : bad) {
    EXPECT_FALSE(ParseSql(sql, kSchema).ok()) << sql;
  }
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto query = ParseSql(
      "sElEcT log FrOm request_log wHeRe tenant_id = 2 AnD fail = 'true'",
      kSchema);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query->tenant_id, 2u);
}

TEST(SqlParserTest, EndToEndThroughLogStore) {
  LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());

  logblock::RowBatch batch((*db)->schema());
  batch.AddRow({logblock::Value::Int64(9), logblock::Value::Int64(1500),
                logblock::Value::String("10.1.1.1"),
                logblock::Value::Int64(450), logblock::Value::String("true"),
                logblock::Value::String("POST /api failed: timeout")});
  batch.AddRow({logblock::Value::Int64(9), logblock::Value::Int64(1600),
                logblock::Value::String("10.1.1.2"),
                logblock::Value::Int64(20), logblock::Value::String("false"),
                logblock::Value::String("GET /api ok")});
  ASSERT_TRUE((*db)->Append(9, batch).ok());
  ASSERT_TRUE((*db)->Flush().ok());

  auto query = ParseSql(
      "SELECT ip FROM request_log WHERE tenant_id = 9 AND latency >= 100 "
      "AND log MATCH 'timeout'",
      (*db)->schema());
  ASSERT_TRUE(query.ok());
  auto result = (*db)->Query(*query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].s, "10.1.1.1");
}

}  // namespace
}  // namespace logstore::query
