// Deterministic crash/torn-write harness for the durable write path.
//
// Each seed drives several crash+recover cycles against a replicated Worker
// whose three Raft replicas persist to durable WALs. Every cycle writes
// acknowledged batches (each carrying a unique marker string), optionally
// leaves un-acknowledged proposals in flight, optionally runs an archive
// pass (sometimes "crashing" in the window between upload completion and
// watermark persist), then kills the process at an injected point:
//
//   - drop the un-fsynced suffix (crash between append and fsync)
//   - tear the tail at a random byte (torn write, possibly mid-rotation)
//   - bit-flip or halve the tail record on ONE replica (media corruption;
//     the quorum on the other two replicas must heal it)
//
// After every recovery the harness asserts the worker's core promise: every
// acknowledged write is present — in the recovered row store or in archived
// LogBlocks — the WALs reopen cleanly (torn tails truncated at a record
// boundary), and no surviving WAL segment lies wholly below that replica's
// archived watermark.
//
// Seeds default to a quick smoke count; CI sets CRASH_RECOVERY_SEEDS=100.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/worker.h"
#include "common/random.h"
#include "core/logstore.h"
#include "logblock/logblock_reader.h"
#include "objectstore/memory_object_store.h"
#include "rowstore/wal.h"
#include "test_env.h"

namespace logstore {
namespace {

namespace fs = std::filesystem;

using cluster::Worker;
using cluster::WorkerOptions;
using consensus::CrashMode;
using consensus::SyncPolicy;
using logblock::RowBatch;
using logblock::Value;
using testenv::MarkerRow;

constexpr size_t kLogColumn = testenv::kMarkerColumn;  // marker rides in `log`

int SeedCount() {
  return testenv::SeedCount("CRASH_RECOVERY_SEEDS", 12);  // CI runs 100
}

// Collects every marker string reachable after recovery: the real-time row
// store plus every archived LogBlock (read back through the actual reader,
// not the map's bookkeeping).
void CollectVisibleMarkers(Worker& worker,
                           objectstore::MemoryObjectStore& store,
                           logblock::LogBlockMap& map,
                           std::set<std::string>* markers) {
  for (uint64_t tenant : {uint64_t{1}, uint64_t{2}}) {
    const RowBatch realtime =
        worker.ScanRealtime(tenant, INT64_MIN, INT64_MAX);
    for (uint32_t r = 0; r < realtime.num_rows(); ++r) {
      markers->insert(realtime.StringAt(kLogColumn, r));
    }
    for (const auto& entry : map.TenantBlocks(tenant)) {
      auto data = store.Get(entry.object_key);
      ASSERT_TRUE(data.ok()) << entry.object_key;
      auto reader = logblock::LogBlockReader::Open(
          std::make_shared<logblock::StringSource>(*std::move(data)));
      ASSERT_TRUE(reader.ok()) << reader.status().ToString();
      const size_t blocks =
          (*reader)->meta().columns[kLogColumn].blocks.size();
      for (size_t b = 0; b < blocks; ++b) {
        auto decoded = (*reader)->ReadColumnBlock(kLogColumn, b);
        ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
        for (const std::string& s : decoded->strs) markers->insert(s);
      }
    }
  }
}

// Asserts the WAL GC invariant on every replica: every surviving segment
// file is really on disk, and the leading entry-bearing sealed segment
// holds entries above that replica's recovered watermark (GC deletes a
// prefix of sealed segments; a fully-archived segment may only survive
// behind one that still carries live entries, which happens after suffix
// truncations).
void CheckSegmentInvariant(Worker& worker) {
  for (int node = 0; node < 3; ++node) {
    consensus::DurableLog* wal = worker.wal(node);
    ASSERT_NE(wal, nullptr);
    const uint64_t base = wal->recovered().base_index;
    bool leading = true;
    for (const auto& segment : wal->segments()) {
      EXPECT_TRUE(fs::exists(segment.path)) << segment.path;
      if (segment.active || segment.max_entry_index == 0) continue;
      if (leading) {
        EXPECT_GT(segment.max_entry_index, base)
            << "node " << node << " kept fully-archived segment "
            << segment.path;
        leading = false;
      }
    }
  }
}

void RunWorkerSeed(uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  Random rng(seed * 2654435761 + 1);

  const fs::path dir =
      fs::temp_directory_path() / ("crash_recovery_" + std::to_string(seed));
  fs::remove_all(dir);

  // The object store and LogBlock map model remote services: they survive
  // worker crashes.
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;

  WorkerOptions options;
  options.schema = logblock::RequestLogSchema();
  options.replicated = true;
  options.wal_dir = dir.string();
  options.wal.sync_policy =
      rng.OneIn(2) ? SyncPolicy::kPerRecord : SyncPolicy::kOnSync;
  options.wal.segment_target_bytes = 256 + rng.Uniform(1024);

  std::set<std::string> acked;
  uint64_t next_marker = 0;
  const int rounds = 4;

  for (int round = 0; round <= rounds; ++round) {
    auto worker = std::make_unique<Worker>(1, &store, &map, options);
    ASSERT_TRUE(worker->wal_status().ok())
        << "round " << round << ": " << worker->wal_status().ToString();

    // Every previously acknowledged write survived the crash.
    std::set<std::string> visible;
    CollectVisibleMarkers(*worker, store, map, &visible);
    if (::testing::Test::HasFatalFailure()) return;
    for (const std::string& marker : acked) {
      ASSERT_TRUE(visible.count(marker))
          << "round " << round << " lost acknowledged write " << marker;
    }
    CheckSegmentInvariant(*worker);
    if (round == rounds) break;

    // Acknowledged writes: Write() returning OK is the durability promise
    // under test.
    const int writes = 3 + static_cast<int>(rng.Uniform(6));
    for (int w = 0; w < writes; ++w) {
      const uint64_t tenant = 1 + rng.Uniform(2);
      const std::string marker = "seed" + std::to_string(seed) + "-r" +
                                 std::to_string(round) + "-w" +
                                 std::to_string(next_marker++);
      ASSERT_TRUE(
          worker->Write(0, tenant, MarkerRow(tenant, 1000 + w, marker)).ok());
      acked.insert(marker);
    }

    // Crash-mode choice up front: media-corruption modes can destroy
    // fsynced bytes, so they are confined to a single replica (the quorum
    // heals it) and never follow a watermark persist in the same round
    // (corrupting the sole copy of a just-GCed watermark models a
    // double-fault — lost replica — not a crash).
    const uint32_t mode_pick = rng.Uniform(4);
    const bool corruption = mode_pick >= 2;

    if (!corruption && rng.OneIn(2)) {
      // Archive pass; one third of these "crash" before the watermark
      // persists, so recovery re-archives those entries (at-least-once).
      const bool advance = !rng.OneIn(3);
      auto built = worker->RunBuildPass(advance);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
    }

    if (rng.OneIn(3)) {
      // Un-acknowledged in-flight proposal: may commit in memory, may
      // reach disk, may vanish with the crash — all legal outcomes.
      const int leader = worker->raft()->WaitForLeader();
      ASSERT_GE(leader, 0);
      worker->raft()
          ->node(leader)
          .Propose(rowstore::EncodeWalRecord(
              1, MarkerRow(1, 9999, "unacked-" + std::to_string(round))))
          .IgnoreError();
      worker->raft()->Tick(1 + static_cast<int>(rng.Uniform(3)));
    }

    if (corruption) {
      const CrashMode mode = mode_pick == 2 ? CrashMode::kBitFlipTail
                                            : CrashMode::kHalveTailRecord;
      const int victim = static_cast<int>(rng.Uniform(3));
      for (int node = 0; node < 3; ++node) {
        ASSERT_TRUE(worker->wal(node)
                        ->SimulateCrash(node == victim
                                            ? mode
                                            : CrashMode::kDropUnsynced,
                                        rng.Next())
                        .ok());
      }
    } else {
      const CrashMode mode = mode_pick == 0 ? CrashMode::kDropUnsynced
                                            : CrashMode::kTornWrite;
      for (int node = 0; node < 3; ++node) {
        ASSERT_TRUE(worker->wal(node)->SimulateCrash(mode, rng.Next()).ok());
      }
    }
    // worker destructs here = the process dies.
  }

  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, WorkerSurvivesSeededCrashCycles) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    RunWorkerSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// InstallSnapshot catch-up: a dead replica must not pin WAL growth, and must
// catch up from shared storage once the log prefix it needs is gone.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, DeadReplicaDoesNotPinWalGcAndCatchesUpViaSnapshot) {
  const fs::path dir =
      fs::temp_directory_path() / "crash_recovery_snapshot_catchup";
  fs::remove_all(dir);
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;

  WorkerOptions options;
  options.schema = logblock::RequestLogSchema();
  options.replicated = true;
  options.wal_dir = dir.string();
  options.wal.sync_policy = SyncPolicy::kOnSync;
  options.wal.segment_target_bytes = 512;  // tiny: every round rotates

  auto worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());

  std::set<std::string> acked;
  uint64_t next_marker = 0;
  auto write_acked = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t tenant = 1 + (next_marker % 2);
      const std::string marker = "snap-m" + std::to_string(next_marker++);
      ASSERT_TRUE(
          worker->Write(0, tenant, MarkerRow(tenant, 100 + i, marker)).ok());
      acked.insert(marker);
    }
  };

  write_acked(4);
  const int victim = 1;
  ASSERT_TRUE(
      worker->CrashReplica(victim, CrashMode::kDropUnsynced, 7).ok());
  const uint64_t victim_log_end = worker->raft()->node(victim).log_size();

  // The group keeps writing and archiving with one replica dead. Live
  // replicas' WAL GC must keep advancing — the dead member pins nothing.
  for (int round = 0; round < 8; ++round) {
    write_acked(3);
    auto built = worker->RunBuildPass();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
  }
  for (int node = 0; node < 3; ++node) {
    if (node == victim) continue;
    // Everything is archived, so retention is capped by the snapshot: the
    // dozens of rotated-out segments this run produced are gone.
    EXPECT_LE(worker->wal(node)->segments().size(), 4u) << "node " << node;
  }
  const int leader = worker->raft()->WaitForLeader();
  ASSERT_GE(leader, 0);
  ASSERT_GT(worker->raft()->node(leader).log_base_index(), victim_log_end)
      << "GC did not pass the dead replica's log; snapshot not required";

  // The restarted replica's log now ends below every live log's base, so
  // AppendEntries cannot repair it: it must take an InstallSnapshot.
  ASSERT_TRUE(worker->RecoverReplica(victim).ok());
  write_acked(2);
  worker->raft()->Tick(2000);

  EXPECT_GE(worker->raft()->node(victim).snapshots_installed(), 1u);
  EXPECT_EQ(worker->raft()->node(victim).last_applied(),
            worker->raft()->node(0).last_applied());

  // Nothing acknowledged was lost across the whole episode — including
  // after a final full process restart.
  worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  std::set<std::string> visible;
  CollectVisibleMarkers(*worker, store, map, &visible);
  if (::testing::Test::HasFatalFailure()) return;
  for (const std::string& marker : acked) {
    ASSERT_TRUE(visible.count(marker)) << "lost " << marker;
  }
  CheckSegmentInvariant(*worker);
  worker.reset();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Rolling restarts: kill and recover each replica in turn, under write load,
// with occasional archive passes forcing snapshot catch-up. Seeded.
// ---------------------------------------------------------------------------

void RunRollingRestartSeed(uint64_t seed) {
  SCOPED_TRACE("rolling seed " + std::to_string(seed));
  Random rng(seed * 0x9e3779b9 + 17);

  const fs::path dir =
      fs::temp_directory_path() / ("crash_recovery_rolling_" +
                                   std::to_string(seed));
  fs::remove_all(dir);
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;

  WorkerOptions options;
  options.schema = logblock::RequestLogSchema();
  options.replicated = true;
  options.wal_dir = dir.string();
  options.wal.sync_policy =
      rng.OneIn(2) ? SyncPolicy::kPerRecord : SyncPolicy::kOnSync;
  options.wal.segment_target_bytes = 256 + rng.Uniform(768);

  auto worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());

  std::set<std::string> acked;
  uint64_t next_marker = 0;
  auto write_acked = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t tenant = 1 + rng.Uniform(2);
      const std::string marker = "roll" + std::to_string(seed) + "-m" +
                                 std::to_string(next_marker++);
      ASSERT_TRUE(
          worker->Write(0, tenant, MarkerRow(tenant, 100 + i, marker)).ok());
      acked.insert(marker);
    }
  };

  write_acked(2 + static_cast<int>(rng.Uniform(3)));
  // Two full rolling sweeps: every replica (primary, second full copy,
  // WAL-only) dies and returns once per sweep, in a seed-shuffled order.
  for (int sweep = 0; sweep < 2; ++sweep) {
    const int first = static_cast<int>(rng.Uniform(3));
    for (int k = 0; k < 3; ++k) {
      const int victim = (first + k) % 3;
      const CrashMode mode =
          rng.OneIn(2) ? CrashMode::kDropUnsynced : CrashMode::kTornWrite;
      ASSERT_TRUE(worker->CrashReplica(victim, mode, rng.Next()).ok());

      // While the victim is down: the surviving majority keeps acking
      // (never when the primary row store itself is the victim — its
      // worker cannot serve), and sometimes archives, advancing WAL GC
      // past what the victim holds so its return needs a snapshot.
      if (victim != 0) {
        write_acked(1 + static_cast<int>(rng.Uniform(4)));
        if (rng.OneIn(2)) {
          auto built = worker->RunBuildPass();
          ASSERT_TRUE(built.ok()) << built.status().ToString();
        }
      }

      ASSERT_TRUE(worker->RecoverReplica(victim).ok());
      write_acked(1);  // pumps ticks; drives catch-up (or InstallSnapshot)
      worker->raft()->Tick(500);

      std::set<std::string> visible;
      CollectVisibleMarkers(*worker, store, map, &visible);
      if (::testing::Test::HasFatalFailure()) return;
      for (const std::string& marker : acked) {
        ASSERT_TRUE(visible.count(marker))
            << "sweep " << sweep << " victim " << victim << " lost "
            << marker;
      }
    }
  }

  // Full process restart at the end: recovery from disk alone.
  worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  std::set<std::string> visible;
  CollectVisibleMarkers(*worker, store, map, &visible);
  if (::testing::Test::HasFatalFailure()) return;
  for (const std::string& marker : acked) {
    ASSERT_TRUE(visible.count(marker)) << "restart lost " << marker;
  }
  CheckSegmentInvariant(*worker);
  worker.reset();
  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, RollingReplicaRestartsLoseNoAckedWrites) {
  const int seeds = SeedCount();
  for (int seed = 1; seed <= seeds; ++seed) {
    RunRollingRestartSeed(static_cast<uint64_t>(seed));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Disk-full / IO-error injection: a write the WAL refused must never be
// acked, must never wedge the group permanently, and must leave every
// segment parseable.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, EnospcOnReplicaAppendFailsTheAckUntilRepaired) {
  const fs::path dir = fs::temp_directory_path() / "crash_recovery_enospc";
  fs::remove_all(dir);
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;

  WorkerOptions options;
  options.schema = logblock::RequestLogSchema();
  options.replicated = true;
  options.wal_dir = dir.string();
  options.wal.sync_policy = SyncPolicy::kOnSync;

  auto worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  ASSERT_TRUE(worker->Write(0, 1, MarkerRow(1, 100, "pre-enospc")).ok());

  // ENOSPC mid-record on one replica's journal. The entry may still reach
  // the in-memory logs, but SyncAll must surface the journaling failure:
  // the client never sees an ack it could rely on.
  const int victim = 2;  // WAL-only replica: pure journal, no row store
  worker->wal(victim)->InjectAppendErrors(1, /*partial_write=*/true);
  EXPECT_FALSE(worker->Write(0, 1, MarkerRow(1, 101, "refused-1")).ok());
  // The replica's memory and disk diverged; it stays fail-stop (every
  // later ack attempt fails) until repaired by a restart of that replica.
  EXPECT_FALSE(worker->Write(0, 1, MarkerRow(1, 102, "refused-2")).ok());

  worker->raft()->Disconnect(victim);  // model the operator killing it
  ASSERT_TRUE(worker->RecoverReplica(victim).ok());
  ASSERT_TRUE(worker->Write(0, 1, MarkerRow(1, 103, "post-repair")).ok());

  // Across a full restart: both acked writes present, torn nothing.
  worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  std::set<std::string> visible;
  CollectVisibleMarkers(*worker, store, map, &visible);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_TRUE(visible.count("pre-enospc"));
  EXPECT_TRUE(visible.count("post-repair"));
  for (int node = 0; node < 3; ++node) {
    EXPECT_EQ(worker->wal(node)->recovered().repaired_tail_bytes, 0u)
        << "ENOSPC rollback left a torn record on node " << node;
  }
  worker.reset();
  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, EioOnFsyncWedgesReplicaUntilRepaired) {
  const fs::path dir = fs::temp_directory_path() / "crash_recovery_eio";
  fs::remove_all(dir);
  objectstore::MemoryObjectStore store;
  logblock::LogBlockMap map;

  WorkerOptions options;
  options.schema = logblock::RequestLogSchema();
  options.replicated = true;
  options.wal_dir = dir.string();
  options.wal.sync_policy = SyncPolicy::kOnSync;

  auto worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  ASSERT_TRUE(worker->Write(0, 1, MarkerRow(1, 100, "pre-eio")).ok());

  const int victim = 1;
  worker->wal(victim)->InjectSyncErrors(1);
  // EIO at the group-commit fsync: no ack, and the wedge is sticky (a
  // failed fsync cannot be retried into success).
  EXPECT_FALSE(worker->Write(0, 1, MarkerRow(1, 101, "refused-1")).ok());
  EXPECT_FALSE(worker->Write(0, 1, MarkerRow(1, 102, "refused-2")).ok());

  worker->raft()->Disconnect(victim);
  ASSERT_TRUE(worker->RecoverReplica(victim).ok());
  ASSERT_TRUE(worker->Write(0, 1, MarkerRow(1, 103, "post-repair")).ok());

  worker = std::make_unique<Worker>(1, &store, &map, options);
  ASSERT_TRUE(worker->wal_status().ok());
  std::set<std::string> visible;
  CollectVisibleMarkers(*worker, store, map, &visible);
  if (::testing::Test::HasFatalFailure()) return;
  EXPECT_TRUE(visible.count("pre-eio"));
  EXPECT_TRUE(visible.count("post-repair"));
  worker.reset();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Multi-worker cluster: rolling worker-process restarts over per-worker
// durable WAL directories.
// ---------------------------------------------------------------------------

TEST(CrashRecoveryTest, ClusterRollingWorkerRestartsLoseNoAckedWrites) {
  const fs::path dir =
      fs::temp_directory_path() / "crash_recovery_cluster_rolling";
  fs::remove_all(dir);
  objectstore::MemoryObjectStore store;

  cluster::ClusterDeploymentOptions options;
  options.num_workers = 2;
  options.shards_per_worker = 2;
  options.worker.schema = logblock::RequestLogSchema();
  options.worker.replicated = true;
  options.worker.wal_dir = dir.string();
  options.worker.wal.sync_policy = SyncPolicy::kOnSync;
  options.worker.wal.segment_target_bytes = 1024;

  auto cluster = cluster::Cluster::Open(&store, options);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  std::set<std::string> acked;
  uint64_t next_marker = 0;
  auto write_acked = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const uint64_t tenant = 1 + (next_marker % 2);
      const std::string marker = "cluster-m" + std::to_string(next_marker++);
      ASSERT_TRUE(
          (*cluster)->Write(tenant, MarkerRow(tenant, 500 + i, marker)).ok());
      acked.insert(marker);
    }
  };

  write_acked(6);
  auto built = (*cluster)->RunBuildPass();
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  // Restart every worker in turn, writing between restarts so each one
  // recovers while its peers carry live, partially archived state.
  for (uint32_t w = 0; w < (*cluster)->num_workers(); ++w) {
    ASSERT_TRUE((*cluster)->RestartWorker(w).ok()) << "worker " << w;
    write_acked(4);
  }

  std::set<std::string> visible;
  logblock::LogBlockMap* map = (*cluster)->controller()->metadata();
  for (uint32_t w = 0; w < (*cluster)->num_workers(); ++w) {
    CollectVisibleMarkers(*(*cluster)->worker(w), store, *map, &visible);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (const std::string& marker : acked) {
    EXPECT_TRUE(visible.count(marker)) << "lost " << marker;
  }
  cluster->reset();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// LogStore facade: single-node WAL mode. Appends survive a crash before
// Flush; Flush advances the watermark so a later crash replays only the
// un-archived suffix.
// ---------------------------------------------------------------------------

class LogStoreCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = fs::temp_directory_path() /
            ("logstore_crash_" + std::to_string(::testing::UnitTest::
                                                    GetInstance()
                                                        ->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    fs::remove_all(base_);
    fs::create_directories(base_);
  }
  void TearDown() override { fs::remove_all(base_); }

  LogStoreOptions Options() {
    LogStoreOptions options;
    options.storage_dir = (base_ / "objects").string();
    options.wal_dir = (base_ / "wal").string();
    return options;
  }

  size_t QueryCount(LogStore& db, uint64_t tenant) {
    query::LogQuery query;
    query.tenant_id = tenant;
    auto result = db.Query(query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? result->rows.size() : 0;
  }

  fs::path base_;
};

TEST_F(LogStoreCrashTest, UnflushedAppendsReplayOnReopen) {
  {
    auto db = LogStore::Open(Options());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*db)->Append(1, MarkerRow(1, 100 + i, "pre-crash")).ok());
    }
    // No Flush, no clean shutdown: the row store content exists only in
    // the WAL when the process dies here.
  }
  auto db = LogStore::Open(Options());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->GetStats().rows_in_rowstore, 5u);
  EXPECT_EQ(QueryCount(**db, 1), 5u);
}

TEST_F(LogStoreCrashTest, FlushAdvancesWatermarkAndReplaysOnlySuffix) {
  {
    auto db = LogStore::Open(Options());
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE((*db)->Append(1, MarkerRow(1, 100 + i, "archived")).ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());  // archives + advances the watermark
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE((*db)->Append(1, MarkerRow(1, 200 + i, "tail")).ok());
    }
  }
  auto db = LogStore::Open(Options());
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  // Only the post-flush suffix replays into the row store; the archived
  // rows come back through LogBlocks. Nothing is lost, nothing doubled.
  EXPECT_EQ((*db)->GetStats().rows_in_rowstore, 3u);
  EXPECT_EQ(QueryCount(**db, 1), 7u);
}

TEST_F(LogStoreCrashTest, TornWalTailRecoversCleanly) {
  auto options = Options();
  options.wal.sync_policy = SyncPolicy::kOnSync;
  uint64_t synced_rows = 0;
  {
    auto db = LogStore::Open(options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE((*db)->Append(1, MarkerRow(1, 100 + i, "acked")).ok());
    }
    synced_rows = 6;  // facade Append syncs before acknowledging
    ASSERT_TRUE((*db)->wal()->SimulateCrash(CrashMode::kTornWrite, 42).ok());
  }
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  EXPECT_EQ((*db)->GetStats().rows_in_rowstore, synced_rows);
}

}  // namespace
}  // namespace logstore
