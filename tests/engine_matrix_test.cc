// Optimization-independence property: the §5 optimizations (data skipping,
// caches, prefetch) are pure performance features — every combination must
// produce byte-identical query results. This sweeps all 8 configurations
// over a mixed workload and compares against the unoptimized baseline.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "cluster/data_builder.h"
#include "objectstore/memory_object_store.h"
#include "query/engine.h"
#include "rowstore/row_store.h"
#include "workload/loggen.h"
#include "workload/querygen.h"

namespace logstore::query {
namespace {

struct EngineConfig {
  bool skipping;
  bool cache;
  bool prefetch;
};

class EngineMatrixTest : public ::testing::TestWithParam<int> {
 protected:
  static constexpr int64_t kHistory = 8ll * 3600 * 1'000'000;

  void SetUp() override {
    store_ = std::make_unique<objectstore::MemoryObjectStore>();
    cluster::DataBuilderOptions builder_options;
    builder_options.max_rows_per_logblock = 3000;
    builder_options.block_options.rows_per_block = 256;
    cluster::DataBuilder builder(store_.get(), &map_, builder_options);
    rowstore::RowStore rows(logblock::RequestLogSchema());
    workload::LogGenerator gen(41);
    for (uint64_t tenant = 0; tenant < 3; ++tenant) {
      rows.Append(tenant, gen.Generate(tenant, 4000, 0, kHistory));
    }
    ASSERT_TRUE(builder.BuildOnce(&rows).ok());
  }

  std::multiset<std::string> Run(const EngineConfig& config,
                                 const LogQuery& query) {
    EngineOptions options;
    options.use_data_skipping = config.skipping;
    options.use_cache = config.cache;
    options.use_prefetch = config.prefetch;
    options.prefetch_threads = 4;
    options.io_block_size = 4096;
    options.cache_options.memory_capacity_bytes = 8 << 20;
    options.cache_options.ssd_dir.clear();
    auto engine = QueryEngine::Open(store_.get(), options);
    EXPECT_TRUE(engine.ok());
    auto result = (*engine)->Execute(query, map_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::multiset<std::string> rows;
    if (result.ok()) {
      for (const auto& row : result->rows) rows.insert(row[0].s);
    }
    return rows;
  }

  std::unique_ptr<objectstore::MemoryObjectStore> store_;
  logblock::LogBlockMap map_;
};

TEST_P(EngineMatrixTest, AllConfigurationsAgree) {
  workload::QueryGenerator qgen(static_cast<uint64_t>(GetParam()));
  const uint64_t tenant = static_cast<uint64_t>(GetParam()) % 3;
  for (const auto& query : qgen.TenantQuerySet(tenant, 0, kHistory)) {
    if (query.limit != 0) {
      // LIMIT picks an arbitrary matching subset; compare sizes only.
      const size_t baseline =
          Run({false, false, false}, query).size();
      for (bool skipping : {false, true}) {
        for (bool cache : {false, true}) {
          for (bool prefetch : {false, true}) {
            EXPECT_EQ(Run({skipping, cache, prefetch}, query).size(),
                      baseline)
                << "skip=" << skipping << " cache=" << cache
                << " prefetch=" << prefetch;
          }
        }
      }
    } else {
      const auto baseline = Run({false, false, false}, query);
      for (bool skipping : {false, true}) {
        for (bool cache : {false, true}) {
          for (bool prefetch : {false, true}) {
            EXPECT_EQ(Run({skipping, cache, prefetch}, query), baseline)
                << "skip=" << skipping << " cache=" << cache
                << " prefetch=" << prefetch;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineMatrixTest, ::testing::Range(1, 5));

}  // namespace
}  // namespace logstore::query
