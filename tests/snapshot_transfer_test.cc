// Chunked InstallSnapshot transfer + transport retry/backoff.
//
// With snapshot_chunk_bytes set, a leader repairing a lagging follower
// streams its snapshot blob as offset/seq-framed chunks instead of one
// message: each chunk is acked with the follower's authoritative cursor,
// duplicates and reordering re-ack without re-appending, a gap rewinds the
// sender to the follower's cursor, and a follower restart mid-transfer
// restarts the stream from zero. The transport retry layer underneath
// retransmits dropped RPCs with jittered exponential backoff, which is what
// lets the multi-message stream survive a lossy link at all.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "consensus/raft.h"

namespace logstore::consensus {
namespace {

RaftOptions ChunkedOptions(size_t chunk_bytes) {
  RaftOptions options;
  options.election_timeout_min_ms = 100;
  options.election_timeout_max_ms = 200;
  options.heartbeat_interval_ms = 30;
  options.snapshot_chunk_bytes = chunk_bytes;
  return options;
}

// Payload of the i-th proposal (0-based); `pad` controls blob size so tests
// can pick transfers that fit one delivery cascade or span many.
std::string Payload(int i, int pad) {
  return "p" + std::to_string(i) + std::string(pad, 'x');
}

// The raft_test harness shape: a toy state machine whose snapshot is the
// applied map serialized as "index:payload\n" lines.
struct SnapshotHarness {
  std::map<int, std::map<uint64_t, std::string>> state;
  std::map<int, uint64_t> install_aux;

  void Wire(RaftCluster* cluster, int node) {
    // SetApplyFn recreates the node, so hooks go on after it.
    cluster->SetApplyFn(node,
                        [this, node](uint64_t index, const std::string& p) {
                          state[node][index] = p;
                        });
    cluster->SetSnapshotHooks(
        node,
        [this, node](uint64_t index, uint64_t) {
          std::string blob;
          for (const auto& [i, p] : state[node]) {
            if (i <= index) blob += std::to_string(i) + ":" + p + "\n";
          }
          return blob;
        },
        [this, node](uint64_t, uint64_t aux, const std::string& blob) {
          install_aux[node] = aux;
          state[node].clear();
          size_t pos = 0;
          while (pos < blob.size()) {
            const size_t colon = blob.find(':', pos);
            const size_t nl = blob.find('\n', colon);
            state[node][std::stoull(blob.substr(pos, colon - pos))] =
                blob.substr(colon + 1, nl - colon - 1);
            pos = nl + 1;
          }
        });
  }

  // Exact size of the blob a leader serializes at watermark `index`, for
  // chunk-count arithmetic.
  uint64_t BlobSize(int node, uint64_t index) const {
    uint64_t size = 0;
    const auto it = state.find(node);
    if (it == state.end()) return 0;
    for (const auto& [i, p] : it->second) {
      if (i <= index) size += std::to_string(i).size() + 1 + p.size() + 1;
    }
    return size;
  }
};

void ExpectStateConverged(const SnapshotHarness& harness, int follower,
                          int entries, int pad) {
  ASSERT_EQ(harness.state.at(follower).size(), static_cast<size_t>(entries));
  for (int i = 0; i < entries; ++i) {
    EXPECT_EQ(harness.state.at(follower).at(i + 1), Payload(i, pad))
        << "entry " << i + 1;
  }
}

// Drives the group to the point where `follower` needs a snapshot: commit a
// few entries, cut the follower off, commit more, compact past everything
// it saw (watermark at entries - 2, aux 9). Returns the leader.
int ForceSnapshotRepair(RaftCluster* cluster, SnapshotHarness* harness,
                        int* follower_out, int entries, int pad) {
  for (int i = 0; i < cluster->num_nodes(); ++i) harness->Wire(cluster, i);
  const int leader = cluster->WaitForLeader();
  EXPECT_GE(leader, 0);
  const int follower = (leader + 1) % cluster->num_nodes();
  *follower_out = follower;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(cluster->Propose(Payload(i, pad)).ok());
  }
  cluster->Tick(500);
  cluster->Disconnect(follower);
  for (int i = 4; i < entries; ++i) {
    EXPECT_TRUE(cluster->Propose(Payload(i, pad)).ok());
  }
  cluster->Tick(500);
  for (int i = 0; i < cluster->num_nodes(); ++i) {
    if (i == follower) continue;
    EXPECT_TRUE(
        cluster->node(i).AdvanceWatermark(entries - 2, /*aux=*/9).ok());
  }
  return leader;
}

TEST(SnapshotTransferTest, LargeSnapshotStreamsInChunks) {
  RaftCluster cluster(3, ChunkedOptions(64), 71);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 24, /*pad=*/12);

  cluster.Reconnect(follower);
  cluster.Tick(3000);

  // The blob (22 entries of ~18 bytes) is far larger than one 64-byte
  // chunk: the transfer must have been framed, and exactly one logical
  // snapshot installed.
  EXPECT_GE(cluster.node(leader).snapshot_chunks_sent(), 3u);
  EXPECT_GE(cluster.node(follower).snapshot_chunks_received(), 3u);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 24u);
  EXPECT_EQ(harness.install_aux[follower], 9u);
  ExpectStateConverged(harness, follower, 24, 12);
}

TEST(SnapshotTransferTest, UnchunkedConfigStillSendsOneMessage) {
  // chunk_bytes = 0 (the default) must behave exactly like the original
  // single-message InstallSnapshot: no chunk counters move.
  RaftCluster cluster(3, ChunkedOptions(0), 72);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 24, /*pad=*/12);

  cluster.Reconnect(follower);
  cluster.Tick(3000);

  EXPECT_EQ(cluster.node(leader).snapshot_chunks_sent(), 0u);
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), 0u);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 24u);
  ExpectStateConverged(harness, follower, 24, 12);
}

TEST(SnapshotTransferTest, ChunkedTransferSurvivesLossyLink) {
  // Drops, duplicates AND reordering on every message of the stream. The
  // follower's cursor-authoritative acks make duplicates idempotent; the
  // transport retry layer resurrects dropped chunks; the group converges.
  for (uint64_t seed : {81, 82, 83, 84}) {
    RaftCluster cluster(3, ChunkedOptions(48), seed);
    SnapshotHarness harness;
    int follower = -1;
    ForceSnapshotRepair(&cluster, &harness, &follower, 24, /*pad=*/12);

    cluster.SetDropRate(0.15);
    cluster.SetDuplicateRate(0.25);
    cluster.SetReorderRate(0.2);
    cluster.Reconnect(follower);
    cluster.Tick(6000);
    cluster.SetDropRate(0.0);
    cluster.SetDuplicateRate(0.0);
    cluster.SetReorderRate(0.0);
    cluster.Tick(2000);

    EXPECT_GT(cluster.retransmits(), 0u) << "seed " << seed;
    EXPECT_EQ(cluster.node(follower).last_applied(), 24u) << "seed " << seed;
    ExpectStateConverged(harness, follower, 24, 12);
  }
}

TEST(SnapshotTransferTest, TransferResumesAcrossPartition) {
  // A blob of ~130 chunks spans several delivery cascades, so the transfer
  // is observably in flight across Tick steps. Cut the link mid-stream:
  // the follower keeps its staged prefix, and on reconnect the leader
  // resumes from the follower's acked cursor instead of restarting at
  // zero.
  const size_t kChunk = 32;
  RaftCluster cluster(3, ChunkedOptions(kChunk), 91);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 40, /*pad=*/100);

  cluster.Reconnect(follower);
  for (int i = 0;
       i < 50 && cluster.node(follower).snapshot_chunks_received() == 0; ++i) {
    cluster.Tick(10);
  }
  ASSERT_GT(cluster.node(follower).snapshot_chunks_received(), 0u);
  ASSERT_EQ(cluster.node(follower).snapshots_installed(), 0u)
      << "transfer finished before the partition could interrupt it";

  cluster.Disconnect(follower);
  cluster.Tick(500);
  cluster.Reconnect(follower);
  cluster.Tick(5000);

  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 40u);
  // Resume, not restart: chunks_received counts only FRESH bytes appended
  // to staging (duplicates and gap-rejects re-ack without counting), so a
  // resumed transfer receives each chunk exactly once — staging survived
  // the partition. A restart would have re-received the staged prefix and
  // pushed the count past the blob's chunk total.
  const uint64_t blob = harness.BlobSize(leader, 38);
  const uint64_t total_chunks = (blob + kChunk - 1) / kChunk;
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), total_chunks);
  ExpectStateConverged(harness, follower, 40, 100);
}

TEST(SnapshotTransferTest, FollowerRestartMidTransferRestartsStream) {
  // A follower process restart loses the staged prefix (it lives in
  // memory); the leader's next mid-blob chunk is refused with cursor 0,
  // the leader counts a rewind, and the stream replays from the start.
  const size_t kChunk = 32;
  RaftCluster cluster(3, ChunkedOptions(kChunk), 92);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 40, /*pad=*/100);

  cluster.Reconnect(follower);
  for (int i = 0;
       i < 50 && cluster.node(follower).snapshot_chunks_received() == 0; ++i) {
    cluster.Tick(10);
  }
  ASSERT_GT(cluster.node(follower).snapshot_chunks_received(), 0u);
  ASSERT_EQ(cluster.node(follower).snapshots_installed(), 0u)
      << "transfer finished before the restart could interrupt it";

  cluster.Disconnect(follower);
  cluster.RestartNode(follower, [](uint64_t, const std::string&) {});
  harness.state[follower].clear();
  harness.Wire(&cluster, follower);  // re-install hooks on the fresh node
  cluster.Reconnect(follower);
  cluster.Tick(6000);

  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_GE(cluster.node(leader).snapshot_chunk_rewinds(), 1u);
  // The refusal that forced the rewind is itself counted: the restarted
  // follower saw mid-blob chunks of a transfer it no longer stages.
  EXPECT_GE(cluster.node(follower).snapshot_stale_rejections(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 40u);
  // Restart, not resume: the fresh node re-received the whole blob.
  const uint64_t blob = harness.BlobSize(leader, 38);
  const uint64_t total_chunks = (blob + kChunk - 1) / kChunk;
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), total_chunks);
  ExpectStateConverged(harness, follower, 40, 100);
}

TEST(SnapshotTransferTest, LeaderKillMidStreamNewLeaderCompletesRepair) {
  // The deposed-leader rung of the fault matrix: kill the leader while its
  // chunk stream to a lagging follower is in flight. The surviving node
  // with the complete log wins the election and runs its OWN transfer from
  // offset 0 (a fresh xfer id replaces the dead one's staging); the
  // follower converges byte-exact with exact chunk accounting — the
  // abandoned transfer's staged prefix contributes nothing.
  const size_t kChunk = 32;
  RaftCluster cluster(3, ChunkedOptions(kChunk), 95);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 40, /*pad=*/100);

  cluster.Reconnect(follower);
  for (int i = 0;
       i < 50 && cluster.node(follower).snapshot_chunks_received() == 0; ++i) {
    cluster.Tick(10);
  }
  ASSERT_GT(cluster.node(follower).snapshot_chunks_received(), 0u);
  ASSERT_EQ(cluster.node(follower).snapshots_installed(), 0u)
      << "transfer finished before the leader kill could interrupt it";
  const uint64_t staged_chunks =
      cluster.node(follower).snapshot_chunks_received();

  cluster.Disconnect(leader);
  const int new_leader = cluster.WaitForLeader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, leader);
  ASSERT_NE(new_leader, follower)
      << "the lagging follower must lose the election to the complete log";
  cluster.Tick(6000);
  cluster.Reconnect(leader);
  cluster.Tick(2000);

  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 40u);
  // Exact accounting: the new leader's stream restarted at zero, so the
  // follower appended the dead transfer's prefix plus the WHOLE new blob —
  // nothing was resumed across the leader change, nothing double-counted.
  const uint64_t blob = harness.BlobSize(new_leader, 38);
  const uint64_t total_chunks = (blob + kChunk - 1) / kChunk;
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(),
            staged_chunks + total_chunks);
  ExpectStateConverged(harness, follower, 40, 100);
}

TEST(SnapshotTransferTest, DeposedLeaderChunkCannotSpliceStagedTransfer) {
  // The splice attack the stale-term counters pin down: a follower is
  // staging a transfer from leader L when L is deposed. A leftover mid-blob
  // chunk from L then arrives with offset == the staging cursor — exactly
  // where a splice would land. Identity-wise it matches the staging (same
  // from, xfer id, snapshot index); only the TERM gives it away. The
  // follower must refuse it, count the stale rejection, and leave staging
  // untouched, so the new leader's transfer converges byte-exact.
  const size_t kChunk = 32;
  RaftCluster cluster(3, ChunkedOptions(kChunk), 96);
  SnapshotHarness harness;
  int follower = -1;
  const int leader =
      ForceSnapshotRepair(&cluster, &harness, &follower, 40, /*pad=*/100);

  cluster.Reconnect(follower);
  for (int i = 0;
       i < 50 && cluster.node(follower).snapshot_chunks_received() < 2; ++i) {
    cluster.Tick(10);
  }
  ASSERT_GE(cluster.node(follower).snapshot_chunks_received(), 2u);
  ASSERT_EQ(cluster.node(follower).snapshots_installed(), 0u)
      << "transfer finished before the deposition could interrupt it";
  const uint64_t old_term = cluster.node(leader).term();
  // Every staged chunk so far is a full kChunk (the last chunk ends the
  // transfer, which has not happened): the cursor is exactly this.
  const uint64_t staged_bytes =
      cluster.node(follower).snapshot_chunks_received() * kChunk;

  cluster.Disconnect(leader);
  const int new_leader = cluster.WaitForLeader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, leader);
  ASSERT_GT(cluster.node(follower).term(), old_term)
      << "the follower never learned the new term";

  // The election ticks may already have let the new leader stream (or even
  // complete) its own repair transfer; the poison assertions are deltas so
  // they hold on every interleaving — the old term alone must doom the
  // chunk before any identity or cursor comparison can touch staging.
  const uint64_t chunks_before =
      cluster.node(follower).snapshot_chunks_received();
  const uint64_t stale_before =
      cluster.node(follower).snapshot_stale_rejections();

  // The deposed leader's leftover chunk: offsets line up with the dead
  // transfer's staging cursor, the identity fields match it (the first
  // transfer a node freezes gets xfer id 1), only the term is old.
  Message stale;
  stale.type = MessageType::kInstallSnapshot;
  stale.from = leader;
  stale.to = follower;
  stale.term = old_term;
  stale.snapshot_index = 38;  // ForceSnapshotRepair's watermark
  stale.snapshot_term = old_term;
  stale.snapshot_xfer = 1;
  stale.snapshot_offset = staged_bytes;
  stale.snapshot_last = false;
  stale.snapshot_state = std::string(kChunk, 'Z');  // poison bytes
  std::vector<Message> replies;
  cluster.node(follower).Receive(stale, &replies);

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].success);
  EXPECT_EQ(cluster.node(follower).snapshot_stale_rejections(),
            stale_before + 1);
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), chunks_before)
      << "the poison chunk was appended to staging";

  // The new leader repairs the follower with its own transfer; the 'Z'
  // bytes must appear nowhere in the converged state.
  cluster.Tick(6000);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 1u);
  EXPECT_EQ(cluster.node(follower).last_applied(), 40u);
  ExpectStateConverged(harness, follower, 40, 100);
}

TEST(SnapshotTransferTest, StaleChunksFromDeposedLeaderAreRejected) {
  // Hand-craft a chunk carrying an old term: the follower must refuse it
  // without touching its staging, exactly like any stale-term RPC.
  RaftCluster cluster(3, ChunkedOptions(32), 93);
  SnapshotHarness harness;
  for (int i = 0; i < 3; ++i) harness.Wire(&cluster, i);
  const int leader = cluster.WaitForLeader();
  ASSERT_GE(leader, 0);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.Propose(Payload(i, 4)).ok());
  }
  cluster.Tick(500);
  const int follower = (leader + 1) % 3;
  ASSERT_EQ(cluster.node(follower).last_applied(), 6u);

  Message stale;
  stale.type = MessageType::kInstallSnapshot;
  stale.from = (leader + 2) % 3;
  stale.to = follower;
  stale.term = 0;  // a deposed leader's term
  stale.snapshot_index = 99;
  stale.snapshot_term = 1;
  stale.snapshot_xfer = 7;
  stale.snapshot_offset = 0;
  stale.snapshot_total = 64;
  stale.snapshot_last = false;
  stale.snapshot_state = std::string(32, 'y');
  std::vector<Message> replies;
  cluster.node(follower).Receive(stale, &replies);

  ASSERT_EQ(replies.size(), 1u);
  EXPECT_FALSE(replies[0].success);
  EXPECT_EQ(cluster.node(follower).snapshot_stale_rejections(), 1u);
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), 0u);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 0u);

  // And a chunk for an ALREADY-APPLIED prefix: acknowledged with progress
  // (so a lagging sender un-sticks) but never staged or installed — and
  // not a stale rejection (the sender is current-term, just behind).
  Message old_prefix = stale;
  old_prefix.from = leader;
  old_prefix.term = cluster.node(leader).term();
  old_prefix.snapshot_index = 2;  // below the follower's applied point
  replies.clear();
  cluster.node(follower).Receive(old_prefix, &replies);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_TRUE(replies[0].success);
  EXPECT_EQ(replies[0].match_index, 6u);
  EXPECT_EQ(cluster.node(follower).snapshot_stale_rejections(), 1u);
  EXPECT_EQ(cluster.node(follower).snapshot_chunks_received(), 0u);
  EXPECT_EQ(cluster.node(follower).snapshots_installed(), 0u);
}

TEST(SnapshotTransferTest, TransportRetriesDroppedRpcs) {
  // Plain replication (no snapshots) under heavy loss: with the retry
  // layer the group still commits, and the retransmit counter proves the
  // backoff path ran. Deterministic per seed.
  for (uint64_t seed : {61, 62, 63}) {
    RaftCluster cluster(3, ChunkedOptions(0), seed);
    std::map<int, int> applied;
    for (int i = 0; i < 3; ++i) {
      cluster.SetApplyFn(
          i, [&applied, i](uint64_t, const std::string&) { ++applied[i]; });
    }
    ASSERT_GE(cluster.WaitForLeader(), 0) << "seed " << seed;
    cluster.SetDropRate(0.2);
    for (int i = 0; i < 8; ++i) {
      if (cluster.leader() < 0) cluster.WaitForLeader();
      cluster.Propose("entry-" + std::to_string(i)).IgnoreError();
      cluster.Tick(200);
    }
    cluster.SetDropRate(0.0);
    cluster.Tick(2000);

    EXPECT_GT(cluster.retransmits(), 0u) << "seed " << seed;
    EXPECT_GT(applied[0], 0) << "seed " << seed;
    // Whatever committed, every node applied the same entries.
    EXPECT_EQ(applied[0], applied[1]) << "seed " << seed;
    EXPECT_EQ(applied[1], applied[2]) << "seed " << seed;
  }
}

TEST(SnapshotTransferTest, RetryBudgetIsBounded) {
  // rpc_max_retries = 0 disables the retry layer entirely: drops stay
  // dropped and the counter never moves.
  RaftOptions options = ChunkedOptions(0);
  options.rpc_max_retries = 0;
  RaftCluster cluster(3, options, 64);
  ASSERT_GE(cluster.WaitForLeader(), 0);
  cluster.SetDropRate(0.3);
  for (int i = 0; i < 5; ++i) {
    cluster.Propose("entry").IgnoreError();
    cluster.Tick(100);
  }
  EXPECT_EQ(cluster.retransmits(), 0u);
}

}  // namespace
}  // namespace logstore::consensus
