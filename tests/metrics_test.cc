// Unified metrics registry tests (DESIGN.md §14).
//
// Three layers under test: the registry itself (canonical keys, idempotent
// cell resolution, snapshot consistency under concurrent increments), the
// dual-write Counter that lets the legacy per-module stats structs mirror
// into the registry without changing their reset semantics, and the
// end-to-end wiring — one Snapshot() of a registry plumbed through a full
// deployment must surface counters from every stats producer in the
// codebase. The cluster write-path test doubles as the regression fixture
// for the old global-metrics-lock bug: Cluster::Write used to serialize
// every broker write (twice) on one mutex; now concurrent writers touch
// only lock-free cells and the totals must still be exact.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "common/metrics.h"
#include "core/logstore.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "query/engine.h"
#include "workload/loggen.h"

namespace logstore {
namespace {

namespace fs = std::filesystem;
using metrics::MetricRegistry;

// ---------------------------------------------------------------------------
// Registry core.
// ---------------------------------------------------------------------------

TEST(MetricRegistryTest, CanonicalKeySortsLabels) {
  EXPECT_EQ(MetricRegistry::CanonicalKey("cache.hits", {}), "cache.hits");
  EXPECT_EQ(MetricRegistry::CanonicalKey("cache.hits", {{"tier", "ssd"}}),
            "cache.hits{tier=ssd}");
  EXPECT_EQ(MetricRegistry::CanonicalKey("x", {{"z", "1"}, {"a", "2"}}),
            MetricRegistry::CanonicalKey("x", {{"a", "2"}, {"z", "1"}}));
}

TEST(MetricRegistryTest, SameNameAndLabelsResolveToSameCell) {
  MetricRegistry registry;
  auto* a = registry.Counter("m.count", {{"tenant", "7"}});
  auto* b = registry.Counter("m.count", {{"tenant", "7"}});
  EXPECT_EQ(a, b);
  // Different labels (or label order-insensitivity) behave as documented.
  EXPECT_NE(a, registry.Counter("m.count", {{"tenant", "8"}}));
  EXPECT_EQ(registry.Counter("m.x", {{"a", "1"}, {"b", "2"}}),
            registry.Counter("m.x", {{"b", "2"}, {"a", "1"}}));
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricRegistryTest, GaugesAreLastWriteWins) {
  MetricRegistry registry;
  auto* depth = registry.Gauge("q.depth");
  depth->store(17);
  depth->store(5);
  const auto snap = registry.SnapshotMap();
  EXPECT_EQ(snap.at("q.depth"), 5);
}

TEST(MetricRegistryTest, ExportersEmitEveryMetric) {
  MetricRegistry registry;
  registry.Counter("a.count")->fetch_add(3);
  registry.Gauge("b.depth", {{"tier", "ssd"}})->store(-2);
  const std::string text = registry.ToText();
  EXPECT_NE(text.find("a.count 3"), std::string::npos);
  EXPECT_NE(text.find("b.depth{tier=ssd} -2"), std::string::npos);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.depth{tier=ssd}\""), std::string::npos);
}

// Concurrent increments + registrations + snapshots: totals exact after
// join, snapshots never torn, counters monotonic across snapshots. Run
// under TSan this is also the registry's data-race proof.
TEST(MetricRegistryTest, SnapshotsAreConsistentUnderConcurrentIncrements) {
  MetricRegistry registry;
  auto* shared = registry.Counter("t.shared");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    int64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const auto snap = registry.SnapshotMap();
      const auto it = snap.find("t.shared");
      if (it == snap.end()) continue;
      EXPECT_GE(it->second, last) << "counter went backwards";
      EXPECT_LE(it->second,
                static_cast<int64_t>(kThreads * kPerThread));
      last = it->second;
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      // Each thread also registers its own cell mid-flight, so snapshots
      // race with registration, not just with increments.
      auto* own = registry.Counter("t.own", {{"thread", std::to_string(t)}});
      for (uint64_t i = 0; i < kPerThread; ++i) {
        shared->fetch_add(1, std::memory_order_relaxed);
        own->fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  snapshotter.join();

  EXPECT_EQ(shared->load(), kThreads * kPerThread);
  const auto snap = registry.SnapshotMap();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.at("t.own{thread=" + std::to_string(t) + "}"),
              static_cast<int64_t>(kPerThread));
  }
}

// ---------------------------------------------------------------------------
// Dual-write Counter (the legacy-stats bridge).
// ---------------------------------------------------------------------------

TEST(DualWriteCounterTest, MirrorsIncrementsButNotResets) {
  MetricRegistry registry;
  metrics::Counter counter;
  ++counter;  // pre-Bind increment stays local
  counter.Bind(registry.Counter("m.x"));
  counter += 4;
  counter.fetch_add(5);
  EXPECT_EQ(counter.load(), 10u);
  EXPECT_EQ(registry.Counter("m.x")->load(), 9u);

  // Legacy Reset() semantics: assignment rewinds the local value only; the
  // registry cell is cumulative by contract.
  counter = 0;
  EXPECT_EQ(counter.load(), 0u);
  EXPECT_EQ(registry.Counter("m.x")->load(), 9u);
  ++counter;
  EXPECT_EQ(counter.load(), 1u);
  EXPECT_EQ(registry.Counter("m.x")->load(), 10u);
  // Implicit conversion keeps std::atomic call sites source-compatible.
  const uint64_t value = counter;
  EXPECT_EQ(value, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end wiring: one snapshot surfaces every producer.
// ---------------------------------------------------------------------------

bool HasMetricWithPrefix(const std::map<std::string, int64_t>& snap,
                         const std::string& prefix) {
  for (const auto& [key, value] : snap) {
    (void)value;
    if (key.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

TEST(MetricsIntegrationTest, OneSnapshotSurfacesEveryProducer) {
  MetricRegistry registry;
  const fs::path dir =
      fs::temp_directory_path() /
      ("metrics_e2e_" + std::to_string(::getpid()));
  fs::remove_all(dir);

  {
    // A durable replicated deployment: exercises the objectstore, cache,
    // prefetch, admission, query, raft, WAL, monitor and cluster layers.
    auto store = std::make_unique<objectstore::MemoryObjectStore>(&registry);
    cluster::ClusterDeploymentOptions options;
    options.num_workers = 2;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = true;
    options.worker.wal_dir = (dir / "cluster").string();
    options.worker.wal.sync_policy = consensus::SyncPolicy::kNever;
    options.worker.builder.max_rows_per_logblock = 100;
    options.engine.prefetch_threads = 1;
    options.engine.cache_options.ssd_dir.clear();
    options.registry = &registry;
    auto opened = cluster::Cluster::Open(store.get(), options);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    auto cluster = std::move(opened).value();

    workload::LogGenerator gen(11);
    for (uint64_t tenant = 1; tenant <= 2; ++tenant) {
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(
            cluster->Write(tenant, gen.Generate(tenant, 50, 0, 1'000'000))
                .ok());
      }
    }
    ASSERT_TRUE(cluster->RunBuildPass().ok());
    query::LogQuery query;
    query.tenant_id = 1;
    ASSERT_TRUE(cluster->Query(query).ok());
    // Touch the admission governor directly so its lazily-resolved
    // per-tenant cells exist even if the tiny query never queued.
    ASSERT_TRUE(cluster->admission()->Acquire(1));
    cluster->admission()->Release();
    cluster->RunTrafficControl();

    // The FaultStats producer (no cluster layer constructs one).
    objectstore::FaultInjectionOptions fault_options;
    fault_options.registry = &registry;
    objectstore::FaultInjectingObjectStore faulty(
        std::make_unique<objectstore::MemoryObjectStore>(), fault_options);
    ASSERT_TRUE(faulty.Put("k", "v").ok());

    // The LogStore facade (core.*), over its own in-memory store.
    LogStoreOptions db_options;
    db_options.registry = &registry;
    auto db = LogStore::Open(db_options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 20, 0, 1'000'000)).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    query::LogQuery db_query;
    db_query.tenant_id = 1;
    ASSERT_TRUE((*db)->Query(db_query).ok());
    (*db)->GetStats();

    const auto snap = registry.SnapshotMap();
    // Every legacy stats producer must be represented in this one map.
    const std::vector<std::string> producers = {
        "objectstore.",       // ObjectStoreStats
        "objectstore.retry.", // RetryStats
        "objectstore.fault.", // FaultStats
        "cache.",             // CacheStats (memory/ssd/object tiers)
        "prefetch.",          // prefetch service
        "admission.",         // AdmissionTenantStats
        "query.",             // QueryStats / BlockExecStats
        "raft.",              // raft replication counters
        "wal.",               // DurableLog counters
        "monitor.",           // MonitorStats
        "cluster.",           // broker routing + scatter reads
        "core.",              // LogStore facade
    };
    for (const std::string& prefix : producers) {
      EXPECT_TRUE(HasMetricWithPrefix(snap, prefix))
          << "no metric registered under '" << prefix << "'";
    }
    EXPECT_GE(snap.size(), 40u)
        << "expected a full deployment to register at least 40 distinct "
        << "metrics, got "
        << snap.size() << ":\n"
        << registry.ToText();

    // Spot-check that the wiring carries real traffic, not just bindings.
    EXPECT_GT(snap.at("cluster.rows_routed{tenant=1}"), 0);
    EXPECT_GT(snap.at("wal.records_appended"), 0);
    EXPECT_GT(snap.at("core.rows_appended"), 0);
    EXPECT_GT(snap.at("query.queries"), 0);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cluster write path: exact accounting with no global lock (the regression
// fixture for the metrics_mu_ double-acquisition bug).
// ---------------------------------------------------------------------------

TEST(MetricsIntegrationTest, ConcurrentClusterWritesAccountExactly) {
  MetricRegistry registry;
  auto store = std::make_unique<objectstore::MemoryObjectStore>(&registry);
  cluster::ClusterDeploymentOptions options;
  options.num_workers = 4;
  options.shards_per_worker = 2;
  options.worker.schema = logblock::RequestLogSchema();
  options.registry = &registry;
  auto opened = cluster::Cluster::Open(store.get(), options);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto cluster = std::move(opened).value();

  constexpr int kThreads = 8;
  constexpr int kWritesPerThread = 40;
  constexpr uint32_t kRowsPerWrite = 25;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      workload::LogGenerator gen(100 + static_cast<uint64_t>(t));
      const uint64_t tenant = static_cast<uint64_t>(t % 4);
      for (int i = 0; i < kWritesPerThread; ++i) {
        EXPECT_TRUE(cluster
                        ->Write(tenant, gen.Generate(tenant, kRowsPerWrite, 0,
                                                     1'000'000))
                        .ok());
      }
    });
  }
  for (auto& writer : writers) writer.join();

  // Every row must be accounted once on each axis: per tenant, per shard,
  // per worker. Under the old global-lock counters this held trivially;
  // with lock-free cells it is the exactness proof (and under TSan, the
  // data-race proof for the whole broker write path).
  const int64_t expected = static_cast<int64_t>(kThreads) * kWritesPerThread *
                           kRowsPerWrite;
  const auto snap = registry.SnapshotMap();
  int64_t by_tenant = 0, by_shard = 0, by_worker = 0;
  for (const auto& [key, value] : snap) {
    if (key.rfind("cluster.rows_routed{tenant=", 0) == 0) by_tenant += value;
    if (key.rfind("cluster.rows_routed{shard=", 0) == 0) by_shard += value;
    if (key.rfind("cluster.rows_routed{worker=", 0) == 0) by_worker += value;
  }
  EXPECT_EQ(by_tenant, expected);
  EXPECT_EQ(by_shard, expected);
  EXPECT_EQ(by_worker, expected);

  // Traffic control consumes deltas: a second cycle with no traffic in
  // between must see none (the baselines advanced with the first).
  cluster->RunTrafficControl();
  const auto before = registry.SnapshotMap();
  cluster->RunTrafficControl();
  EXPECT_EQ(registry.SnapshotMap(), before);
}

}  // namespace
}  // namespace logstore
