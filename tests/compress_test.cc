#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "compress/codec.h"

namespace logstore::compress {
namespace {

std::string MakeLogLikePayload(int rows, uint64_t seed) {
  // Synthetic log lines with heavy repetition, like real audit logs.
  Random rng(seed);
  std::string payload;
  for (int i = 0; i < rows; ++i) {
    payload += "2020-11-11 00:0" + std::to_string(rng.Uniform(10)) +
               ":00 GET /api/v1/instances/" + std::to_string(rng.Uniform(50)) +
               " status=200 latency=" + std::to_string(rng.Uniform(500)) +
               "ms tenant=" + std::to_string(rng.Uniform(16)) + "\n";
  }
  return payload;
}

std::string MakeRandomPayload(size_t n, uint64_t seed) {
  Random rng(seed);
  std::string payload(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<char>(rng.Uniform(256));
  }
  return payload;
}

class CodecRoundTripTest : public ::testing::TestWithParam<CodecType> {};

TEST_P(CodecRoundTripTest, EmptyInput) {
  const Codec* codec = GetCodec(GetParam());
  ASSERT_NE(codec, nullptr);
  std::string compressed, restored;
  ASSERT_TRUE(codec->Compress(Slice(), &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_TRUE(restored.empty());
}

TEST_P(CodecRoundTripTest, TinyInputs) {
  const Codec* codec = GetCodec(GetParam());
  for (size_t n = 1; n <= 8; ++n) {
    const std::string input(n, 'x');
    std::string compressed, restored;
    ASSERT_TRUE(codec->Compress(input, &compressed).ok());
    ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
    EXPECT_EQ(restored, input) << "n=" << n;
  }
}

TEST_P(CodecRoundTripTest, LogLikePayload) {
  const Codec* codec = GetCodec(GetParam());
  const std::string input = MakeLogLikePayload(2000, 42);
  std::string compressed, restored;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, IncompressibleRandomPayload) {
  const Codec* codec = GetCodec(GetParam());
  const std::string input = MakeRandomPayload(64 * 1024, 99);
  std::string compressed, restored;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

TEST_P(CodecRoundTripTest, HighlyRepetitivePayload) {
  const Codec* codec = GetCodec(GetParam());
  std::string input;
  for (int i = 0; i < 1000; ++i) input += "abcabcabc";
  std::string compressed, restored;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
  if (GetParam() != CodecType::kNone) {
    EXPECT_LT(compressed.size(), input.size() / 10);
  }
}

TEST_P(CodecRoundTripTest, AppendsToExistingOutput) {
  const Codec* codec = GetCodec(GetParam());
  std::string compressed;
  ASSERT_TRUE(codec->Compress("payload-bytes", &compressed).ok());
  std::string restored = "prefix:";
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, "prefix:payload-bytes");
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CodecRoundTripTest,
                         ::testing::Values(CodecType::kNone, CodecType::kLzFast,
                                           CodecType::kLzRatio),
                         [](const auto& info) -> std::string {
                           switch (info.param) {
                             case CodecType::kNone: return "None";
                             case CodecType::kLzFast: return "LzFast";
                             case CodecType::kLzRatio: return "LzRatio";
                           }
                           return "Unknown";
                         });

TEST(CodecTest, RatioCodecCompressesBetterThanFast) {
  const std::string input = MakeLogLikePayload(5000, 7);
  std::string fast_out, ratio_out;
  ASSERT_TRUE(GetCodec(CodecType::kLzFast)->Compress(input, &fast_out).ok());
  ASSERT_TRUE(GetCodec(CodecType::kLzRatio)->Compress(input, &ratio_out).ok());
  // Both shrink the log payload substantially...
  EXPECT_LT(fast_out.size(), input.size() / 2);
  // ...and the ratio codec is at least as good as fast (paper picks ZSTD
  // for its superior ratio).
  EXPECT_LE(ratio_out.size(), fast_out.size());
}

TEST(CodecTest, DecompressRejectsTruncation) {
  const Codec* codec = GetCodec(CodecType::kLzRatio);
  const std::string input = MakeLogLikePayload(500, 3);
  std::string compressed;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  for (size_t cut : {size_t{0}, compressed.size() / 2, compressed.size() - 1}) {
    std::string restored;
    Status s = codec->Decompress(Slice(compressed.data(), cut), &restored);
    EXPECT_FALSE(s.ok()) << "cut=" << cut;
  }
}

TEST(CodecTest, DecompressRejectsGarbage) {
  const Codec* codec = GetCodec(CodecType::kLzFast);
  std::string restored;
  // A header that promises a huge size with an out-of-range match offset.
  std::string garbage = {'\xff', '\xff', '\x7f', '\x00', '\x09', '\x01'};
  EXPECT_FALSE(codec->Decompress(garbage, &restored).ok());
}

TEST(CodecTest, UnknownCodecReturnsNull) {
  EXPECT_EQ(GetCodec(static_cast<CodecType>(200)), nullptr);
}

TEST(CodecTest, OverlappingMatchRuns) {
  // "aaaa..." forces overlapping match copies (offset < length).
  const Codec* codec = GetCodec(CodecType::kLzFast);
  const std::string input(10000, 'a');
  std::string compressed, restored;
  ASSERT_TRUE(codec->Compress(input, &compressed).ok());
  EXPECT_LT(compressed.size(), 100u);
  ASSERT_TRUE(codec->Decompress(compressed, &restored).ok());
  EXPECT_EQ(restored, input);
}

}  // namespace
}  // namespace logstore::compress
