// End-to-end integration tests: the full pipeline (append -> WAL encode ->
// row store -> data builder -> LogBlocks on object store -> engine with
// caches and prefetch -> merged query results) checked against a naive
// golden model on randomized workloads.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/logstore.h"
#include "index/inverted_index.h"
#include "workload/loggen.h"

namespace logstore {
namespace {

using logblock::RowBatch;
using logblock::Value;

// A trivial reference implementation of the query semantics.
class GoldenModel {
 public:
  void Append(uint64_t tenant, const RowBatch& rows) {
    for (uint32_t r = 0; r < rows.num_rows(); ++r) {
      std::vector<Value> row;
      for (size_t c = 0; c < rows.schema().num_columns(); ++c) {
        row.push_back(rows.ValueAt(c, r));
      }
      rows_.push_back({tenant, std::move(row)});
    }
  }

  void Expire(uint64_t tenant, int64_t cutoff_ts,
              const logblock::Schema& schema) {
    // Whole-LogBlock expiration granularity differs from row granularity;
    // the golden model is only used on datasets where block boundaries
    // align with the cutoff (we expire everything older than a flush).
    const int ts_col = schema.FindColumn("ts");
    rows_.erase(std::remove_if(rows_.begin(), rows_.end(),
                               [&](const TenantRow& row) {
                                 return row.tenant == tenant &&
                                        row.values[ts_col].i < cutoff_ts;
                               }),
                rows_.end());
  }

  // Applies a LogQuery and returns the multiset of projected "log" values.
  std::multiset<std::string> Query(const query::LogQuery& q,
                                   const logblock::Schema& schema) const {
    std::multiset<std::string> result;
    const int ts_col = schema.FindColumn("ts");
    const int log_col = schema.FindColumn("log");
    for (const TenantRow& row : rows_) {
      if (row.tenant != q.tenant_id) continue;
      const int64_t ts = row.values[ts_col].i;
      if (ts < q.ts_min || ts > q.ts_max) continue;
      bool ok = true;
      for (const auto& pred : q.predicates) {
        const int col = schema.FindColumn(pred.column);
        const Value& v = row.values[col];
        switch (pred.kind) {
          case query::Predicate::Kind::kInt64Compare:
            ok = pred.EvalInt64(v.i);
            break;
          case query::Predicate::Kind::kStringEq:
            ok = v.s == pred.str_value;
            break;
          case query::Predicate::Kind::kMatch: {
            const auto want = index::Tokenize(pred.str_value);
            const auto have = index::Tokenize(v.s);
            for (const auto& token : want) {
              if (std::find(have.begin(), have.end(), token) == have.end()) {
                ok = false;
                break;
              }
            }
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) result.insert(row.values[log_col].s);
    }
    return result;
  }

 private:
  struct TenantRow {
    uint64_t tenant;
    std::vector<Value> values;
  };
  std::vector<TenantRow> rows_;
};

std::multiset<std::string> LogColumn(const query::QueryResult& result) {
  std::multiset<std::string> logs;
  for (size_t c = 0; c < result.columns.size(); ++c) {
    if (result.columns[c] == "log") {
      for (const auto& row : result.rows) logs.insert(row[c].s);
    }
  }
  return logs;
}

class PipelinePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PipelinePropertyTest, QueriesMatchGoldenModel) {
  const uint64_t seed = static_cast<uint64_t>(GetParam());
  Random rng(seed);

  LogStoreOptions options;
  options.engine.cache_options.memory_capacity_bytes = 4 << 20;
  options.engine.cache_options.ssd_dir.clear();
  options.engine.io_block_size = 1 + rng.Uniform(8192);  // odd sizes too
  options.builder.block_options.rows_per_block =
      64 + static_cast<uint32_t>(rng.Uniform(512));
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());

  GoldenModel golden;
  workload::LogGenerator gen(seed * 31);

  // Randomized ingest: several tenants, several batches, flushes
  // interleaved so data is split between row store and LogBlocks.
  const int num_tenants = 2 + static_cast<int>(rng.Uniform(3));
  const int64_t history = 6 * workload::LogGenerator::kWindowMicros;
  for (int batch_idx = 0; batch_idx < 6; ++batch_idx) {
    const uint64_t tenant = rng.Uniform(num_tenants);
    const uint32_t rows = 50 + static_cast<uint32_t>(rng.Uniform(400));
    const int64_t begin =
        static_cast<int64_t>(rng.Uniform(4)) * (history / 4);
    const auto batch = gen.Generate(tenant, rows, begin, begin + history / 4);
    ASSERT_TRUE((*db)->Append(tenant, batch).ok());
    golden.Append(tenant, batch);
    if (rng.OneIn(2)) {
      ASSERT_TRUE((*db)->Flush().ok());
    }
  }

  // Randomized queries spanning all predicate kinds.
  for (int qi = 0; qi < 15; ++qi) {
    query::LogQuery q;
    q.tenant_id = rng.Uniform(num_tenants);
    q.ts_min = static_cast<int64_t>(rng.Uniform(history));
    q.ts_max = q.ts_min + static_cast<int64_t>(rng.Uniform(history));
    q.select_columns = {"log"};
    switch (rng.Uniform(5)) {
      case 0:
        q.predicates.push_back(query::Predicate::StringEq("fail", "true"));
        break;
      case 1:
        q.predicates.push_back(query::Predicate::Int64Compare(
            "latency", query::CompareOp::kGe,
            static_cast<int64_t>(rng.Uniform(2000))));
        break;
      case 2:
        q.predicates.push_back(query::Predicate::Match("log", "timeout"));
        break;
      case 3:
        q.predicates.push_back(query::Predicate::Int64Compare(
            "latency", query::CompareOp::kNe, 0));
        q.predicates.push_back(query::Predicate::StringEq("fail", "false"));
        break;
      default:
        break;  // no extra predicates
    }

    auto result = (*db)->Query(q);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(LogColumn(*result), golden.Query(q, (*db)->schema()))
        << "seed " << seed << " query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelinePropertyTest, ::testing::Range(1, 11));

TEST(PipelineIntegrationTest, ExpirationMatchesGoldenModel) {
  LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());
  GoldenModel golden;
  workload::LogGenerator gen(5);

  // Two flushed epochs with disjoint time ranges.
  const auto early = gen.Generate(1, 300, 0, 1000);
  ASSERT_TRUE((*db)->Append(1, early).ok());
  golden.Append(1, early);
  ASSERT_TRUE((*db)->Flush().ok());
  const auto late = gen.Generate(1, 300, 10'000, 11'000);
  ASSERT_TRUE((*db)->Append(1, late).ok());
  golden.Append(1, late);
  ASSERT_TRUE((*db)->Flush().ok());

  ASSERT_TRUE((*db)->Expire(1, 5000).ok());
  golden.Expire(1, 5000, (*db)->schema());

  query::LogQuery q;
  q.tenant_id = 1;
  q.select_columns = {"log"};
  auto result = (*db)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(LogColumn(*result), golden.Query(q, (*db)->schema()));
  EXPECT_EQ(result->rows.size(), 300u);
}

TEST(PipelineIntegrationTest, ConcurrentAppendsAndQueries) {
  LogStoreOptions options;
  options.engine.cache_options.ssd_dir.clear();
  options.autoflush_rows = 500;
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());

  std::atomic<bool> stop{false};
  std::atomic<int> query_errors{0};
  std::thread reader([&] {
    while (!stop.load()) {
      query::LogQuery q;
      q.tenant_id = 1;
      q.predicates = {query::Predicate::StringEq("fail", "false")};
      q.select_columns = {"ts"};
      auto result = (*db)->Query(q);
      if (!result.ok()) query_errors++;
    }
  });

  workload::LogGenerator gen(6);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        (*db)->Append(1, gen.Generate(1, 100, i * 1000, (i + 1) * 1000)).ok());
  }
  stop = true;
  reader.join();
  EXPECT_EQ(query_errors.load(), 0);

  query::LogQuery q;
  q.tenant_id = 1;
  auto result = (*db)->Query(q);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 4000u);
}

TEST(PipelineIntegrationTest, SsdCacheLevelServesEvictions) {
  const auto dir =
      std::filesystem::temp_directory_path() / "logstore_e2e_ssd_cache";
  std::filesystem::remove_all(dir);

  LogStoreOptions options;
  options.simulate_object_latency = true;
  options.simulated.first_byte_latency_us = 100;
  options.simulated.time_scale = 0.0;
  options.engine.io_block_size = 4 << 10;  // 4 KB cache blocks
  options.engine.cache_options.memory_capacity_bytes = 32 << 10;  // tiny
  options.engine.cache_options.memory_shards = 2;
  options.engine.cache_options.ssd_dir = dir.string();
  options.engine.cache_options.ssd_capacity_bytes = 64 << 20;
  auto db = LogStore::Open(options);
  ASSERT_TRUE(db.ok());

  workload::LogGenerator gen(8);
  ASSERT_TRUE((*db)->Append(1, gen.Generate(1, 5000, 0, 100'000)).ok());
  ASSERT_TRUE((*db)->Flush().ok());

  query::LogQuery q;
  q.tenant_id = 1;
  q.select_columns = {"log"};
  ASSERT_TRUE((*db)->Query(q).ok());
  // The tiny memory cache must have spilled blocks to the SSD level.
  EXPECT_GT((*db)->engine()->block_manager()->ssd_used_bytes(), 0u);

  // Re-query: SSD + memory caches avoid most object-store reads.
  auto& stats = (*db)->object_store()->stats();
  const uint64_t before = stats.range_gets.load();
  ASSERT_TRUE((*db)->Query(q).ok());
  const uint64_t warm = stats.range_gets.load() - before;
  EXPECT_LT(warm, before / 2);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace logstore
