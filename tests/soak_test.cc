// Long-soak availability harness + chaos rungs for the autonomous control
// plane (§13).
//
// Four rung families, each its own test:
//
//   1. AvailabilityFloorUnderContinuousLoadAndFaults — continuous Zipfian
//      write+query load against the LIVE monitor for a wall-clock budget
//      (SOAK_SECONDS), every write attempt sampled into SOAK_BUCKET_MS time
//      buckets. Scheduled faults (replica wedge, process kill, object-store
//      brownout, rejoin) each open a fault window; outside those windows
//      every bucket's write-success rate must hold the Taurus-style
//      availability floor (>= 99%). The harness's own attempt/success/
//      unavailable/error tallies must equal the cluster.availability.*
//      registry cells exactly — the cells are the soak's export surface
//      (bench_soak commits them), so they must count precisely the
//      client-facing dispatches and nothing else (tail replay is excluded).
//
//   2. SnapshotTransfer*MidStream — partitions, follower restarts and
//      leader kills injected while a chunked InstallSnapshot is provably
//      mid-stream (0 < chunks_received < total) at cluster scale, with
//      exact chunk/rewind accounting and archived-manifest verification.
//      The snapshot blob here is real: the worker ships its builder's
//      archived-key manifest, and the installing replica probes every key
//      against shared storage (snapshot_manifest_keys_* counters).
//
//   3. BrownoutDuringFailoverTailReplay — the object store browns out
//      (kUnavailable) across a worker kill + failover tail replay + rejoin.
//      The tail replay reads local WALs, so zero acked rows are lost; reads
//      and build passes degrade to retryable kUnavailable, never a silent
//      partial result; everything heals once the brownout lifts.
//
//   4. SplitBrainControlPlanes — a test thread hammers RunControlCycle
//      while the live monitor thread runs and a pause/resume storm races
//      both. Epoch fencing must hold: exactly one failover per kill (no
//      double-failover), every placement snapshot internally consistent
//      (shards owned by live workers), epochs monotonic.
//
// Plus the monitor wake-contract regression (PauseMonitor/ResumeMonitor/
// StopMonitor timing, see the contract on Cluster::PauseMonitor): with a
// huge poll interval the loop must run zero cycles until kicked, run
// exactly one cycle per resume-kick, honor nested pauses, and stop
// promptly even while paused.
//
// SOAK_SECONDS / SOAK_SEEDS / SOAK_BUCKET_MS / SOAK_WORKERS size the run;
// local defaults stay small so tier-1 stays fast, CI raises them.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/controller.h"
#include "common/clock.h"
#include "common/metrics.h"
#include "common/random.h"
#include "consensus/durable_log.h"
#include "objectstore/fault_injecting_object_store.h"
#include "objectstore/memory_object_store.h"
#include "test_env.h"
#include "workload/zipfian.h"

namespace logstore::cluster {
namespace {

namespace fs = std::filesystem;

using consensus::CrashMode;
using consensus::SyncPolicy;
using testenv::EnvInt;
using testenv::MarkerRow;
using testenv::Oracle;
using testenv::SeedCount;

class SoakTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (cluster_ != nullptr) cluster_->StopMonitor();
    cluster_.reset();
    fault_store_.reset();
    base_store_.reset();
    registry_.reset();  // after the cluster: its cells are still referenced
    if (!dir_.empty()) fs::remove_all(dir_);
  }

  // A durable replicated deployment behind a fault-injecting store wrapper
  // (pass-through until a test arms a brownout). `tweak` adjusts the
  // options before Open (chunk sizes, retry deadlines).
  void OpenCluster(
      uint32_t num_workers, uint64_t seed,
      const std::function<void(ClusterDeploymentOptions*)>& tweak = {}) {
    dir_ = testenv::UniqueTempDir("soak", seed);
    // Fresh registry per deployment so availability-cell comparisons see
    // exactly this run's counters.
    registry_ = std::make_unique<metrics::MetricRegistry>();
    base_store_ = std::make_unique<objectstore::MemoryObjectStore>(registry_.get());
    objectstore::FaultInjectionOptions fault;
    fault.seed = seed;
    fault.registry = registry_.get();
    fault_store_ = std::make_unique<objectstore::FaultInjectingObjectStore>(
        base_store_.get(), fault);
    ClusterDeploymentOptions options;
    options.num_workers = num_workers;
    options.shards_per_worker = 2;
    options.worker.schema = logblock::RequestLogSchema();
    options.worker.replicated = true;
    options.worker.wal_dir = dir_.string();
    options.worker.wal.sync_policy = SyncPolicy::kOnSync;
    options.worker.wal.segment_target_bytes = 512;
    options.registry = registry_.get();
    if (tweak) tweak(&options);
    auto cluster = Cluster::Open(fault_store_.get(), options);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster_ = std::move(cluster).value();
  }

  // Shrinks the engine/builder object-store retry budgets so a brownout
  // longer than the deadline surfaces as kUnavailable instead of being
  // silently retried through (the default 5 s call deadline would wait out
  // any test-sized brownout).
  static void ShortRetryDeadlines(ClusterDeploymentOptions* options) {
    for (objectstore::RetryOptions* retry :
         {&options->engine.retry_options,
          &options->worker.builder.retry_options}) {
      retry->max_attempts = 2;
      retry->initial_backoff_us = 5'000;
      retry->max_backoff_us = 20'000;
      retry->call_deadline_us = 100'000;
    }
  }

  // The worker currently serving `tenant` (first shard of its route).
  uint32_t WorkerOfTenant(uint64_t tenant) {
    cluster_->controller()->EnsureTenantRoute(tenant);
    const flow::RouteTable routes = cluster_->controller()->routes();
    const auto* weights = routes.Get(tenant);
    EXPECT_NE(weights, nullptr);
    EXPECT_FALSE(weights->empty());
    return cluster_->controller()->WorkerForShard(weights->begin()->first);
  }

  uint32_t LiveWorkers() const {
    uint32_t live = 0;
    for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
      if (cluster_->worker(id) != nullptr) ++live;
    }
    return live;
  }

  std::string NextMarker() { return "soak-m" + std::to_string(next_marker_++); }

  // One write that must succeed (quiescent setup phases).
  void WriteAcked(uint64_t tenant) {
    const std::string marker = NextMarker();
    const Status status = cluster_->Write(
        tenant, MarkerRow(tenant, 1000 + static_cast<int64_t>(next_marker_),
                          marker));
    ASSERT_TRUE(status.ok()) << status.ToString();
    oracle_[tenant].insert(marker);
  }

  // One write retried through transient unavailability (fault phases).
  // Acked -> oracle (must be visible forever). Never acked -> maybe (fate
  // indeterminate: replication may have happened before the error).
  void WriteRetry(uint64_t tenant) {
    const std::string marker = NextMarker();
    const int64_t ts = 1000 + static_cast<int64_t>(next_marker_);
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (cluster_->Write(tenant, MarkerRow(tenant, ts, marker)).ok()) {
        oracle_[tenant].insert(marker);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    maybe_[tenant].insert(marker);
  }

  // Placement invariants at a quiescent point: every shard and route
  // targets a live worker, the epoch never moved backwards.
  void CheckPlacement(const std::string& context) {
    Controller* controller = cluster_->controller();
    const uint64_t epoch = controller->placement_epoch();
    EXPECT_GE(epoch, last_epoch_) << context << ": placement epoch went back";
    last_epoch_ = epoch;
    for (uint32_t s = 0; s < controller->num_shards(); ++s) {
      EXPECT_TRUE(controller->WorkerAlive(controller->WorkerForShard(s)))
          << context << ": shard " << s << " owned by dead worker";
    }
  }

  // Waits for the monitor to converge the fleet back to all-healthy,
  // rejoining failed-over workers along the way.
  bool AwaitConvergence(int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
        if (cluster_->worker(id) == nullptr &&
            !cluster_->controller()->WorkerAlive(id)) {
          const Status status = cluster_->RestartWorker(id);
          EXPECT_TRUE(status.ok()) << status.ToString();
        }
      }
      bool healthy = true;
      for (const WorkerHealth& health : cluster_->HarvestHealth()) {
        if (!health.CanAck()) {
          healthy = false;
          break;
        }
      }
      if (healthy && LiveWorkers() == cluster_->num_workers()) {
        bool all_loaded = true;
        for (uint32_t id = 0; id < cluster_->num_workers(); ++id) {
          if (cluster_->controller()->ShardsOfWorker(id).empty()) {
            all_loaded = false;
            break;
          }
        }
        if (all_loaded) return true;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  // Zero acked-row loss, nothing fabricated beyond indeterminate writes.
  // Issues queries, so in tests that compare the availability cells this
  // must run AFTER the registry comparison.
  void SweepOracle() {
    for (const auto& [tenant, expected] : oracle_) {
      query::LogQuery query;
      query.tenant_id = tenant;
      query.select_columns = {"log"};
      auto result = cluster_->Query(query);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      std::multiset<std::string> visible;
      for (const auto& row : result->rows) visible.insert(row[0].s);
      for (const auto& marker : expected) {
        EXPECT_GT(visible.count(marker), 0u)
            << "tenant " << tenant << " lost acked " << marker;
      }
      const auto maybe_it = maybe_.find(tenant);
      for (const auto& marker : visible) {
        const bool allowed =
            expected.count(marker) > 0 ||
            (maybe_it != maybe_.end() && maybe_it->second.count(marker) > 0);
        EXPECT_TRUE(allowed) << "tenant " << tenant << " fabricated " << marker;
      }
    }
  }

  // --- Chunked-snapshot-transfer scaffolding ---

  struct TransferSetup {
    Worker* worker = nullptr;
    int victim = 1;
    uint64_t total_chunks = 0;   // exact ceil(manifest blob / chunk bytes)
    size_t manifest_keys = 0;    // archived keys the manifest carries
  };

  static constexpr size_t kChunkBytes = 8;
  static constexpr char kManifestHeader[] = "logstore-manifest-v1\n";

  // Crashes replica `victim` of a one-worker deployment, archives the
  // group's log past the victim's end (so catch-up REQUIRES a chunked
  // InstallSnapshot of the archived-key manifest), restarts the victim and
  // ticks until the transfer is provably mid-stream:
  // 0 < chunks_received < total_chunks, nothing installed yet.
  void ForceMidStreamTransfer(uint64_t seed, TransferSetup* setup) {
    OpenCluster(/*num_workers=*/1, seed, [](ClusterDeploymentOptions* o) {
      // Tiny chunks so the manifest spans far more chunks than one message
      // cascade (~32 round-trips) can deliver — the transfer is guaranteed
      // to be interruptible between Tick steps.
      o->worker.raft.snapshot_chunk_bytes = kChunkBytes;
      o->worker.wal.segment_target_bytes = 256;
    });
    if (::testing::Test::HasFatalFailure()) return;
    Worker* worker = cluster_->worker(0);
    ASSERT_NE(worker, nullptr);
    setup->worker = worker;

    for (int i = 0; i < 4; ++i) WriteAcked(1 + (i % 2));
    ASSERT_TRUE(
        worker->CrashReplica(setup->victim, CrashMode::kDropUnsynced, seed)
            .ok());
    const uint64_t victim_log_end =
        worker->raft()->node(setup->victim).log_size();

    // The survivors keep writing and archiving; WAL GC advances the log
    // base past everything the dead replica holds.
    for (int round = 0; round < 12; ++round) {
      for (int i = 0; i < 3; ++i) WriteAcked(1 + (i % 2));
      auto built = cluster_->RunBuildPass();
      ASSERT_TRUE(built.ok()) << built.status().ToString();
    }
    const int leader = worker->raft()->WaitForLeader();
    ASSERT_GE(leader, 0);
    ASSERT_GT(worker->raft()->node(leader).log_base_index(), victim_log_end)
        << "GC did not pass the dead replica's log; no snapshot required";

    // Exact expected accounting: the snapshot blob is the archived-key
    // manifest (header + one key per line), split into kChunkBytes chunks.
    const std::vector<std::string> keys = worker->builder().ArchivedKeys();
    size_t blob_bytes = sizeof(kManifestHeader) - 1;
    for (const std::string& key : keys) blob_bytes += key.size() + 1;
    setup->manifest_keys = keys.size();
    setup->total_chunks = (blob_bytes + kChunkBytes - 1) / kChunkBytes;
    // Must be well past one delivery cascade, or the stream could complete
    // before the fault lands.
    ASSERT_GE(setup->total_chunks, 40u);

    ASSERT_TRUE(worker->RecoverReplica(setup->victim).ok());
    uint64_t received = 0;
    for (int i = 0; i < 400; ++i) {
      received = worker->raft()->node(setup->victim).snapshot_chunks_received();
      if (received > 0 && received < setup->total_chunks) break;
      worker->raft()->Tick(1);
    }
    ASSERT_GT(received, 0u) << "transfer never started";
    ASSERT_LT(received, setup->total_chunks) << "transfer completed too fast";
    ASSERT_EQ(worker->raft()->node(setup->victim).snapshots_installed(), 0u);
  }

  void DriveUntilInstalled(Worker* worker, int victim, int max_ms = 20000) {
    for (int elapsed = 0; elapsed < max_ms; elapsed += 20) {
      if (worker->raft()->node(victim).snapshots_installed() >= 1) return;
      worker->raft()->Tick(20);
    }
  }

  std::unique_ptr<metrics::MetricRegistry> registry_;
  fs::path dir_;
  std::unique_ptr<objectstore::MemoryObjectStore> base_store_;
  std::unique_ptr<objectstore::FaultInjectingObjectStore> fault_store_;
  std::unique_ptr<Cluster> cluster_;
  Oracle oracle_;
  Oracle maybe_;
  uint64_t next_marker_ = 0;
  uint64_t last_epoch_ = 0;
};

constexpr char SoakTest::kManifestHeader[];

// ---------------------------------------------------------------------------
// Monitor wake contract (regression for the PauseMonitor/StopMonitor timing
// flake): with a huge poll interval, the loop must be entirely kick-driven.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, MonitorWakeContractKicksPromptly) {
  OpenCluster(/*num_workers=*/2, /*seed=*/11);
  if (::testing::Test::HasFatalFailure()) return;
  for (uint64_t t = 1; t <= 2; ++t) WriteAcked(t);

  // A poll interval of an hour: any cycle that runs below is kick-driven,
  // not timer-driven. The loop waits FIRST, so zero cycles until a kick.
  ASSERT_TRUE(cluster_->StartMonitor({/*poll_interval_ms=*/3'600'000}).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(cluster_->monitor_stats().cycles, 0u)
      << "monitor cycled before the poll interval without a kick";

  auto await_cycles = [&](uint64_t want, int timeout_ms) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (cluster_->monitor_stats().cycles < want &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return cluster_->monitor_stats().cycles;
  };

  // One pause/resume = one kick = exactly one prompt cycle.
  cluster_->PauseMonitor();
  cluster_->ResumeMonitor();
  EXPECT_EQ(await_cycles(1, 5000), 1u)
      << "resume-kick did not wake the loop promptly";
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(cluster_->monitor_stats().cycles, 1u)
      << "a single kick ran more than one cycle";

  // Nested pauses: the inner resume must NOT re-arm the monitor while the
  // outer pause still holds its quiescent window.
  cluster_->PauseMonitor();
  cluster_->PauseMonitor();
  cluster_->ResumeMonitor();  // depth 2 -> 1: still paused, no kick
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(cluster_->monitor_stats().cycles, 1u)
      << "inner resume re-armed the monitor inside the outer pause window";
  cluster_->ResumeMonitor();  // depth 1 -> 0: kick
  EXPECT_EQ(await_cycles(2, 5000), 2u)
      << "last resume did not kick the loop";

  // Stop outranks pause and must return promptly despite the huge poll
  // interval (join of a loop that wakes on monitor_stop_).
  cluster_->PauseMonitor();
  const auto stop_start = std::chrono::steady_clock::now();
  cluster_->StopMonitor();
  const auto stop_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - stop_start)
                           .count();
  EXPECT_LT(stop_ms, 2000) << "StopMonitor slept out the poll interval";
  EXPECT_FALSE(cluster_->monitor_running());
  cluster_->StopMonitor();  // idempotent
}

// ---------------------------------------------------------------------------
// Rung family 1: the availability floor under continuous load and faults.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, AvailabilityFloorUnderContinuousLoadAndFaults) {
  const int soak_seconds = EnvInt("SOAK_SECONDS", 2);
  const int num_seeds = SeedCount("SOAK_SEEDS", 1);
  const int64_t bucket_ms = std::max(10, EnvInt("SOAK_BUCKET_MS", 100));
  const uint32_t num_workers =
      static_cast<uint32_t>(EnvInt("SOAK_WORKERS", 6));
  const uint64_t num_tenants = 8;
  const int64_t duration_ms = static_cast<int64_t>(soak_seconds) * 1000;

  for (int s = 0; s < num_seeds; ++s) {
    const uint64_t seed = 4200 + static_cast<uint64_t>(s);
    SCOPED_TRACE("seed " + std::to_string(seed));
    TearDown();
    oracle_.clear();
    maybe_.clear();
    next_marker_ = 0;
    last_epoch_ = 0;
    OpenCluster(num_workers, seed, &SoakTest::ShortRetryDeadlines);
    if (::testing::Test::HasFatalFailure()) return;

    struct Bucket {
      int64_t attempts = 0;
      int64_t successes = 0;
    };
    std::vector<Bucket> buckets(duration_ms / bucket_ms + 2);
    struct Window {
      int64_t start_ms = 0;
      int64_t end_ms = -1;  // -1: still open
      const char* kind = "";
    };
    std::vector<Window> windows;
    // Harness-side tallies, compared against the cluster.availability.*
    // cells at the end: the cells must count exactly the client-facing
    // dispatches this loop makes, nothing more (tail replay, control
    // cycles and convergence probes must not pollute them).
    int64_t w_attempts = 0, w_successes = 0, w_unavailable = 0, w_errors = 0;
    int64_t q_attempts = 0, q_successes = 0, q_unavailable = 0, q_errors = 0;

    // Seed every tenant's route before the clock starts.
    for (uint64_t t = 1; t <= num_tenants; ++t) {
      const std::string marker = NextMarker();
      const Status status =
          cluster_->Write(t, MarkerRow(t, 1000, marker));
      ++w_attempts;
      if (status.ok()) {
        ++w_successes;
        oracle_[t].insert(marker);
      } else {
        ASSERT_TRUE(false) << "pre-fault seed write failed: "
                           << status.ToString();
      }
    }
    ASSERT_TRUE(cluster_->StartMonitor({/*poll_interval_ms=*/5}).ok());

    Random rng(seed);
    workload::ZipfianGenerator tenants(num_tenants, 0.9, seed);
    const auto start = std::chrono::steady_clock::now();
    auto elapsed_ms = [&] {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - start)
          .count();
    };

    enum FaultKind { kWedge, kKill, kBrownout, kRejoin };
    struct Event {
      double fraction;
      FaultKind kind;
      bool fired = false;
    };
    std::vector<Event> events = {{0.15, kWedge},
                                 {0.35, kKill},
                                 {0.55, kBrownout},
                                 {0.75, kRejoin}};
    int consecutive_ok = 0;
    int64_t brownout_end_us = 0;
    int iteration = 0;

    // True when the control plane has visibly finished repairing: every
    // shard owned by a live worker whose process is up. (A success streak
    // alone can close a window prematurely when the Zipfian draw skips the
    // broken worker's tenants for a stretch.)
    auto placement_healthy = [&] {
      const Controller::PlacementView view =
          cluster_->controller()->PlacementSnapshot();
      for (const uint32_t owner : view.shard_to_worker) {
        if (owner >= view.worker_alive.size() || !view.worker_alive[owner] ||
            cluster_->worker(owner) == nullptr) {
          return false;
        }
      }
      return true;
    };

    while (elapsed_ms() < duration_ms) {
      // Fire any scheduled fault whose time has come; each opens a window.
      for (Event& event : events) {
        if (event.fired ||
            elapsed_ms() < static_cast<int64_t>(event.fraction * duration_ms)) {
          continue;
        }
        event.fired = true;
        switch (event.kind) {
          case kWedge: {
            // Wedge a replica of the hot tenant's worker (guaranteed
            // traffic, so the monitor's in-place repair rung observably
            // runs) and open a window until it heals.
            windows.push_back({elapsed_ms(), -1, "wedge"});
            const uint32_t target = WorkerOfTenant(1);
            cluster_->PauseMonitor();
            Worker* worker = cluster_->worker(target);
            if (worker != nullptr) {
              worker->InjectReplicaSyncError(static_cast<int>(rng.Uniform(3)))
                  .IgnoreError();
            }
            cluster_->ResumeMonitor();
            break;
          }
          case kKill: {
            if (LiveWorkers() <= num_workers / 2 + 1) break;
            uint32_t victim = rng.Uniform(num_workers);
            for (uint32_t probe = 0; probe < num_workers; ++probe) {
              const uint32_t id = (victim + probe) % num_workers;
              if (cluster_->worker(id) != nullptr) {
                victim = id;
                break;
              }
            }
            windows.push_back({elapsed_ms(), -1, "kill"});
            EXPECT_TRUE(cluster_->KillWorker(victim).ok());
            break;
          }
          case kBrownout: {
            // Shared storage browns out for 150 ms: writes never touch it
            // (raft + local WAL), archive passes fail fast and keep their
            // rows, queries needing LogBlocks degrade to kUnavailable.
            windows.push_back({elapsed_ms(), -1, "brownout"});
            const int64_t now_us = SystemClock::Default()->NowMicros();
            brownout_end_us = now_us + 150'000;
            fault_store_->SetBrownout(now_us, brownout_end_us);
            cluster_->RunBuildPass().status().IgnoreError();
            break;
          }
          case kRejoin: {
            windows.push_back({elapsed_ms(), -1, "rejoin"});
            for (uint32_t id = 0; id < num_workers; ++id) {
              if (cluster_->worker(id) == nullptr &&
                  !cluster_->controller()->WorkerAlive(id)) {
                EXPECT_TRUE(cluster_->RestartWorker(id).ok());
              }
            }
            break;
          }
        }
      }

      // One sampled write attempt (no retry: the bucket IS the retry view).
      const uint64_t tenant = 1 + tenants.Next();
      const std::string marker = NextMarker();
      const int64_t t_ms = elapsed_ms();
      const Status status = cluster_->Write(
          tenant,
          MarkerRow(tenant, 1000 + static_cast<int64_t>(next_marker_), marker));
      ++w_attempts;
      const size_t bucket = std::min<size_t>(
          static_cast<size_t>(t_ms / bucket_ms), buckets.size() - 1);
      ++buckets[bucket].attempts;
      if (status.ok()) {
        ++buckets[bucket].successes;
        ++w_successes;
        oracle_[tenant].insert(marker);
        ++consecutive_ok;
      } else {
        if (status.IsUnavailable()) {
          ++w_unavailable;
        } else {
          ++w_errors;
        }
        maybe_[tenant].insert(marker);
        consecutive_ok = 0;
      }

      // Close open windows once service is provably restored: a success
      // streak AND a healthy placement (brownouts additionally wait out
      // their clock window).
      for (Window& window : windows) {
        if (window.end_ms >= 0) continue;
        if (std::string_view(window.kind) == "brownout" &&
            SystemClock::Default()->NowMicros() < brownout_end_us) {
          continue;
        }
        if (consecutive_ok >= 24 && placement_healthy()) {
          window.end_ms = elapsed_ms();
        }
      }

      // Interleaved read load (availability tracked, no floor: the write
      // floor is the ISSUE's metric; queries are asserted non-partial by
      // the final sweep and the brownout rung).
      if (++iteration % 40 == 0) {
        query::LogQuery query;
        query.tenant_id = 1 + tenants.Next();
        query.select_columns = {"log"};
        const auto result = cluster_->Query(query);
        ++q_attempts;
        if (result.ok()) {
          ++q_successes;
        } else if (result.status().IsUnavailable()) {
          ++q_unavailable;
        } else {
          ++q_errors;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (::testing::Test::HasFatalFailure()) return;
    // Anything still open rode into the end of the run.
    for (Window& window : windows) {
      if (window.end_ms < 0) window.end_ms = duration_ms;
    }

    // The storm schedule must actually have fired its rungs.
    EXPECT_GE(windows.size(), 4u);

    ASSERT_TRUE(AwaitConvergence(/*timeout_ms=*/30000))
        << "fleet did not converge after the soak";
    cluster_->PauseMonitor();
    CheckPlacement("post-soak");

    const MonitorStats stats = cluster_->monitor_stats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_EQ(stats.cycle_errors, 0u);
    EXPECT_EQ(stats.tails_lost, 0u)
        << "a healthy-kill failover declared a tail lost";
    EXPECT_GE(stats.failovers, 1u) << "the kill rung never failed over";

    // The availability cells are the export surface (bench_soak commits
    // them): they must match the harness's own tallies EXACTLY. Compared
    // before SweepOracle, whose queries would advance the query cells.
    const auto snap = registry_->SnapshotMap();
    EXPECT_EQ(snap.at("cluster.availability.write_attempts"), w_attempts);
    EXPECT_EQ(snap.at("cluster.availability.write_successes"), w_successes);
    EXPECT_EQ(snap.at("cluster.availability.write_unavailable"),
              w_unavailable);
    EXPECT_EQ(snap.at("cluster.availability.write_errors"), w_errors);
    EXPECT_EQ(snap.at("cluster.availability.query_attempts"), q_attempts);
    EXPECT_EQ(snap.at("cluster.availability.query_successes"), q_successes);
    EXPECT_EQ(snap.at("cluster.availability.query_unavailable"),
              q_unavailable);
    EXPECT_EQ(snap.at("cluster.availability.query_errors"), q_errors);

    // The floor: outside fault windows (padded by one bucket on each side),
    // every sampled bucket must hold >= 99% write success.
    auto in_fault_window = [&](int64_t from_ms, int64_t to_ms) {
      for (const Window& window : windows) {
        if (from_ms < window.end_ms + bucket_ms &&
            to_ms > window.start_ms - bucket_ms) {
          return true;
        }
      }
      return false;
    };
    int64_t clean_buckets = 0;
    int64_t clean_attempts = 0, clean_successes = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i].attempts == 0) continue;
      const int64_t from_ms = static_cast<int64_t>(i) * bucket_ms;
      if (in_fault_window(from_ms, from_ms + bucket_ms)) continue;
      ++clean_buckets;
      clean_attempts += buckets[i].attempts;
      clean_successes += buckets[i].successes;
      const double rate = static_cast<double>(buckets[i].successes) /
                          static_cast<double>(buckets[i].attempts);
      EXPECT_GE(rate, 0.99)
          << "bucket " << i << " [" << from_ms << "ms," << from_ms + bucket_ms
          << "ms) fell below the availability floor outside fault windows ("
          << buckets[i].successes << "/" << buckets[i].attempts << ")";
    }
    EXPECT_GT(clean_buckets, 0) << "every bucket overlapped a fault window; "
                                   "the floor was never measured";
    if (clean_attempts > 0) {
      EXPECT_GE(static_cast<double>(clean_successes) /
                    static_cast<double>(clean_attempts),
                0.99);
    }

    // Zero acked-row loss across the whole soak.
    SweepOracle();
    cluster_->StopMonitor();
  }
}

// ---------------------------------------------------------------------------
// Rung family 2: faults while a chunked InstallSnapshot is mid-stream.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, SnapshotTransferResumesAcrossPartitionMidStream) {
  TransferSetup setup;
  ForceMidStreamTransfer(/*seed=*/21, &setup);
  if (::testing::Test::HasFatalFailure()) return;
  consensus::RaftCluster* raft = setup.worker->raft();
  const uint64_t received_at_cut =
      raft->node(setup.victim).snapshot_chunks_received();

  // Partition the catching-up follower mid-stream; the leader's sends go
  // into the void and the follower's staging freezes where it was.
  raft->Disconnect(setup.victim);
  raft->Tick(100);
  EXPECT_EQ(raft->node(setup.victim).snapshot_chunks_received(),
            received_at_cut);
  raft->Reconnect(setup.victim);
  DriveUntilInstalled(setup.worker, setup.victim);

  // Resume, not restart: the follower's cursor is authoritative, duplicate
  // chunks re-ack without re-staging, so the fresh-chunk count is EXACTLY
  // ceil(blob / chunk) — and nothing was rewound.
  ASSERT_GE(raft->node(setup.victim).snapshots_installed(), 1u);
  EXPECT_EQ(raft->node(setup.victim).snapshot_chunks_received(),
            setup.total_chunks);
  const int leader = raft->leader();
  ASSERT_GE(leader, 0);
  EXPECT_EQ(raft->node(leader).snapshot_chunk_rewinds(), 0u);
  EXPECT_EQ(raft->node(setup.victim).last_applied(),
            raft->node(leader).last_applied());

  // The installer verified every archived key of the manifest against
  // shared storage, and every probe confirmed.
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_checked(),
            setup.manifest_keys);
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_unverified(), 0u);

  for (int i = 0; i < 2; ++i) WriteAcked(1 + (i % 2));
  SweepOracle();
}

TEST_F(SoakTest, SnapshotTransferFollowerRestartMidStreamRewinds) {
  TransferSetup setup;
  ForceMidStreamTransfer(/*seed=*/22, &setup);
  if (::testing::Test::HasFatalFailure()) return;
  consensus::RaftCluster* raft = setup.worker->raft();

  // Crash the follower mid-stream (staging dies with the process) and
  // restart it. The leader resumes at its old offset; the fresh follower
  // has no staging for that transfer, so the mid-blob chunk is refused
  // (stale rejection), the leader rewinds to zero, and the whole blob
  // streams again into the fresh counter.
  ASSERT_TRUE(setup.worker
                  ->CrashReplica(setup.victim, CrashMode::kDropUnsynced,
                                 /*seed=*/220)
                  .ok());
  ASSERT_TRUE(setup.worker->RecoverReplica(setup.victim).ok());
  DriveUntilInstalled(setup.worker, setup.victim);

  ASSERT_GE(raft->node(setup.victim).snapshots_installed(), 1u);
  EXPECT_EQ(raft->node(setup.victim).snapshot_chunks_received(),
            setup.total_chunks);
  EXPECT_GE(raft->node(setup.victim).snapshot_stale_rejections(), 1u)
      << "the restarted follower never refused the mid-blob chunk";
  const int leader = raft->leader();
  ASSERT_GE(leader, 0);
  EXPECT_GE(raft->node(leader).snapshot_chunk_rewinds(), 1u)
      << "the leader never rewound to the follower's (empty) cursor";
  EXPECT_EQ(raft->node(setup.victim).last_applied(),
            raft->node(leader).last_applied());
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_checked(),
            setup.manifest_keys);
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_unverified(), 0u);

  for (int i = 0; i < 2; ++i) WriteAcked(1 + (i % 2));
  SweepOracle();
}

TEST_F(SoakTest, SnapshotTransferSurvivesLeaderKillMidStream) {
  TransferSetup setup;
  ForceMidStreamTransfer(/*seed=*/23, &setup);
  if (::testing::Test::HasFatalFailure()) return;
  consensus::RaftCluster* raft = setup.worker->raft();
  const int old_leader = raft->leader();
  ASSERT_GE(old_leader, 0);
  ASSERT_NE(old_leader, setup.victim);

  // Kill the sending leader mid-stream. The third replica wins the
  // election (the mid-catch-up victim's log cannot), starts a fresh
  // transfer at offset zero — higher term, different identity, so it
  // REPLACES the dead leader's staged bytes instead of splicing into them
  // — and completes the install.
  ASSERT_TRUE(setup.worker
                  ->CrashReplica(old_leader, CrashMode::kDropUnsynced,
                                 /*seed=*/230)
                  .ok());
  const int new_leader = raft->WaitForLeader();
  ASSERT_GE(new_leader, 0);
  ASSERT_NE(new_leader, old_leader);
  ASSERT_NE(new_leader, setup.victim);
  DriveUntilInstalled(setup.worker, setup.victim);

  ASSERT_GE(raft->node(setup.victim).snapshots_installed(), 1u);
  // Partial old-transfer bytes plus the full new stream: at least one full
  // blob's worth of fresh chunks landed.
  EXPECT_GE(raft->node(setup.victim).snapshot_chunks_received(),
            setup.total_chunks);
  EXPECT_EQ(raft->node(setup.victim).last_applied(),
            raft->node(new_leader).last_applied());
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_checked(),
            setup.manifest_keys);
  EXPECT_EQ(setup.worker->snapshot_manifest_keys_unverified(), 0u);

  // The two-replica majority (victim + new leader) still acknowledges.
  for (int i = 0; i < 2; ++i) WriteAcked(1 + (i % 2));
  SweepOracle();
}

// ---------------------------------------------------------------------------
// Rung family 3: object-store brownout across failover tail replay.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, BrownoutDuringFailoverTailReplay) {
  const uint64_t num_tenants = 6;
  OpenCluster(/*num_workers=*/4, /*seed=*/31, &SoakTest::ShortRetryDeadlines);
  if (::testing::Test::HasFatalFailure()) return;

  // Archived history plus an un-archived tail on every tenant.
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    for (int i = 0; i < 4; ++i) WriteAcked(t);
  }
  auto built = cluster_->RunBuildPass();
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  ASSERT_GT(*built, 0);
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    for (int i = 0; i < 2; ++i) WriteAcked(t);
  }
  const uint32_t victim = WorkerOfTenant(1);

  // Brownout with no scheduled end: everything below runs inside the
  // window by construction, with zero wall-clock timing assumptions.
  const int64_t now_us = SystemClock::Default()->NowMicros();
  fault_store_->SetBrownout(now_us, now_us + 3'600'000'000LL);

  // Kill + failover DURING the brownout. The tail replay reads the dead
  // worker's local replica WALs and re-ingests through the broker — no
  // object-store dependency — so the brownout must not cost a single
  // acked row.
  ASSERT_TRUE(cluster_->KillWorker(victim).ok());
  auto cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(cycle.ok()) << cycle.status().ToString();
  ASSERT_EQ(cycle->failovers.size(), 1u);
  EXPECT_EQ(cycle->failovers[0].worker, victim);
  EXPECT_FALSE(cycle->failovers[0].tail_lost)
      << "brownout must not make an intact local tail unrecoverable";
  EXPECT_GT(cycle->failovers[0].tail_rows_recovered, 0u);

  // Reads during the brownout: cold caches force LogBlock fetches, which
  // the shrunk retry budget turns into kUnavailable — retryable, never a
  // silent partial result. A query that does succeed (everything it needs
  // cached/realtime) must be COMPLETE.
  cluster_->ClearQueryCaches();
  int unavailable = 0;
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    query::LogQuery query;
    query.tenant_id = t;
    query.select_columns = {"log"};
    const auto result = cluster_->Query(query);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsUnavailable())
          << result.status().ToString();
      ++unavailable;
      continue;
    }
    std::multiset<std::string> visible;
    for (const auto& row : result->rows) visible.insert(row[0].s);
    for (const auto& marker : oracle_[t]) {
      EXPECT_GT(visible.count(marker), 0u)
          << "tenant " << t << ": query during brownout returned a partial "
          << "result (missing " << marker << ") instead of kUnavailable";
    }
  }
  EXPECT_GT(unavailable, 0)
      << "no query degraded to kUnavailable during the brownout";

  // Archive passes during the brownout fail fast and keep their rows
  // (truncate-after-upload contract), and the rejoined worker comes back
  // even while shared storage is dark (rejoin is WAL-local).
  EXPECT_FALSE(cluster_->RunBuildPass().ok());
  ASSERT_TRUE(cluster_->RestartWorker(victim).ok());
  EXPECT_GT(fault_store_->fault_stats().brownout_rejections.load(), 0u);

  // Brownout lifts: the deferred archive pass succeeds (the rejoined
  // worker's build path included) and every acked row is visible, scatter
  // and single-engine agreeing byte-for-byte.
  fault_store_->SetBrownout(0, 0);
  auto heal_cycle = cluster_->RunControlCycle();
  ASSERT_TRUE(heal_cycle.ok()) << heal_cycle.status().ToString();
  for (uint64_t t = 1; t <= num_tenants; ++t) WriteAcked(t);
  auto rebuilt = cluster_->RunBuildPass();
  ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
  cluster_->ClearQueryCaches();
  for (uint64_t t = 1; t <= num_tenants; ++t) {
    query::LogQuery query;
    query.tenant_id = t;
    query.select_columns = {"log"};
    const auto scattered = cluster_->Query(query);
    ASSERT_TRUE(scattered.ok()) << scattered.status().ToString();
    const auto single = cluster_->QuerySingleEngine(query);
    ASSERT_TRUE(single.ok()) << single.status().ToString();
    ASSERT_EQ(scattered->rows.size(), single->rows.size());
    for (size_t r = 0; r < scattered->rows.size(); ++r) {
      EXPECT_EQ(scattered->rows[r][0].s, single->rows[r][0].s);
    }
  }
  SweepOracle();
}

// ---------------------------------------------------------------------------
// Rung family 4: monitor-vs-monitor split brain.
// ---------------------------------------------------------------------------

TEST_F(SoakTest, SplitBrainControlPlanesFenceByEpoch) {
  const uint32_t num_workers = 6;
  const int storm_ms = EnvInt("SOAK_SPLITBRAIN_MS", 1500);
  OpenCluster(num_workers, /*seed=*/41);
  if (::testing::Test::HasFatalFailure()) return;
  const uint64_t num_tenants = 8;
  for (uint64_t t = 1; t <= num_tenants; ++t) WriteAcked(t);

  // The live monitor is one control plane; a test thread running
  // RunControlCycle in a loop is the second; a pause/resume storm races
  // both. Epoch fencing must make them cooperate: a kill is failed over by
  // EXACTLY one of them.
  ASSERT_TRUE(cluster_->StartMonitor({/*poll_interval_ms=*/1}).ok());

  std::atomic<bool> done{false};
  // gtest assertions are not thread-safe off the main thread; worker
  // threads collect violations as strings and the main thread asserts.
  std::mutex violations_mu;
  std::vector<std::string> violations;
  auto report = [&](std::string v) {
    std::lock_guard<std::mutex> lock(violations_mu);
    violations.push_back(std::move(v));
  };

  std::atomic<uint64_t> direct_failovers{0};
  std::atomic<uint64_t> direct_cycle_errors{0};
  std::thread rival([&] {
    while (!done.load()) {
      const auto cycle = cluster_->RunControlCycle();
      if (cycle.ok()) {
        direct_failovers.fetch_add(cycle->failovers.size());
      } else {
        direct_cycle_errors.fetch_add(1);
        report("rival cycle error: " + cycle.status().ToString());
      }
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  std::thread storm([&] {
    while (!done.load()) {
      cluster_->PauseMonitor();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
      cluster_->ResumeMonitor();
      std::this_thread::sleep_for(std::chrono::microseconds(300));
    }
  });

  std::thread sampler([&] {
    uint64_t last_epoch = 0;
    while (!done.load()) {
      const Controller::PlacementView view =
          cluster_->controller()->PlacementSnapshot();
      if (view.epoch < last_epoch) {
        report("epoch went backwards: " + std::to_string(view.epoch) +
               " < " + std::to_string(last_epoch));
      }
      last_epoch = view.epoch;
      // Mutex-consistent view: every shard's owner must be alive IN THE
      // SAME snapshot — dual ownership / orphaned shards would show here
      // the instant a double-failover interleaved.
      for (size_t shard = 0; shard < view.shard_to_worker.size(); ++shard) {
        const uint32_t owner = view.shard_to_worker[shard];
        if (owner >= view.worker_alive.size() || !view.worker_alive[owner]) {
          report("epoch " + std::to_string(view.epoch) + ": shard " +
                 std::to_string(shard) + " owned by dead worker " +
                 std::to_string(owner));
        }
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  // The fault script: healthy kills (WALs intact, tails fully
  // recoverable) under continuous traffic, rejoining as failovers land.
  Random rng(41);
  workload::ZipfianGenerator tenants(num_tenants, 0.9, 41);
  uint64_t kills = 0;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  int event = 0;
  while (elapsed() < storm_ms) {
    for (int i = 0; i < 4; ++i) WriteRetry(1 + tenants.Next());
    if (event % 3 == 0 && LiveWorkers() > num_workers / 2 + 1) {
      uint32_t victim = rng.Uniform(num_workers);
      for (uint32_t probe = 0; probe < num_workers; ++probe) {
        const uint32_t id = (victim + probe) % num_workers;
        if (cluster_->worker(id) != nullptr &&
            cluster_->controller()->WorkerAlive(id)) {
          victim = id;
          if (cluster_->KillWorker(victim).ok()) ++kills;
          break;
        }
      }
    }
    if (event % 3 == 2) {
      for (uint32_t id = 0; id < num_workers; ++id) {
        if (cluster_->worker(id) == nullptr &&
            !cluster_->controller()->WorkerAlive(id)) {
          EXPECT_TRUE(cluster_->RestartWorker(id).ok());
        }
      }
    }
    ++event;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  rival.join();
  storm.join();
  sampler.join();

  ASSERT_TRUE(AwaitConvergence(/*timeout_ms=*/30000))
      << "fleet did not converge after the split-brain storm";
  cluster_->PauseMonitor();
  CheckPlacement("post-storm");

  {
    std::lock_guard<std::mutex> lock(violations_mu);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " invariant violations, first: "
        << violations.front();
  }

  // The split-brain invariant: with two control planes racing, every kill
  // was failed over EXACTLY once — the rival seeing a worker the monitor
  // already condemned (or vice versa) must skip it, never re-fence.
  const MonitorStats stats = cluster_->monitor_stats();
  EXPECT_GT(kills, 0u) << "the storm never killed a worker";
  EXPECT_EQ(stats.failovers + direct_failovers.load(), kills)
      << "double failover (or a missed one): monitor=" << stats.failovers
      << " rival=" << direct_failovers.load() << " kills=" << kills;
  EXPECT_EQ(stats.cycle_errors, 0u);
  EXPECT_EQ(direct_cycle_errors.load(), 0u);
  EXPECT_EQ(stats.tails_lost, 0u);

  SweepOracle();
  cluster_->StopMonitor();
}

}  // namespace
}  // namespace logstore::cluster
