// Shared environment/workload helpers for the seeded fault harnesses
// (chaos, soak, crash-recovery, failover, cluster-read). Each harness used
// to carry its own copy of these; they live here so a knob or schema tweak
// lands everywhere at once.
#ifndef LOGSTORE_TESTS_TEST_ENV_H_
#define LOGSTORE_TESTS_TEST_ENV_H_

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "logblock/row_batch.h"
#include "logblock/schema.h"

namespace logstore::testenv {

// Integer knob from the environment, e.g. CHAOS_WORKERS / SOAK_SECONDS.
// Empty or unset falls back; CI raises the knobs, local runs stay small so
// tier-1 stays fast.
inline int EnvInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env != nullptr && *env != '\0') return std::atoi(env);
  return fallback;
}

// Seed-sweep width for a harness (FAILOVER_SEEDS, CRASH_RECOVERY_SEEDS,
// CLUSTER_READ_SEEDS, SOAK_SEEDS, ...). Same contract as EnvInt; named
// separately because every suite documents "Seeds default to a quick smoke
// count; CI raises <NAME>".
inline int SeedCount(const char* env_name, int fallback) {
  return EnvInt(env_name, fallback);
}

// A per-run scratch directory under the system temp dir, pid-qualified so
// concurrent invocations (ctest -j alongside a manual soak run) never
// fight over the same WAL directories. The caller owns cleanup.
inline std::filesystem::path UniqueTempDir(const std::string& prefix,
                                           uint64_t seed) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      (prefix + "_" + std::to_string(::getpid()) + "_" + std::to_string(seed));
  std::filesystem::remove_all(dir);
  return dir;
}

// Column index of the marker string in RequestLogSchema rows (the `log`
// column MarkerRow writes into).
inline constexpr size_t kMarkerColumn = 5;

// One RequestLogSchema row carrying a unique marker string in `log`: the
// unit of acked-write tracking every oracle is built from.
inline logblock::RowBatch MarkerRow(uint64_t tenant, int64_t ts,
                                    const std::string& marker) {
  logblock::RowBatch batch(logblock::RequestLogSchema());
  batch.AddRow({logblock::Value::Int64(static_cast<int64_t>(tenant)),
                logblock::Value::Int64(ts), logblock::Value::String("10.0.0.1"),
                logblock::Value::Int64(5), logblock::Value::String("false"),
                logblock::Value::String(marker)});
  return batch;
}

// The model oracle: markers per tenant whose Write() returned OK. A second
// instance doubles as the "maybe" set (un-acked writes whose fate is
// indeterminate) in coverage-without-fabrication checks.
using Oracle = std::map<uint64_t, std::multiset<std::string>>;

}  // namespace logstore::testenv

#endif  // LOGSTORE_TESTS_TEST_ENV_H_
